//! TreeLSTM sentiment classification over a synthetic treebank — the
//! paper's flagship recursive workload.
//!
//! Demonstrates: recursive models over ADTs, fork-join instance parallelism
//! (`parallel` sibling encodings), operator hoisting (leaf transforms batch
//! across *all* trees), and the difference auto-batching makes vs eager
//! per-operator execution.
//!
//! ```sh
//! cargo run --release -p acrobat-bench --example treelstm_sentiment
//! ```

use acrobat_baselines::pytorch;
use acrobat_core::{compile, CompileOptions};
use acrobat_models::{data, treelstm};
use acrobat_vm::OutputValue;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The full TreeLSTM program (see `acrobat_models::treelstm::source` for
    // the surface syntax) at hidden size 64, 5 sentiment classes.
    let spec = treelstm::spec_with(64, 5);

    // A synthetic treebank: random binary parses with SST-like sentence
    // lengths.
    let batch = 32;
    let instances = (spec.make_instances)(0x5EED, batch);
    let sizes: Vec<usize> = instances.iter().map(|inst| data::tree_leaves(&inst[0])).collect();
    println!(
        "treebank: {batch} trees, {} leaves total (min {}, max {})",
        sizes.iter().sum::<usize>(),
        sizes.iter().min().unwrap(),
        sizes.iter().max().unwrap()
    );

    let model = compile(&spec.source, &CompileOptions::default())?;
    let result = model.run(&spec.params, &instances)?;

    // Per-tree sentiment prediction = argmax over the root classifier.
    for (i, out) in result.outputs.iter().take(5).enumerate() {
        let OutputValue::Tensor(logits) = out else { panic!("tensor output") };
        let pred = logits
            .data()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(k, _)| k)
            .unwrap();
        println!("tree {i:2} ({:2} leaves): class {pred}", sizes[i]);
    }

    println!(
        "\nACROBAT: {} launches for {} operators, {:.2} ms modeled",
        result.stats.kernel_launches,
        result.stats.nodes,
        result.stats.total_ms()
    );

    // Compare with eager per-operator execution (PyTorch-style).
    let eager = pytorch::run(&spec.source, &spec.params, &instances)?;
    println!(
        "eager:   {} launches, {:.2} ms modeled  →  {:.1}x speedup from auto-batching",
        eager.stats.kernel_launches,
        eager.stats.total_ms(),
        eager.stats.total_ms() / result.stats.total_ms()
    );
    Ok(())
}
