//! Writing your own model: a gated recursive DAG encoder that exists in no
//! framework's model zoo — and inspecting what the compiler did with it.
//!
//! Shows the surface language (ADTs, recursion, `parallel`, overloaded
//! tensor arithmetic), the analysis artifacts (argument classes, fusion
//! groups, hoisted operators) and the Fig. 5-style ablation knobs.
//!
//! ```sh
//! cargo run --release -p acrobat-bench --example custom_model
//! ```

use std::collections::BTreeMap;

use acrobat_core::{compile, ArgClass, CompileOptions, InputValue, OptLevel, Tensor};

const SOURCE: &str = r#"
    type Tree[a] { Leaf(a), Node(Tree[a], Tree[a]) }

    def @enc(%t: Tree[Tensor[(1, 24)]],
             $wleaf: Tensor[(24, 24)], $wg: Tensor[(48, 24)], $wu: Tensor[(48, 24)],
             $bg: Tensor[(1, 24)]) -> Tensor[(1, 24)] {
        match %t {
            Leaf(%e) => tanh(matmul(%e, $wleaf)),
            Node(%l, %r) => {
                let (%a, %b) = parallel(
                    @enc(%l, $wleaf, $wg, $wu, $bg),
                    @enc(%r, $wleaf, $wg, $wu, $bg));
                let %x = concat[axis=1](%a, %b);
                let %g = sigmoid(add(matmul(%x, $wg), $bg));
                let %u = tanh(matmul(%x, $wu));
                add(mul(%g, %u), mul(sub(ones[shape=(1, 24)](), %g), %a))
            }
        }
    }

    def @main($wleaf: Tensor[(24, 24)], $wg: Tensor[(48, 24)], $wu: Tensor[(48, 24)],
              $bg: Tensor[(1, 24)], %t: Tree[Tensor[(1, 24)]]) -> Tensor[(1, 24)] {
        @enc(%t, $wleaf, $wg, $wu, $bg)
    }
"#;

fn tree(depth: usize, seed: &mut u64) -> InputValue {
    let next = |s: &mut u64| {
        *s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
        (*s >> 33) as f32 / (1u64 << 31) as f32 - 0.5
    };
    if depth == 0 {
        InputValue::Adt {
            ctor: "Leaf".into(),
            fields: vec![InputValue::Tensor(Tensor::from_fn(&[1, 24], |_| next(seed)))],
        }
    } else {
        InputValue::Adt {
            ctor: "Node".into(),
            fields: vec![tree(depth - 1, seed), tree(depth - 1, seed)],
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = compile(SOURCE, &CompileOptions::default())?;

    // What did the static analysis conclude?
    let analysis = model.analysis();
    let shared =
        analysis.arg_classes.values().flatten().filter(|c| **c == ArgClass::Shared).count();
    let batched = analysis.arg_classes.values().flatten().count() - shared;
    println!("taint analysis: {shared} shared (weight) operands, {batched} batched operands");
    println!(
        "hoisted out of the recursion: {} operator(s) (the leaf transform)",
        analysis.hoisted.len()
    );
    let groups: usize = analysis.blocks.blocks.iter().map(|b| b.groups.len()).sum();
    println!(
        "fusion: {} operators → {} kernel groups → {} distinct kernels",
        analysis.blocks.site_count(),
        groups,
        model.kernel_count()
    );

    // Run a batch of random trees.
    let params = BTreeMap::from([
        ("wleaf".to_string(), Tensor::from_fn(&[24, 24], |i| ((i % 9) as f32 - 4.0) * 0.05)),
        ("wg".to_string(), Tensor::from_fn(&[48, 24], |i| ((i % 7) as f32 - 3.0) * 0.04)),
        ("wu".to_string(), Tensor::from_fn(&[48, 24], |i| ((i % 5) as f32 - 2.0) * 0.05)),
        ("bg".to_string(), Tensor::zeros(&[1, 24])),
    ]);
    let mut seed = 42;
    let instances: Vec<Vec<InputValue>> =
        (0..12).map(|i| vec![tree(2 + i % 3, &mut seed)]).collect();

    // Ablation: run the same batch at each optimization level.
    println!("\nablation (same inputs, identical outputs at every level):");
    let mut reference: Option<Vec<Tensor>> = None;
    for level in OptLevel::ALL {
        let m = compile(SOURCE, &CompileOptions::at_level(level))?;
        let r = m.run(&params, &instances)?;
        let outs: Vec<Tensor> = r.outputs.iter().map(|o| o.tensors()[0].clone()).collect();
        if let Some(referen) = &reference {
            for (a, b) in referen.iter().zip(&outs) {
                assert!(a.allclose(b, 1e-5), "optimizations changed results!");
            }
        } else {
            reference = Some(outs);
        }
        println!(
            "  {:>16}: {:>3} launches, {:>6.2} ms modeled",
            level.label(),
            r.stats.kernel_launches,
            r.stats.total_ms()
        );
    }
    Ok(())
}
