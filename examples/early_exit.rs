//! Early-exit transformer inference (Berxit-style) — tensor-dependent
//! control flow on fibers.
//!
//! Each instance decides after every encoder layer whether to exit.  The
//! decision needs the layer's output tensor, so every instance suspends at
//! that point; when no instance can progress, ACROBAT flushes the shared
//! dataflow graph once — executing the pending layer of *all* live
//! instances as batched kernels — and resumes everyone (§4.2 of the paper).
//!
//! ```sh
//! cargo run --release -p acrobat-bench --example early_exit
//! ```

use acrobat_core::{compile, CompileOptions};
use acrobat_models::berxit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A scaled-down encoder: hidden 48, FFN 192, sequence 16, 8 layers.
    let spec = berxit::spec_with(48, 192, 16, 8);
    let batch = 16;
    let instances = (spec.make_instances)(0xE417, batch);

    let model = compile(&spec.source, &CompileOptions::default())?;
    println!("compiled {} batched kernels (attention + FFN fused groups)", model.kernel_count());

    let result = model.run(&spec.params, &instances)?;

    println!(
        "\n{batch} instances, early-exit probability {:.0}% per layer:",
        berxit::EXIT_P * 100.0
    );
    println!("  DFG flushes (sync rounds): {}", result.stats.flushes);
    println!("  fiber suspensions:         {}", result.stats.fiber_switches);
    println!("  kernel launches:           {}", result.stats.kernel_launches);
    println!("  modeled latency:           {:.2} ms", result.stats.total_ms());
    println!(
        "\nEach flush executed one encoder layer for every still-running \
         instance as a single set of batched kernels — instances that exited \
         early simply stopped contributing lanes."
    );

    // Determinism: the seeded pseudo-random exit decisions reproduce.
    let again = model.run(&spec.params, &instances)?;
    assert_eq!(result.stats.nodes, again.stats.nodes);
    println!("re-run reproduces identical control flow ({} nodes).", again.stats.nodes);
    Ok(())
}
