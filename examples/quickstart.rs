//! Quickstart: compile a small dynamic RNN, run a mini-batch, inspect the
//! auto-batching statistics.
//!
//! ```sh
//! cargo run --release -p acrobat-bench --example quickstart
//! ```

use std::collections::BTreeMap;

use acrobat_core::{compile, CompileOptions, InputValue, Tensor};

// A sequence model with dynamic control flow: the recursion length depends
// on each instance's input list. `$`-parameters are model weights (shared
// across the batch); `%`-parameters are per-instance inputs.
const SOURCE: &str = r#"
    def @rnn(%xs: List[Tensor[(1, 32)]], %h: Tensor[(1, 32)],
             $w: Tensor[(64, 32)], $b: Tensor[(1, 32)]) -> Tensor[(1, 32)] {
        match %xs {
            Nil => %h,
            Cons(%x, %rest) => {
                let %nh = tanh(add(matmul(concat[axis=1](%h, %x), $w), $b));
                @rnn(%rest, %nh, $w, $b)
            }
        }
    }

    def @main($w: Tensor[(64, 32)], $b: Tensor[(1, 32)], $h0: Tensor[(1, 32)],
              $wc: Tensor[(32, 4)],
              %xs: List[Tensor[(1, 32)]]) -> Tensor[(1, 4)] {
        let %h = @rnn(%xs, $h0, $w, $b);
        relu(matmul(%h, $wc))
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Compile: parsing, type/shape checking, taint analysis, fusion,
    //    batched-kernel generation and auto-scheduling all happen here.
    let model = compile(SOURCE, &CompileOptions::default())?;
    println!("compiled {} batched kernels", model.kernel_count());

    // 2. Bind the model parameters once.
    let params = BTreeMap::from([
        ("w".to_string(), Tensor::from_fn(&[64, 32], |i| ((i % 13) as f32 - 6.0) * 0.02)),
        ("b".to_string(), Tensor::zeros(&[1, 32])),
        ("h0".to_string(), Tensor::zeros(&[1, 32])),
        ("wc".to_string(), Tensor::from_fn(&[32, 4], |i| (i as f32 - 64.0) * 0.01)),
    ]);

    // 3. Build a mini-batch of *different-length* sequences — the dynamic
    //    control flow auto-batching exists for.
    let batch: Vec<Vec<InputValue>> = (0..16)
        .map(|i| {
            let len = 3 + (i * 7) % 12;
            vec![InputValue::list(
                (0..len)
                    .map(|t| {
                        InputValue::Tensor(Tensor::from_fn(&[1, 32], |k| {
                            ((i * 31 + t * 7 + k) % 17) as f32 * 0.05 - 0.4
                        }))
                    })
                    .collect(),
            )]
        })
        .collect();

    // 4. Run. All sixteen instances execute as one lazily-built dataflow
    //    graph; compatible operators across instances (and across hoisted
    //    recursion steps) launch as single batched kernels.
    let result = model.run(&params, &batch)?;

    println!("outputs: {} instances", result.outputs.len());
    println!("dataflow nodes:   {}", result.stats.nodes);
    println!(
        "kernel launches:  {} (vs {} operators unbatched)",
        result.stats.kernel_launches, result.stats.nodes
    );
    println!("modeled latency:  {:.3} ms", result.stats.total_ms());
    println!(
        "breakdown: dfg {:.0}µs | sched {:.0}µs | memcpy {:.0}µs | kernels {:.0}µs | api {:.0}µs",
        result.stats.dfg_construction_us,
        result.stats.scheduling_us,
        result.stats.memcpy_us,
        result.stats.kernel_time_us,
        result.stats.cuda_api_us,
    );
    Ok(())
}
