//! Cross-request continuous batching: cohort-vs-solo bit-identity and
//! fault isolation (`acrobat_vm::broker`).
//!
//! The broker's contract is that co-batching requests is *invisible* except
//! in the statistics: every cohort member's outputs are bit-for-bit the
//! outputs of its solo run, even when a co-batched peer is cancelled,
//! misses its deadline, or fault-storms — the failing member is peeled out
//! through the quarantine + solo-rerun path and observes its genuine
//! outcome, while every surviving peer's outputs stay identical to a run
//! that never shared anything.  The ledger balances throughout: each
//! request lands in exactly one outcome bucket, and completed runs are the
//! only ones contributing statistics.

use std::collections::BTreeMap;

use acrobat_bench::suite;
use acrobat_core::{compile, CompileOptions, FaultPlan, Model, RunOptions, Tensor, VmError};
use acrobat_models::{ModelSize, ModelSpec};
use acrobat_runtime::CancelToken;
use acrobat_tensor::{FaultKind, FaultSite, TensorError};
use acrobat_vm::{CohortRequest, InputValue, OutputValue};

fn build(spec: &ModelSpec, options: &CompileOptions) -> Model {
    compile(&spec.source, options).unwrap_or_else(|e| panic!("{} compiles: {e}", spec.name))
}

/// Bit-for-bit tensor equality (no tolerance).
fn assert_outputs_equal(
    spec: &ModelSpec,
    reference: &[OutputValue],
    got: &[OutputValue],
    label: &str,
) {
    assert_eq!(reference.len(), got.len(), "{}: {label}: instance count", spec.name);
    for (i, (r, g)) in reference.iter().zip(got).enumerate() {
        let (rt, gt) = ((spec.flatten_output)(r), (spec.flatten_output)(g));
        assert_eq!(rt.len(), gt.len(), "{}: {label}: instance {i} tensor count", spec.name);
        for (j, (a, b)) in rt.iter().zip(&gt).enumerate() {
            assert_eq!(
                a.data(),
                b.data(),
                "{}: {label}: instance {i} tensor {j} diverged",
                spec.name
            );
        }
    }
}

/// Distinct per-member mini-batches (different instance seeds, so member
/// outputs are distinguishable and any demux slip is caught).
fn member_batches(
    spec: &ModelSpec,
    members: usize,
    per_member: usize,
) -> Vec<Vec<Vec<InputValue>>> {
    (0..members).map(|m| (spec.make_instances)(0xB0B0 + m as u64, per_member)).collect()
}

fn solo_references(
    model: &Model,
    params: &BTreeMap<String, Tensor>,
    members: &[Vec<Vec<InputValue>>],
) -> Vec<Vec<OutputValue>> {
    members.iter().map(|inst| model.run(params, inst).expect("solo reference").outputs).collect()
}

/// Every quick-suite model: a 3-member cohort's per-member outputs equal
/// the members' solo runs bit for bit, and (since all members share one
/// context) at least one flush plan actually co-batched nodes across
/// requests.
#[test]
fn cohort_outputs_match_solo_across_suite() {
    for spec in suite(ModelSize::Small, true) {
        let model = build(&spec, &CompileOptions::default());
        let members = member_batches(&spec, 3, 2);
        let solo = solo_references(&model, &spec.params, &members);

        let cohort_model = build(&spec, &CompileOptions::default());
        let requests: Vec<CohortRequest<'_>> = members
            .iter()
            .map(|inst| CohortRequest {
                params: &spec.params,
                instances: inst,
                opts: RunOptions::default(),
            })
            .collect();
        let results = cohort_model.run_cohort(&requests);
        assert_eq!(results.len(), 3, "{}: one result per member", spec.name);
        let mut shared = 0;
        for (m, result) in results.into_iter().enumerate() {
            let result = result.unwrap_or_else(|e| panic!("{}: member {m} failed: {e}", spec.name));
            assert_outputs_equal(&spec, &solo[m], &result.outputs, "cohort member");
            shared += result.stats.shared_flushes;
        }
        assert!(shared > 0, "{}: cohort never co-batched across requests", spec.name);
        let agg = cohort_model.stats();
        assert!(
            agg.shared_flushes > 0,
            "{}: aggregate lost the shared-flush classification",
            spec.name
        );
        assert_eq!(cohort_model.runs_completed(), 3, "{}: one ledger run per member", spec.name);
        assert_eq!(cohort_model.outcomes().completed, 3, "{}: outcome per member", spec.name);
    }
}

/// Checked mode (every flush validated against the scheduler/DFG
/// invariants and the reference schedulers) on a tensor-dependent model:
/// the merged multi-request plans pass the full invariant suite and still
/// demux to bit-identical member outputs.
#[test]
fn cohort_matches_solo_under_checked_mode() {
    let spec = suite(ModelSize::Small, true)
        .into_iter()
        .find(|s| s.properties.tensor_dependent)
        .expect("a tensor-dependent quick model");
    let options = CompileOptions::default().with_checked(true);
    let model = build(&spec, &options);
    let members = member_batches(&spec, 2, 2);
    let solo = solo_references(&model, &spec.params, &members);

    let cohort_model = build(&spec, &options);
    let requests: Vec<CohortRequest<'_>> = members
        .iter()
        .map(|inst| CohortRequest {
            params: &spec.params,
            instances: inst,
            opts: RunOptions::default(),
        })
        .collect();
    for (m, result) in cohort_model.run_cohort(&requests).into_iter().enumerate() {
        let result = result.unwrap_or_else(|e| panic!("checked member {m} failed: {e}"));
        assert_outputs_equal(&spec, &solo[m], &result.outputs, "checked cohort member");
    }
}

/// Chaos rounds on a fiber model: one co-batched member is pre-cancelled /
/// deadline-expired / fault-stormed; the disrupted member observes its
/// genuine error and every surviving peer's outputs are bit-for-bit its
/// solo run.  The ledger balances: every request lands in exactly one
/// outcome bucket, and each cohort abort quarantines the shared context.
#[test]
fn chaos_member_never_poisons_peers() {
    let spec = suite(ModelSize::Small, true)
        .into_iter()
        .find(|s| s.properties.tensor_dependent)
        .expect("a tensor-dependent quick model");
    let reference_model = build(&spec, &CompileOptions::default());
    let members = member_batches(&spec, 3, 2);
    let solo = solo_references(&reference_model, &spec.params, &members);

    let model = build(&spec, &CompileOptions::default());
    let mut submitted = 0u64;
    let mut expect_completed = 0u64;

    // Round 1: pre-cancelled member.  Peeled out of the cohort before it
    // can abort anything; peers still merge with each other.
    {
        let token = CancelToken::new();
        token.cancel();
        let mut requests: Vec<CohortRequest<'_>> = members
            .iter()
            .map(|inst| CohortRequest {
                params: &spec.params,
                instances: inst,
                opts: RunOptions::default(),
            })
            .collect();
        requests[1].opts.cancel = Some(token);
        let mut results = model.run_cohort(&requests);
        submitted += 3;
        expect_completed += 2;
        let disrupted = results.remove(1);
        assert!(
            matches!(disrupted, Err(VmError::Cancelled)),
            "pre-cancelled member must cancel, got {disrupted:?}"
        );
        for (m, result) in [0usize, 2].into_iter().zip(results) {
            let result = result.unwrap_or_else(|e| panic!("cancel round peer {m} failed: {e}"));
            assert_outputs_equal(&spec, &solo[m], &result.outputs, "cancel-round survivor");
        }
    }

    // Round 2: zero deadline on one member.  The strictest member budget
    // gates the cohort, so the merged run aborts and every member re-runs
    // solo: the deadline member misses deterministically, the peers
    // complete bit-identically.
    {
        let mut requests: Vec<CohortRequest<'_>> = members
            .iter()
            .map(|inst| CohortRequest {
                params: &spec.params,
                instances: inst,
                opts: RunOptions::default(),
            })
            .collect();
        requests[1].opts.deadline_us = Some(0.0);
        let mut results = model.run_cohort(&requests);
        submitted += 3;
        expect_completed += 2;
        let disrupted = results.remove(1);
        assert!(
            matches!(disrupted, Err(VmError::DeadlineExceeded { .. })),
            "zero-deadline member must miss, got {disrupted:?}"
        );
        for (m, result) in [0usize, 2].into_iter().zip(results) {
            let result = result.unwrap_or_else(|e| panic!("deadline round peer {m} failed: {e}"));
            assert_outputs_equal(&spec, &solo[m], &result.outputs, "deadline-round survivor");
        }
    }

    // Round 3: deterministic kernel fault on one member (first launch).
    // The fault fires inside the merged run, aborts the whole cohort, and
    // reproduces in the member's solo re-run; peers re-run clean.
    {
        let mut requests: Vec<CohortRequest<'_>> = members
            .iter()
            .map(|inst| CohortRequest {
                params: &spec.params,
                instances: inst,
                opts: RunOptions::default(),
            })
            .collect();
        requests[1].opts.fault = Some(FaultPlan::nth(FaultSite::Launch, 0, FaultKind::Kernel));
        let mut results = model.run_cohort(&requests);
        submitted += 3;
        expect_completed += 2;
        let disrupted = results.remove(1);
        assert!(
            matches!(disrupted, Err(VmError::Tensor(TensorError::Injected { .. }))),
            "faulted member must surface its injected fault, got {disrupted:?}"
        );
        for (m, result) in [0usize, 2].into_iter().zip(results) {
            let result = result.unwrap_or_else(|e| panic!("fault round peer {m} failed: {e}"));
            assert_outputs_equal(&spec, &solo[m], &result.outputs, "fault-round survivor");
        }
    }

    // Ledger balance: every submitted request in exactly one bucket, only
    // completions merged, and the deadline + fault cohort aborts (plus the
    // disrupted solo re-runs) quarantined their contexts.
    let outcomes = model.outcomes();
    assert_eq!(outcomes.total(), submitted, "every request lands in one outcome bucket");
    assert_eq!(outcomes.completed, expect_completed, "survivor completions");
    assert_eq!(outcomes.cancelled, 1, "one cancellation");
    assert_eq!(outcomes.deadline_exceeded, 1, "one deadline miss");
    assert_eq!(outcomes.failed, 1, "one injected fault");
    assert_eq!(model.runs_completed(), expect_completed, "stats merged once per completion");
    assert!(
        model.quarantined_count() >= 2,
        "cohort aborts must quarantine the shared context, saw {}",
        model.quarantined_count()
    );
}

/// The specialized kernel backend under cross-request batching: a 3-member
/// cohort running with `backend = spec` (threshold 1, so every launch runs
/// compiled) demuxes to outputs bit-identical to interpreter-backend solo
/// runs.  Cohort lane layouts differ from solo layouts, so this crosses
/// the backend-identity contract with the co-batching-invisibility
/// contract in one shot.
#[test]
fn cohort_spec_backend_matches_interp_solo() {
    let spec = suite(ModelSize::Small, true)
        .into_iter()
        .find(|s| s.properties.tensor_dependent)
        .expect("a tensor-dependent quick model");
    let reference_model = build(&spec, &CompileOptions::default());
    let members = member_batches(&spec, 3, 2);
    let solo = solo_references(&reference_model, &spec.params, &members);

    let cohort_model = build(
        &spec,
        &CompileOptions::default()
            .with_kernel_backend(acrobat_codegen::KernelBackendKind::Spec)
            .with_spec_threshold(1),
    );
    let requests: Vec<CohortRequest<'_>> = members
        .iter()
        .map(|inst| CohortRequest {
            params: &spec.params,
            instances: inst,
            opts: RunOptions::default(),
        })
        .collect();
    for (m, result) in cohort_model.run_cohort(&requests).into_iter().enumerate() {
        let result = result.unwrap_or_else(|e| panic!("spec cohort member {m} failed: {e}"));
        assert_outputs_equal(&spec, &solo[m], &result.outputs, "spec cohort member");
    }
    let agg = cohort_model.stats();
    assert!(agg.shared_flushes > 0, "cohort co-batched across requests");
    assert!(agg.backend_compiles + agg.backend_hits > 0, "cohort ran compiled kernels");
    assert_eq!(agg.backend_interp_falls, 0, "threshold 1 never falls back");
}

/// The background broker queue (`RuntimeOptions::broker`): concurrent
/// `run` calls routed through `BatchBroker::submit` return bit-identical
/// outputs to a broker-off model, and every request passes through exactly
/// one dispatch.
#[test]
fn broker_queue_preserves_outputs() {
    let spec = suite(ModelSize::Small, true)
        .into_iter()
        .find(|s| s.properties.tensor_dependent)
        .expect("a tensor-dependent quick model");
    let reference_model = build(&spec, &CompileOptions::default());
    let members = member_batches(&spec, 4, 2);
    let solo = solo_references(&reference_model, &spec.params, &members);

    let model = build(&spec, &CompileOptions::default().with_broker(true));
    let outputs: Vec<Vec<OutputValue>> = std::thread::scope(|scope| {
        let handles: Vec<_> = members
            .iter()
            .map(|inst| {
                let model = &model;
                let params = &spec.params;
                scope.spawn(move || model.run(params, inst).expect("broker run").outputs)
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("broker thread")).collect()
    });
    for (m, got) in outputs.iter().enumerate() {
        assert_outputs_equal(&spec, &solo[m], got, "broker queue member");
    }
    let stats = model.broker_stats().expect("broker enabled");
    assert!(stats.dispatches >= 1, "at least one dispatch");
    let dispatched: u64 = stats.cohort_sizes.iter().map(|(size, n)| *size as u64 * n).sum();
    assert_eq!(dispatched, 4, "every request passed through exactly one dispatch");
    assert_eq!(model.outcomes().completed, 4, "ledger counts each request once");
    assert_eq!(model.runs_completed(), 4, "one merged run per request");
}
