//! Differential fuzzing (bounded corpus, fixed seeds) — the CI-sized twin
//! of the `fuzz` binary in `acrobat-bench`.
//!
//! Every generated program/workload must agree **bit-for-bit** across:
//! the host reference evaluator, all three schedulers × gather-fusion ×
//! coarsening × plan-cache {off, on} × broker {off, on} × kernel backend
//! {interp, spec} (checked mode — every cache hit is gated by the cached
//! ≡ freshly-scheduled invariant, broker-on routes through
//! `BatchBroker::submit` + the cohort path, and spec-backend launches are
//! each re-executed through the interpreter and bit-compared),
//! unbatched eager execution, a two-member `run_cohort` split of the
//! instance stream, and the DyNet-sim baseline.  The `fuzz` binary runs
//! the same generators at larger scale (`--cases 500` by default).

use acrobat_bench::fuzz::{config_matrix, dag_outputs, FuzzCase};
use acrobat_codegen::KernelBackendKind;
use acrobat_runtime::{RuntimeOptions, SchedulerKind};
use acrobat_tensor::Tensor;

fn bits(ts: &[Tensor]) -> Vec<Vec<u32>> {
    ts.iter().map(|t| t.data().iter().map(|v| v.to_bits()).collect()).collect()
}

#[test]
fn random_ir_programs_agree_bit_for_bit() {
    let configs = config_matrix();
    for case_seed in 0..100u64 {
        let case = FuzzCase::generate(case_seed);
        let want = bits(&case.host_reference());
        for (name, options) in &configs {
            let got = case
                .run_acrobat(options)
                .unwrap_or_else(|e| panic!("seed {case_seed} {name}: {e}\n{}", case.source));
            assert_eq!(
                bits(&got),
                want,
                "seed {case_seed} config {name} diverged from host reference\n{}",
                case.source
            );
        }
        // Cross-request continuous batching: the same instance stream split
        // across two co-batched requests must demux to the identical bits.
        let cohort = case
            .run_acrobat_cohort(&acrobat_core::CompileOptions::default().with_checked(true))
            .unwrap_or_else(|e| panic!("seed {case_seed} cohort: {e}\n{}", case.source));
        assert_eq!(
            bits(&cohort),
            want,
            "seed {case_seed} two-member cohort diverged from host reference\n{}",
            case.source
        );
        let dynet = case
            .run_dynet()
            .unwrap_or_else(|e| panic!("seed {case_seed} dynet-sim: {e}\n{}", case.source));
        assert_eq!(
            bits(&dynet),
            want,
            "seed {case_seed} dynet-sim diverged from host reference\n{}",
            case.source
        );
    }
}

#[test]
fn random_dag_workloads_agree_bit_for_bit() {
    for case_seed in 0..50u64 {
        let reference = dag_outputs(
            case_seed,
            &RuntimeOptions { eager: true, checked: true, ..RuntimeOptions::default() },
        )
        .expect("eager reference");
        let want = bits(&reference);
        for scheduler in
            [SchedulerKind::InlineDepth, SchedulerKind::DynamicDepth, SchedulerKind::Agenda]
        {
            for gather_fusion in [false, true] {
                for parallel_workers in [0, 3] {
                    for plan_cache in [false, true] {
                        for backend in [KernelBackendKind::Interp, KernelBackendKind::Spec] {
                            let options = RuntimeOptions {
                                scheduler,
                                gather_fusion,
                                checked: true,
                                parallel_workers,
                                plan_cache,
                                backend,
                                // The generated DAGs run on a fresh engine,
                                // so compile from the first launch.
                                spec_threshold: 1,
                                ..RuntimeOptions::default()
                            };
                            let got = dag_outputs(case_seed, &options)
                                .unwrap_or_else(|e| panic!("seed {case_seed} {scheduler:?}: {e}"));
                            assert_eq!(
                                bits(&got),
                                want,
                                "seed {case_seed} {scheduler:?}/gf={gather_fusion}\
                                 /par={parallel_workers}/pc={plan_cache}/be={backend:?} \
                                 diverged from eager"
                            );
                        }
                    }
                }
            }
        }
    }
}
