//! Property test for the session ledger under interleaved outcomes
//! (satellite of the resilient-serving PR).
//!
//! Random sequences of request kinds — clean, transient-fault-then-retry,
//! fatal fault, pre-cancelled, zero deadline — run against one model.  The
//! invariant: the session aggregate equals the *sum of per-run statistics
//! over completed runs only*.  Retried flushes must not double-count
//! (their stats merge once, from the run's own counters), and failed or
//! cancelled runs must leak nothing into the aggregate while still being
//! tallied in the outcome ledger and quarantining their context.

use acrobat_bench::suite;
use acrobat_core::{
    compile, CompileOptions, FaultPlan, Model, RetryPolicy, RunOptions, RuntimeStats,
};
use acrobat_models::{ModelSize, ModelSpec};
use acrobat_runtime::CancelToken;
use proptest::prelude::*;

fn build_retrying(spec: &ModelSpec) -> Model {
    let mut options = CompileOptions::default();
    options.runtime.retry = RetryPolicy { max_retries: 3, backoff_base_us: 10.0 };
    compile(&spec.source, &options).unwrap_or_else(|e| panic!("{} compiles: {e}", spec.name))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn aggregate_equals_sum_of_completed_runs(
        kinds in proptest::collection::vec(0usize..6, 1..10),
    ) {
        let spec = suite(ModelSize::Small, true).remove(0);
        let model = build_retrying(&spec);
        let instances = (spec.make_instances)(0xA66E, 2);

        let mut completed: Vec<RuntimeStats> = Vec::new();
        let (mut failed, mut cancelled, mut deadline) = (0u64, 0u64, 0u64);
        for &kind in &kinds {
            let mut opts = RunOptions::default();
            match kind {
                // Transient kernel fault on a later launch: retry rescues
                // the run, charging `retries`/`retry_backoff_us` once.
                2 => opts.fault = Some(FaultPlan::parse("launch:2:kernel").unwrap()),
                // Fatal device OOM: retry must NOT mask it.
                3 => opts.fault = Some(FaultPlan::parse("launch:0:oom").unwrap()),
                4 => {
                    let token = CancelToken::new();
                    token.cancel();
                    opts.cancel = Some(token);
                }
                5 => opts.deadline_us = Some(0.0),
                _ => {}
            }
            match model.run_with(&spec.params, &instances, &opts) {
                Ok(r) => {
                    prop_assert!(
                        kind < 3,
                        "kind {} must not complete", kind
                    );
                    if kind == 2 {
                        prop_assert!(r.stats.retries >= 1, "transient fault was retried");
                    }
                    completed.push(r.stats);
                }
                Err(e) => {
                    match kind {
                        3 => { prop_assert!(e.as_vm().is_some(), "oom is execution error"); failed += 1; }
                        4 => { prop_assert!(e.is_cancelled(), "wrong error: {}", e); cancelled += 1; }
                        5 => { prop_assert!(e.is_deadline_exceeded(), "wrong error: {}", e); deadline += 1; }
                        _ => return Err(format!("kind {kind} failed unexpectedly: {e}")),
                    }
                }
            }
        }

        // Outcome ledger: every request in exactly one bucket.
        let outcomes = model.outcomes();
        prop_assert_eq!(outcomes.total(), kinds.len() as u64);
        prop_assert_eq!(outcomes.completed, completed.len() as u64);
        prop_assert_eq!(outcomes.failed, failed);
        prop_assert_eq!(outcomes.cancelled, cancelled);
        prop_assert_eq!(outcomes.deadline_exceeded, deadline);
        prop_assert_eq!(model.runs_completed(), completed.len() as u64);
        // A context that observed a fault is quarantined even when retry
        // rescued its run; clean completions recycle theirs.
        let rescued = completed.iter().filter(|s| s.aborted_flushes > 0).count() as u64;
        prop_assert_eq!(model.quarantined_count(), failed + cancelled + deadline + rescued);

        // Aggregate equals the sum over completed runs only.
        let agg = model.stats();
        macro_rules! sum_check {
            ($field:ident) => {
                prop_assert_eq!(
                    agg.$field,
                    completed.iter().map(|s| s.$field).sum::<u64>(),
                    "aggregate {} diverged from per-run sum", stringify!($field)
                );
            };
        }
        sum_check!(nodes);
        sum_check!(kernel_launches);
        sum_check!(gather_copies);
        sum_check!(gather_bytes);
        sum_check!(memcpy_ops);
        sum_check!(memcpy_bytes);
        sum_check!(flops);
        sum_check!(flushes);
        sum_check!(aborted_flushes);
        sum_check!(retries);
        sum_check!(downshifts);
        let backoff: f64 = completed.iter().map(|s| s.retry_backoff_us).sum();
        prop_assert!(
            (agg.retry_backoff_us - backoff).abs() < 1e-9,
            "aggregate retry backoff {} vs per-run sum {}", agg.retry_backoff_us, backoff
        );
    }
}
