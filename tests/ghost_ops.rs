//! End-to-end reproduction of the paper's Fig. 4 scenario: a conditional
//! where only some instances execute `opA` before the common `opB`.
//! Without ghost operators, eager depth batching splits `opB` into two
//! launches; with ghost operators the short branch is padded and all
//! instances' `opB` execute as one batch.

use std::collections::BTreeMap;

use acrobat_core::{compile, CompileOptions, InputValue, Tensor};

const SOURCE: &str = r#"
    def @main($wa: Tensor[(8, 8)], $wb: Tensor[(8, 8)], %x: Tensor[(1, 8)], %c: Bool)
        -> Tensor[(1, 8)] {
        let %t1 = if %c { tanh(matmul(%x, $wa)) } else { %x };
        sigmoid(matmul(%t1, $wb))
    }
"#;

fn run(ghosts: bool, batch: usize) -> acrobat_core::RuntimeStats {
    let mut options = CompileOptions::default();
    options.analysis.ghost_ops = ghosts;
    let model = compile(SOURCE, &options).unwrap();
    let params = BTreeMap::from([
        ("wa".to_string(), Tensor::from_fn(&[8, 8], |i| ((i % 5) as f32 - 2.0) * 0.1)),
        ("wb".to_string(), Tensor::from_fn(&[8, 8], |i| ((i % 7) as f32 - 3.0) * 0.1)),
    ]);
    // Half the instances take the opA path.
    let instances: Vec<Vec<InputValue>> = (0..batch)
        .map(|i| {
            vec![
                InputValue::Tensor(Tensor::fill(&[1, 8], i as f32 * 0.1)),
                InputValue::Bool(i % 2 == 0),
            ]
        })
        .collect();
    model.run(&params, &instances).unwrap().stats
}

#[test]
fn ghost_operators_merge_the_opb_batch() {
    let batch = 8;
    let with = run(true, batch);
    let without = run(false, batch);
    // Fig. 4: without ghosts, opB executes in two batches (depth 0 for the
    // short-branch instances, depth 1 for the long-branch ones) — 3 total
    // launches; with ghosts, opA then one merged opB — 2 launches.
    assert_eq!(with.kernel_launches, 2, "ghosts: opA batch + one opB batch");
    assert_eq!(without.kernel_launches, 3, "no ghosts: opB splits");
}

#[test]
fn ghost_operators_do_not_change_results() {
    let batch = 6;
    let params = BTreeMap::from([
        ("wa".to_string(), Tensor::from_fn(&[8, 8], |i| ((i % 5) as f32 - 2.0) * 0.1)),
        ("wb".to_string(), Tensor::from_fn(&[8, 8], |i| ((i % 7) as f32 - 3.0) * 0.1)),
    ]);
    let instances: Vec<Vec<InputValue>> = (0..batch)
        .map(|i| {
            vec![
                InputValue::Tensor(Tensor::fill(&[1, 8], i as f32 * 0.1 - 0.2)),
                InputValue::Bool(i % 3 == 0),
            ]
        })
        .collect();
    let mut outs = Vec::new();
    for ghosts in [true, false] {
        let mut options = CompileOptions::default();
        options.analysis.ghost_ops = ghosts;
        let model = compile(SOURCE, &options).unwrap();
        let r = model.run(&params, &instances).unwrap();
        outs.push(r.outputs.iter().map(|o| o.tensors()[0].clone()).collect::<Vec<_>>());
    }
    for (a, b) in outs[0].iter().zip(&outs[1]) {
        assert!(a.allclose(b, 1e-6));
    }
}
