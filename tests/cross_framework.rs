//! Workspace integration tests: every evaluation model produces identical
//! numerical results under ACROBAT (all optimizations, AOT backend, fibers
//! where applicable) and under the DyNet-style baseline, using identical
//! instances and identical seeded pseudo-random streams — the property the
//! paper's §E.1 methodology depends on.

use acrobat_bench::suite;
use acrobat_models::testkit::check_acrobat_vs_dynet;
use acrobat_models::ModelSize;

#[test]
fn treelstm_agrees() {
    check_acrobat_vs_dynet(&suite(ModelSize::Small, true).remove(0), 6, 0xA1);
}

#[test]
fn mvrnn_agrees() {
    check_acrobat_vs_dynet(&suite(ModelSize::Small, true).remove(1), 6, 0xA2);
}

#[test]
fn birnn_agrees() {
    check_acrobat_vs_dynet(&suite(ModelSize::Small, true).remove(2), 6, 0xA3);
}

#[test]
fn nestedrnn_agrees() {
    check_acrobat_vs_dynet(&suite(ModelSize::Small, true).remove(3), 6, 0xA4);
}

#[test]
fn drnn_agrees() {
    check_acrobat_vs_dynet(&suite(ModelSize::Small, true).remove(4), 6, 0xA5);
}

#[test]
fn berxit_agrees() {
    check_acrobat_vs_dynet(&suite(ModelSize::Small, true).remove(5), 4, 0xA6);
}

#[test]
fn stackrnn_agrees() {
    check_acrobat_vs_dynet(&suite(ModelSize::Small, true).remove(6), 4, 0xA7);
}

#[test]
fn vm_backend_agrees_with_aot_on_non_tdc_models() {
    use acrobat_core::{compile, BackendKind, CompileOptions};
    for (idx, batch) in [(0usize, 4usize), (1, 3), (2, 4)] {
        let spec = suite(ModelSize::Small, true).remove(idx);
        let instances = (spec.make_instances)(0xB0, batch);
        let mut opts = CompileOptions { seed: 0xB0, ..Default::default() };
        let aot = compile(&spec.source, &opts).unwrap().run(&spec.params, &instances).unwrap();
        opts.backend = BackendKind::Vm;
        let vm = compile(&spec.source, &opts).unwrap().run(&spec.params, &instances).unwrap();
        for (a, b) in aot.outputs.iter().zip(&vm.outputs) {
            let (ta, tb) = ((spec.flatten_output)(a), (spec.flatten_output)(b));
            for (x, y) in ta.iter().zip(&tb) {
                assert!(x.allclose(y, 1e-5), "{}: VM vs AOT", spec.name);
            }
        }
    }
}
