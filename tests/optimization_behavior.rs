//! Integration tests pinning down the *batching behaviour* each paper
//! optimization produces — not just that results are unchanged, but that
//! the launches land where the paper says they land.

use std::collections::BTreeMap;

use acrobat_core::{compile, CompileOptions, InputValue, Tensor};

const RNN: &str = r#"
    def @rnn(%inps: List[Tensor[(1, 8)]], %state: Tensor[(1, 8)],
             $bias: Tensor[(1, 8)], $i_wt: Tensor[(8, 8)], $h_wt: Tensor[(8, 8)])
        -> List[Tensor[(1, 8)]] {
        match %inps {
            Nil => Nil,
            Cons(%inp, %tail) => {
                let %inp_linear = add($bias, matmul(%inp, $i_wt));
                let %new_state = sigmoid(add(%inp_linear, matmul(%state, $h_wt)));
                Cons(%new_state, @rnn(%tail, %new_state, $bias, $i_wt, $h_wt))
            }
        }
    }
    def @main($bias: Tensor[(1, 8)], $i_wt: Tensor[(8, 8)], $h_wt: Tensor[(8, 8)],
              $init: Tensor[(1, 8)], $c_wt: Tensor[(8, 4)],
              %inps: List[Tensor[(1, 8)]]) -> List[Tensor[(1, 4)]] {
        let %states = @rnn(%inps, $init, $bias, $i_wt, $h_wt);
        map(fn(%p) { relu(matmul(%p, $c_wt)) }, %states)
    }
"#;

fn rnn_setup(lens: &[usize]) -> (BTreeMap<String, Tensor>, Vec<Vec<InputValue>>) {
    let params = BTreeMap::from([
        ("bias".into(), Tensor::from_fn(&[1, 8], |i| 0.01 * i as f32)),
        ("i_wt".into(), Tensor::from_fn(&[8, 8], |i| ((i % 5) as f32 - 2.0) * 0.1)),
        ("h_wt".into(), Tensor::from_fn(&[8, 8], |i| ((i % 7) as f32 - 3.0) * 0.08)),
        ("init".into(), Tensor::zeros(&[1, 8])),
        ("c_wt".into(), Tensor::from_fn(&[8, 4], |i| (i as f32 - 16.0) * 0.02)),
    ]);
    let instances = lens
        .iter()
        .enumerate()
        .map(|(inst, &len)| {
            let items = (0..len)
                .map(|t| {
                    InputValue::Tensor(Tensor::from_fn(&[1, 8], |i| {
                        ((inst * 13 + t * 5 + i) % 11) as f32 * 0.1 - 0.5
                    }))
                })
                .collect();
            vec![InputValue::list(items)]
        })
        .collect();
    (params, instances)
}

/// §B.1: with hoisting, the input linear transform of *every token of every
/// instance* executes as one batched launch (the paper's RNN example).
#[test]
fn hoisting_batches_all_input_transforms_into_one_launch() {
    let (params, instances) = rnn_setup(&[3, 5, 2, 4]);
    let run = |hoisting: bool| {
        let mut o = CompileOptions::default();
        o.analysis.hoisting = hoisting;
        compile(RNN, &o).unwrap().run(&params, &instances).unwrap().stats
    };
    let with = run(true);
    let without = run(false);
    assert!(
        with.kernel_launches < without.kernel_launches,
        "hoisting reduces launches: {} vs {}",
        with.kernel_launches,
        without.kernel_launches
    );
    // The hoisted fused (matmul+add) kernel runs exactly once for all
    // 3+5+2+4 = 14 tokens; without hoisting it runs once per distinct
    // recursion depth (5, the longest sentence).
    assert_eq!(without.kernel_launches - with.kernel_launches, 4);
}

/// §4.1/§B.3: with phases, the per-token output classifiers of
/// different-length sentences execute as one batch.
#[test]
fn phases_merge_output_classifiers() {
    let (params, instances) = rnn_setup(&[2, 6, 3, 5]);
    let run = |phases: bool| {
        let mut o = CompileOptions::default();
        o.analysis.phases = phases;
        compile(RNN, &o).unwrap().run(&params, &instances).unwrap().stats
    };
    let with = run(true);
    let without = run(false);
    assert!(
        with.kernel_launches < without.kernel_launches,
        "phases reduce launches: {} vs {}",
        with.kernel_launches,
        without.kernel_launches
    );
}

/// §4.2: a fiber-mode flush failure (simulated OOM) surfaces as an error on
/// every instance instead of deadlocking the fiber pool.
#[test]
fn fiber_mode_oom_poisons_instead_of_deadlocking() {
    let src = r#"
        def @go(%x: Tensor[(1, 64)], %n: Int, $w: Tensor[(64, 64)]) -> Tensor[(1, 64)] {
            if %n <= 0 { %x } else {
                let %y = tanh(matmul(%x, $w));
                if sample(%y) < 2.0 { @go(%y, %n - 1, $w) } else { %y }
            }
        }
        def @main($w: Tensor[(64, 64)], %x: Tensor[(1, 64)]) -> Tensor[(1, 64)] {
            @go(%x, 50, $w)
        }
    "#;
    let mut o = CompileOptions::default();
    // Enough memory for the weights and a few steps, not for 50 × 8.
    o.runtime.device_memory = 64 * 64 + 64 * 40;
    let model = compile(src, &o).unwrap();
    let params = BTreeMap::from([(
        "w".to_string(),
        Tensor::from_fn(&[64, 64], |i| ((i % 5) as f32 - 2.0) * 0.05),
    )]);
    let instances: Vec<Vec<InputValue>> =
        (0..8).map(|i| vec![InputValue::Tensor(Tensor::fill(&[1, 64], 0.01 * i as f32))]).collect();
    let started = std::time::Instant::now();
    let result = model.run(&params, &instances);
    assert!(result.is_err(), "must fail, not hang");
    assert!(started.elapsed().as_secs() < 30, "no deadlock");
}

/// Gather fusion (§5.2): with it, no gather traffic at all; without it,
/// gathers happen only for genuinely scattered operands, and contiguous
/// batches (outputs of earlier batched launches) skip the copy — the §7.3
/// contiguity observation.
#[test]
fn gather_fusion_and_contiguity_accounting() {
    let (params, instances) = rnn_setup(&[4, 4, 4, 4]);
    let run = |fusion: bool| {
        let mut o = CompileOptions::default();
        o.runtime.gather_fusion = fusion;
        compile(RNN, &o).unwrap().run(&params, &instances).unwrap().stats
    };
    let fused = run(true);
    assert_eq!(fused.gather_bytes, 0);
    assert_eq!(fused.gather_copies, 0);
    let gathered = run(false);
    assert!(gathered.gather_copies > 0, "scattered operands must be staged");
    assert!(
        gathered.contiguous_hits > 0,
        "outputs of batched launches are contiguous and skip the copy"
    );
    // Results identical either way.
    assert_eq!(fused.kernel_launches, gathered.kernel_launches);
}

/// Grain-size coarsening (§B.2) reduces charged scheduling-unit overheads
/// without changing launches or results.
#[test]
fn coarsening_reduces_overheads_only() {
    let (params, instances) = rnn_setup(&[3, 5, 4, 2]);
    let run = |coarsen: bool| {
        let mut o = CompileOptions::default();
        o.analysis.coarsen = coarsen;
        o.runtime.coarsen = coarsen;
        compile(RNN, &o).unwrap().run(&params, &instances).unwrap().stats
    };
    let on = run(true);
    let off = run(false);
    assert_eq!(on.kernel_launches, off.kernel_launches);
    assert!(on.dfg_construction_us < off.dfg_construction_us);
    assert!(on.scheduling_us <= off.scheduling_us);
}
