//! Chaos-serving harness: the capstone test for the resilient request
//! lifecycle.
//!
//! N threads × M requests hammer one shared [`Model`] while a seeded mix of
//! disruptions is injected per request: probabilistic fault storms
//! (`FaultMode::Rate`), zero-budget virtual deadlines (deterministic
//! misses) and pre-cancelled tokens (deterministic cancellations).  The
//! properties checked:
//!
//! * every disrupted request fails with the *right* error class —
//!   cancellation surfaces [`VmError::Cancelled`], deadline misses surface
//!   [`VmError::DeadlineExceeded`], exhausted fault storms surface the
//!   injected tensor error;
//! * every request that completes — including storm-hit requests rescued by
//!   transient-fault retry — is bit-for-bit identical to a fault-free
//!   serial reference execution;
//! * the aggregate ledger is consistent: outcome counters sum to the total
//!   request count, `runs_completed` equals the completed count, the
//!   aggregate statistics equal the per-run sum over completed runs only
//!   (failed runs leak nothing), and every failed run's context was
//!   quarantined rather than recycled;
//! * the fiber hub always terminates (the whole harness finishes without
//!   any watchdog firing).

use acrobat_bench::suite;
use acrobat_core::{
    compile, CompileOptions, FaultPlan, Model, RetryPolicy, RunOptions, RuntimeStats, VmError,
};
use acrobat_models::{ModelSize, ModelSpec};
use acrobat_runtime::CancelToken;
use acrobat_tensor::TensorError;
use acrobat_vm::OutputValue;

fn build(spec: &ModelSpec, options: &CompileOptions) -> Model {
    compile(&spec.source, options).unwrap_or_else(|e| panic!("{} compiles: {e}", spec.name))
}

/// Chaos-mode compile options: transient-fault retry on, everything else
/// default.  Both the chaos model and the fault-free reference use these,
/// so outputs are comparable bit for bit.  `parallel_workers > 0` also
/// exercises the worker-pool kernel execution path under chaos;
/// `plan_cache` turns on flush-plan memoization (the reference stays
/// cache-off, so survivor equality also proves cache-on ≡ cache-off);
/// `spec_backend` switches the chaos model to the specialized kernel
/// backend at threshold 1 (the reference stays on the interpreter, so
/// survivor equality also proves spec ≡ interp under chaos).
fn chaos_options(parallel_workers: usize, plan_cache: bool, spec_backend: bool) -> CompileOptions {
    let mut options = CompileOptions::default();
    options.runtime.retry = RetryPolicy { max_retries: 3, backoff_base_us: 10.0 };
    options.runtime.parallel_workers = parallel_workers;
    options.runtime.plan_cache = plan_cache;
    if spec_backend {
        options = options
            .with_kernel_backend(acrobat_codegen::KernelBackendKind::Spec)
            .with_spec_threshold(1);
    }
    options
}

/// Bit-for-bit tensor equality (no tolerance).
fn assert_outputs_equal(
    spec: &ModelSpec,
    reference: &[OutputValue],
    got: &[OutputValue],
    label: &str,
) {
    assert_eq!(reference.len(), got.len(), "{}: {label}: instance count", spec.name);
    for (i, (r, g)) in reference.iter().zip(got).enumerate() {
        let (rt, gt) = ((spec.flatten_output)(r), (spec.flatten_output)(g));
        assert_eq!(rt.len(), gt.len(), "{}: {label}: instance {i} tensor count", spec.name);
        for (j, (a, b)) in rt.iter().zip(&gt).enumerate() {
            assert_eq!(
                a.data(),
                b.data(),
                "{}: {label}: instance {i} tensor {j} diverged",
                spec.name
            );
        }
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// What to inject into one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Disruption {
    /// No injection: must complete bit-for-bit.
    Clean,
    /// Seeded probabilistic fault storm on kernel launches.  May trip zero
    /// or more times; retry may rescue the run.
    Storm(u64),
    /// Zero-budget virtual deadline: deterministically misses.
    ZeroDeadline,
    /// Token cancelled before submission: deterministically cancelled.
    PreCancelled,
}

fn disruption_for(seed: u64, thread: usize, run: usize) -> Disruption {
    let mut s = seed ^ ((thread as u64) << 32) ^ ((run as u64) << 8);
    match splitmix(&mut s) % 8 {
        0..=2 => Disruption::Storm(splitmix(&mut s)),
        3 => Disruption::ZeroDeadline,
        4 => Disruption::PreCancelled,
        _ => Disruption::Clean,
    }
}

/// Tally of one worker thread's results.
#[derive(Debug, Default)]
struct Tally {
    completed: Vec<RuntimeStats>,
    storm_failures: u64,
    deadline_misses: u64,
    cancellations: u64,
}

/// One chaos round over one model spec; asserts all lifecycle properties.
fn chaos_round(
    spec: &ModelSpec,
    threads: usize,
    runs_per_thread: usize,
    seed: u64,
    parallel_workers: usize,
    plan_cache: bool,
    spec_backend: bool,
) {
    let options = chaos_options(parallel_workers, plan_cache, spec_backend);
    // Fault-free serial reference on a separate cache-off, interpreter-only
    // model, so the chaos model's outcome ledger stays exactly the chaos
    // traffic — and, with `plan_cache` or `spec_backend`, survivors
    // additionally prove cache-on ≡ cache-off and spec ≡ interp.
    let reference_model = build(spec, &chaos_options(parallel_workers, false, false));
    let instances = (spec.make_instances)(0xC8A0, 4);
    let reference =
        reference_model.run(&spec.params, &instances).expect("fault-free reference").outputs;

    let model = build(spec, &options);
    let tallies: Vec<Tally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let (model, instances, reference) = (&model, &instances, &reference);
                scope.spawn(move || {
                    let mut tally = Tally::default();
                    for r in 0..runs_per_thread {
                        let disruption = disruption_for(seed, t, r);
                        let mut opts = RunOptions::default();
                        match disruption {
                            Disruption::Clean => {}
                            Disruption::Storm(storm_seed) => {
                                let plan = format!("launch:rate=1%@{storm_seed}:kernel");
                                opts.fault =
                                    Some(FaultPlan::parse(&plan).expect("storm plan parses"));
                            }
                            Disruption::ZeroDeadline => opts.deadline_us = Some(0.0),
                            Disruption::PreCancelled => {
                                let token = CancelToken::new();
                                token.cancel();
                                opts.cancel = Some(token);
                            }
                        }
                        match model.run_with(&spec.params, instances, &opts) {
                            Ok(result) => {
                                assert!(
                                    disruption == Disruption::Clean
                                        || matches!(disruption, Disruption::Storm(_)),
                                    "{}: {disruption:?} must not complete",
                                    spec.name
                                );
                                assert_outputs_equal(
                                    spec,
                                    reference,
                                    &result.outputs,
                                    "chaos survivor",
                                );
                                tally.completed.push(result.stats);
                            }
                            Err(e) => match disruption {
                                Disruption::Clean => {
                                    panic!("{}: clean request failed: {e}", spec.name)
                                }
                                Disruption::Storm(_) => {
                                    let vm = e.as_vm().unwrap_or_else(|| {
                                        panic!("{}: storm failure is execution-side", spec.name)
                                    });
                                    assert!(
                                        matches!(vm, VmError::Tensor(TensorError::Injected { .. })),
                                        "{}: storm failed with wrong error: {vm}",
                                        spec.name
                                    );
                                    tally.storm_failures += 1;
                                }
                                Disruption::ZeroDeadline => {
                                    assert!(
                                        e.is_deadline_exceeded(),
                                        "{}: zero deadline gave wrong error: {e}",
                                        spec.name
                                    );
                                    tally.deadline_misses += 1;
                                }
                                Disruption::PreCancelled => {
                                    assert!(
                                        e.is_cancelled(),
                                        "{}: pre-cancelled gave wrong error: {e}",
                                        spec.name
                                    );
                                    tally.cancellations += 1;
                                }
                            },
                        }
                    }
                    tally
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("chaos worker panicked")).collect()
    });

    // Ledger consistency.
    let completed: Vec<&RuntimeStats> = tallies.iter().flat_map(|t| &t.completed).collect();
    let storm_failures: u64 = tallies.iter().map(|t| t.storm_failures).sum();
    let deadline_misses: u64 = tallies.iter().map(|t| t.deadline_misses).sum();
    let cancellations: u64 = tallies.iter().map(|t| t.cancellations).sum();
    let total = (threads * runs_per_thread) as u64;

    let outcomes = model.outcomes();
    assert_eq!(outcomes.total(), total, "{}: every request lands in one counter", spec.name);
    assert_eq!(outcomes.completed, completed.len() as u64, "{}: completed", spec.name);
    assert_eq!(outcomes.failed, storm_failures, "{}: failed", spec.name);
    assert_eq!(outcomes.deadline_exceeded, deadline_misses, "{}: deadline", spec.name);
    assert_eq!(outcomes.cancelled, cancellations, "{}: cancelled", spec.name);
    assert_eq!(outcomes.shed, 0, "{}: no admission limit configured", spec.name);
    assert_eq!(outcomes.timed_out, 0, "{}: no hub watchdog fired", spec.name);
    assert_eq!(model.runs_completed(), outcomes.completed, "{}: runs_completed", spec.name);

    // Every context that observed a fault is quarantined, whether the run
    // failed or was rescued by retry; untouched completions recycle theirs.
    let rescued = completed.iter().filter(|s| s.aborted_flushes > 0).count() as u64;
    assert_eq!(
        model.quarantined_count(),
        storm_failures + deadline_misses + cancellations + rescued,
        "{}: one quarantined context per fault-observing run",
        spec.name
    );

    // Aggregate statistics equal the per-run sum over completed runs only:
    // failed runs leak nothing, retried flushes count once.
    let agg = model.stats();
    macro_rules! sum_eq {
        ($field:ident) => {
            assert_eq!(
                agg.$field,
                completed.iter().map(|s| s.$field).sum::<u64>(),
                concat!("{}: aggregate ", stringify!($field)),
                spec.name
            );
        };
    }
    sum_eq!(nodes);
    sum_eq!(kernel_launches);
    sum_eq!(gather_copies);
    sum_eq!(gather_bytes);
    sum_eq!(memcpy_ops);
    sum_eq!(memcpy_bytes);
    sum_eq!(flops);
    sum_eq!(flushes);
    sum_eq!(aborted_flushes);
    sum_eq!(retries);
    sum_eq!(downshifts);
    sum_eq!(plan_cache_hits);
    sum_eq!(plan_cache_misses);
    sum_eq!(plan_cache_evictions);
    sum_eq!(backend_compiles);
    sum_eq!(backend_hits);
    sum_eq!(backend_interp_falls);
    if spec_backend {
        assert!(
            agg.backend_compiles + agg.backend_hits > 0,
            "{}: the spec-backend round actually ran compiled kernels",
            spec.name
        );
    }

    // The model stays healthy after the storm.
    let after = model.run(&spec.params, &instances).expect("run after chaos").outputs;
    assert_outputs_equal(spec, &reference, &after, "run after chaos");
}

/// Chaos over the sequential recursive model (TreeLSTM: no
/// tensor-dependent control flow, pure flush-path lifecycle).
#[test]
fn chaos_serving_sequential_model() {
    let spec = suite(ModelSize::Small, true).remove(0);
    chaos_round(&spec, 4, 6, 0xC0A5_0001, 0, false, false);
}

/// Chaos over the fiber-mode model (DRNN: tensor-dependent control flow,
/// so cancellation/deadline/fault poison must drain suspended fibers).
#[test]
fn chaos_serving_fiber_model() {
    let spec = suite(ModelSize::Small, true).remove(4);
    chaos_round(&spec, 3, 4, 0xC0A5_0002, 0, false, false);
}

/// The sequential-model chaos round with worker-pool kernel execution:
/// survivors (including storm-hit requests rescued by retry) must still be
/// bit-for-bit identical to the fault-free reference, and the outcome
/// ledger must stay exactly consistent.
#[test]
fn chaos_serving_sequential_model_parallel_exec() {
    let spec = suite(ModelSize::Small, true).remove(0);
    chaos_round(&spec, 4, 6, 0xC0A5_0003, 4, false, false);
}

/// The fiber-model chaos round with worker-pool kernel execution.
#[test]
fn chaos_serving_fiber_model_parallel_exec() {
    let spec = suite(ModelSize::Small, true).remove(4);
    chaos_round(&spec, 3, 4, 0xC0A5_0004, 4, false, false);
}

/// The sequential-model chaos round with flush-plan memoization on: every
/// survivor must stay bit-for-bit identical to the *cache-off* fault-free
/// reference, and fault-observing (tainted/quarantined) contexts must not
/// poison the shared plan cache for the clean requests hitting it.
#[test]
fn chaos_serving_sequential_model_plan_cache() {
    let spec = suite(ModelSize::Small, true).remove(0);
    chaos_round(&spec, 4, 6, 0xC0A5_0005, 0, true, false);
}

/// The fiber-model chaos round with flush-plan memoization on.
#[test]
fn chaos_serving_fiber_model_plan_cache() {
    let spec = suite(ModelSize::Small, true).remove(4);
    chaos_round(&spec, 3, 4, 0xC0A5_0006, 0, true, false);
}

/// The sequential-model chaos round on the specialized kernel backend:
/// survivors (including storm-hit requests rescued by retry) must stay
/// bit-for-bit identical to the *interpreter* fault-free reference, and
/// aborted flushes must roll the backend launch counters back with the
/// rest of the per-run statistics.
#[test]
fn chaos_serving_sequential_model_spec_backend() {
    let spec = suite(ModelSize::Small, true).remove(0);
    chaos_round(&spec, 4, 6, 0xC0A5_0007, 0, false, true);
}

/// The fiber-model chaos round on the specialized kernel backend, with
/// worker-pool execution: parallel workers race on the shared
/// compiled-kernel cache while disruptions poison suspended fibers.
#[test]
fn chaos_serving_fiber_model_spec_backend() {
    let spec = suite(ModelSize::Small, true).remove(4);
    chaos_round(&spec, 3, 4, 0xC0A5_0008, 4, false, true);
}

/// Deterministic load shedding: with `max_in_flight = 1` and the single
/// slot occupied, every request is rejected as [`VmError::Overloaded`]
/// without touching an execution context, and the slot's release restores
/// service.
#[test]
fn admission_gate_sheds_deterministically() {
    let spec = suite(ModelSize::Small, true).remove(0);
    let mut options = CompileOptions::default();
    options.runtime.max_in_flight = 1;
    let model = build(&spec, &options);
    let instances = (spec.make_instances)(0x10AD, 2);

    let session = &model.executable().session;
    {
        let _slot = session.try_admit(1).expect("first admit");
        let err = model.run(&spec.params, &instances).expect_err("gate full");
        assert!(err.is_overloaded(), "wrong shed error: {err}");
        assert_eq!(session.in_flight(), 1, "shed request holds no slot");
    }
    assert_eq!(session.in_flight(), 0, "permit released on drop");
    model.run(&spec.params, &instances).expect("service restored");

    let outcomes = model.outcomes();
    assert_eq!(outcomes.shed, 1);
    assert_eq!(outcomes.completed, 1);
    assert_eq!(model.quarantined_count(), 0, "shed requests never touch a context");
}

/// Racy overload smoke: concurrent traffic against a small admission limit
/// sheds cleanly — every result is either a bit-for-bit success or an
/// `Overloaded` rejection, and the ledger accounts for all of them.
#[test]
fn overload_under_concurrency_sheds_cleanly() {
    let spec = suite(ModelSize::Small, true).remove(0);
    let mut options = CompileOptions::default();
    options.runtime.max_in_flight = 2;
    let model = build(&spec, &options);
    let instances = (spec.make_instances)(0x0DE1, 2);
    let reference = {
        let clean = build(&spec, &CompileOptions::default());
        clean.run(&spec.params, &instances).expect("reference").outputs
    };

    const THREADS: usize = 6;
    const RUNS: usize = 3;
    let shed: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let (model, spec, instances, reference) = (&model, &spec, &instances, &reference);
                scope.spawn(move || {
                    let mut shed = 0u64;
                    for _ in 0..RUNS {
                        match model.run(&spec.params, instances) {
                            Ok(r) => {
                                assert_outputs_equal(spec, reference, &r.outputs, "under overload")
                            }
                            Err(e) => {
                                assert!(e.is_overloaded(), "unexpected error: {e}");
                                shed += 1;
                            }
                        }
                    }
                    shed
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("overload worker")).sum()
    });

    let outcomes = model.outcomes();
    assert_eq!(outcomes.total(), (THREADS * RUNS) as u64);
    assert_eq!(outcomes.shed, shed);
    assert_eq!(outcomes.completed, (THREADS * RUNS) as u64 - shed);
    assert_eq!(model.quarantined_count(), 0, "shedding quarantines nothing");
}

/// Aggregate-stat spot check reused from the storm path: a storm-heavy
/// serial sequence (every request faulted at a high rate) either fails
/// with the injected error or completes bit-for-bit, and the session stays
/// consistent — the serial twin of the concurrent rounds above.
#[test]
fn serial_fault_storm_sweep_is_classified_and_consistent() {
    let spec = suite(ModelSize::Small, true).remove(0);
    // The parallel-execution axis: the same storm sweep must classify and
    // survive identically whether kernels run sequentially or on the
    // worker pool (fault occurrence order is prepare-phase, plan-order).
    for parallel_workers in [0usize, 4] {
        let model = build(&spec, &chaos_options(parallel_workers, false, false));
        let instances = (spec.make_instances)(0x5707, 3);
        let reference = {
            let clean = build(&spec, &chaos_options(parallel_workers, false, false));
            clean.run(&spec.params, &instances).expect("reference").outputs
        };

        let mut completed = 0u64;
        let mut failed = 0u64;
        for storm_seed in 0..16u64 {
            let plan = format!("launch:rate=5%@{storm_seed}:kernel");
            let opts = RunOptions {
                fault: Some(FaultPlan::parse(&plan).expect("plan parses")),
                ..RunOptions::default()
            };
            match model.run_with(&spec.params, &instances, &opts) {
                Ok(r) => {
                    assert_outputs_equal(&spec, &reference, &r.outputs, "storm survivor");
                    completed += 1;
                }
                Err(e) => {
                    assert!(
                        matches!(e.as_vm(), Some(VmError::Tensor(TensorError::Injected { .. }))),
                        "storm failure class: {e}"
                    );
                    failed += 1;
                }
            }
        }
        assert!(completed > 0, "at 5% with retry, some storms are survivable");
        let outcomes = model.outcomes();
        assert_eq!(outcomes.completed, completed);
        assert_eq!(outcomes.failed, failed);
        assert!(model.quarantined_count() >= failed, "failed storms always quarantine");
        assert_eq!(model.runs_completed(), completed);
    }
}
