//! Integration tests for the kernel-backend abstraction
//! (`acrobat_codegen::backend`): specialized execution is bit-for-bit
//! identical to the reference interpreter across the model suite, modeled
//! statistics are backend-invariant, checked mode cross-validates every
//! compiled launch, and an engine retune (PGO) invalidates the
//! compiled-kernel cache exactly like it invalidates the plan cache.

use acrobat_bench::suite;
use acrobat_codegen::KernelBackendKind;
use acrobat_core::{compile, CompileOptions, Model};
use acrobat_models::{ModelSize, ModelSpec};
use acrobat_vm::OutputValue;

fn assert_bit_identical(spec: &ModelSpec, want: &[OutputValue], got: &[OutputValue], label: &str) {
    assert_eq!(want.len(), got.len(), "{}: {label}: instance count", spec.name);
    for (i, (w, g)) in want.iter().zip(got).enumerate() {
        let (wt, gt) = ((spec.flatten_output)(w), (spec.flatten_output)(g));
        assert_eq!(wt.len(), gt.len(), "{}: {label}: instance {i} tensor count", spec.name);
        for (j, (a, b)) in wt.iter().zip(&gt).enumerate() {
            assert_eq!(a.data(), b.data(), "{}: {label}: instance {i} tensor {j}", spec.name);
        }
    }
}

fn build(spec: &ModelSpec, options: &CompileOptions) -> Model {
    compile(&spec.source, options).unwrap_or_else(|e| panic!("{} compiles: {e}", spec.name))
}

/// The specialized backend must be bit-for-bit identical to the
/// interpreter over the whole quick suite — on the cold request (kernels
/// compile mid-run) and on warm steady-state requests (cache hits) — and
/// every *modeled* statistic must be backend-invariant: the backend only
/// changes how the execute phase runs on the host, never what is modeled.
#[test]
fn spec_matches_interp_bit_for_bit_across_suite() {
    for spec in suite(ModelSize::Small, true) {
        let instances = (spec.make_instances)(0xBACE, 4);
        let interp = build(&spec, &CompileOptions::default());
        let specialized = build(
            &spec,
            &CompileOptions::default()
                .with_kernel_backend(KernelBackendKind::Spec)
                .with_spec_threshold(1),
        );
        let want = interp.run(&spec.params, &instances).expect("interp run");
        for round in 0..3 {
            let got = specialized.run(&spec.params, &instances).expect("spec run");
            assert_bit_identical(&spec, &want.outputs, &got.outputs, &format!("round {round}"));
            assert_eq!(
                want.stats.kernel_launches, got.stats.kernel_launches,
                "{}: modeled launches are backend-invariant",
                spec.name
            );
            assert_eq!(
                want.stats.kernel_time_us, got.stats.kernel_time_us,
                "{}: modeled kernel time is backend-invariant",
                spec.name
            );
            assert_eq!(
                want.stats.gather_bytes, got.stats.gather_bytes,
                "{}: modeled gather traffic is backend-invariant",
                spec.name
            );
        }
        // The interpreter backend never touches the backend counters...
        assert_eq!(want.stats.backend_compiles, 0, "{}: interp compiles", spec.name);
        assert_eq!(want.stats.backend_hits, 0, "{}: interp hits", spec.name);
        assert_eq!(want.stats.backend_interp_falls, 0, "{}: interp falls", spec.name);
        // ...while with threshold 1 every launch of the specialized model
        // runs compiled.
        let agg = specialized.stats();
        assert!(agg.backend_compiles > 0, "{}: specialized backend compiled nothing", spec.name);
        assert!(agg.backend_hits > 0, "{}: compiled kernels were never reused", spec.name);
        assert_eq!(agg.backend_interp_falls, 0, "{}: threshold 1 must never fall back", spec.name);
    }
}

/// With the default compile threshold, cold kernels interpret their first
/// launches (counted as fallbacks) and hot kernels graduate to compiled
/// execution — all within one serving session, with identical outputs.
#[test]
fn default_threshold_mixes_interp_and_compiled() {
    let spec = &suite(ModelSize::Small, true)[0]; // TreeLSTM: recursive, hot kernels
    let instances = (spec.make_instances)(0x7E57, 4);
    let interp = build(spec, &CompileOptions::default());
    let specialized =
        build(spec, &CompileOptions::default().with_kernel_backend(KernelBackendKind::Spec));
    let want = interp.run(&spec.params, &instances).expect("interp run");
    for _ in 0..4 {
        let got = specialized.run(&spec.params, &instances).expect("spec run");
        assert_bit_identical(spec, &want.outputs, &got.outputs, "default threshold");
    }
    let agg = specialized.stats();
    assert!(agg.backend_compiles > 0, "hot kernels compile");
    assert!(agg.backend_hits > 0, "compiled kernels are reused");
    let total = agg.backend_compiles + agg.backend_hits + agg.backend_interp_falls;
    assert_eq!(total, agg.kernel_launches, "every launch is classified exactly once");
}

/// Checked mode re-executes every compiled launch through the interpreter
/// and compares output bits — the strongest identity gate; a run
/// completing cleanly means every single compiled launch matched.
#[test]
fn checked_mode_validates_every_compiled_launch() {
    for spec in suite(ModelSize::Small, true).iter().take(3) {
        let instances = (spec.make_instances)(0xC4EC, 3);
        let model = build(
            spec,
            &CompileOptions::default()
                .with_kernel_backend(KernelBackendKind::Spec)
                .with_spec_threshold(1)
                .with_checked(true),
        );
        let r = model.run(&spec.params, &instances).expect("checked spec run");
        assert!(
            r.stats.backend_compiles + r.stats.backend_hits > 0,
            "{}: checked run exercised the compiled path",
            spec.name
        );
    }
}

/// Parallel workers share the engine-resident compiled-kernel cache and
/// produce bit-identical outputs to sequential specialized execution.
#[test]
fn parallel_workers_share_compiled_cache() {
    let spec = &suite(ModelSize::Small, true)[3]; // NestedRNN: deep same-level plans
    let instances = (spec.make_instances)(0x9A12, 4);
    let seq = build(
        spec,
        &CompileOptions::default()
            .with_kernel_backend(KernelBackendKind::Spec)
            .with_spec_threshold(1),
    );
    let mut par_options = CompileOptions::default()
        .with_kernel_backend(KernelBackendKind::Spec)
        .with_spec_threshold(1);
    par_options.runtime.parallel_workers = 4;
    let par = build(spec, &par_options);
    let want = seq.run(&spec.params, &instances).expect("sequential spec run");
    let got = par.run(&spec.params, &instances).expect("parallel spec run");
    assert_bit_identical(spec, &want.outputs, &got.outputs, "parallel vs sequential");
    assert!(got.stats.backend_compiles + got.stats.backend_hits > 0, "parallel compiled path ran");
}

/// An engine retune (PGO) must invalidate the compiled-kernel cache: the
/// retuned library can carry different schedules, so stale compiled
/// kernels must not survive the swap.  Mirrors the plan-cache
/// invalidation contract.
#[test]
fn retune_invalidates_compiled_kernel_cache() {
    let spec = &suite(ModelSize::Small, true)[0];
    let instances = (spec.make_instances)(0x9107, 4);
    let mut model = build(
        spec,
        &CompileOptions::default()
            .with_kernel_backend(KernelBackendKind::Spec)
            .with_spec_threshold(1),
    );
    let interp = build(spec, &CompileOptions::default());
    let want = interp.run(&spec.params, &instances).expect("interp reference");

    // Cold engine: first run compiles.
    let r1 = model.run(&spec.params, &instances).expect("cold run");
    assert!(r1.stats.backend_compiles > 0, "cold run compiles");
    let session = &model.executable().session;
    let compiled_before = session.engine().backend().compiled_count();
    assert!(compiled_before > 0, "engine cache holds compiled kernels");

    // Warm engine: steady state is all cache hits, zero fresh compiles.
    let r2 = model.run(&spec.params, &instances).expect("warm run");
    assert_eq!(r2.stats.backend_compiles, 0, "warm run compiles nothing");
    assert!(r2.stats.backend_hits > 0, "warm run hits the compiled cache");

    // PGO retune: swaps the engine; the new backend starts empty (stale
    // compiled kernels die with the old engine) and is re-seeded from the
    // aggregated profile, so hot kernels recompile on first launch.
    model.apply_pgo(&spec.params, &instances).expect("pgo retune");
    let session = &model.executable().session;
    assert_eq!(
        session.engine().backend().compiled_count(),
        0,
        "retuned engine starts with an empty compiled-kernel cache"
    );
    let r3 = model.run(&spec.params, &instances).expect("post-retune run");
    assert!(r3.stats.backend_compiles > 0, "post-retune run recompiles");
    assert_bit_identical(spec, &want.outputs, &r3.outputs, "post-retune outputs");
}
