//! Workspace integration tests for the Fig. 5 ablation invariants: every
//! optimization level produces identical numerical results, and the
//! efficiency metrics move in the expected directions as optimizations
//! accumulate.

use acrobat_bench::suite;
use acrobat_core::{compile, CompileOptions, OptLevel};
use acrobat_models::ModelSize;
use acrobat_tensor::Tensor;

#[test]
fn every_model_is_optimization_invariant() {
    for spec in suite(ModelSize::Small, true) {
        let batch = 4;
        let instances = (spec.make_instances)(0xAB1, batch);
        let mut reference: Option<Vec<Vec<Tensor>>> = None;
        for level in OptLevel::ALL {
            let mut options = CompileOptions::at_level(level);
            options.seed = 0xAB1;
            let model = compile(&spec.source, &options)
                .unwrap_or_else(|e| panic!("{} {level:?}: {e}", spec.name));
            let r = model
                .run(&spec.params, &instances)
                .unwrap_or_else(|e| panic!("{} {level:?}: {e}", spec.name));
            let outs: Vec<Vec<Tensor>> =
                r.outputs.iter().map(|o| (spec.flatten_output)(o)).collect();
            match &reference {
                None => reference = Some(outs),
                Some(base) => {
                    for (i, (a, b)) in base.iter().zip(&outs).enumerate() {
                        assert_eq!(a.len(), b.len(), "{} {level:?} inst {i}", spec.name);
                        for (x, y) in a.iter().zip(b) {
                            assert!(
                                x.allclose(y, 1e-4),
                                "{} {level:?} inst {i}: optimization changed results",
                                spec.name
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn full_optimizations_beat_none_on_overheads() {
    for spec in suite(ModelSize::Small, true) {
        let batch = 6;
        let instances = (spec.make_instances)(0xAB2, batch);
        let run = |level: OptLevel| {
            let mut options = CompileOptions::at_level(level);
            options.seed = 0xAB2;
            compile(&spec.source, &options).unwrap().run(&spec.params, &instances).unwrap().stats
        };
        let none = run(OptLevel::None);
        let full = run(OptLevel::Full);
        assert!(
            full.kernel_launches <= none.kernel_launches,
            "{}: launches {} vs {}",
            spec.name,
            full.kernel_launches,
            none.kernel_launches
        );
        assert!(
            full.dfg_construction_us + full.scheduling_us
                <= none.dfg_construction_us + none.scheduling_us + 1e-9,
            "{}: host overheads should not grow with optimizations",
            spec.name
        );
        // Gather fusion eliminates explicit gather traffic entirely.
        assert_eq!(full.gather_bytes, 0, "{}: fused kernels never gather", spec.name);
    }
}
