//! Concurrent-serving stress tests for the Engine / ExecutionContext split.
//!
//! One compiled [`Model`] is shared by many threads, each running its own
//! mini-batches; every concurrent result must be bit-for-bit identical to
//! single-threaded execution — including under checked mode and with an
//! injected fault in one of the requests.  Also pins the §E.1 guarantee
//! that keyed pseudo-random streams make instance outputs independent of
//! submission order.

use std::collections::BTreeMap;

use acrobat_bench::suite;
use acrobat_core::{compile, CompileOptions, FaultPlan, Model, RunOptions, Tensor};
use acrobat_models::{ModelSize, ModelSpec};
use acrobat_vm::{InputValue, OutputValue};

fn build(spec: &ModelSpec, options: &CompileOptions) -> Model {
    compile(&spec.source, options).unwrap_or_else(|e| panic!("{} compiles: {e}", spec.name))
}

/// Bit-for-bit tensor equality (no tolerance).
fn assert_outputs_equal(
    spec: &ModelSpec,
    reference: &[OutputValue],
    got: &[OutputValue],
    label: &str,
) {
    assert_eq!(reference.len(), got.len(), "{}: {label}: instance count", spec.name);
    for (i, (r, g)) in reference.iter().zip(got).enumerate() {
        let (rt, gt) = ((spec.flatten_output)(r), (spec.flatten_output)(g));
        assert_eq!(rt.len(), gt.len(), "{}: {label}: instance {i} tensor count", spec.name);
        for (j, (a, b)) in rt.iter().zip(&gt).enumerate() {
            assert_eq!(
                a.data(),
                b.data(),
                "{}: {label}: instance {i} tensor {j} diverged",
                spec.name
            );
        }
    }
}

fn run_many_threads(
    model: &Model,
    params: &BTreeMap<String, Tensor>,
    instances: &[Vec<InputValue>],
    threads: usize,
    runs_per_thread: usize,
) -> Vec<Vec<OutputValue>> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    (0..runs_per_thread)
                        .map(|_| model.run(params, instances).expect("concurrent run").outputs)
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("worker panicked")).collect()
    })
}

/// N threads × M mini-batches over the whole (quick) model suite: every
/// concurrent result equals the single-threaded reference bit for bit.
#[test]
fn concurrent_runs_match_serial_across_suite() {
    for spec in suite(ModelSize::Small, true) {
        let model = build(&spec, &CompileOptions::default());
        let instances = (spec.make_instances)(0xC0DE, 4);
        let reference = model.run(&spec.params, &instances).expect("serial run").outputs;
        for outputs in run_many_threads(&model, &spec.params, &instances, 4, 2) {
            assert_outputs_equal(&spec, &reference, &outputs, "4 threads x 2 runs");
        }
    }
}

/// Same property under checked mode (flush invariants validated on every
/// flush) for one recursive and one tensor-dependent model.
#[test]
fn concurrent_runs_match_serial_under_checked_mode() {
    let specs = suite(ModelSize::Small, true);
    for idx in [0usize, 4] {
        let spec = &specs[idx];
        let model = build(spec, &CompileOptions::default().with_checked(true));
        let instances = (spec.make_instances)(0xBEEF, 3);
        let reference = model.run(&spec.params, &instances).expect("serial checked run").outputs;
        for outputs in run_many_threads(&model, &spec.params, &instances, 2, 2) {
            assert_outputs_equal(spec, &reference, &outputs, "checked mode");
        }
    }
}

/// A fault injected into one request fails only that request: concurrent
/// clean requests stay bit-for-bit correct, and the model remains usable
/// afterwards (each run owns a fresh context).
#[test]
fn injected_fault_is_isolated_to_its_request() {
    let spec = suite(ModelSize::Small, true).remove(0);
    let model = build(&spec, &CompileOptions::default());
    let instances = (spec.make_instances)(0xFA11, 4);
    let reference = model.run(&spec.params, &instances).expect("serial run").outputs;

    std::thread::scope(|scope| {
        let faulty = scope.spawn(|| {
            let opts = RunOptions {
                fault: Some(FaultPlan::parse("launch:0:oom").expect("fault plan parses")),
                ..RunOptions::default()
            };
            model.run_with(&spec.params, &instances, &opts)
        });
        let clean: Vec<_> = (0..3)
            .map(|_| scope.spawn(|| model.run(&spec.params, &instances).expect("clean run")))
            .collect();
        assert!(faulty.join().expect("faulty worker").is_err(), "injected OOM must surface");
        for h in clean {
            let r = h.join().expect("clean worker");
            assert_outputs_equal(&spec, &reference, &r.outputs, "clean run beside fault");
        }
    });

    // The fault died with its context: a later run is clean.
    let after = model.run(&spec.params, &instances).expect("run after fault").outputs;
    assert_outputs_equal(&spec, &reference, &after, "run after fault");
}

/// §E.1 regression: with explicit `(seed, instance)` keys, an instance's
/// pseudo-random stream — and therefore its tensor-dependent control flow
/// and outputs — is bit-for-bit identical no matter in which order the
/// mini-batch submits it.  DRNN's expansion decisions are all `sample`-driven,
/// so any stream drift changes output *shapes*, not just values.
#[test]
fn keyed_streams_survive_shuffled_submission() {
    let specs = suite(ModelSize::Small, true);
    // DRNN (TDC + fork-join) and Berxit (TDC early exit).
    for idx in [4usize, 5] {
        let spec = &specs[idx];
        let model = build(spec, &CompileOptions::default());
        let instances = (spec.make_instances)(0x5EED, 6);
        let keys: Vec<u64> = (0..instances.len() as u64).collect();
        let reference =
            model.run_keyed(&spec.params, &instances, &keys).expect("keyed reference").outputs;
        // Keys equal to slot indices reproduce the unkeyed behaviour.
        let unkeyed = model.run(&spec.params, &instances).expect("unkeyed run").outputs;
        assert_outputs_equal(spec, &reference, &unkeyed, "identity keys == unkeyed");

        let perm = [3usize, 0, 5, 1, 4, 2];
        let shuffled: Vec<Vec<InputValue>> = perm.iter().map(|&i| instances[i].clone()).collect();
        let shuffled_keys: Vec<u64> = perm.iter().map(|&i| keys[i]).collect();
        let permuted = model
            .run_keyed(&spec.params, &shuffled, &shuffled_keys)
            .expect("shuffled keyed run")
            .outputs;
        for (slot, &orig) in perm.iter().enumerate() {
            let (a, b) = ((spec.flatten_output)(&reference[orig]), {
                (spec.flatten_output)(&permuted[slot])
            });
            assert_eq!(a.len(), b.len(), "{}: instance {orig} tensor count", spec.name);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.data(), y.data(), "{}: instance {orig} diverged", spec.name);
            }
        }
    }
}

/// Serial and concurrent executions of the same workload merge to identical
/// aggregate counters (launches, gathers, bytes moved, …) in
/// [`Model::stats`].
#[test]
fn aggregate_stats_identical_serial_vs_concurrent() {
    let spec = suite(ModelSize::Small, true).remove(0);
    let instances = (spec.make_instances)(0x57A7, 4);
    const RUNS: usize = 6;

    let serial = build(&spec, &CompileOptions::default());
    for _ in 0..RUNS {
        serial.run(&spec.params, &instances).expect("serial run");
    }

    let concurrent = build(&spec, &CompileOptions::default());
    run_many_threads(&concurrent, &spec.params, &instances, 3, RUNS / 3);

    let (s, c) = (serial.stats(), concurrent.stats());
    assert_eq!(serial.runs_completed(), RUNS as u64);
    assert_eq!(concurrent.runs_completed(), RUNS as u64);
    // Wall-clock fields differ by machine noise; every counter must match.
    assert_eq!(s.nodes, c.nodes);
    assert_eq!(s.kernel_launches, c.kernel_launches);
    assert_eq!(s.gather_copies, c.gather_copies);
    assert_eq!(s.gather_bytes, c.gather_bytes);
    assert_eq!(s.contiguous_hits, c.contiguous_hits);
    assert_eq!(s.memcpy_ops, c.memcpy_ops);
    assert_eq!(s.memcpy_bytes, c.memcpy_bytes);
    assert_eq!(s.flops, c.flops);
    assert_eq!(s.flushes, c.flushes);
    assert_eq!(s.device_peak_elements, c.device_peak_elements);
}
