//! Integration tests for flush-plan memoization over the real model suite:
//! cache-on serving is bit-for-bit identical to cache-off, steady-state
//! requests are served almost entirely from the cache, and checked mode
//! gates every hit with the cached ≡ freshly-scheduled invariant.

use acrobat_bench::suite;
use acrobat_core::{compile, CompileOptions, Model};
use acrobat_models::{ModelSize, ModelSpec};
use acrobat_vm::OutputValue;

fn assert_bit_identical(spec: &ModelSpec, want: &[OutputValue], got: &[OutputValue], label: &str) {
    assert_eq!(want.len(), got.len(), "{}: {label}: instance count", spec.name);
    for (i, (w, g)) in want.iter().zip(got).enumerate() {
        let (wt, gt) = ((spec.flatten_output)(w), (spec.flatten_output)(g));
        assert_eq!(wt.len(), gt.len(), "{}: {label}: instance {i} tensor count", spec.name);
        for (j, (a, b)) in wt.iter().zip(&gt).enumerate() {
            assert_eq!(a.data(), b.data(), "{}: {label}: instance {i} tensor {j}", spec.name);
        }
    }
}

fn build(spec: &ModelSpec, options: &CompileOptions) -> Model {
    compile(&spec.source, options).unwrap_or_else(|e| panic!("{} compiles: {e}", spec.name))
}

/// Cache-on ≡ cache-off over the whole suite, on both the warm-up request
/// (miss path: schedule + freeze + publish) and steady-state requests
/// (hit path: signature probe + remap).
#[test]
fn cache_on_matches_cache_off_bit_for_bit() {
    for spec in suite(ModelSize::Small, true) {
        let instances = (spec.make_instances)(0x9CAC, 4);
        let off = build(&spec, &CompileOptions::default());
        let on = build(&spec, &CompileOptions::default().with_plan_cache(true));
        let want = off.run(&spec.params, &instances).expect("cache-off run").outputs;
        for round in 0..3 {
            let got = on.run(&spec.params, &instances).expect("cache-on run").outputs;
            assert_bit_identical(&spec, &want, &got, &format!("round {round}"));
        }
        // The off model never touches the cache machinery.
        let off_stats = off.stats();
        assert_eq!(off_stats.plan_cache_hits, 0, "{}: cache-off hits", spec.name);
        assert_eq!(off_stats.plan_cache_misses, 0, "{}: cache-off misses", spec.name);
        assert_eq!(off_stats.plan_sig_us, 0.0, "{}: cache-off signature time", spec.name);
    }
}

/// After one warm-up request per model, steady-state requests must resolve
/// their flush windows from the cache at ≥ 90% (the check.sh smoke gate —
/// in practice it is 100%: identical requests replay identical windows).
///
/// Fiber-mode models (`tensor_dependent`) are held to the same gate as
/// sequential ones: lane-canonical signing makes the window signature a
/// function of the fork-path lane multiset, not of the OS thread
/// interleave, and the join handoff pins window boundaries, so a repeated
/// request replays the same signature stream no matter how its fibers are
/// scheduled.
#[test]
fn steady_state_hit_rate_is_at_least_90_percent() {
    for spec in suite(ModelSize::Small, true) {
        let instances = (spec.make_instances)(0x57EA, 4);
        let model = build(&spec, &CompileOptions::default().with_plan_cache(true));

        let warm = model.run(&spec.params, &instances).expect("warm-up").stats;
        assert!(warm.plan_cache_misses > 0, "{}: first request must miss", spec.name);

        let (mut hits, mut misses) = (0u64, 0u64);
        let mut sig_us = 0.0;
        for _ in 0..5 {
            let s = model.run(&spec.params, &instances).expect("steady request").stats;
            hits += s.plan_cache_hits;
            misses += s.plan_cache_misses;
            sig_us += s.plan_sig_us;
        }
        let rate = hits as f64 / (hits + misses).max(1) as f64;
        assert!(
            rate >= 0.9,
            "{}: steady-state hit rate {rate:.2} ({hits} hits / {misses} misses)",
            spec.name
        );
        assert!(sig_us > 0.0, "{}: flushes must charge signature time", spec.name);
    }
}

/// Run-to-run signature determinism for the fiber-mode DRNN: two freshly
/// built models (independent caches) serve the identical request sequence
/// and must produce bit-identical per-request window-signature digests
/// ([`acrobat_runtime::RuntimeStats::plan_sig_chain`]) and hit/miss
/// streams.  This is the regression test for interleave-dependent
/// signatures: before lane-canonical signing, each OS-level fiber
/// interleave hashed differently and the streams diverged run to run.
#[test]
fn drnn_signature_stream_is_identical_across_runs() {
    let spec = suite(ModelSize::Small, true)
        .into_iter()
        .find(|s| s.name == "DRNN")
        .expect("suite contains DRNN");
    let instances = (spec.make_instances)(0xD2DD, 4);
    let run_stream = || {
        let model = build(&spec, &CompileOptions::default().with_plan_cache(true));
        let mut stream = Vec::new();
        for _ in 0..4 {
            let s = model.run(&spec.params, &instances).expect("request").stats;
            stream.push((s.plan_sig_chain, s.plan_cache_hits, s.plan_cache_misses));
        }
        stream
    };
    let first = run_stream();
    let second = run_stream();
    assert_eq!(
        first, second,
        "DRNN signature/hit streams must be identical across runs at any interleave"
    );
    assert!(first.iter().all(|&(chain, _, _)| chain != 0), "every request must sign windows");
    let hits: u64 = first.iter().skip(1).map(|&(_, h, _)| h).sum();
    let misses: u64 = first.iter().skip(1).map(|&(_, _, m)| m).sum();
    let rate = hits as f64 / (hits + misses).max(1) as f64;
    assert!(rate >= 0.9, "DRNN steady-state hit rate {rate:.2} ({hits}/{misses})");
}

/// Steady-state scheduling is cheaper with the cache than without: a hit
/// charges only the signature + remap model costs, never per-decision cost.
#[test]
fn steady_state_scheduling_is_cheaper_than_cache_off() {
    let spec = suite(ModelSize::Small, true).remove(0);
    let instances = (spec.make_instances)(0x5CED, 6);
    let off = build(&spec, &CompileOptions::default());
    let on = build(&spec, &CompileOptions::default().with_plan_cache(true));
    let off_sched = off.run(&spec.params, &instances).expect("off").stats.scheduling_us;
    on.run(&spec.params, &instances).expect("warm-up");
    let on_sched = on.run(&spec.params, &instances).expect("steady").stats.scheduling_us;
    assert!(
        on_sched < off_sched,
        "{}: steady-state scheduling {on_sched:.3}us must beat cache-off {off_sched:.3}us",
        spec.name
    );
}

/// Checked mode replans every hit from scratch and asserts the cached plan
/// is bit-identical (decisions, partition, launch order) before use — the
/// run must complete, actually exercise hits, and stay correct.
#[test]
fn checked_mode_gates_every_hit() {
    for spec in suite(ModelSize::Small, true) {
        let instances = (spec.make_instances)(0xC4EC, 4);
        let reference = build(&spec, &CompileOptions::default());
        let want = reference.run(&spec.params, &instances).expect("reference").outputs;
        let checked =
            build(&spec, &CompileOptions::default().with_plan_cache(true).with_checked(true));
        checked.run(&spec.params, &instances).expect("checked warm-up");
        let steady = checked.run(&spec.params, &instances).expect("checked steady");
        assert!(steady.stats.plan_cache_hits > 0, "{}: checked steady run must hit", spec.name);
        assert_bit_identical(&spec, &want, &steady.outputs, "checked steady");
    }
}
