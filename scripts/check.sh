#!/usr/bin/env bash
# Full local gate: everything CI (and the repo's tier-1 bar) checks.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo bench --no-run"
cargo bench --no-run

echo "==> differential fuzz smoke (checked mode, fixed seed)"
cargo run --release -p acrobat-bench --bin fuzz -- --cases 50 --seed 1

echo "==> Engine is Send + Sync (compile-time assertion present)"
grep -q 'assert_send_sync::<Engine>' crates/runtime/src/engine.rs

echo "==> concurrent serving stress (single-threaded test runner)"
RUST_TEST_THREADS=1 cargo test -q -p acrobat-bench --test concurrent_serving

echo "==> concurrent serving stress (4 test threads)"
RUST_TEST_THREADS=4 cargo test -q -p acrobat-bench --test concurrent_serving

echo "==> serving throughput scaling (asserts >2x at 4 workers)"
cargo run --release -p acrobat-bench --bin serving_throughput -- --quick

echo "==> chaos serving (fault storms + deadlines + cancellation, 4 test threads)"
RUST_TEST_THREADS=4 cargo test -q -p acrobat-bench --test chaos_serving

echo "==> chaos smoke (seeded 50-case storm/deadline/cancel mix)"
cargo run --release -p acrobat-bench --bin chaos_sweep -- --smoke --cases 50 --seed 1

echo "==> timeline smoke (quick suite, asserts streams=1 vs streams=4 outputs identical)"
cargo run --release -p acrobat-bench --bin timeline_overlap -- --quick

echo "==> plan-cache smoke (steady-state hit rate >= 90%, cache-on == cache-off bit-for-bit)"
cargo test -q -p acrobat-bench --test plan_cache

echo "==> broker isolation (cohort == solo bit-for-bit across the quick suite, chaos peers survive)"
RUST_TEST_THREADS=4 cargo test -q -p acrobat-bench --test broker_isolation

echo "==> continuous batching smoke (open-loop Poisson trace: broker-on p99 + throughput strictly beat broker-off, ledger balances)"
cargo run --release -p acrobat-bench --bin continuous_batching -- --smoke

echo "==> backend identity smoke (specialized backend bit-identical to the interpreter, modeled stats invariant)"
cargo run --release -p acrobat-bench --bin kernel_backend -- --smoke

echo "==> kernel backend regression tests (PGO gating, checked mode, cache sharing, retune invalidation)"
cargo test -q -p acrobat-bench --test kernel_backend

echo "==> fiber determinism smoke (lane-canonical signatures invariant across worker counts)"
fiber_w1=$(cargo run --release -p acrobat-bench --bin fiber_determinism -- --workers 1)
fiber_w4=$(cargo run --release -p acrobat-bench --bin fiber_determinism -- --workers 4)
diff <(printf '%s\n' "$fiber_w1") <(printf '%s\n' "$fiber_w4") \
  || { echo "fiber signature/hit-rate JSON differs between worker counts"; exit 1; }

echo "All checks passed."
