#!/usr/bin/env bash
# Full local gate: everything CI (and the repo's tier-1 bar) checks.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo bench --no-run"
cargo bench --no-run

echo "==> differential fuzz smoke (checked mode, fixed seed)"
cargo run --release -p acrobat-bench --bin fuzz -- --cases 50 --seed 1

echo "All checks passed."
