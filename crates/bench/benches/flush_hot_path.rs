//! Flush hot-path benchmark: scheduler planning cost on large synthetic
//! DFGs, optimized implementations vs the straight transcriptions of the
//! seed algorithms (`scheduler::reference`).
//!
//! The optimized side measures `plan_into` with a reused
//! [`SchedulerScratch`] and [`Plan`] — exactly what
//! `ExecutionContext::flush` runs — so steady-state allocations are zero.  The reference side re-allocates
//! its `BTreeMap`s per call, as the seed did.  Recorded output:
//! `bench_results/flush_hot_path.txt`; with `--json` the per-benchmark
//! means additionally land in `bench_results/BENCH_flush_hot_path.json`.

use acrobat_codegen::KernelId;
use acrobat_runtime::scheduler::{self, reference, Plan, SchedulerScratch};
use acrobat_runtime::{Dfg, SchedulerKind};
use acrobat_tensor::{DeviceMem, Tensor};
use criterion::{criterion_group, BenchmarkId, Criterion};

/// Chain-structured DFG of ~`nodes` nodes: `nodes / DEPTH` instances, each
/// a 25-deep chain rotating over four kernels and two shared-operand
/// signatures — the shape a batched RNN/TreeLSTM flush sees.
fn synthetic_dfg(nodes: usize) -> Dfg {
    const DEPTH: usize = 25;
    let instances = nodes / DEPTH;
    let mut mem = DeviceMem::new(1 << 22);
    let mut dfg = Dfg::new();
    let x = mem.upload(&Tensor::ones(&[4])).unwrap();
    for i in 0..instances {
        let mut v = dfg.ready_value(x.clone());
        for d in 0..DEPTH {
            let (_, o) =
                dfg.add_node(KernelId((d % 4) as u32), i, d as u64, 0, (i % 2) as u64, vec![v], 1);
            v = o[0];
        }
    }
    dfg
}

const KINDS: [SchedulerKind; 3] =
    [SchedulerKind::InlineDepth, SchedulerKind::DynamicDepth, SchedulerKind::Agenda];

fn bench_size(c: &mut Criterion, nodes: usize, reference_agenda: bool) {
    let dfg = synthetic_dfg(nodes);
    let mut group = c.benchmark_group(format!("flush_hot_path_{}k", nodes / 1000));
    for kind in KINDS {
        group.bench_function(BenchmarkId::new("optimized", format!("{kind:?}")), |b| {
            let mut scratch = SchedulerScratch::new();
            let mut plan = Plan::default();
            b.iter(|| {
                scheduler::plan_into(kind, &dfg, &mut scratch, &mut plan);
                std::hint::black_box(plan.num_batches())
            });
        });
        if kind != SchedulerKind::Agenda || reference_agenda {
            group.bench_function(BenchmarkId::new("reference", format!("{kind:?}")), |b| {
                b.iter(|| std::hint::black_box(reference::plan(kind, &dfg).num_batches()));
            });
        } else {
            // Reference agenda rescans every remaining node per round
            // (O(rounds × n) BTree probes); at 100k nodes one call takes
            // seconds, so it is measured at 10k only.
            println!("flush_hot_path_{}k/reference/Agenda   skipped (quadratic)", nodes / 1000);
        }
    }
    group.finish();
}

fn bench_10k(c: &mut Criterion) {
    bench_size(c, 10_000, true);
}

fn bench_100k(c: &mut Criterion) {
    bench_size(c, 100_000, false);
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(1500))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_10k, bench_100k
}

fn main() {
    benches();
    if acrobat_bench::json_flag() {
        let records: Vec<acrobat_bench::JsonRecord> = criterion::take_results()
            .into_iter()
            .map(|r| acrobat_bench::JsonRecord::new(r.name, "mean_ns", r.mean_ns))
            .collect();
        acrobat_bench::write_bench_json("flush_hot_path", &records);
    }
}
