//! Flush hot-path benchmark: scheduler planning cost on large synthetic
//! DFGs — optimized implementations vs the straight transcriptions of the
//! seed algorithms (`scheduler::reference`), and the plan-cache path split
//! into warm-up (first-seen shape) and steady-state (repeated shape) so
//! cache wins are not averaged away.
//!
//! The `optimized` side measures `plan_into` with a reused
//! [`SchedulerScratch`] and [`Plan`] — exactly what a cache-off
//! `ExecutionContext::flush` runs.  `cached_warmup` clears both cache
//! levels every iteration (signature probe + fresh schedule + freeze +
//! publish); `cached_steady` probes a warmed cache and must hit every
//! iteration (signature check + O(n) remap).  Recorded output:
//! `bench_results/flush_hot_path.txt`; with `--json` the per-benchmark
//! means, per-scheduler `steady_speedup_vs_off` ratios and the measured
//! steady-state hit rate land in `bench_results/BENCH_flush_hot_path.json`.

use acrobat_codegen::KernelId;
use acrobat_runtime::plan_cache::{plan_cached, CacheConfig, CacheOutcome, PlanCache, PlanL1};
use acrobat_runtime::scheduler::{self, reference, Plan, SchedulerScratch};
use acrobat_runtime::{Dfg, SchedulerKind};
use acrobat_tensor::{DeviceMem, Tensor};
use criterion::{criterion_group, BenchmarkId, Criterion};

/// Chain-structured DFG of ~`nodes` nodes: `nodes / DEPTH` instances, each
/// a 25-deep chain rotating over four kernels and two shared-operand
/// signatures — the shape a batched RNN/TreeLSTM flush sees.  Signature
/// tracking is on (what a plan-cache-enabled context's DFG does).
fn synthetic_dfg(nodes: usize) -> Dfg {
    const DEPTH: usize = 25;
    let instances = nodes / DEPTH;
    let mut mem = DeviceMem::new(1 << 22);
    let mut dfg = Dfg::new();
    dfg.set_signature_tracking(true);
    let x = mem.upload(&Tensor::ones(&[4])).unwrap();
    for i in 0..instances {
        let mut v = dfg.ready_value(x.clone());
        for d in 0..DEPTH {
            let (_, o) =
                dfg.add_node(KernelId((d % 4) as u32), i, d as u64, 0, (i % 2) as u64, vec![v], 1);
            v = o[0];
        }
    }
    dfg
}

const KINDS: [SchedulerKind; 3] =
    [SchedulerKind::InlineDepth, SchedulerKind::DynamicDepth, SchedulerKind::Agenda];

fn cache_cfg(kind: SchedulerKind) -> CacheConfig {
    CacheConfig { kind, gather_fusion: true, coarsen: true, lane_cap: 0, share: true }
}

fn bench_size(c: &mut Criterion, nodes: usize, reference_agenda: bool) {
    let mut dfg = synthetic_dfg(nodes);
    let mut group = c.benchmark_group(format!("flush_hot_path_{}k", nodes / 1000));
    for kind in KINDS {
        group.bench_function(BenchmarkId::new("optimized", format!("{kind:?}")), |b| {
            let mut scratch = SchedulerScratch::new();
            let mut plan = Plan::default();
            b.iter(|| {
                scheduler::plan_into(kind, &dfg, &mut scratch, &mut plan);
                std::hint::black_box(plan.num_batches())
            });
        });
        group.bench_function(BenchmarkId::new("cached_warmup", format!("{kind:?}")), |b| {
            let shared = PlanCache::new();
            let mut l1 = PlanL1::new();
            let mut scratch = SchedulerScratch::new();
            let mut plan = Plan::default();
            let cfg = cache_cfg(kind);
            b.iter(|| {
                // First-seen shape: both cache levels are cold.
                l1.clear();
                shared.clear();
                let out = plan_cached(&cfg, &mut dfg, &mut scratch, &mut l1, &shared, &mut plan);
                debug_assert!(matches!(out, CacheOutcome::Miss { .. }));
                std::hint::black_box(plan.num_batches())
            });
        });
        group.bench_function(BenchmarkId::new("cached_steady", format!("{kind:?}")), |b| {
            let shared = PlanCache::new();
            let mut l1 = PlanL1::new();
            let mut scratch = SchedulerScratch::new();
            let mut plan = Plan::default();
            let cfg = cache_cfg(kind);
            // Warm once; every measured probe is a repeated shape.
            plan_cached(&cfg, &mut dfg, &mut scratch, &mut l1, &shared, &mut plan);
            b.iter(|| {
                let out = plan_cached(&cfg, &mut dfg, &mut scratch, &mut l1, &shared, &mut plan);
                debug_assert_eq!(out, CacheOutcome::Hit);
                std::hint::black_box(plan.num_batches())
            });
        });
        if kind != SchedulerKind::Agenda || reference_agenda {
            group.bench_function(BenchmarkId::new("reference", format!("{kind:?}")), |b| {
                b.iter(|| std::hint::black_box(reference::plan(kind, &dfg).num_batches()));
            });
        } else {
            // Reference agenda rescans every remaining node per round
            // (O(rounds × n) BTree probes); at 100k nodes one call takes
            // seconds, so it is measured at 10k only.
            println!("flush_hot_path_{}k/reference/Agenda   skipped (quadratic)", nodes / 1000);
        }
    }
    group.finish();
}

/// Measured steady-state hit rate: a warmed cache probed `probes` times.
fn steady_hit_rate(nodes: usize, probes: usize) -> f64 {
    let mut dfg = synthetic_dfg(nodes);
    let shared = PlanCache::new();
    let mut l1 = PlanL1::new();
    let mut scratch = SchedulerScratch::new();
    let mut plan = Plan::default();
    let cfg = cache_cfg(SchedulerKind::InlineDepth);
    plan_cached(&cfg, &mut dfg, &mut scratch, &mut l1, &shared, &mut plan);
    let mut hits = 0usize;
    for _ in 0..probes {
        if plan_cached(&cfg, &mut dfg, &mut scratch, &mut l1, &shared, &mut plan)
            == CacheOutcome::Hit
        {
            hits += 1;
        }
    }
    hits as f64 / probes as f64
}

fn bench_10k(c: &mut Criterion) {
    bench_size(c, 10_000, true);
}

fn bench_100k(c: &mut Criterion) {
    bench_size(c, 100_000, false);
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(1500))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_10k, bench_100k
}

fn main() {
    benches();
    if acrobat_bench::json_flag() {
        let results = criterion::take_results();
        let mut records: Vec<acrobat_bench::JsonRecord> = results
            .iter()
            .map(|r| acrobat_bench::JsonRecord::new(r.name.clone(), "mean_ns", r.mean_ns))
            .collect();
        // Steady-state repeated-shape speedup vs the cache-off scheduler,
        // per size and kind (the acceptance metric for plan memoization).
        let mean = |name: String| results.iter().find(|r| r.name == name).map(|r| r.mean_ns);
        for size in ["10k", "100k"] {
            let g = format!("flush_hot_path_{size}");
            for kind in KINDS {
                let off = mean(format!("{g}/optimized/{kind:?}"));
                let steady = mean(format!("{g}/cached_steady/{kind:?}"));
                if let (Some(off), Some(steady)) = (off, steady) {
                    records.push(acrobat_bench::JsonRecord::new(
                        format!("{g}/steady_speedup_vs_off/{kind:?}"),
                        "ratio",
                        off / steady,
                    ));
                }
            }
        }
        // Machine-readable hit rate of the warmed cache.
        records.push(acrobat_bench::JsonRecord::new(
            "flush_hot_path_10k/plan_cache",
            "steady_hit_rate",
            steady_hit_rate(10_000, 200),
        ));
        acrobat_bench::write_bench_json("flush_hot_path", &records);
    }
}
