//! Criterion micro-benchmarks for the hot paths behind the paper's numbers:
//! batched kernels (gather-fused vs explicit-gather), the three schedulers,
//! fiber coordination and the VM-vs-AOT dispatch gap.

use std::collections::BTreeMap;
use std::sync::Arc;

use acrobat_analysis::{analyze, AnalysisOptions};
use acrobat_codegen::KernelLibrary;
use acrobat_ir::{parse_module, typeck};
use acrobat_runtime::{scheduler, DeviceModel, Dfg, Engine, RuntimeOptions, SchedulerKind};
use acrobat_tensor::batch::{run_batched_prim, BatchArg, BatchMode};
use acrobat_tensor::{DeviceMem, PrimOp, Shape, Tensor};
use acrobat_vm::{BackendKind, Executable, InputValue};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_batched_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("batched_matmul_64x64_b32");
    for (name, mode) in
        [("gather_fused", BatchMode::GatherFused), ("explicit_gather", BatchMode::ExplicitGather)]
    {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter_batched(
                || {
                    let mut mem = DeviceMem::new(1 << 20);
                    let w = mem
                        .upload(&Tensor::from_fn(&[64, 64], |i| (i as f32 * 0.01).sin()))
                        .unwrap();
                    let mut xs = Vec::new();
                    for i in 0..32 {
                        xs.push(mem.upload(&Tensor::fill(&[1, 64], i as f32)).unwrap());
                        mem.alloc(&Shape::new(&[7])).unwrap(); // scatter
                    }
                    (mem, vec![BatchArg::Batched(xs), BatchArg::Shared(w)])
                },
                |(mut mem, args)| {
                    let (outs, _) =
                        run_batched_prim(&mut mem, &PrimOp::MatMul, &args, 32, mode).unwrap();
                    std::hint::black_box(outs.len())
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn chain_dfg(instances: usize, depth: usize) -> Dfg {
    let mut mem = DeviceMem::new(1 << 20);
    let mut dfg = Dfg::new();
    for i in 0..instances {
        let mut v = dfg.ready_value(mem.upload(&Tensor::ones(&[4])).unwrap());
        for d in 0..depth {
            let (_, o) = dfg.add_node(
                acrobat_codegen::KernelId((d % 3) as u32),
                i,
                d as u64,
                0,
                0,
                vec![v],
                1,
            );
            v = o[0];
        }
    }
    dfg
}

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_64x20");
    let dfg = chain_dfg(64, 20);
    for kind in [SchedulerKind::InlineDepth, SchedulerKind::DynamicDepth, SchedulerKind::Agenda] {
        group.bench_function(BenchmarkId::from_parameter(format!("{kind:?}")), |b| {
            b.iter(|| std::hint::black_box(scheduler::plan(kind, &dfg).num_batches()));
        });
    }
    group.finish();
}

const RNN_SRC: &str = r#"
    def @rnn(%xs: List[Tensor[(1, 16)]], %h: Tensor[(1, 16)], $w: Tensor[(32, 16)], $b: Tensor[(1, 16)]) -> Tensor[(1, 16)] {
        match %xs {
            Nil => %h,
            Cons(%x, %t) => @rnn(%t, tanh(add(matmul(concat[axis=1](%h, %x), $w), $b)), $w, $b)
        }
    }
    def @main($w: Tensor[(32, 16)], $b: Tensor[(1, 16)], $h0: Tensor[(1, 16)],
              %xs: List[Tensor[(1, 16)]]) -> Tensor[(1, 16)] {
        @rnn(%xs, $h0, $w, $b)
    }
"#;

fn build_exe(kind: BackendKind) -> Executable {
    let m = typeck::check_module(parse_module(RNN_SRC).unwrap()).unwrap();
    let a = Arc::new(analyze(m, AnalysisOptions::default()).unwrap());
    let lib = KernelLibrary::build(&a);
    let engine = Engine::new(a, lib, DeviceModel::default(), RuntimeOptions::default());
    Executable::new(engine, kind, 7).unwrap()
}

fn bench_vm_vs_aot(c: &mut Criterion) {
    let mut group = c.benchmark_group("program_execution_rnn16_b8x12");
    let params = BTreeMap::from([
        ("w".to_string(), Tensor::from_fn(&[32, 16], |i| ((i % 7) as f32 - 3.0) * 0.05)),
        ("b".to_string(), Tensor::zeros(&[1, 16])),
        ("h0".to_string(), Tensor::zeros(&[1, 16])),
    ]);
    let instances: Vec<Vec<InputValue>> = (0..8)
        .map(|i| {
            vec![InputValue::list(
                (0..12)
                    .map(|t| {
                        InputValue::Tensor(Tensor::from_fn(&[1, 16], |k| {
                            ((i * 31 + t * 7 + k) % 11) as f32 * 0.05
                        }))
                    })
                    .collect(),
            )]
        })
        .collect();
    for (name, kind) in [("aot", BackendKind::Aot), ("relay_vm", BackendKind::Vm)] {
        let exe = build_exe(kind);
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| std::hint::black_box(exe.run(&params, &instances).unwrap().stats.nodes));
        });
    }
    group.finish();
}

fn bench_fiber_roundtrip(c: &mut Criterion) {
    c.bench_function("fiber_suspend_resume_x8", |b| {
        b.iter(|| {
            let hub = Arc::new(acrobat_runtime::FiberHub::new());
            let mut handles = Vec::new();
            for _ in 0..8 {
                hub.register();
                let h = hub.clone();
                handles.push(std::thread::spawn(move || {
                    for _ in 0..4 {
                        h.wait_for_flush();
                    }
                    h.finish();
                }));
            }
            let mut flushes = 0u32;
            hub.drive(|| flushes += 1);
            for h in handles {
                h.join().unwrap();
            }
            std::hint::black_box(flushes)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_batched_matmul, bench_schedulers, bench_vm_vs_aot, bench_fiber_roundtrip
}
criterion_main!(benches);
