//! Table 4: DyNet vs ACROBAT inference latencies across the seven models,
//! two model sizes and batch sizes {8, 64}.
//!
//! Matches the paper's protocol: the better of DyNet's two schedulers per
//! configuration (footnote 7), identical seeded pseudo-randomness across
//! frameworks (§E.1), and a fixed simulated-device memory budget under
//! which DyNet's Berxit run at batch 64 exhausts memory (its explicit
//! gathers stage a second copy of every batched operand) while ACROBAT's
//! gather-fused kernels fit — reproducing the paper's OOM cells.

use acrobat_baselines::dynet::Improvements;
use acrobat_bench::{ms, print_table, quick_flag, run_acrobat, run_dynet, suite, BATCH_SIZES};
use acrobat_core::CompileOptions;
use acrobat_models::ModelSize;

fn main() {
    let quick = quick_flag();
    let seed = 0xACE0;
    // 512 MB of simulated device memory: enough for every configuration
    // except DyNet's gather-staged Berxit at batch 64.
    let device_memory: usize = 128 << 20;

    for size in [ModelSize::Small, ModelSize::Large] {
        let mut rows = Vec::new();
        for spec in suite(size, quick) {
            for batch in BATCH_SIZES {
                let batch = if quick { batch.min(8) } else { batch };
                let mut options = CompileOptions { ..Default::default() };
                options.runtime.device_memory = device_memory;
                let acrobat = run_acrobat(&spec, &options, batch, seed)
                    .unwrap_or_else(|e| panic!("{} acrobat: {e}", spec.name));
                let dynet = run_dynet(&spec, Improvements::default(), device_memory, batch, seed);
                let (dynet_ms, speedup) = match &dynet {
                    Ok(m) => (ms(m.ms), format!("{:.2}", m.ms / acrobat.ms)),
                    Err(e) if e == "OOM" => ("-".into(), "-".into()),
                    Err(e) => panic!("{} dynet: {e}", spec.name),
                };
                rows.push(vec![
                    spec.name.to_string(),
                    format!("{batch}"),
                    dynet_ms,
                    ms(acrobat.ms),
                    speedup,
                ]);
                eprintln!("done: {} {:?} batch {batch}", spec.name, size);
            }
        }
        print_table(
            &format!("Table 4 ({:?} model size): DyNet vs ACROBAT latencies (ms)", size),
            &["Model", "Batch", "DyNet", "ACROBAT", "Speedup"],
            &rows,
        );
    }
}
