//! `kernel_backend`: wall-clock comparison of the interpreter and the
//! specialized kernel backend (`acrobat_codegen::backend`).
//!
//! For every quick-suite model and batch size, the identical request is
//! served at steady state by two otherwise-identical models:
//!
//! * **interp** — the reference interpreter (`execute_prepared`), the
//!   default backend every figure/table regenerates under;
//! * **spec** — the specialized backend at compile threshold 1, so every
//!   launch after warmup runs a monomorphized, allocation-free compiled
//!   kernel (fused elementwise chains, flat register scratch).
//!
//! Times are **real wall-clock** (`std::time::Instant`), not modeled
//! virtual time: the backend only changes how the execute phase runs on
//! the host, so modeled statistics are backend-invariant by construction
//! (asserted — along with bit-for-bit output identity — before any
//! measurement is reported).  Numbers are honest 1-CPU numbers:
//! sequential execution (`parallel_workers = 0`), median of many
//! steady-state repeats after warmup (warmup absorbs the one-time
//! compiles).  Two wall-clock views per configuration:
//!
//! * `kexec_ms` — the kernel *execute* phase (`RuntimeStats::
//!   exec_wall_us`): exactly the work the backend replaces — interpreter
//!   dispatch vs compiled execution — excluding prepare/gather,
//!   scheduling and finish, which are shared verbatim by both backends;
//! * `flush_ms` — the flush host wall (`RuntimeStats::host_wall_us`:
//!   scheduling + prepare + execute);
//! * `e2e_ms` — a whole `Model::run` (adds per-instance program
//!   interpretation and DFG construction on top).
//!
//! Gate (asserted): at least two kernel-bound models reach ≥ 2× kernel
//! execute-phase speedup at their largest batch size.  The flush and e2e
//! columns stay in the artifact so the amortized effect is never
//! overstated — Amdahl applies, and the table shows by how much.
//!
//! Writes `bench_results/kernel_backend.txt` and
//! `bench_results/BENCH_kernel_backend.json`.  `--smoke` runs fewer
//! repeats and skips the files (used by `scripts/check.sh`).

use std::fmt::Write as _;
use std::time::Instant;

use acrobat_bench::{suite, write_bench_json, JsonRecord};
use acrobat_codegen::KernelBackendKind;
use acrobat_core::{compile, CompileOptions, Model};
use acrobat_models::{ModelSize, ModelSpec};

/// Instance batch sizes per request (the steady-state sweep).
const BATCH_SIZES: [usize; 2] = [8, 64];

struct Row {
    model: &'static str,
    batch: usize,
    interp_kexec_ms: f64,
    spec_kexec_ms: f64,
    interp_flush_ms: f64,
    spec_flush_ms: f64,
    interp_e2e_ms: f64,
    spec_e2e_ms: f64,
    /// Compiled `(kernel, size-class)` pairs resident after warmup.
    compiled: usize,
}

impl Row {
    fn kexec_speedup(&self) -> f64 {
        self.interp_kexec_ms / self.spec_kexec_ms
    }

    fn flush_speedup(&self) -> f64 {
        self.interp_flush_ms / self.spec_flush_ms
    }

    fn e2e_speedup(&self) -> f64 {
        self.interp_e2e_ms / self.spec_e2e_ms
    }
}

fn build(spec: &ModelSpec, backend: KernelBackendKind) -> Model {
    let options = match backend {
        KernelBackendKind::Interp => CompileOptions::default(),
        KernelBackendKind::Spec => {
            CompileOptions::default().with_kernel_backend(backend).with_spec_threshold(1)
        }
    };
    compile(&spec.source, &options).unwrap_or_else(|e| panic!("{} compiles: {e}", spec.name))
}

/// Median (kernel-execute wall ms, flush host wall ms, end-to-end wall ms)
/// over `repeats` steady-state runs (after `warmup` unmeasured runs).
fn measure(
    model: &Model,
    spec: &ModelSpec,
    instances: &[Vec<acrobat_vm::InputValue>],
    warmup: usize,
    repeats: usize,
) -> (f64, f64, f64) {
    for _ in 0..warmup {
        model.run(&spec.params, instances).expect("warmup run");
    }
    let mut kexec = Vec::with_capacity(repeats);
    let mut flush = Vec::with_capacity(repeats);
    let mut e2e = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let t0 = Instant::now();
        let r = model.run(&spec.params, instances).expect("measured run");
        e2e.push(t0.elapsed().as_secs_f64() * 1e3);
        kexec.push(r.stats.exec_wall_us / 1e3);
        flush.push(r.stats.host_wall_us / 1e3);
    }
    (median(&mut kexec), median(&mut flush), median(&mut e2e))
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (warmup, repeats) = if smoke { (2, 9) } else { (4, 31) };

    let mut rows: Vec<Row> = Vec::new();
    for spec in suite(ModelSize::Small, true) {
        for &batch in &BATCH_SIZES {
            let instances = (spec.make_instances)(0xBE2C ^ batch as u64, batch);

            let interp = build(&spec, KernelBackendKind::Interp);
            let specialized = build(&spec, KernelBackendKind::Spec);

            // Identity + invariance gates before any timing is trusted:
            // same bits, same modeled statistics.
            let want = interp.run(&spec.params, &instances).expect("interp run");
            let got = specialized.run(&spec.params, &instances).expect("spec run");
            let (wt, gt): (Vec<_>, Vec<_>) = (
                want.outputs.iter().flat_map(|o| (spec.flatten_output)(o)).collect(),
                got.outputs.iter().flat_map(|o| (spec.flatten_output)(o)).collect(),
            );
            assert_eq!(wt.len(), gt.len(), "{}: output tensor count", spec.name);
            for (a, b) in wt.iter().zip(&gt) {
                assert_eq!(a.data(), b.data(), "{}: backends diverged", spec.name);
            }
            assert_eq!(
                want.stats.kernel_launches, got.stats.kernel_launches,
                "{}: modeled launches are backend-invariant",
                spec.name
            );

            let (interp_kexec_ms, interp_flush_ms, interp_e2e_ms) =
                measure(&interp, &spec, &instances, warmup, repeats);
            let (spec_kexec_ms, spec_flush_ms, spec_e2e_ms) =
                measure(&specialized, &spec, &instances, warmup, repeats);
            let compiled = specialized.executable().session.engine().backend().compiled_count();
            assert!(compiled > 0, "{}: nothing compiled at threshold 1", spec.name);

            rows.push(Row {
                model: spec.name,
                batch,
                interp_kexec_ms,
                spec_kexec_ms,
                interp_flush_ms,
                spec_flush_ms,
                interp_e2e_ms,
                spec_e2e_ms,
                compiled,
            });
        }
    }

    let mut out = String::new();
    writeln!(out, "# kernel_backend — interpreter vs specialized backend, real wall-clock")
        .unwrap();
    writeln!(out, "#").unwrap();
    writeln!(out, "# Quick-suite models; per-request instance batch swept over {BATCH_SIZES:?}.")
        .unwrap();
    writeln!(
        out,
        "# 1-CPU (sequential execution); median of {repeats} steady-state runs after \
         {warmup} warmups (warmup absorbs the threshold-1 compiles)."
    )
    .unwrap();
    writeln!(
        out,
        "# kexec = kernel execute phase (what the backend replaces); flush = flush \
         host wall (scheduling + prepare + execute); e2e = whole Model::run.  \
         Outputs bit-identical and modeled stats backend-invariant (asserted \
         before timing)."
    )
    .unwrap();
    writeln!(out, "#").unwrap();
    writeln!(
        out,
        "{:>10}  {:>5}  {:>13}  {:>13}  {:>7}  {:>7}  {:>7}  {:>8}",
        "model", "batch", "interp_kexec", "spec_kexec", "kexec_x", "flush_x", "e2e_x", "compiled"
    )
    .unwrap();
    for r in &rows {
        writeln!(
            out,
            "{:>10}  {:>5}  {:>10.3} ms  {:>10.3} ms  {:>6.2}x  {:>6.2}x  {:>6.2}x  {:>8}",
            r.model,
            r.batch,
            r.interp_kexec_ms,
            r.spec_kexec_ms,
            r.kexec_speedup(),
            r.flush_speedup(),
            r.e2e_speedup(),
            r.compiled
        )
        .unwrap();
    }
    print!("{out}");

    // The acceptance gate: ≥ 2× kernel execute-phase wall-clock on at
    // least two kernel-bound models at their largest batch size.  Enforced
    // on full runs only — smoke runs too few repeats for stable medians on
    // a loaded machine, and their job is the identity/invariance asserts
    // above.
    let top_batch = *BATCH_SIZES.iter().max().unwrap();
    let fast: Vec<&Row> =
        rows.iter().filter(|r| r.batch == top_batch && r.kexec_speedup() >= 2.0).collect();
    if smoke {
        println!("\nbackend identity smoke passed (speedup gate runs on full runs)");
    } else {
        assert!(
            fast.len() >= 2,
            "gate: need >= 2 models at >= 2.0x kernel-execute speedup at batch {top_batch}, \
             got {}: {:?}",
            fast.len(),
            fast.iter().map(|r| (r.model, r.kexec_speedup())).collect::<Vec<_>>()
        );
        println!(
            "\nkernel backend gate passed: {} models >= 2.0x kernel-execute wall at batch \
             {top_batch} ({})",
            fast.len(),
            fast.iter()
                .map(|r| format!("{} {:.2}x", r.model, r.kexec_speedup()))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    if !smoke {
        std::fs::create_dir_all("bench_results").expect("bench_results dir");
        std::fs::write("bench_results/kernel_backend.txt", &out)
            .expect("write bench_results/kernel_backend.txt");
        eprintln!("wrote bench_results/kernel_backend.txt");

        let mut records = Vec::new();
        for r in &rows {
            let config = format!("{}/batch={}", r.model, r.batch);
            records.push(JsonRecord::new(&config, "interp_kexec_ms", r.interp_kexec_ms));
            records.push(JsonRecord::new(&config, "spec_kexec_ms", r.spec_kexec_ms));
            records.push(JsonRecord::new(&config, "kexec_speedup", r.kexec_speedup()));
            records.push(JsonRecord::new(&config, "interp_flush_ms", r.interp_flush_ms));
            records.push(JsonRecord::new(&config, "spec_flush_ms", r.spec_flush_ms));
            records.push(JsonRecord::new(&config, "flush_speedup", r.flush_speedup()));
            records.push(JsonRecord::new(&config, "interp_e2e_ms", r.interp_e2e_ms));
            records.push(JsonRecord::new(&config, "spec_e2e_ms", r.spec_e2e_ms));
            records.push(JsonRecord::new(&config, "e2e_speedup", r.e2e_speedup()));
            records.push(JsonRecord::new(&config, "compiled_kernels", r.compiled as f64));
        }
        write_bench_json("kernel_backend", &records);
    }
}
