//! Table 8: the DyNet improvements study — stock DyNet (DN), DyNet with the
//! §E.4 fixes applied (DN++: shape-based matmul batching + constant-tensor
//! reuse), and ACROBAT (AB), on TreeLSTM, MV-RNN and DRNN.

use acrobat_baselines::dynet::Improvements;
use acrobat_bench::{ms, print_table, quick_flag, run_acrobat, run_dynet, suite, BATCH_SIZES};
use acrobat_core::CompileOptions;
use acrobat_models::ModelSize;

fn main() {
    let quick = quick_flag();
    let seed = 0x88;
    // Ample memory: Table 8 compares latencies, all cells present.
    let mem = 512usize << 20;
    for size in [ModelSize::Small, ModelSize::Large] {
        let mut rows = Vec::new();
        for spec in suite(size, quick) {
            if !matches!(spec.name, "TreeLSTM" | "MV-RNN" | "DRNN") {
                continue;
            }
            for batch in BATCH_SIZES {
                let batch = if quick { batch.min(8) } else { batch };
                let dn = run_dynet(&spec, Improvements::default(), mem, batch, seed)
                    .unwrap_or_else(|e| panic!("{} DN: {e}", spec.name));
                let dnpp = run_dynet(&spec, Improvements::all(), mem, batch, seed)
                    .unwrap_or_else(|e| panic!("{} DN++: {e}", spec.name));
                let mut opts = CompileOptions { ..Default::default() };
                opts.runtime.device_memory = mem;
                let ab = run_acrobat(&spec, &opts, batch, seed)
                    .unwrap_or_else(|e| panic!("{} AB: {e}", spec.name));
                rows.push(vec![
                    spec.name.to_string(),
                    format!("{batch}"),
                    ms(dn.ms),
                    ms(dnpp.ms),
                    ms(ab.ms),
                ]);
                eprintln!("done: {} {:?} batch {batch}", spec.name, size);
            }
        }
        print_table(
            &format!("Table 8 ({size:?}): DyNet (DN) vs improved DyNet (DN++) vs ACROBAT (AB), ms"),
            &["Model", "Batch", "DN", "DN++", "AB"],
            &rows,
        );
    }
}
