//! Fig. 5: the benefit of each ACROBAT optimization — execution time for
//! every model (large size, batch 64) as optimizations accumulate:
//! none → +fusion → +coarsening → +inline depth → +phases/ghost ops →
//! +gather fusion.  Values are normalized to the unoptimized configuration
//! (lower is better).

use acrobat_bench::{print_table, quick_flag, run_acrobat, suite};
use acrobat_core::{CompileOptions, OptLevel};
use acrobat_models::ModelSize;

fn main() {
    let quick = quick_flag();
    let batch = if quick { 8 } else { 64 };
    let seed = 0xF5;
    let mut rows = Vec::new();
    for spec in suite(ModelSize::Large, quick) {
        let mut row = vec![spec.name.to_string()];
        let mut baseline = None;
        for level in OptLevel::ALL {
            let mut options = CompileOptions::at_level(level);
            options.runtime.device_memory = 256 << 20; // 1 GB simulated device
            match run_acrobat(&spec, &options, batch, seed) {
                Ok(m) => {
                    let base = *baseline.get_or_insert(m.ms);
                    row.push(format!("{:.2}", m.ms / base));
                }
                Err(e) if e.contains("out of memory") => {
                    // The paper's Fig. 5 has the same phenomenon: its
                    // unfused Berxit configurations were killed by OOM.
                    row.push("OOM".into());
                }
                Err(e) => panic!("{} {level:?}: {e}", spec.name),
            }
        }
        eprintln!("done: {}", spec.name);
        rows.push(row);
    }
    let headers: Vec<&str> =
        std::iter::once("Model").chain(OptLevel::ALL.iter().map(|l| l.label())).collect();
    print_table(
        &format!(
            "Fig. 5: normalized execution time as optimizations accumulate (large, batch {batch})"
        ),
        &headers,
        &rows,
    );
    println!(
        "\n(values normalized to the leftmost non-OOM configuration; each column adds one optimization.\n OOM = killed by simulated-device memory exhaustion, as the paper's unfused Berxit was.)"
    );
}
