//! Fig. 9: speedups over PyTorch-style eager execution for TreeLSTM,
//! MV-RNN and BiRNN (§E.3).  PyTorch performs no auto-batching, so the
//! speedup reflects the batch/instance parallelism ACROBAT recovers; it is
//! larger at the small model size, where per-operator parallelism is too
//! low to saturate the device.

use acrobat_baselines::pytorch;
use acrobat_bench::{instances_for, print_table, quick_flag, run_acrobat, suite, BATCH_SIZES};
use acrobat_core::CompileOptions;
use acrobat_models::ModelSize;

fn main() {
    let quick = quick_flag();
    let seed = 0xF9;
    let mut rows = Vec::new();
    for size in [ModelSize::Small, ModelSize::Large] {
        for spec in suite(size, quick) {
            if !matches!(spec.name, "TreeLSTM" | "MV-RNN" | "BiRNN") {
                continue;
            }
            for batch in BATCH_SIZES {
                let batch = if quick { batch.min(8) } else { batch };
                let instances = instances_for(&spec, seed, batch);
                let pt = pytorch::run(&spec.source, &spec.params, &instances)
                    .unwrap_or_else(|e| panic!("{} pytorch: {e}", spec.name));
                let ab = run_acrobat(&spec, &CompileOptions::default(), batch, seed)
                    .unwrap_or_else(|e| panic!("{} acrobat: {e}", spec.name));
                rows.push(vec![
                    spec.name.to_string(),
                    format!("{size:?}"),
                    format!("{batch}"),
                    format!("{:.1}", pt.stats.total_ms()),
                    format!("{:.2}", ab.ms),
                    format!("{:.1}x", pt.stats.total_ms() / ab.ms),
                ]);
                eprintln!("done: {} {size:?} batch {batch}", spec.name);
            }
        }
    }
    print_table(
        "Fig. 9: ACROBAT speedup over PyTorch-style eager execution",
        &["Model", "Size", "Batch", "PyTorch (ms)", "ACROBAT (ms)", "Speedup"],
        &rows,
    );
}
