//! Table 5: runtime-activity breakdown for DyNet and ACROBAT — TreeLSTM
//! (small) and BiRNN (large) at batch size 64.

use acrobat_baselines::dynet::Improvements;
use acrobat_bench::{print_table, quick_flag, run_acrobat, run_dynet};
use acrobat_core::{CompileOptions, RuntimeStats};
use acrobat_models::{birnn, treelstm, ModelSize};

fn breakdown(name: &str, stats: &RuntimeStats) -> Vec<Vec<String>> {
    let f = |v: f64| format!("{:.1}", v / 1000.0);
    vec![
        vec!["DFG construction (ms)".into(), name.into(), f(stats.dfg_construction_us)],
        vec!["Scheduling (ms)".into(), name.into(), f(stats.scheduling_us)],
        vec!["Mem. copy time (ms)".into(), name.into(), f(stats.memcpy_us)],
        vec!["GPU kernel time (ms)".into(), name.into(), f(stats.kernel_time_us)],
        vec!["#Kernel calls".into(), name.into(), format!("{}", stats.kernel_launches)],
        vec!["CUDA API time (ms)".into(), name.into(), f(stats.cuda_api_us)],
        vec!["#DFG nodes".into(), name.into(), format!("{}", stats.nodes)],
    ]
}

fn main() {
    let quick = quick_flag();
    let batch = if quick { 8 } else { 64 };
    let seed = 0x7AB5;
    let configs = [
        ("TreeLSTM small", treelstm::spec(ModelSize::Small), treelstm::spec_with(16, 5)),
        ("BiRNN large", birnn::spec(ModelSize::Large), birnn::spec_with(16, 3)),
    ];
    for (label, full, small) in configs {
        let spec = if quick { small } else { full };
        let acrobat = run_acrobat(&spec, &CompileOptions::default(), batch, seed)
            .unwrap_or_else(|e| panic!("{label} acrobat: {e}"));
        let dynet = run_dynet(&spec, Improvements::default(), 128 << 20, batch, seed)
            .unwrap_or_else(|e| panic!("{label} dynet: {e}"));
        let mut rows = breakdown("DyNet", &dynet.stats);
        rows.extend(breakdown("ACROBAT", &acrobat.stats));
        rows.sort_by(|a, b| a[0].cmp(&b[0]).then(a[1].cmp(&b[1])));
        print_table(
            &format!("Table 5: activity breakdown — {label}, batch {batch}"),
            &["Activity", "Framework", "Value"],
            &rows,
        );
    }
}
