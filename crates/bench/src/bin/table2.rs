//! Table 2: the control-flow property survey, verified against the actual
//! model programs — properties are *detected from the IR* (recursion, sync
//! intrinsics, `parallel`/`map` annotations) and cross-checked against the
//! declared properties of each model spec.

use acrobat_bench::{print_table, suite};
use acrobat_ir::{parse_module, typeck, Callee, ExprKind};
use acrobat_models::ModelSize;

fn main() {
    let mut rows = Vec::new();
    for spec in suite(ModelSize::Small, true) {
        let module =
            typeck::check_module(parse_module(&spec.source).expect("parse")).expect("typecheck");
        let mut recursive = false;
        let mut tdc = false;
        let mut parallel = false;
        for (name, f) in &module.functions {
            acrobat_ir::ast::visit_exprs(&f.body, &mut |e| match &e.kind {
                ExprKind::Sync { .. } => tdc = true,
                ExprKind::Parallel(_) | ExprKind::Map { .. } => parallel = true,
                ExprKind::Call { callee: Callee::Global(n), .. } if n == name => recursive = true,
                _ => {}
            });
        }
        let tick = |b: bool| if b { "yes" } else { "" }.to_string();
        // Cross-check detection against the declared properties.  All
        // repetitive control flow (iterative or recursive) is *encoded* as
        // recursion in the functional frontend — exactly like the paper's
        // Listing 1 RNN — so syntactic recursion appears whenever the model
        // is repetitive at all.
        assert!(
            !recursive || spec.properties.recursive || spec.properties.iterative || tdc,
            "{}: unexplained recursion",
            spec.name
        );
        assert_eq!(tdc, spec.properties.tensor_dependent, "{}: TDC", spec.name);
        rows.push(vec![
            spec.name.to_string(),
            tick(spec.properties.iterative),
            tick(spec.properties.recursive),
            tick(tdc),
            tick(parallel && spec.properties.instance_parallel),
        ]);
    }
    print_table(
        "Table 2 (evaluated subset): control-flow properties detected from the model IR",
        &["Model", "Iterative", "Recursive", "Tensor-dep.", "Instance-parallel"],
        &rows,
    );
    println!("\nAll detections match the declared Table 2 properties (asserted).");
}
