//! `chaos_sweep`: resilience under fault storms, swept over fault rates.
//!
//! Serves a fixed request load against one shared model while every
//! request carries a seeded probabilistic fault storm
//! (`FaultMode::Rate`) on its kernel launches, with transient-fault
//! retry enabled.  Swept over storm rates p ∈ {0, 0.1%, 1%, 5%}, the
//! table reports, per rate: how many requests completed vs failed, how
//! many were *rescued* by retry (observed a fault yet still completed
//! bit-for-bit), total retries and aborted flushes, batch-size
//! downshifts, quarantined contexts, and the mean modeled latency of
//! completed requests — which grows with p as retry backoff is charged
//! to the device cost model.
//!
//! Every completed request is checked bit-for-bit against a fault-free
//! serial reference, and the session outcome ledger is checked for
//! consistency at every rate.  Writes `bench_results/chaos_sweep.txt`.
//!
//! `--smoke [--cases N] [--seed S]` runs a seeded N-case chaos mix
//! instead (storms + zero deadlines + pre-cancelled tokens, the same
//! disruption palette as `tests/chaos_serving.rs`), asserting the full
//! lifecycle invariants; it is wired into `scripts/check.sh` as the
//! chaos smoke gate.

use std::fmt::Write as _;

use acrobat_bench::suite;
use acrobat_core::{
    compile, CompileOptions, FaultPlan, Model, RetryPolicy, RunOptions, Tensor, VmError,
};
use acrobat_models::{ModelSize, ModelSpec};
use acrobat_runtime::CancelToken;
use acrobat_tensor::TensorError;
use acrobat_vm::OutputValue;

/// Swept storm probabilities per kernel launch.
const RATES: [(f64, &str); 4] = [(0.0, "0%"), (0.001, "0.1%"), (0.01, "1%"), (0.05, "5%")];

fn build(spec: &ModelSpec) -> Model {
    let mut options = CompileOptions::default();
    options.runtime.retry = RetryPolicy { max_retries: 3, backoff_base_us: 10.0 };
    compile(&spec.source, &options).expect("model compiles")
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn outputs_equal(spec: &ModelSpec, reference: &[OutputValue], got: &[OutputValue]) -> bool {
    reference.len() == got.len()
        && reference.iter().zip(got).all(|(r, g)| {
            let (rt, gt) = ((spec.flatten_output)(r), (spec.flatten_output)(g));
            rt.len() == gt.len()
                && rt.iter().zip(&gt).all(|(a, b): (&Tensor, &Tensor)| a.data() == b.data())
        })
}

struct SweepRow {
    label: &'static str,
    completed: u64,
    failed: u64,
    rescued: u64,
    retries: u64,
    aborted: u64,
    downshifts: u64,
    quarantined: u64,
    mean_latency_ms: f64,
}

fn sweep_rate(
    spec: &ModelSpec,
    reference: &[OutputValue],
    rate: f64,
    label: &'static str,
    requests: u64,
) -> SweepRow {
    let model = build(spec);
    let instances = (spec.make_instances)(0xC8A0, 4);
    let mut completed = Vec::new();
    let mut failed = 0u64;
    for storm_seed in 0..requests {
        let mut opts = RunOptions::default();
        if rate > 0.0 {
            let plan = format!("launch:rate={rate}@{storm_seed}:kernel");
            opts.fault = Some(FaultPlan::parse(&plan).expect("storm plan parses"));
        }
        match model.run_with(&spec.params, &instances, &opts) {
            Ok(r) => {
                assert!(
                    outputs_equal(spec, reference, &r.outputs),
                    "{label}: completed request diverged from fault-free reference"
                );
                completed.push(r.stats);
            }
            Err(e) => {
                assert!(
                    matches!(e.as_vm(), Some(VmError::Tensor(TensorError::Injected { .. }))),
                    "{label}: storm failure has wrong class: {e}"
                );
                failed += 1;
            }
        }
    }
    let outcomes = model.outcomes();
    assert_eq!(outcomes.total(), requests, "{label}: ledger covers every request");
    assert_eq!(outcomes.completed, completed.len() as u64, "{label}: completed count");
    assert_eq!(outcomes.failed, failed, "{label}: failed count");
    assert_eq!(model.runs_completed(), outcomes.completed, "{label}: merged runs");

    let rescued = completed.iter().filter(|s| s.aborted_flushes > 0).count() as u64;
    let mean_latency_ms = if completed.is_empty() {
        0.0
    } else {
        completed.iter().map(|s| s.total_us()).sum::<f64>() / completed.len() as f64 / 1e3
    };
    SweepRow {
        label,
        completed: completed.len() as u64,
        failed,
        rescued,
        retries: completed.iter().map(|s| s.retries).sum(),
        aborted: completed.iter().map(|s| s.aborted_flushes).sum(),
        downshifts: completed.iter().map(|s| s.downshifts).sum(),
        quarantined: model.quarantined_count(),
        mean_latency_ms,
    }
}

fn run_sweep(requests: u64) {
    let spec = suite(ModelSize::Small, true).remove(0);
    let reference_model = build(&spec);
    let instances = (spec.make_instances)(0xC8A0, 4);
    let reference =
        reference_model.run(&spec.params, &instances).expect("fault-free reference").outputs;

    let rows: Vec<SweepRow> = RATES
        .iter()
        .map(|&(rate, label)| sweep_rate(&spec, &reference, rate, label, requests))
        .collect();

    assert_eq!(rows[0].failed, 0, "p=0 must not fail");
    assert_eq!(rows[0].retries, 0, "p=0 must not retry");

    let mut out = String::new();
    writeln!(out, "# chaos_sweep — request survival vs kernel-launch fault rate").unwrap();
    writeln!(out, "#").unwrap();
    writeln!(
        out,
        "# Model: {} (quick dims), batch 4, {requests} requests per rate, retry",
        spec.name
    )
    .unwrap();
    writeln!(out, "# policy: max_retries=3, backoff 10us base (charged as modeled time).").unwrap();
    writeln!(out, "# Every completed request is bit-for-bit identical to a fault-free").unwrap();
    writeln!(out, "# serial reference; 'rescued' counts completions that observed at").unwrap();
    writeln!(out, "# least one injected fault and survived via retry.  'quarantined'").unwrap();
    writeln!(out, "# counts contexts the pool dropped instead of recycling (every").unwrap();
    writeln!(out, "# fault-observing run).  Mean latency is modeled ms over completed").unwrap();
    writeln!(out, "# requests and includes retry backoff.").unwrap();
    writeln!(out, "#").unwrap();
    writeln!(
        out,
        "{:>6}  {:>9}  {:>6}  {:>7}  {:>7}  {:>7}  {:>10}  {:>11}  {:>15}",
        "rate",
        "completed",
        "failed",
        "rescued",
        "retries",
        "aborted",
        "downshifts",
        "quarantined",
        "mean_latency_ms"
    )
    .unwrap();
    for r in &rows {
        writeln!(
            out,
            "{:>6}  {:>9}  {:>6}  {:>7}  {:>7}  {:>7}  {:>10}  {:>11}  {:>15.3}",
            r.label,
            r.completed,
            r.failed,
            r.rescued,
            r.retries,
            r.aborted,
            r.downshifts,
            r.quarantined,
            r.mean_latency_ms
        )
        .unwrap();
    }
    print!("{out}");

    std::fs::create_dir_all("bench_results").expect("bench_results dir");
    std::fs::write("bench_results/chaos_sweep.txt", out)
        .expect("write bench_results/chaos_sweep.txt");
    eprintln!("wrote bench_results/chaos_sweep.txt");
}

/// Seeded chaos smoke: a deterministic mix of storms, zero deadlines and
/// pre-cancelled tokens, asserting the full lifecycle invariants.  Panics
/// (nonzero exit) on any violation.
fn run_smoke(cases: u64, seed: u64) {
    let spec = suite(ModelSize::Small, true).remove(0);
    let reference_model = build(&spec);
    let instances = (spec.make_instances)(0xC8A0, 4);
    let reference =
        reference_model.run(&spec.params, &instances).expect("fault-free reference").outputs;

    let model = build(&spec);
    let mut completed = Vec::new();
    let (mut failed, mut cancelled, mut deadline) = (0u64, 0u64, 0u64);
    for case in 0..cases {
        let mut s = seed ^ (case << 8);
        let mut opts = RunOptions::default();
        let kind = splitmix(&mut s) % 8;
        match kind {
            0..=2 => {
                let plan = format!("launch:rate=2%@{}:kernel", splitmix(&mut s));
                opts.fault = Some(FaultPlan::parse(&plan).expect("storm plan parses"));
            }
            3 => opts.deadline_us = Some(0.0),
            4 => {
                let token = CancelToken::new();
                token.cancel();
                opts.cancel = Some(token);
            }
            _ => {}
        }
        match model.run_with(&spec.params, &instances, &opts) {
            Ok(r) => {
                assert!(kind <= 2 || kind >= 5, "case {case}: kind {kind} must not complete");
                assert!(
                    outputs_equal(&spec, &reference, &r.outputs),
                    "case {case}: survivor diverged from fault-free reference"
                );
                completed.push(r.stats);
            }
            Err(e) => match kind {
                0..=2 => {
                    assert!(
                        matches!(e.as_vm(), Some(VmError::Tensor(TensorError::Injected { .. }))),
                        "case {case}: storm failure class: {e}"
                    );
                    failed += 1;
                }
                3 => {
                    assert!(e.is_deadline_exceeded(), "case {case}: deadline class: {e}");
                    deadline += 1;
                }
                4 => {
                    assert!(e.is_cancelled(), "case {case}: cancel class: {e}");
                    cancelled += 1;
                }
                _ => panic!("case {case}: clean request failed: {e}"),
            },
        }
    }

    let outcomes = model.outcomes();
    assert_eq!(outcomes.total(), cases, "ledger covers every case");
    assert_eq!(outcomes.completed, completed.len() as u64);
    assert_eq!(outcomes.failed, failed);
    assert_eq!(outcomes.cancelled, cancelled);
    assert_eq!(outcomes.deadline_exceeded, deadline);
    assert_eq!(model.runs_completed(), outcomes.completed);
    let rescued = completed.iter().filter(|s| s.aborted_flushes > 0).count() as u64;
    assert_eq!(model.quarantined_count(), failed + cancelled + deadline + rescued);

    // The model stays healthy after the storm.
    let after = model.run(&spec.params, &instances).expect("run after smoke").outputs;
    assert!(outputs_equal(&spec, &reference, &after), "post-chaos run diverged");

    println!(
        "chaos smoke: {cases} cases (seed {seed}): {} completed ({rescued} rescued by retry), \
         {failed} failed, {cancelled} cancelled, {deadline} deadline-exceeded — all classified \
         correctly, ledger consistent",
        completed.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(|v| {
            v.parse::<u64>().unwrap_or_else(|_| panic!("{name} expects an integer, got {v:?}"))
        })
    };
    if flag("--smoke") {
        run_smoke(value("--cases").unwrap_or(50), value("--seed").unwrap_or(1));
    } else {
        run_sweep(value("--requests").unwrap_or(32));
    }
}
