//! `continuous_batching`: open-loop serving latency with and without
//! cross-request continuous batching (`acrobat_vm::broker`).
//!
//! A seeded Poisson arrival process offers requests to `K` concurrent
//! serving streams (pooled execution contexts) at ~1.25× the streams'
//! solo capacity, so a queue genuinely builds.  Two disciplines serve the
//! identical trace:
//!
//! * **broker=off** — each stream takes one queued request at a time and
//!   runs it solo (today's per-request batching).
//! * **broker=on** — a free stream drains the whole queue (capped) into
//!   one cohort and executes it as a single merged mini-batch via
//!   [`run_cohort`](acrobat_core::Model::run_cohort): shared flush plans,
//!   shared batched launches, demuxed per-request results.
//!
//! Time is **modeled virtual time** (repo convention, DESIGN.md §1): a
//! request's service cost is its modeled `total_us`, a cohort's is the
//! merged run's total — which is where continuous batching wins, since a
//! cohort of `m` requests costs far less than `m` solo runs.  The
//! simulation is deterministic end to end: seeded arrivals, modeled
//! service times, no wall-clock anywhere.
//!
//! SLO-aware admission uses the existing [`Deadline`] machinery: every
//! request carries a fixed latency budget; requests whose budget is
//! already exhausted when a stream picks them up are shed at dispatch, and
//! admitted requests pass their *remaining* budget as `deadline_us`, so a
//! request that waited too long misses its deadline inside the runtime
//! (aborting a cohort peels every member to the solo fallback — peers
//! complete, the expired member misses).
//!
//! Every completed broker-on request's outputs are diffed bit-for-bit
//! against its solo run.  Gates (asserted): at every stream count,
//! broker-on p99 latency is strictly below broker-off and throughput is
//! strictly above; the ledger balances (every dispatched request lands in
//! exactly one outcome bucket, completions merge stats exactly once).
//!
//! Writes `bench_results/continuous_batching.txt` and
//! `bench_results/BENCH_continuous_batching.json`.  `--smoke` runs a
//! smaller trace with the same gates (used by `scripts/check.sh`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use acrobat_bench::{suite, write_bench_json, JsonRecord};
use acrobat_core::{compile, CompileOptions, Model, RunOptions};
use acrobat_models::{ModelSize, ModelSpec};
use acrobat_vm::{CohortRequest, InputValue, OutputValue};

/// Streams (pooled contexts) per configuration; the ISSUE gate is "at
/// least 2 concurrent streams", covered by both entries.
const STREAM_COUNTS: [usize; 2] = [2, 4];
/// Largest cohort one dispatch may drain (bounds device residency).
const MAX_COHORT: usize = 8;
/// Offered load relative to solo capacity (> 1 so queues build).
const OFFERED_LOAD: f64 = 1.25;
/// SLO latency budget, in multiples of the mean solo service time.
const SLO_FACTOR: f64 = 25.0;

/// splitmix64 — the workspace's standard seeded PRNG recurrence.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Exponential interarrival with the given mean (inverse CDF over a
    /// uniform in (0, 1]; never zero).
    fn exp(&mut self, mean: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        -mean * (1.0 - u).max(1e-12).ln()
    }
}

struct SimResult {
    label: &'static str,
    streams: usize,
    completed: usize,
    shed: usize,
    deadline_misses: usize,
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
    throughput_rps: f64,
    /// Dispatch-size histogram (broker-on only; off is all-1 by design).
    cohort_sizes: BTreeMap<usize, u64>,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

#[allow(clippy::too_many_arguments)]
fn finish(
    label: &'static str,
    streams: usize,
    mut latencies_us: Vec<f64>,
    shed: usize,
    deadline_misses: usize,
    first_arrival: f64,
    last_done: f64,
    cohort_sizes: BTreeMap<usize, u64>,
) -> SimResult {
    latencies_us.sort_by(|a, b| a.total_cmp(b));
    let span_s = (last_done - first_arrival).max(1e-9) / 1e6;
    SimResult {
        label,
        streams,
        completed: latencies_us.len(),
        shed,
        deadline_misses,
        p50_ms: percentile(&latencies_us, 0.50) / 1e3,
        p99_ms: percentile(&latencies_us, 0.99) / 1e3,
        p999_ms: percentile(&latencies_us, 0.999) / 1e3,
        throughput_rps: latencies_us.len() as f64 / span_s,
        cohort_sizes,
    }
}

/// Index of the earliest-free stream.
fn earliest(free: &[f64]) -> usize {
    let mut k = 0;
    for (i, t) in free.iter().enumerate() {
        if *t < free[k] {
            k = i;
        }
    }
    k
}

/// Broker-off discipline: FIFO, one request per stream at a time, solo
/// service times (precomputed — solo modeled cost is deterministic).
fn simulate_off(arrivals: &[f64], solo_us: &[f64], streams: usize, slo_us: f64) -> SimResult {
    let mut free = vec![0.0f64; streams];
    let mut latencies = Vec::new();
    let (mut shed, mut misses) = (0usize, 0usize);
    let mut last_done = 0.0f64;
    for (i, &arrive) in arrivals.iter().enumerate() {
        let k = earliest(&free);
        let start = free[k].max(arrive);
        let wait = start - arrive;
        if wait >= slo_us {
            shed += 1;
            continue;
        }
        let remaining = slo_us - wait;
        if solo_us[i] > remaining {
            // The run spends its whole remaining budget, then the virtual
            // deadline aborts it.
            misses += 1;
            free[k] = start + remaining;
        } else {
            let done = start + solo_us[i];
            free[k] = done;
            latencies.push(done - arrive);
            last_done = last_done.max(done);
        }
    }
    finish("off", streams, latencies, shed, misses, arrivals[0], last_done, BTreeMap::new())
}

/// Broker-on discipline: a free stream drains every arrived request
/// (capped at [`MAX_COHORT`]) into one cohort and runs it merged.
#[allow(clippy::too_many_arguments)]
fn simulate_on(
    model: &Model,
    spec: &ModelSpec,
    requests: &[Vec<Vec<InputValue>>],
    solo_outputs: &[Vec<OutputValue>],
    arrivals: &[f64],
    streams: usize,
    slo_us: f64,
) -> SimResult {
    let mut free = vec![0.0f64; streams];
    let mut latencies = Vec::new();
    let (mut shed, mut misses) = (0usize, 0usize);
    let mut last_done = 0.0f64;
    let mut cohort_sizes: BTreeMap<usize, u64> = BTreeMap::new();
    let mut next = 0usize;
    while next < arrivals.len() {
        let k = earliest(&free);
        let t = free[k].max(arrivals[next]);
        // Drain the queue as of `t`, shedding requests whose SLO budget is
        // already gone (admission control at dispatch).
        let mut members: Vec<usize> = Vec::new();
        while next < arrivals.len() && arrivals[next] <= t && members.len() < MAX_COHORT {
            if t - arrivals[next] >= slo_us {
                shed += 1;
            } else {
                members.push(next);
            }
            next += 1;
        }
        if members.is_empty() {
            continue;
        }
        *cohort_sizes.entry(members.len()).or_default() += 1;
        let cohort: Vec<CohortRequest<'_>> = members
            .iter()
            .map(|&i| CohortRequest {
                params: &spec.params,
                instances: &requests[i],
                opts: RunOptions {
                    deadline_us: Some(slo_us - (t - arrivals[i])),
                    ..RunOptions::default()
                },
            })
            .collect();
        let results = model.run_cohort(&cohort);
        // Service time: the sum of the members' demuxed totals is exactly
        // the merged run's modeled total; a deadline-missed member spent
        // its remaining budget before aborting.
        let mut service = 0.0f64;
        let mut done_members = Vec::new();
        for (&i, result) in members.iter().zip(results) {
            match result {
                Ok(run) => {
                    service += run.stats.total_us();
                    done_members.push((i, run.outputs));
                }
                Err(e) => {
                    assert!(
                        matches!(e, acrobat_vm::VmError::DeadlineExceeded { .. }),
                        "open-loop member {i} failed for a non-deadline reason: {e}"
                    );
                    misses += 1;
                    service += slo_us - (t - arrivals[i]);
                }
            }
        }
        let done = t + service;
        free[k] = done;
        for (i, outputs) in done_members {
            assert_outputs_equal(spec, &solo_outputs[i], &outputs, i);
            latencies.push(done - arrivals[i]);
            last_done = last_done.max(done);
        }
    }
    finish("on", streams, latencies, shed, misses, arrivals[0], last_done, cohort_sizes)
}

/// Bit-for-bit diff of a broker-on request's outputs against its solo run.
fn assert_outputs_equal(
    spec: &ModelSpec,
    reference: &[OutputValue],
    got: &[OutputValue],
    request: usize,
) {
    assert_eq!(reference.len(), got.len(), "request {request}: instance count");
    for (inst, (r, g)) in reference.iter().zip(got).enumerate() {
        let (rt, gt) = ((spec.flatten_output)(r), (spec.flatten_output)(g));
        for (j, (a, b)) in rt.iter().zip(&gt).enumerate() {
            assert_eq!(
                a.data(),
                b.data(),
                "request {request} instance {inst} tensor {j}: broker-on diverged from solo"
            );
        }
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n = if smoke { 150 } else { 600 };
    let batch = 2;
    let spec: ModelSpec = suite(ModelSize::Small, true)
        .into_iter()
        .find(|s| s.properties.tensor_dependent)
        .expect("a tensor-dependent quick model");

    // Per-request mini-batches (distinct inputs per request) and their solo
    // reference runs: outputs for the bit-identity diff, modeled totals for
    // the broker-off service times and the load calibration.
    let reference_model =
        compile(&spec.source, &CompileOptions::default()).expect("reference model compiles");
    let requests: Vec<Vec<Vec<InputValue>>> =
        (0..n).map(|i| (spec.make_instances)(0xA11CE ^ i as u64, batch)).collect();
    let mut solo_outputs = Vec::with_capacity(n);
    let mut solo_us = Vec::with_capacity(n);
    for inst in &requests {
        let run = reference_model.run(&spec.params, inst).expect("solo reference");
        solo_outputs.push(run.outputs);
        solo_us.push(run.stats.total_us());
    }
    let mean_us: f64 = solo_us.iter().sum::<f64>() / n as f64;
    let slo_us = SLO_FACTOR * mean_us;

    let mut rows: Vec<SimResult> = Vec::new();
    let mut shared_by_streams: Vec<(usize, u64, u64, u64)> = Vec::new();
    for &streams in &STREAM_COUNTS {
        // One Poisson trace per stream count, served by both disciplines.
        let mut rng = Rng::new(0x0417 + streams as u64);
        let mean_inter = mean_us / (OFFERED_LOAD * streams as f64);
        let mut arrivals = Vec::with_capacity(n);
        let mut now = 0.0f64;
        for _ in 0..n {
            now += rng.exp(mean_inter);
            arrivals.push(now);
        }

        let off = simulate_off(&arrivals, &solo_us, streams, slo_us);
        // A fresh model per configuration keeps the ledger exactly this
        // configuration's traffic.
        let model = compile(&spec.source, &CompileOptions::default()).expect("model compiles");
        let on = simulate_on(&model, &spec, &requests, &solo_outputs, &arrivals, streams, slo_us);

        // Ledger balance: every dispatched request in exactly one bucket,
        // completions merged exactly once.
        let outcomes = model.outcomes();
        assert_eq!(
            outcomes.completed as usize, on.completed,
            "streams={streams}: ledger completions"
        );
        assert_eq!(
            outcomes.total() as usize,
            on.completed + on.deadline_misses,
            "streams={streams}: every dispatched request lands in one outcome bucket"
        );
        assert_eq!(
            model.runs_completed() as usize,
            on.completed,
            "streams={streams}: stats merged once per completion"
        );
        let agg = model.stats();
        assert!(agg.shared_flushes > 0, "streams={streams}: no flush ever co-batched requests");
        shared_by_streams.push((
            streams,
            agg.shared_flushes,
            agg.solo_flushes,
            on.cohort_sizes.iter().filter(|(s, _)| **s >= 2).map(|(s, c)| *s as u64 * c).sum(),
        ));

        // The tentpole gates: strictly better p99 AND throughput at every
        // stream count.
        assert!(
            on.p99_ms < off.p99_ms,
            "streams={streams}: broker-on p99 {:.3} ms must beat broker-off {:.3} ms",
            on.p99_ms,
            off.p99_ms
        );
        assert!(
            on.throughput_rps > off.throughput_rps,
            "streams={streams}: broker-on throughput {:.1} rps must beat broker-off {:.1} rps",
            on.throughput_rps,
            off.throughput_rps
        );
        rows.push(off);
        rows.push(on);
    }

    let mut out = String::new();
    writeln!(out, "# continuous_batching — open-loop latency, broker on vs off").unwrap();
    writeln!(out, "#").unwrap();
    writeln!(
        out,
        "# Model: {} (quick dims), batch {batch} per request, {n} requests per trace.",
        spec.name
    )
    .unwrap();
    writeln!(
        out,
        "# Seeded Poisson arrivals at {OFFERED_LOAD}x solo capacity; SLO budget \
         {SLO_FACTOR:.0}x mean solo service ({:.3} ms); cohorts capped at {MAX_COHORT}.",
        slo_us / 1e3
    )
    .unwrap();
    writeln!(out, "# Latencies are modeled virtual milliseconds (queue wait + service).").unwrap();
    writeln!(out, "#").unwrap();
    writeln!(
        out,
        "{:>6}  {:>7}  {:>9}  {:>5}  {:>6}  {:>8}  {:>8}  {:>8}  {:>10}",
        "broker",
        "streams",
        "completed",
        "shed",
        "missed",
        "p50_ms",
        "p99_ms",
        "p999_ms",
        "req_per_s"
    )
    .unwrap();
    for r in &rows {
        writeln!(
            out,
            "{:>6}  {:>7}  {:>9}  {:>5}  {:>6}  {:>8.3}  {:>8.3}  {:>8.3}  {:>10.1}",
            r.label,
            r.streams,
            r.completed,
            r.shed,
            r.deadline_misses,
            r.p50_ms,
            r.p99_ms,
            r.p999_ms,
            r.throughput_rps
        )
        .unwrap();
    }
    writeln!(out, "#").unwrap();
    writeln!(out, "# broker-on sharing (per stream count):").unwrap();
    for (streams, shared, solo, merged) in &shared_by_streams {
        writeln!(
            out,
            "#   streams={streams}: shared_flushes={shared} solo_flushes={solo} \
             merged_requests={merged}"
        )
        .unwrap();
    }
    print!("{out}");

    if !smoke {
        std::fs::create_dir_all("bench_results").expect("bench_results dir");
        std::fs::write("bench_results/continuous_batching.txt", &out)
            .expect("write bench_results/continuous_batching.txt");
        eprintln!("wrote bench_results/continuous_batching.txt");

        let mut records = Vec::new();
        for r in &rows {
            let config = format!("broker={}/streams={}", r.label, r.streams);
            records.push(JsonRecord::new(&config, "completed", r.completed as f64));
            records.push(JsonRecord::new(&config, "shed", r.shed as f64));
            records.push(JsonRecord::new(&config, "deadline_misses", r.deadline_misses as f64));
            records.push(JsonRecord::new(&config, "p50_ms", r.p50_ms));
            records.push(JsonRecord::new(&config, "p99_ms", r.p99_ms));
            records.push(JsonRecord::new(&config, "p999_ms", r.p999_ms));
            records.push(JsonRecord::new(&config, "req_per_s", r.throughput_rps));
            for (size, count) in &r.cohort_sizes {
                records.push(JsonRecord::new(
                    &config,
                    format!("cohort_size_{size}"),
                    *count as f64,
                ));
            }
        }
        for (streams, shared, solo, merged) in &shared_by_streams {
            let config = format!("broker=on/streams={streams}");
            records.push(JsonRecord::new(&config, "shared_flushes", *shared as f64));
            records.push(JsonRecord::new(&config, "solo_flushes", *solo as f64));
            records.push(JsonRecord::new(&config, "merged_requests", *merged as f64));
        }
        write_bench_json("continuous_batching", &records);
    }
    println!("\ncontinuous batching gates passed: p99 and throughput strictly better at every stream count");
}
