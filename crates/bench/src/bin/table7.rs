//! Table 7: Relay-VM-style interpretation vs ACROBAT's AOT compilation
//! (TreeLSTM, MV-RNN, BiRNN — the models the paper's prototype supports on
//! the VM, footnote 11).
//!
//! Both backends share the batching runtime, so the gap isolates program
//! execution: the reported latency is modeled device time plus *measured*
//! host execution time (boxed scalars, name-resolved environments and
//! per-node dispatch on the VM vs slot-resolved native-scalar AOT code).

use acrobat_bench::{instances_for, ms, print_table, quick_flag, suite, BATCH_SIZES};
use acrobat_core::{compile, BackendKind, CompileOptions};
use acrobat_models::ModelSize;

fn main() {
    let quick = quick_flag();
    let seed = 0x77;
    let repeats = 5;
    for size in [ModelSize::Small, ModelSize::Large] {
        let mut rows = Vec::new();
        for spec in suite(size, quick) {
            if !matches!(spec.name, "TreeLSTM" | "MV-RNN" | "BiRNN") {
                continue;
            }
            for batch in BATCH_SIZES {
                let batch = if quick { batch.min(8) } else { batch };
                let instances = instances_for(&spec, seed, batch);
                let mut host = Vec::new();
                let mut total = Vec::new();
                for backend in [BackendKind::Vm, BackendKind::Aot] {
                    let options = CompileOptions { backend, seed, ..Default::default() };
                    let model = compile(&spec.source, &options)
                        .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
                    // Warm up, then best-of-N for the measured host time.
                    let _ = model.run(&spec.params, &instances).unwrap();
                    let (mut best_host, mut best_total) = (f64::INFINITY, f64::INFINITY);
                    for _ in 0..repeats {
                        let r = model.run(&spec.params, &instances).unwrap();
                        best_host = best_host.min(r.stats.program_host_us / 1000.0);
                        best_total = best_total.min(r.stats.total_with_host_us() / 1000.0);
                    }
                    host.push(best_host);
                    total.push(best_total);
                }
                rows.push(vec![
                    spec.name.to_string(),
                    format!("{batch}"),
                    format!("{:.2}", host[0]),
                    format!("{:.2}", host[1]),
                    format!("{:.2}", host[0] / host[1]),
                    ms(total[0]),
                    ms(total[1]),
                ]);
                eprintln!("done: {} {:?} batch {batch}", spec.name, size);
            }
        }
        print_table(
            &format!(
                "Table 7 ({size:?}): Relay VM vs AOT — measured host execution (ms) and end-to-end (ms)"
            ),
            &["Model", "Batch", "VM host", "AOT host", "host ratio", "VM e2e", "AOT e2e"],
            &rows,
        );
    }
}
