//! `timeline_overlap`: the overlap-ablation bench for the simulated device
//! timeline (DESIGN.md "Simulated device timeline").
//!
//! Part A — **modeled** overlap ablation: every model of the large-batch
//! suite runs under a sweep of timeline configurations (multi-stream ×
//! copy engine × host overlap) and reports modeled latency, overlap
//! savings, and speedup versus the serialized baseline.  The serialized
//! configuration (`streams=1`, no copy engine, no host overlap) is the
//! legacy scalar accumulation bit-for-bit, so its column is exactly the
//! numbers every other bench records.
//!
//! Part B — **real** worker-pool measurement: the same workload executes
//! its batched CPU kernels on the parallel worker pool and wall-clock time
//! is recorded.  Outputs are asserted bit-for-bit identical across all
//! configurations first — overlap changes *when* modeled work happens,
//! never *what* is computed.  Wall-clock speedup is reported honestly for
//! whatever CPU count the bench host has (a single-CPU container cannot
//! scale).
//!
//! Writes `bench_results/timeline_overlap.txt`; with `--json` the records
//! additionally land in `bench_results/BENCH_timeline_overlap.json`.
//! `--quick` runs the reduced-dimension suite (the smoke configuration
//! `scripts/check.sh` uses).

use std::fmt::Write as _;
use std::time::Instant;

use acrobat_bench::{
    json_flag, print_table, quick_flag, run_acrobat, suite, write_bench_json, JsonRecord,
};
use acrobat_core::{compile, CompileOptions};
use acrobat_models::{ModelSize, ModelSpec};
use acrobat_runtime::TimelineOptions;

/// The ablation sweep: each step enables one more overlap source.
/// Asynchronous launches (`host_overlap`) come first — without them the
/// host blocks on every event (synchronous launch semantics) and neither
/// extra streams nor the copy engine can overlap anything.
const CONFIGS: [(&str, TimelineOptions); 6] = [
    ("serial", TimelineOptions { streams: 1, copy_engine: false, host_overlap: false }),
    ("async", TimelineOptions { streams: 1, copy_engine: false, host_overlap: true }),
    ("async+copy", TimelineOptions { streams: 1, copy_engine: true, host_overlap: true }),
    ("+s2", TimelineOptions { streams: 2, copy_engine: true, host_overlap: true }),
    ("+s4", TimelineOptions { streams: 4, copy_engine: true, host_overlap: true }),
    ("+s8", TimelineOptions { streams: 8, copy_engine: true, host_overlap: true }),
];

fn options_with(timeline: TimelineOptions, parallel_workers: usize) -> CompileOptions {
    let mut options = CompileOptions::default();
    options.runtime.device_memory = 256 << 20;
    options.runtime.timeline = timeline;
    options.runtime.parallel_workers = parallel_workers;
    options
}

/// Asserts outputs are bit-for-bit identical between the serialized
/// timeline and a heavily-overlapped one (`streams=4`, copy engine, host
/// overlap) — the smoke property `scripts/check.sh` gates on.
fn assert_outputs_invariant(spec: &ModelSpec, batch: usize, seed: u64) {
    let instances = (spec.make_instances)(seed, batch);
    let run = |timeline: TimelineOptions| {
        let model = compile(&spec.source, &options_with(timeline, 0))
            .unwrap_or_else(|e| panic!("{} compiles: {e}", spec.name));
        model.run(&spec.params, &instances).unwrap_or_else(|e| panic!("{}: {e}", spec.name)).outputs
    };
    let serial = run(CONFIGS[0].1);
    let overlapped = run(TimelineOptions { streams: 4, copy_engine: true, host_overlap: true });
    assert_eq!(serial.len(), overlapped.len(), "{}: instance count", spec.name);
    for (i, (a, b)) in serial.iter().zip(&overlapped).enumerate() {
        let (ta, tb) = ((spec.flatten_output)(a), (spec.flatten_output)(b));
        assert_eq!(ta.len(), tb.len(), "{}: instance {i} tensor count", spec.name);
        for (j, (x, y)) in ta.iter().zip(&tb).enumerate() {
            assert_eq!(
                x.data(),
                y.data(),
                "{}: streams=1 vs streams=4 diverged at instance {i} tensor {j}",
                spec.name
            );
        }
    }
}

fn main() {
    let quick = quick_flag();
    let batch = if quick { 8 } else { 64 };
    let seed = 0x71AE;
    let specs = suite(ModelSize::Large, quick);
    let mut records: Vec<JsonRecord> = Vec::new();
    let mut out = String::new();
    writeln!(out, "# timeline_overlap — modeled overlap ablation + real worker pool").unwrap();
    writeln!(out, "#").unwrap();
    writeln!(out, "# Part A: modeled latency (ms) under the timeline sweep; speedup is").unwrap();
    writeln!(out, "# vs the serialized baseline (streams=1, no copy engine, no host").unwrap();
    writeln!(out, "# overlap), which reproduces the legacy accumulation bit-for-bit.").unwrap();
    writeln!(out, "# Outputs are asserted bit-identical across configurations.").unwrap();

    // Part A: modeled ablation sweep.
    let mut rows: Vec<Vec<String>> = Vec::new();
    for spec in &specs {
        assert_outputs_invariant(spec, batch.min(8), seed);
        let mut row = vec![spec.name.to_string()];
        let mut base_ms = None;
        for (config, timeline) in CONFIGS {
            match run_acrobat(spec, &options_with(timeline, 0), batch, seed) {
                Ok(m) => {
                    let base = *base_ms.get_or_insert(m.ms);
                    row.push(format!("{:.2} ({:.2}x)", m.ms, base / m.ms));
                    let label = format!("{}/{config}", spec.name);
                    records.push(JsonRecord::new(&label, "modeled_ms", m.ms));
                    records.push(JsonRecord::new(&label, "speedup_vs_serial", base / m.ms));
                    records.push(JsonRecord::new(
                        &label,
                        "overlap_saved_ms",
                        m.stats.overlap_saved_us / 1e3,
                    ));
                }
                Err(e) if e.contains("out of memory") => row.push("OOM".into()),
                Err(e) => panic!("{} {config}: {e}", spec.name),
            }
        }
        eprintln!("done: {}", spec.name);
        rows.push(row);
    }
    let headers: Vec<&str> =
        std::iter::once("Model").chain(CONFIGS.iter().map(|(n, _)| *n)).collect();
    let title =
        format!("Part A: modeled ms (speedup vs serial) — large suite, batch {batch}, seed {seed}");
    print_table(&title, &headers, &rows);
    writeln!(out, "#\n## {title}").unwrap();
    for row in &rows {
        writeln!(out, "{}", row.join("  ")).unwrap();
    }

    // Part B: real wall-clock execution on the worker pool.  The heaviest
    // instance-parallel model (TreeLSTM) carries the measurement; outputs
    // were already asserted identical by the differential fuzz suite.
    let spec = &specs[0];
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    writeln!(out, "#\n## Part B: wall-clock worker-pool execution ({cpus} CPU(s) visible)")
        .unwrap();
    let mut base_wall = None;
    for workers in [0usize, 2, 4] {
        let options = options_with(TimelineOptions::default(), workers);
        let wall_ms = (0..3)
            .map(|_| {
                let t = Instant::now();
                run_acrobat(spec, &options, batch, seed)
                    .unwrap_or_else(|e| panic!("{} workers={workers}: {e}", spec.name));
                t.elapsed().as_secs_f64() * 1e3
            })
            .fold(f64::INFINITY, f64::min);
        let base = *base_wall.get_or_insert(wall_ms);
        let line = format!(
            "workers={workers:<2} wall_ms={wall_ms:>8.2}  speedup_vs_seq={:.2}x",
            base / wall_ms
        );
        println!("{line}");
        writeln!(out, "{line}").unwrap();
        let label = format!("worker_pool/workers={workers}");
        records.push(JsonRecord::new(&label, "wall_ms", wall_ms));
        records.push(JsonRecord::new(&label, "wall_speedup_vs_seq", base / wall_ms));
    }
    records.push(JsonRecord::new("host", "cpus", cpus as f64));

    if quick {
        // Smoke mode (scripts/check.sh): the assertions above are the
        // point; don't overwrite the checked-in full-dimension artifacts.
        eprintln!("quick mode: skipping bench_results artifacts");
        return;
    }
    std::fs::create_dir_all("bench_results").expect("bench_results dir");
    std::fs::write("bench_results/timeline_overlap.txt", out)
        .expect("write bench_results/timeline_overlap.txt");
    eprintln!("wrote bench_results/timeline_overlap.txt");
    if json_flag() {
        write_bench_json("timeline_overlap", &records);
    }
}
