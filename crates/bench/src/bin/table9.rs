//! Table 9: the benefit of PGO-prioritized auto-scheduling — NestedRNN
//! (small, batch 8) without/with PGO across auto-scheduler iteration
//! budgets.
//!
//! NestedRNN's inner RNN kernels execute ~30× more often than the outer GRU
//! kernels; with PGO, the measured invocation frequencies steer the tuning
//! budget toward the hot kernels (§D.1, §E.5).

use acrobat_bench::{instances_for, ms, print_table, quick_flag};
use acrobat_core::{compile, CompileOptions};
use acrobat_models::{nestedrnn, ModelSize};

fn main() {
    let quick = quick_flag();
    let spec = if quick {
        nestedrnn::spec_with(16, nestedrnn::Bounds { inner: (3, 6), outer: (3, 5) })
    } else {
        nestedrnn::spec(ModelSize::Small)
    };
    let batch = 8;
    let seed = 0x99;
    let instances = instances_for(&spec, seed, batch);

    let mut rows = Vec::new();
    // The auto-scheduler search is randomized; average over several search
    // seeds, as the paper does (footnote 13: averaged over 10 runs).
    let sched_seeds: &[u64] = &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
    #[derive(Clone, Copy, PartialEq)]
    enum Mode {
        Uniform,
        Pgo,
        StaticEstimate,
    }
    for iters in [100u64, 250, 500, 750, 1000] {
        let mut cells = Vec::new();
        for mode in [Mode::Uniform, Mode::Pgo, Mode::StaticEstimate] {
            let mut total = 0.0;
            for &ss in sched_seeds {
                let mut options = CompileOptions { seed, ..Default::default() };
                options.schedule.iterations = iters;
                options.schedule.seed = ss;
                let mut model = compile(&spec.source, &options).expect("compile");
                match mode {
                    Mode::Uniform => {}
                    Mode::Pgo => {
                        model.apply_pgo(&spec.params, &instances).expect("pgo profiling run")
                    }
                    Mode::StaticEstimate => model.apply_static_priorities(),
                }
                let r = model.run(&spec.params, &instances).expect("run");
                total += r.stats.total_ms();
            }
            cells.push(total / sched_seeds.len() as f64);
        }
        rows.push(vec![
            format!("{iters}"),
            ms(cells[0]),
            ms(cells[1]),
            ms(cells[2]),
            format!("{:.2}", cells[0] / cells[1]),
        ]);
        eprintln!("done: {iters} iterations");
    }
    print_table(
        "Table 9: NestedRNN (small, batch 8) — auto-scheduler prioritization: uniform, PGO, static estimate (ms)",
        &["Auto-sched iters", "no PGO", "PGO", "static est.", "no-PGO/PGO"],
        &rows,
    );
}
