//! `serving_throughput`: aggregate throughput scaling with worker threads.
//!
//! One compiled model serves `R` mini-batch requests from `W` worker
//! threads (`W` ∈ {1, 2, 4, 8}), exercising the Engine / ExecutionContext
//! split for real: the engine is `Arc`-shared, each request runs in its own
//! pooled context, and no shared lock is taken on the flush hot path.
//!
//! Throughput is computed in **modeled virtual time**, consistent with the
//! repo-wide convention that reported latencies are modeled milliseconds
//! (DESIGN.md §1): host-side work — DFG construction, scheduling, fiber
//! switches, CUDA-API calls — parallelizes across the `W` workers, while
//! device-side work — kernels and memcpy — serializes on the single
//! simulated accelerator.  The makespan of a configuration is therefore
//!
//! ```text
//! makespan = max(Σ device time over all requests,
//!                max over workers of Σ host time of that worker's requests)
//! ```
//!
//! Host overheads dominate these workloads (the paper's Table 5), so
//! throughput scales with `W` until the simulated device saturates.
//! Wall-clock time is also recorded for reference, but this container runs
//! on a single CPU, so wall-clock cannot scale and is not the metric.
//!
//! Writes `bench_results/serving_throughput.txt`; with `--json` the same
//! rows additionally land in `bench_results/BENCH_serving_throughput.json`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use acrobat_bench::{json_flag, quick_flag, suite, write_bench_json, JsonRecord};
use acrobat_core::{compile, CompileOptions, Model, RuntimeStats, Tensor};
use acrobat_models::{ModelSize, ModelSpec};
use acrobat_vm::InputValue;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Modeled host-side microseconds of one request (parallel across workers).
fn host_us(s: &RuntimeStats) -> f64 {
    s.dfg_construction_us + s.scheduling_us + s.fiber_us + s.cuda_api_us
}

/// Modeled device-side microseconds of one request (serialized on the one
/// simulated accelerator).
fn device_us(s: &RuntimeStats) -> f64 {
    s.kernel_time_us + s.memcpy_us
}

struct Row {
    workers: usize,
    requests: usize,
    makespan_ms: f64,
    throughput: f64,
    wall_ms: f64,
}

fn serve(
    model: &Model,
    params: &BTreeMap<String, Tensor>,
    instances: &[Vec<InputValue>],
    workers: usize,
    requests: usize,
) -> Row {
    let per_worker = requests / workers;
    let start = std::time::Instant::now();
    let worker_stats: Vec<Vec<RuntimeStats>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    (0..per_worker)
                        .map(|_| model.run(params, instances).expect("serving run").stats)
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    let total_device: f64 = worker_stats.iter().flatten().map(device_us).sum();
    let busiest_host: f64 =
        worker_stats.iter().map(|runs| runs.iter().map(host_us).sum::<f64>()).fold(0.0, f64::max);
    let makespan_us = total_device.max(busiest_host);
    Row {
        workers,
        requests,
        makespan_ms: makespan_us / 1e3,
        throughput: requests as f64 / (makespan_us / 1e6),
        wall_ms,
    }
}

fn main() {
    let quick = quick_flag();
    let requests = if quick { 16 } else { 64 };
    let batch = 8;
    // TreeLSTM: recursive, instance-parallel, host-overhead-bound — the
    // representative serving workload.
    let spec: ModelSpec = suite(ModelSize::Small, true).remove(0);
    let model = compile(&spec.source, &CompileOptions::default()).expect("model compiles");
    let instances = (spec.make_instances)(0x5E57E, batch);

    let rows: Vec<Row> = WORKER_COUNTS
        .iter()
        .map(|&w| serve(&model, &spec.params, &instances, w, requests))
        .collect();

    let base = rows[0].throughput;
    let mut out = String::new();
    writeln!(out, "# serving_throughput — aggregate throughput vs worker threads").unwrap();
    writeln!(out, "#").unwrap();
    writeln!(
        out,
        "# Model: {} (quick dims), batch {batch} per request, {requests} requests per config.",
        spec.name
    )
    .unwrap();
    writeln!(out, "# One shared compiled model; each request acquires its own pooled").unwrap();
    writeln!(out, "# ExecutionContext (zero shared-lock acquisitions on the flush path).").unwrap();
    writeln!(out, "#").unwrap();
    writeln!(out, "# Throughput is modeled virtual time (repo convention, DESIGN.md §1):").unwrap();
    writeln!(out, "#   host work (DFG construction, scheduling, fibers, CUDA API calls)").unwrap();
    writeln!(out, "#   runs in parallel across workers; device work (kernels, memcpy)").unwrap();
    writeln!(out, "#   serializes on the single simulated accelerator.").unwrap();
    writeln!(out, "#   makespan = max(total device time, busiest worker's host time)").unwrap();
    writeln!(out, "# wall_ms is real wall-clock on the bench host, recorded for reference")
        .unwrap();
    writeln!(out, "# only — this container has one CPU, so wall-clock cannot scale.").unwrap();
    writeln!(out, "#").unwrap();
    writeln!(
        out,
        "{:>7}  {:>8}  {:>12}  {:>12}  {:>12}  {:>9}",
        "workers", "requests", "makespan_ms", "req_per_s", "speedup_vs_1", "wall_ms"
    )
    .unwrap();
    for r in &rows {
        writeln!(
            out,
            "{:>7}  {:>8}  {:>12.3}  {:>12.1}  {:>12.2}  {:>9.1}",
            r.workers,
            r.requests,
            r.makespan_ms,
            r.throughput,
            r.throughput / base,
            r.wall_ms
        )
        .unwrap();
    }
    print!("{out}");

    let four = rows.iter().find(|r| r.workers == 4).expect("4-worker row");
    let scaling = four.throughput / base;
    println!("\n4-worker speedup on the simulated device: {scaling:.2}x");
    assert!(
        scaling > 2.0,
        "serving must scale >2x at 4 workers on the simulated device, got {scaling:.2}x"
    );

    std::fs::create_dir_all("bench_results").expect("bench_results dir");
    std::fs::write("bench_results/serving_throughput.txt", out)
        .expect("write bench_results/serving_throughput.txt");
    eprintln!("wrote bench_results/serving_throughput.txt");

    if json_flag() {
        let mut records = Vec::new();
        for r in &rows {
            let config = format!("workers={}", r.workers);
            records.push(JsonRecord::new(&config, "makespan_ms", r.makespan_ms));
            records.push(JsonRecord::new(&config, "req_per_s", r.throughput));
            records.push(JsonRecord::new(&config, "speedup_vs_1", r.throughput / base));
            records.push(JsonRecord::new(&config, "wall_ms", r.wall_ms));
        }
        write_bench_json("serving_throughput", &records);
    }
}
