//! `serving_throughput`: aggregate throughput scaling with worker threads.
//!
//! One compiled model serves `R` mini-batch requests from `W` worker
//! threads (`W` ∈ {1, 2, 4, 8}), exercising the Engine / ExecutionContext
//! split for real: the engine is `Arc`-shared, each request runs in its own
//! pooled context, and no shared lock is taken on the flush hot path.
//! Every configuration is served twice — plan cache off (the paper
//! configuration, rescheduling every flush) and plan cache on (structural
//! window signatures resolve repeated shapes to a frozen plan + remap) —
//! so the memoization win shows up directly in the p50 modeled latency.
//!
//! Throughput is computed in **modeled virtual time**, consistent with the
//! repo-wide convention that reported latencies are modeled milliseconds
//! (DESIGN.md §1): host-side work — DFG construction, scheduling, fiber
//! switches, CUDA-API calls — parallelizes across the `W` workers, while
//! device-side work — kernels and memcpy — serializes on the single
//! simulated accelerator.  The makespan of a configuration is therefore
//!
//! ```text
//! makespan = max(Σ device time over all requests,
//!                max over workers of Σ host time of that worker's requests)
//! ```
//!
//! Host overheads dominate these workloads (the paper's Table 5), so
//! throughput scales with `W` until the simulated device saturates.
//! Wall-clock time is also recorded for reference, but this container runs
//! on a single CPU, so wall-clock cannot scale and is not the metric.
//!
//! Writes `bench_results/serving_throughput.txt`; with `--json` the same
//! rows additionally land in `bench_results/BENCH_serving_throughput.json`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use acrobat_bench::{json_flag, quick_flag, suite, write_bench_json, JsonRecord};
use acrobat_core::{compile, CompileOptions, Model, RuntimeStats, Tensor};
use acrobat_models::{ModelSize, ModelSpec};
use acrobat_vm::InputValue;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Modeled host-side microseconds of one request (parallel across workers).
fn host_us(s: &RuntimeStats) -> f64 {
    s.dfg_construction_us + s.scheduling_us + s.fiber_us + s.cuda_api_us
}

/// Modeled device-side microseconds of one request (serialized on the one
/// simulated accelerator).
fn device_us(s: &RuntimeStats) -> f64 {
    s.kernel_time_us + s.memcpy_us
}

/// Continuous-batching counters for one broker-on configuration: queue
/// dispatch totals plus the flush-level sharing classification.
struct BrokerCounters {
    dispatches: u64,
    merged_requests: u64,
    shared_flushes: u64,
    solo_flushes: u64,
    cohort_sizes: BTreeMap<usize, u64>,
}

struct Row {
    mode: &'static str,
    workers: usize,
    requests: usize,
    makespan_ms: f64,
    throughput: f64,
    p50_ms: f64,
    hit_rate: f64,
    wall_ms: f64,
    broker: Option<BrokerCounters>,
}

fn serve(
    model: &Model,
    params: &BTreeMap<String, Tensor>,
    instances: &[Vec<InputValue>],
    workers: usize,
    requests: usize,
    mode: &'static str,
) -> Row {
    let per_worker = requests / workers;
    let start = std::time::Instant::now();
    let worker_stats: Vec<Vec<RuntimeStats>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    (0..per_worker)
                        .map(|_| model.run(params, instances).expect("serving run").stats)
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    let total_device: f64 = worker_stats.iter().flatten().map(device_us).sum();
    let busiest_host: f64 =
        worker_stats.iter().map(|runs| runs.iter().map(host_us).sum::<f64>()).fold(0.0, f64::max);
    let makespan_us = total_device.max(busiest_host);

    // Per-request modeled latency (host + device of that request alone);
    // the plan cache shows up here as reduced scheduling_us on hits.
    let mut latencies: Vec<f64> =
        worker_stats.iter().flatten().map(|s| host_us(s) + device_us(s)).collect();
    latencies.sort_by(|a, b| a.total_cmp(b));
    let p50_ms = latencies[latencies.len() / 2] / 1e3;

    let hits: u64 = worker_stats.iter().flatten().map(|s| s.plan_cache_hits).sum();
    let misses: u64 = worker_stats.iter().flatten().map(|s| s.plan_cache_misses).sum();
    let hit_rate = if hits + misses == 0 { 0.0 } else { hits as f64 / (hits + misses) as f64 };

    // Broker rows serve a per-configuration model, so the cumulative
    // queue/flush counters are exactly this configuration's traffic.
    let broker = model.broker_stats().map(|b| {
        let agg = model.stats();
        BrokerCounters {
            dispatches: b.dispatches,
            merged_requests: b.merged_requests,
            shared_flushes: agg.shared_flushes,
            solo_flushes: agg.solo_flushes,
            cohort_sizes: b.cohort_sizes,
        }
    });

    Row {
        mode,
        workers,
        requests,
        makespan_ms: makespan_us / 1e3,
        throughput: requests as f64 / (makespan_us / 1e6),
        p50_ms,
        hit_rate,
        wall_ms,
        broker,
    }
}

fn main() {
    let quick = quick_flag();
    let requests = if quick { 16 } else { 64 };
    let batch = 8;
    // TreeLSTM: recursive, instance-parallel, host-overhead-bound — the
    // representative serving workload.
    let spec: ModelSpec = suite(ModelSize::Small, true).remove(0);
    let model = compile(&spec.source, &CompileOptions::default()).expect("model compiles");
    let model_cached = compile(&spec.source, &CompileOptions::default().with_plan_cache(true))
        .expect("cached model compiles");
    let instances = (spec.make_instances)(0x5E57E, batch);

    // Cache-off rows first (the paper configuration), then cache-on.  The
    // cache-on model is shared across worker counts, so its engine-level
    // cache warms on the first configuration's first flushes and stays warm
    // — exactly what a long-lived serving process sees.
    let mut rows: Vec<Row> = WORKER_COUNTS
        .iter()
        .map(|&w| serve(&model, &spec.params, &instances, w, requests, "off"))
        .collect();
    rows.extend(
        WORKER_COUNTS
            .iter()
            .map(|&w| serve(&model_cached, &spec.params, &instances, w, requests, "cache")),
    );
    // Broker rows: concurrent requests queue at the BatchBroker and merge
    // into shared flush plans.  Each worker count gets a fresh model so the
    // dispatch counters and shared/solo flush split are per-configuration.
    rows.extend(WORKER_COUNTS.iter().map(|&w| {
        let broker_model = compile(&spec.source, &CompileOptions::default().with_broker(true))
            .expect("broker model compiles");
        serve(&broker_model, &spec.params, &instances, w, requests, "broker")
    }));

    let base = rows[0].throughput;
    let mut out = String::new();
    writeln!(out, "# serving_throughput — aggregate throughput vs worker threads").unwrap();
    writeln!(out, "#").unwrap();
    writeln!(
        out,
        "# Model: {} (quick dims), batch {batch} per request, {requests} requests per config.",
        spec.name
    )
    .unwrap();
    writeln!(out, "# One shared compiled model; each request acquires its own pooled").unwrap();
    writeln!(out, "# ExecutionContext (zero shared-lock acquisitions on the flush path).").unwrap();
    writeln!(out, "# mode=cache rows serve from a second compiled model with flush-plan").unwrap();
    writeln!(out, "# memoization enabled: repeated window shapes hit the shared PlanCache")
        .unwrap();
    writeln!(out, "# and skip scheduling (p50_ms is per-request modeled latency).").unwrap();
    writeln!(out, "# mode=broker rows route concurrent requests through the BatchBroker:").unwrap();
    writeln!(out, "# co-queued requests merge into shared flush plans (cross-request").unwrap();
    writeln!(out, "# continuous batching); dispatch counters follow the table.").unwrap();
    writeln!(out, "#").unwrap();
    writeln!(out, "# Throughput is modeled virtual time (repo convention, DESIGN.md §1):").unwrap();
    writeln!(out, "#   host work (DFG construction, scheduling, fibers, CUDA API calls)").unwrap();
    writeln!(out, "#   runs in parallel across workers; device work (kernels, memcpy)").unwrap();
    writeln!(out, "#   serializes on the single simulated accelerator.").unwrap();
    writeln!(out, "#   makespan = max(total device time, busiest worker's host time)").unwrap();
    writeln!(out, "# wall_ms is real wall-clock on the bench host, recorded for reference")
        .unwrap();
    writeln!(out, "# only — this container has one CPU, so wall-clock cannot scale.").unwrap();
    writeln!(out, "#").unwrap();
    writeln!(
        out,
        "{:>6}  {:>7}  {:>8}  {:>12}  {:>12}  {:>12}  {:>8}  {:>8}  {:>9}",
        "mode",
        "workers",
        "requests",
        "makespan_ms",
        "req_per_s",
        "speedup_vs_1",
        "p50_ms",
        "hit_rate",
        "wall_ms"
    )
    .unwrap();
    for r in &rows {
        writeln!(
            out,
            "{:>6}  {:>7}  {:>8}  {:>12.3}  {:>12.1}  {:>12.2}  {:>8.3}  {:>8.2}  {:>9.1}",
            r.mode,
            r.workers,
            r.requests,
            r.makespan_ms,
            r.throughput,
            r.throughput / base,
            r.p50_ms,
            r.hit_rate,
            r.wall_ms
        )
        .unwrap();
    }
    print!("{out}");

    let four =
        rows.iter().find(|r| r.workers == 4 && r.mode == "off").expect("4-worker cache-off row");
    let scaling = four.throughput / base;
    println!("\n4-worker speedup on the simulated device: {scaling:.2}x");
    assert!(
        scaling > 2.0,
        "serving must scale >2x at 4 workers on the simulated device, got {scaling:.2}x"
    );

    let off_p50 = rows.iter().find(|r| r.workers == 1 && r.mode == "off").unwrap().p50_ms;
    let on = rows.iter().find(|r| r.workers == 1 && r.mode == "cache").unwrap();
    println!(
        "plan cache @1 worker: p50 {off_p50:.3} ms -> {:.3} ms, steady hit rate {:.0}%",
        on.p50_ms,
        on.hit_rate * 100.0
    );
    assert!(
        on.p50_ms <= off_p50,
        "plan cache must not regress p50 modeled latency ({:.3} ms vs {off_p50:.3} ms)",
        on.p50_ms
    );

    writeln!(out, "#").unwrap();
    writeln!(out, "# broker counters (per configuration):").unwrap();
    writeln!(
        out,
        "# {:>7}  {:>10}  {:>14}  {:>14}  {:>12}  histogram",
        "workers", "dispatches", "merged_reqs", "shared_flushes", "solo_flushes"
    )
    .unwrap();
    for r in rows.iter().filter(|r| r.broker.is_some()) {
        let b = r.broker.as_ref().unwrap();
        let histogram: Vec<String> =
            b.cohort_sizes.iter().map(|(size, n)| format!("{size}x{n}")).collect();
        writeln!(
            out,
            "# {:>7}  {:>10}  {:>14}  {:>14}  {:>12}  {}",
            r.workers,
            b.dispatches,
            b.merged_requests,
            b.shared_flushes,
            b.solo_flushes,
            histogram.join(" ")
        )
        .unwrap();
    }

    std::fs::create_dir_all("bench_results").expect("bench_results dir");
    std::fs::write("bench_results/serving_throughput.txt", out)
        .expect("write bench_results/serving_throughput.txt");
    eprintln!("wrote bench_results/serving_throughput.txt");

    if json_flag() {
        let mut records = Vec::new();
        for r in &rows {
            let config = match r.mode {
                "off" => format!("cache=off/workers={}", r.workers),
                "cache" => format!("cache=on/workers={}", r.workers),
                _ => format!("broker=on/workers={}", r.workers),
            };
            records.push(JsonRecord::new(&config, "makespan_ms", r.makespan_ms));
            records.push(JsonRecord::new(&config, "req_per_s", r.throughput));
            records.push(JsonRecord::new(&config, "speedup_vs_1", r.throughput / base));
            records.push(JsonRecord::new(&config, "p50_ms", r.p50_ms));
            records.push(JsonRecord::new(&config, "plan_cache_hit_rate", r.hit_rate));
            records.push(JsonRecord::new(&config, "wall_ms", r.wall_ms));
            if let Some(b) = &r.broker {
                records.push(JsonRecord::new(&config, "dispatches", b.dispatches as f64));
                records.push(JsonRecord::new(&config, "merged_requests", b.merged_requests as f64));
                records.push(JsonRecord::new(&config, "shared_flushes", b.shared_flushes as f64));
                records.push(JsonRecord::new(&config, "solo_flushes", b.solo_flushes as f64));
                for (size, n) in &b.cohort_sizes {
                    records.push(JsonRecord::new(
                        &config,
                        format!("cohort_size_{size}"),
                        *n as f64,
                    ));
                }
            }
        }
        write_bench_json("serving_throughput", &records);
    }
}
