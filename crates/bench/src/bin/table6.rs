//! Table 6: Cortex vs ACROBAT on the recursive models (TreeLSTM, MV-RNN,
//! BiRNN).  Cortex is specialized and manually tuned — it wins on TreeLSTM
//! and BiRNN via lower static overheads, but its restrictive interface
//! forces dense copies of the leaf inputs, which is ruinous for MV-RNN's
//! per-word matrices (§7.2.2).

use acrobat_baselines::cortex;
use acrobat_bench::{instances_for, ms, print_table, quick_flag, run_acrobat, suite, BATCH_SIZES};
use acrobat_core::CompileOptions;
use acrobat_models::ModelSize;

fn main() {
    let quick = quick_flag();
    let seed = 0xC0;
    for size in [ModelSize::Small, ModelSize::Large] {
        let mut rows = Vec::new();
        for spec in suite(size, quick) {
            if !matches!(spec.name, "TreeLSTM" | "MV-RNN" | "BiRNN") {
                continue; // Cortex supports only the recursive models
            }
            for batch in BATCH_SIZES {
                let batch = if quick { batch.min(8) } else { batch };
                let instances = instances_for(&spec, seed, batch);
                let c = cortex::run(&spec.source, &spec.params, &instances)
                    .unwrap_or_else(|e| panic!("{} cortex: {e}", spec.name));
                let a = run_acrobat(&spec, &CompileOptions::default(), batch, seed)
                    .unwrap_or_else(|e| panic!("{} acrobat: {e}", spec.name));
                rows.push(vec![
                    spec.name.to_string(),
                    format!("{batch}"),
                    ms(c.stats.total_ms()),
                    ms(a.ms),
                ]);
                eprintln!("done: {} {:?} batch {batch}", spec.name, size);
            }
        }
        print_table(
            &format!("Table 6 ({size:?}): Cortex vs ACROBAT latencies (ms)"),
            &["Model", "Batch", "Cortex", "ACROBAT"],
            &rows,
        );
    }
}
