//! Differential fuzzer driver: random IR programs + random DAG workloads
//! through every scheduler/ablation combination in checked mode, compared
//! bit-for-bit against the host reference, unbatched eager execution, and
//! the DyNet-sim baseline — plus a checked-mode sweep of the full model
//! suite.
//!
//! ```text
//! cargo run --release -p acrobat-bench --bin fuzz -- [--cases N] [--seed S] [--skip-suite]
//! ```
//!
//! Exits non-zero on the first mismatch or invariant violation.

use acrobat_bench::fuzz::{config_matrix, dag_outputs, FuzzCase};
use acrobat_bench::{run_acrobat, suite};
use acrobat_core::{CompileOptions, OptLevel};
use acrobat_models::ModelSize;
use acrobat_runtime::{RuntimeOptions, SchedulerKind};
use acrobat_tensor::Tensor;

fn bits(ts: &[Tensor]) -> Vec<Vec<u32>> {
    ts.iter().map(|t| t.data().iter().map(|v| v.to_bits()).collect()).collect()
}

fn first_diff(a: &[Tensor], b: &[Tensor]) -> String {
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        if x.data() != y.data() {
            return format!("instance {i}: {:?} vs {:?}", x.data(), y.data());
        }
    }
    format!("output count {} vs {}", a.len(), b.len())
}

fn main() {
    let mut cases: u64 = 500;
    let mut seed: u64 = 0xACB0;
    let mut skip_suite = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--cases" => cases = args.next().expect("--cases N").parse().expect("--cases N"),
            "--seed" => seed = args.next().expect("--seed S").parse().expect("--seed S"),
            "--skip-suite" => skip_suite = true,
            other => panic!("unknown flag {other} (use --cases N / --seed S / --skip-suite)"),
        }
    }

    let configs = config_matrix();
    let mut failures = 0u64;

    // -- phase 1: random IR programs -------------------------------------
    // ~60% of the budget: host reference vs every config vs DyNet-sim.
    let ir_cases = (cases * 3).div_ceil(5);
    for c in 0..ir_cases {
        let case_seed = seed.wrapping_add(c);
        let case = FuzzCase::generate(case_seed);
        let want = bits(&case.host_reference());
        for (name, options) in &configs {
            match case.run_acrobat(options) {
                Ok(got) if bits(&got) == want => {}
                Ok(got) => {
                    failures += 1;
                    eprintln!(
                        "FAIL ir seed={case_seed} config={name}: {}\n{}",
                        first_diff(&case.host_reference(), &got),
                        case.source
                    );
                }
                Err(e) => {
                    failures += 1;
                    eprintln!("FAIL ir seed={case_seed} config={name}: {e}\n{}", case.source);
                }
            }
        }
        match case.run_dynet() {
            Ok(got) if bits(&got) == want => {}
            Ok(got) => {
                failures += 1;
                eprintln!(
                    "FAIL ir seed={case_seed} config=dynet-sim: {}\n{}",
                    first_diff(&case.host_reference(), &got),
                    case.source
                );
            }
            Err(e) => {
                failures += 1;
                eprintln!("FAIL ir seed={case_seed} config=dynet-sim: {e}\n{}", case.source);
            }
        }
        if failures > 10 {
            eprintln!("too many failures, stopping early");
            std::process::exit(1);
        }
    }
    println!(
        "ir programs: {ir_cases} cases x {} configs (+ dynet-sim) bit-for-bit vs host reference",
        configs.len()
    );

    // -- phase 2: random DAG workloads -----------------------------------
    // The rest of the budget: direct add_unit DAGs, checked mode, eager
    // (per-unit flush) as the reference semantics.
    let dag_cases = cases - ir_cases;
    for c in 0..dag_cases {
        let case_seed = seed.wrapping_add(0x1000_0000).wrapping_add(c);
        let reference = dag_outputs(
            case_seed,
            &RuntimeOptions { eager: true, checked: true, ..RuntimeOptions::default() },
        )
        .expect("eager DAG reference");
        let want = bits(&reference);
        for scheduler in
            [SchedulerKind::InlineDepth, SchedulerKind::DynamicDepth, SchedulerKind::Agenda]
        {
            for gather_fusion in [false, true] {
                let options = RuntimeOptions {
                    scheduler,
                    gather_fusion,
                    checked: true,
                    ..RuntimeOptions::default()
                };
                match dag_outputs(case_seed, &options) {
                    Ok(got) if bits(&got) == want => {}
                    Ok(got) => {
                        failures += 1;
                        eprintln!(
                            "FAIL dag seed={case_seed} {scheduler:?}/gf={gather_fusion}: {}",
                            first_diff(&reference, &got)
                        );
                    }
                    Err(e) => {
                        failures += 1;
                        eprintln!(
                            "FAIL dag seed={case_seed} {scheduler:?}/gf={gather_fusion}: {e}"
                        );
                    }
                }
            }
        }
        if failures > 10 {
            eprintln!("too many failures, stopping early");
            std::process::exit(1);
        }
    }
    println!("dag workloads: {dag_cases} cases x 3 schedulers x gather-fusion vs checked eager");

    // -- phase 3: checked-mode model-suite sweep -------------------------
    if !skip_suite {
        let mut runs = 0u64;
        for spec in suite(ModelSize::Small, true) {
            for level in OptLevel::ALL {
                for scheduler in
                    [SchedulerKind::InlineDepth, SchedulerKind::DynamicDepth, SchedulerKind::Agenda]
                {
                    let mut options = CompileOptions::at_level(level).with_checked(true);
                    options.runtime.scheduler = scheduler;
                    match run_acrobat(&spec, &options, 8, seed) {
                        Ok(_) => runs += 1,
                        Err(e) => {
                            failures += 1;
                            eprintln!(
                                "FAIL suite {} {}/{scheduler:?}: {e}",
                                spec.name,
                                level.label()
                            );
                        }
                    }
                }
            }
        }
        println!("model suite: {runs} checked runs (7 models x 6 opt levels x 3 schedulers)");
    }

    if failures > 0 {
        eprintln!("{failures} failure(s)");
        std::process::exit(1);
    }
    println!("fuzz: all checks passed");
}
