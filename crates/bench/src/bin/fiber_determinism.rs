//! `fiber_determinism`: run-to-run and worker-count determinism smoke for
//! fiber-mode (tensor-dependent) models under plan memoization.
//!
//! Each tensor-dependent model in the quick suite is compiled with the
//! plan cache on, warmed with one request, then served `--requests`
//! identical requests from `--workers` threads.  For every model the tool
//! prints one JSON line with only *worker-invariant* quantities:
//!
//! - `hits` / `misses` / `hit_rate`: aggregate plan-cache counters over
//!   the steady-state requests (every steady request must resolve from the
//!   shared cache regardless of which worker serves it);
//! - `sig_chain`: the per-request window-signature digest
//!   ([`acrobat_core::RuntimeStats::plan_sig_chain`]), asserted identical
//!   across *all* requests — lane-canonical signing makes it a pure
//!   function of the request, not of the fiber interleave or the worker.
//!
//! `scripts/check.sh` runs this twice (`--workers 1` and `--workers 4`)
//! and diffs the stdout: any interleave- or partition-dependent signature
//! shows up as a byte difference.  The tool itself asserts a ≥ 90%
//! steady-state hit rate per model and exits nonzero on violation.

use acrobat_bench::suite;
use acrobat_core::{compile, CompileOptions, RuntimeStats};
use acrobat_models::ModelSize;

fn arg_value(args: &[String], flag: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().unwrap_or_else(|_| panic!("{flag} expects a number")))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workers = arg_value(&args, "--workers").unwrap_or(1).max(1);
    let requests = arg_value(&args, "--requests").unwrap_or(8);
    assert!(requests.is_multiple_of(workers), "--requests must divide evenly across --workers");
    let per_worker = requests / workers;

    for spec in suite(ModelSize::Small, true) {
        if !spec.properties.tensor_dependent {
            continue;
        }
        let instances = (spec.make_instances)(0xF1BE, 4);
        let model = compile(&spec.source, &CompileOptions::default().with_plan_cache(true))
            .unwrap_or_else(|e| panic!("{} compiles: {e}", spec.name));
        // Warm-up: publish the request's windows into the engine's shared
        // cache so every steady-state request below can hit from any
        // worker's cold per-context L1.
        model.run(&spec.params, &instances).expect("warm-up request");

        let stats: Vec<RuntimeStats> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let (model, params, instances) = (&model, &spec.params, &instances);
                    scope.spawn(move || {
                        (0..per_worker)
                            .map(|_| model.run(params, instances).expect("steady request").stats)
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("worker panicked")).collect()
        });

        let hits: u64 = stats.iter().map(|s| s.plan_cache_hits).sum();
        let misses: u64 = stats.iter().map(|s| s.plan_cache_misses).sum();
        let rate = hits as f64 / (hits + misses).max(1) as f64;
        let chain = stats[0].plan_sig_chain;
        assert_ne!(chain, 0, "{}: requests must sign their windows", spec.name);
        for (i, s) in stats.iter().enumerate() {
            assert_eq!(
                s.plan_sig_chain, chain,
                "{}: request {i} signed a different window stream — \
                 signatures are interleave-dependent",
                spec.name
            );
        }
        assert!(
            rate >= 0.9,
            "{}: steady-state hit rate {rate:.2} ({hits} hits / {misses} misses) under {workers} \
             worker(s)",
            spec.name
        );
        println!(
            "{{\"model\":\"{}\",\"requests\":{requests},\"hits\":{hits},\"misses\":{misses},\
             \"hit_rate\":{rate:.4},\"sig_chain\":\"{chain:016x}\"}}",
            spec.name
        );
    }
}
