//! The benchmark harness: shared machinery for regenerating every table and
//! figure of the ACROBAT paper's evaluation (§7, §E).
//!
//! Each table/figure has a binary in `src/bin/` (`table4`, `table5`, …,
//! `fig5`, `fig9`); run them with `cargo run --release -p acrobat-bench
//! --bin <name>`.  All binaries accept `--quick` to run at reduced
//! dimensions/batch sizes (for smoke testing; EXPERIMENTS.md records
//! full-dimension outputs).
//!
//! Reported latencies are **modeled milliseconds** from the shared
//! accelerator cost model (see DESIGN.md §1 for the substitution rationale);
//! Table 7 additionally uses measured host-execution time, because the
//! VM-vs-AOT gap is real interpretation overhead.

#![deny(missing_docs)]

pub mod fuzz;

use std::collections::BTreeMap;

use acrobat_baselines::dynet::{DynetConfig, DynetScheduler, Improvements};
use acrobat_core::{compile, CompileOptions, RuntimeStats};
use acrobat_models::{
    berxit, birnn, drnn, mvrnn, nestedrnn, stackrnn, treelstm, ModelSize, ModelSpec,
};
use acrobat_vm::InputValue;

/// A measured configuration result.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Modeled latency in milliseconds.
    pub ms: f64,
    /// Full statistics.
    pub stats: RuntimeStats,
}

/// Batch sizes of the paper's Table 4/6/8.
pub const BATCH_SIZES: [usize; 2] = [8, 64];

/// Runs ACROBAT on a spec and returns the modeled latency.
///
/// # Errors
///
/// Returns a message on compile or runtime failure (e.g. simulated OOM).
pub fn run_acrobat(
    spec: &ModelSpec,
    options: &CompileOptions,
    batch: usize,
    seed: u64,
) -> Result<Measurement, String> {
    let instances = (spec.make_instances)(seed, batch);
    let mut options = options.clone();
    options.seed = seed;
    let model = compile(&spec.source, &options).map_err(|e| e.to_string())?;
    let r = model.run(&spec.params, &instances).map_err(|e| e.to_string())?;
    Ok(Measurement { ms: r.stats.total_ms(), stats: r.stats })
}

/// Runs the DyNet baseline, taking the better of its two schedulers per
/// configuration (the paper's footnote 7).
///
/// # Errors
///
/// Returns a message on failure; a simulated device OOM is reported as
/// `"OOM"` (rendered as `-` in Table 4, matching the paper's Berxit cells).
pub fn run_dynet(
    spec: &ModelSpec,
    improvements: Improvements,
    device_memory: usize,
    batch: usize,
    seed: u64,
) -> Result<Measurement, String> {
    let run = spec.dynet_run.as_ref().ok_or_else(|| "no DyNet implementation".to_string())?;
    let instances = (spec.make_instances)(seed, batch);
    let mut best: Option<Measurement> = None;
    for scheduler in [DynetScheduler::Agenda, DynetScheduler::Depth] {
        let cfg = DynetConfig { scheduler, improvements, device_memory, ..Default::default() };
        match run(&cfg, &instances, seed) {
            Ok((_, stats)) => {
                let m = Measurement { ms: stats.total_ms(), stats };
                if best.map(|b| m.ms < b.ms).unwrap_or(true) {
                    best = Some(m);
                }
            }
            Err(acrobat_tensor::TensorError::DeviceOom { .. }) => {
                return Err("OOM".into());
            }
            Err(e) => return Err(e.to_string()),
        }
    }
    best.ok_or_else(|| "no scheduler succeeded".to_string())
}

/// Builds the model suite, optionally at reduced scale for smoke runs.
pub fn suite(size: ModelSize, quick: bool) -> Vec<ModelSpec> {
    if !quick {
        return acrobat_models::suite(size);
    }
    // Quick mode: small hidden sizes and loop bounds, same structures.
    let d = 16;
    vec![
        treelstm::spec_with(d, 5),
        mvrnn::spec_with(d, 5),
        birnn::spec_with(d, 3),
        nestedrnn::spec_with(d, nestedrnn::Bounds { inner: (3, 6), outer: (3, 5) }),
        drnn::spec_with(d, 4),
        berxit::spec_with(d, 4 * d, 8, 6),
        stackrnn::spec_with(d),
    ]
}

/// Whether `--quick` was passed on the command line.
pub fn quick_flag() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Whether `--json` was passed on the command line (machine-readable
/// bench output in addition to the text tables).
pub fn json_flag() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// One machine-readable benchmark datum for `bench_results/BENCH_<name>.json`.
#[derive(Debug, Clone)]
pub struct JsonRecord {
    /// Configuration label, e.g. `"treelstm/streams=4+copy"`.
    pub config: String,
    /// Metric name, e.g. `"modeled_ms"`.
    pub metric: String,
    /// Metric value.
    pub value: f64,
}

impl JsonRecord {
    /// Convenience constructor.
    pub fn new(config: impl Into<String>, metric: impl Into<String>, value: f64) -> JsonRecord {
        JsonRecord { config: config.into(), metric: metric.into(), value }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Writes `bench_results/BENCH_<bench>.json`: a JSON array of
/// `{bench, config, metric, value}` objects — the perf-trajectory record.
/// The workspace has no JSON dependency, so the document is emitted by
/// hand (non-finite values become `null`).
pub fn write_bench_json(bench: &str, records: &[JsonRecord]) {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let value = if r.value.is_finite() { format!("{}", r.value) } else { "null".into() };
        out.push_str(&format!(
            "  {{\"bench\": \"{}\", \"config\": \"{}\", \"metric\": \"{}\", \"value\": {}}}{}\n",
            json_escape(bench),
            json_escape(&r.config),
            json_escape(&r.metric),
            value,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    // Anchor on the workspace root: criterion benches run with CWD = the
    // crate directory, bins with CWD = the invocation directory; both must
    // land in the repo-level bench_results/.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench_results");
    std::fs::create_dir_all(&dir).expect("bench_results dir");
    let path = dir.join(format!("BENCH_{bench}.json"));
    std::fs::write(&path, out).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!("wrote bench_results/BENCH_{bench}.json");
}

/// Renders an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut line = String::from("| ");
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!("{:>w$} | ", c, w = widths[i]));
        }
        line
    };
    println!("{}", fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    println!("|{}|", widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("|"));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats a millisecond value compactly.
pub fn ms(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Model-parameter map type alias used across the binaries.
pub type Params = BTreeMap<String, acrobat_core::Tensor>;

/// Convenience: shared instances for a spec.
pub fn instances_for(spec: &ModelSpec, seed: u64, batch: usize) -> Vec<Vec<InputValue>> {
    (spec.make_instances)(seed, batch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_runs_end_to_end() {
        for spec in suite(ModelSize::Small, true) {
            let m = run_acrobat(&spec, &CompileOptions::default(), 4, 0x1234)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert!(m.ms > 0.0, "{}", spec.name);
            if spec.dynet_run.is_some() {
                let d = run_dynet(&spec, Improvements::default(), 64 << 20, 4, 0x1234)
                    .unwrap_or_else(|e| panic!("{} dynet: {e}", spec.name));
                assert!(d.ms > 0.0);
            }
        }
    }

    #[test]
    fn json_escaping_is_sound() {
        assert_eq!(json_escape("plain/config=1"), "plain/config=1");
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn table_formatting_does_not_panic() {
        print_table(
            "T",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert_eq!(ms(123.4), "123");
        assert_eq!(ms(12.34), "12.3");
        assert_eq!(ms(1.234), "1.23");
    }
}
