//! Differential fuzzing for the auto-batching runtime.
//!
//! Two seeded generators, shared by the `differential_fuzz` integration
//! test and the `fuzz` binary:
//!
//! * [`FuzzCase`] — random small IR programs (straight-line `let` chains
//!   over relu/sigmoid/tanh/add/mul/matmul/concat), compiled and executed
//!   through the full pipeline under every scheduler/ablation combination
//!   in checked mode, and compared **bit-for-bit** against a host-side
//!   reference evaluator, unbatched eager execution, and the DyNet-sim
//!   baseline;
//! * [`dag_outputs`] — random DAG workloads driven directly through
//!   [`Runtime::add_unit`] with random cross-instance dependences and two
//!   shared-operand signatures, exercising the schedulers on graph shapes
//!   the frontend never emits.
//!
//! Bit-for-bit equality is the soundness bar: batched execution must be
//! *semantically invisible* (DESIGN.md), so `1e-6`-style tolerances would
//! hide real scheduling bugs.

use std::collections::BTreeMap;

use acrobat_analysis::{analyze, AnalysisOptions, ArgClass};
use acrobat_baselines::dynet::{run_minibatch, DynetConfig, NodeRef};
use acrobat_codegen::{KernelBackendKind, KernelLibrary};
use acrobat_core::{compile, CompileOptions};
use acrobat_ir::{parse_module, typeck};
use acrobat_runtime::{DeviceModel, Engine, RuntimeOptions, SchedulerKind, ValueId};
use acrobat_tensor::{execute, PrimOp, Tensor, TensorError};
use acrobat_vm::InputValue;

/// splitmix64 — the workspace's standard seeded PRNG recurrence.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// A value in roughly [-1, 1] with two decimal digits (exact in f32).
    fn unit(&mut self) -> f32 {
        (self.below(201) as f32 - 100.0) / 100.0
    }
}

/// One straight-line op over previously defined values (index 0 is `%x`).
enum GenOp {
    /// `op(%a)` for relu/sigmoid/tanh.
    Unary(PrimOp, usize),
    /// `op(%a, %b)` for add/mul.
    Bin(PrimOp, usize, usize),
    /// `matmul(%a, $w{1,2})`.
    MatW(usize, usize),
    /// `matmul(concat[axis=1](%a, %b), $wc)`.
    ConcatMat(usize, usize),
}

/// A generated IR program plus everything needed to run and check it.
pub struct FuzzCase {
    /// The frontend source of `@main`.
    pub source: String,
    /// Model parameters (`$`-bindings).
    pub params: BTreeMap<String, Tensor>,
    /// Per-instance inputs for [`acrobat_core::compile`]d models.
    pub instances: Vec<Vec<InputValue>>,
    ops: Vec<GenOp>,
    xs: Vec<Tensor>,
    dim: usize,
}

impl std::fmt::Debug for FuzzCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FuzzCase")
            .field("dim", &self.dim)
            .field("ops", &self.ops.len())
            .field("instances", &self.xs.len())
            .finish()
    }
}

fn var(j: usize) -> String {
    if j == 0 {
        "%x".into()
    } else {
        format!("%v{j}")
    }
}

impl FuzzCase {
    /// Generates the case for one seed (deterministic).
    pub fn generate(seed: u64) -> FuzzCase {
        let mut r = Rng::new(seed);
        let dim = 2 + r.below(3);
        let n_ops = 1 + r.below(6);
        let mut ops = Vec::with_capacity(n_ops);
        for k in 0..n_ops {
            let a = r.below(k + 1);
            let b = r.below(k + 1);
            ops.push(match r.below(7) {
                0 => GenOp::Unary(PrimOp::Relu, a),
                1 => GenOp::Unary(PrimOp::Sigmoid, a),
                2 => GenOp::Unary(PrimOp::Tanh, a),
                3 => GenOp::Bin(PrimOp::Add, a, b),
                4 => GenOp::Bin(PrimOp::Mul, a, b),
                5 => GenOp::MatW(r.below(2), a),
                _ => GenOp::ConcatMat(a, b),
            });
        }

        let mut params = BTreeMap::new();
        let mut sig = Vec::new();
        for w in 0..2 {
            if ops.iter().any(|o| matches!(o, GenOp::MatW(i, _) if *i == w)) {
                sig.push(format!("$w{}: Tensor[({dim}, {dim})]", w + 1));
                params.insert(
                    format!("w{}", w + 1),
                    Tensor::from_fn(&[dim, dim], |i| {
                        ((i * 13 + w * 7 + seed as usize) % 21) as f32 / 20.0 - 0.5
                    }),
                );
            }
        }
        if ops.iter().any(|o| matches!(o, GenOp::ConcatMat(..))) {
            sig.push(format!("$wc: Tensor[({}, {dim})]", 2 * dim));
            params.insert(
                "wc".into(),
                Tensor::from_fn(&[2 * dim, dim], |i| {
                    ((i * 11 + seed as usize) % 17) as f32 / 16.0 - 0.5
                }),
            );
        }
        sig.push(format!("%x: Tensor[(1, {dim})]"));

        let mut body = String::new();
        for (k, op) in ops.iter().enumerate() {
            let expr = match op {
                GenOp::Unary(p, a) => format!("{}({})", p.name(), var(*a)),
                GenOp::Bin(p, a, b) => format!("{}({}, {})", p.name(), var(*a), var(*b)),
                GenOp::MatW(w, a) => format!("matmul({}, $w{})", var(*a), w + 1),
                GenOp::ConcatMat(a, b) => {
                    format!("matmul(concat[axis=1]({}, {}), $wc)", var(*a), var(*b))
                }
            };
            body.push_str(&format!("    let %v{} = {expr};\n", k + 1));
        }
        body.push_str(&format!("    %v{n_ops}\n"));
        let source = format!("def @main({}) -> Tensor[(1, {dim})] {{\n{body}}}\n", sig.join(", "));

        let batch = 2 + r.below(4);
        let xs: Vec<Tensor> =
            (0..batch).map(|_| Tensor::from_fn(&[1, dim], |_| r.unit())).collect();
        let instances = xs.iter().map(|x| vec![InputValue::Tensor(x.clone())]).collect();
        FuzzCase { source, params, instances, ops, xs, dim }
    }

    /// Evaluates every instance with the host reference executor
    /// ([`acrobat_tensor::execute`]) — no DFG, no scheduler, no device.
    pub fn host_reference(&self) -> Vec<Tensor> {
        self.xs
            .iter()
            .map(|x| {
                let mut vals = vec![x.clone()];
                for op in &self.ops {
                    let t = match op {
                        GenOp::Unary(p, a) => execute(p, &[&vals[*a]]),
                        GenOp::Bin(p, a, b) => execute(p, &[&vals[*a], &vals[*b]]),
                        GenOp::MatW(w, a) => execute(
                            &PrimOp::MatMul,
                            &[&vals[*a], &self.params[&format!("w{}", w + 1)]],
                        ),
                        GenOp::ConcatMat(a, b) => {
                            let c = execute(&PrimOp::Concat { axis: 1 }, &[&vals[*a], &vals[*b]])
                                .expect("reference concat");
                            execute(&PrimOp::MatMul, &[&c, &self.params["wc"]])
                        }
                    }
                    .expect("reference op");
                    vals.push(t);
                }
                vals.pop().unwrap()
            })
            .collect()
    }

    /// Compiles and runs the program under `options`, returning one output
    /// tensor per instance.
    ///
    /// # Errors
    ///
    /// Returns compile/runtime errors as strings.
    pub fn run_acrobat(&self, options: &CompileOptions) -> Result<Vec<Tensor>, String> {
        let model = compile(&self.source, options).map_err(|e| e.to_string())?;
        let r = model.run(&self.params, &self.instances).map_err(|e| e.to_string())?;
        Ok(r.outputs.iter().map(|o| o.tensors()[0].clone()).collect())
    }

    /// Compiles and runs the program as a two-member cohort
    /// ([`acrobat_core::Model::run_cohort`]): the instance stream split in
    /// half across two co-batched "requests", demuxed outputs concatenated
    /// back into stream order.  Cross-request merging must be bit-for-bit
    /// invisible, so the result must equal [`run_acrobat`](Self::run_acrobat).
    ///
    /// # Errors
    ///
    /// Returns compile/runtime errors as strings.
    pub fn run_acrobat_cohort(&self, options: &CompileOptions) -> Result<Vec<Tensor>, String> {
        use acrobat_vm::{CohortRequest, RunOptions};
        let model = compile(&self.source, options).map_err(|e| e.to_string())?;
        let half = self.instances.len() / 2;
        let requests: Vec<CohortRequest<'_>> = [&self.instances[..half], &self.instances[half..]]
            .into_iter()
            .map(|instances| CohortRequest {
                params: &self.params,
                instances,
                opts: RunOptions::default(),
            })
            .collect();
        let mut out = Vec::with_capacity(self.instances.len());
        for member in model.run_cohort(&requests) {
            let r = member.map_err(|e| e.to_string())?;
            out.extend(r.outputs.iter().map(|o| o.tensors()[0].clone()));
        }
        Ok(out)
    }

    /// Replays the same op sequence through the DyNet-sim computation
    /// graph, returning one output tensor per instance.
    ///
    /// # Errors
    ///
    /// Propagates device and kernel errors.
    pub fn run_dynet(&self) -> Result<Vec<Tensor>, TensorError> {
        let (outs, _) = run_minibatch(
            DynetConfig::default(),
            self.xs.len(),
            |cg| {
                let mut ws: BTreeMap<String, NodeRef> = BTreeMap::new();
                for (name, t) in &self.params {
                    ws.insert(name.clone(), cg.parameter(t)?);
                }
                Ok(ws)
            },
            |cg, ws, i| {
                let mut vals = vec![cg.input(&self.xs[i])?];
                for op in &self.ops {
                    let n = match op {
                        GenOp::Unary(p, a) => cg.apply(p.clone(), &[vals[*a]])?,
                        GenOp::Bin(p, a, b) => cg.apply(p.clone(), &[vals[*a], vals[*b]])?,
                        GenOp::MatW(w, a) => {
                            cg.apply(PrimOp::MatMul, &[vals[*a], ws[&format!("w{}", w + 1)]])?
                        }
                        GenOp::ConcatMat(a, b) => {
                            let c = cg.apply(PrimOp::Concat { axis: 1 }, &[vals[*a], vals[*b]])?;
                            cg.apply(PrimOp::MatMul, &[c, ws["wc"]])?
                        }
                    };
                    vals.push(n);
                }
                Ok(vec![*vals.last().unwrap()])
            },
        )?;
        Ok(outs.into_iter().map(|mut v| v.remove(0)).collect())
    }
}

/// The scheduler/ablation matrix every fuzz case runs under: all three
/// schedulers × gather-fusion × coarsening × {sequential, 4-worker
/// parallel execution} × {plan cache off, on} × {broker off, on} ×
/// {interpreter, specialized kernel backend}, all in checked mode, plus
/// the unbatched eager configuration (also checked, both cache settings).
/// The parallel axis must be bit-for-bit invisible: same plan, same
/// outputs, real threads.  The plan-cache axis must be equally invisible —
/// and because every configuration is checked, every cache hit the fuzzer
/// produces passes the cached ≡ freshly-scheduled bit-identity gate
/// (`acrobat_runtime::check::validate_cached_plan`).  The broker axis
/// routes every run through `BatchBroker::submit` and the cohort path
/// (`acrobat_vm::broker`), which must be equally invisible.  The backend
/// axis (`be=spec`) compiles every kernel from its first launch
/// (threshold 1 — the generated kernels are straight-line `@main` code
/// whose static hotness would otherwise gate compilation out) and, being
/// checked, cross-executes every compiled launch against the interpreter
/// on top of the host-reference comparison the fuzz driver performs.
pub fn config_matrix() -> Vec<(String, CompileOptions)> {
    let mut out = Vec::new();
    for scheduler in
        [SchedulerKind::InlineDepth, SchedulerKind::DynamicDepth, SchedulerKind::Agenda]
    {
        for gather_fusion in [false, true] {
            for coarsen in [false, true] {
                for parallel_workers in [0, 4] {
                    for plan_cache in [false, true] {
                        for broker in [false, true] {
                            for backend in [KernelBackendKind::Interp, KernelBackendKind::Spec] {
                                let mut o = CompileOptions::default().with_checked(true);
                                o.runtime.scheduler = scheduler;
                                o.runtime.gather_fusion = gather_fusion;
                                o.runtime.coarsen = coarsen;
                                o.runtime.parallel_workers = parallel_workers;
                                o.runtime.plan_cache = plan_cache;
                                o.runtime.broker = broker;
                                o.runtime.backend = backend;
                                o.runtime.spec_threshold = 1;
                                let be = match backend {
                                    KernelBackendKind::Interp => "interp",
                                    KernelBackendKind::Spec => "spec",
                                };
                                out.push((
                                    format!(
                                        "{scheduler:?}/gf={gather_fusion}/co={coarsen}\
                                         /par={parallel_workers}/pc={plan_cache}/br={broker}\
                                         /be={be}"
                                    ),
                                    o,
                                ));
                            }
                        }
                    }
                }
            }
        }
    }
    for plan_cache in [false, true] {
        let mut eager = CompileOptions::default().with_checked(true);
        eager.runtime.eager = true;
        eager.runtime.plan_cache = plan_cache;
        out.push((format!("eager/pc={plan_cache}"), eager));
    }
    out
}

/// Runs one random DAG workload directly through
/// [`acrobat_runtime::ExecutionContext::add_unit`]:
/// one kernel, two shared-operand signatures (two resident weights),
/// random dependences between nodes (depth = max dependency depth + 1),
/// returning every node's output tensor in creation order.
///
/// All nodes build first and flush together — except under
/// `options.eager`, which flushes after every node, mirroring the VM
/// driver's eager mode.
///
/// # Errors
///
/// Propagates device and kernel errors.
pub fn dag_outputs(seed: u64, options: &RuntimeOptions) -> Result<Vec<Tensor>, TensorError> {
    const SRC: &str = "def @main($w: Tensor[(3, 3)], %x: Tensor[(1, 3)]) -> Tensor[(1, 3)] {
        relu(matmul(%x, $w))
    }";
    let m = typeck::check_module(parse_module(SRC).expect("dag src parses"))
        .expect("dag src typechecks");
    let a = std::sync::Arc::new(analyze(m, AnalysisOptions::default()).expect("dag src analyzes"));
    let lib = KernelLibrary::build(&a);
    let engine = std::sync::Arc::new(Engine::new(a.clone(), lib, DeviceModel::default(), *options));
    let mut rt = engine.new_context();
    let group = a.blocks.blocks[0].groups[0].id;
    let kernel = rt.library().kernel_for_group(group).clone();

    let mut r = Rng::new(seed);
    let weights: Vec<ValueId> = (0..2)
        .map(|w| {
            let t = Tensor::from_fn(&[3, 3], |i| ((i * 7 + w * 3 + 1) % 13) as f32 / 12.0 - 0.5);
            let dev = rt.mem_mut().upload(&t).expect("weight upload");
            rt.ready_value(dev)
        })
        .collect();

    let n = 4 + r.below(8);
    let mut nodes: Vec<(ValueId, u64)> = Vec::with_capacity(n);
    for i in 0..n {
        let (input, depth) = if nodes.is_empty() || r.below(3) == 0 {
            let x = Tensor::from_fn(&[1, 3], |_| r.unit());
            (rt.upload_inputs(&[&x])?[0], 0)
        } else {
            let j = r.below(nodes.len());
            (nodes[j].0, nodes[j].1 + 1)
        };
        let shared = weights[r.below(2)];
        let args: Vec<ValueId> = kernel
            .inputs
            .iter()
            .map(|inp| match inp.class {
                ArgClass::Batched => input,
                ArgClass::Shared => shared,
            })
            .collect();
        let out = rt.add_unit(group, i, depth, 0, args, true)[0];
        nodes.push((out, depth));
        if options.eager {
            rt.flush()?;
        }
    }
    rt.flush()?;
    nodes.iter().map(|(v, _)| rt.download(*v)).collect()
}
