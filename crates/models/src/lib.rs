//! The seven evaluation models of the ACROBAT paper (Table 3), each
//! implemented twice:
//!
//! * as an ACROBAT frontend program (the `source()` of each module), and
//! * as a DyNet-style computation-graph builder (for the Table 4/5/8
//!   comparisons), consuming the *same* instances and the *same* seeded
//!   pseudo-random streams so control-flow decisions match across
//!   frameworks (§E.1).
//!
//! | Model | Control flow | Data |
//! |---|---|---|
//! | [`treelstm`] | recursive, instance parallel | SST-like random trees |
//! | [`mvrnn`] | recursive, instance parallel | SST-like random trees (matrix+vector leaves) |
//! | [`birnn`] | iterative, two directions | XNLI-like sentence lengths |
//! | [`nestedrnn`] | nested loops, random trip counts | synthetic |
//! | [`drnn`] | recursive generation, TDC + fork-join | random root vectors |
//! | [`berxit`] | early-exit transformer encoder, TDC | fixed-length sequences |
//! | [`stackrnn`] | shift-reduce parser, argmax-driven TDC | XNLI-like sentences |
//!
//! Datasets are seeded synthetic generators ([`data`]) matching the
//! structural statistics of the originals — auto-batching behaviour depends
//! only on control-flow structure, not token identities (see DESIGN.md).

#![deny(missing_docs)]

pub mod berxit;
pub mod birnn;
pub mod data;
pub mod drnn;
pub mod mvrnn;
pub mod nestedrnn;
pub mod stackrnn;
pub mod testkit;
pub mod treelstm;

#[cfg(test)]
pub(crate) use testkit as tests_support;

use std::collections::BTreeMap;

use acrobat_baselines::dynet::DynetConfig;
use acrobat_runtime::RuntimeStats;
use acrobat_tensor::{Tensor, TensorError};
use acrobat_vm::{InputValue, OutputValue};

/// The two model sizes of the evaluation (§7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelSize {
    /// Hidden 256 (MV-RNN 64; Berxit base-like).
    Small,
    /// Hidden 512 (MV-RNN 128; Berxit large-like, 18 layers).
    Large,
}

/// A model ready for both frameworks.
pub struct ModelSpec {
    /// Model name as in Table 3.
    pub name: &'static str,
    /// The ACROBAT frontend program.
    pub source: String,
    /// Model parameters (`$`-bindings of `@main`).
    pub params: BTreeMap<String, Tensor>,
    /// Generates a mini-batch of instances (the `%`-bindings per instance).
    #[allow(clippy::type_complexity)]
    pub make_instances: Box<dyn Fn(u64, usize) -> Vec<Vec<InputValue>> + Send + Sync>,
    /// Runs the DyNet implementation on the same instances, or `None` for
    /// models without a DyNet counterpart.
    #[allow(clippy::type_complexity)]
    pub dynet_run: Option<
        Box<
            dyn Fn(
                    &DynetConfig,
                    &[Vec<InputValue>],
                    u64,
                ) -> Result<(Vec<Vec<Tensor>>, RuntimeStats), TensorError>
                + Send
                + Sync,
        >,
    >,
    /// Extracts the comparable output tensors of one instance.
    pub flatten_output: fn(&OutputValue) -> Vec<Tensor>,
    /// Control-flow properties, for the Table 2 survey.
    pub properties: Properties,
}

impl std::fmt::Debug for ModelSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelSpec").field("name", &self.name).finish()
    }
}

/// Control-flow properties (the columns of Table 2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Properties {
    /// Iterative control flow.
    pub iterative: bool,
    /// Recursive control flow.
    pub recursive: bool,
    /// Tensor-dependent control flow.
    pub tensor_dependent: bool,
    /// High instance (control-flow) parallelism.
    pub instance_parallel: bool,
}

/// Default output flattener: collects every tensor in the output.
pub fn all_tensors(o: &OutputValue) -> Vec<Tensor> {
    o.tensors().into_iter().cloned().collect()
}

/// The full model suite in Table 3/4 order.
pub fn suite(size: ModelSize) -> Vec<ModelSpec> {
    vec![
        treelstm::spec(size),
        mvrnn::spec(size),
        birnn::spec(size),
        nestedrnn::spec(size),
        drnn::spec(size),
        berxit::spec(size),
        stackrnn::spec(size),
    ]
}

/// Hidden size used by most models (§7.1).
pub fn hidden_for(size: ModelSize) -> usize {
    match size {
        ModelSize::Small => 256,
        ModelSize::Large => 512,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_seven_models() {
        let s = suite(ModelSize::Small);
        assert_eq!(s.len(), 7);
        let names: Vec<&str> = s.iter().map(|m| m.name).collect();
        assert_eq!(
            names,
            vec!["TreeLSTM", "MV-RNN", "BiRNN", "NestedRNN", "DRNN", "Berxit", "StackRNN"]
        );
    }
}
