//! StackRNN: a transition-based shift-reduce parser with RNN cells (the
//! paper replaces StackLSTM's LSTM cells with RNN cells, Table 3).
//!
//! Every step computes action logits from the parser state and takes the
//! `argmax` — genuine tensor-dependent control flow: the decision requires
//! the tensor's value, not a pseudo-random draw.  DyNet additionally lacks
//! a batched `argmax` kernel, executing it sequentially (§E.4).

use std::collections::BTreeMap;

use acrobat_baselines::dynet::{ComputationGraph, DynetConfig, NodeRef};
use acrobat_runtime::RuntimeStats;
use acrobat_tensor::{PrimOp, Tensor, TensorError};
use acrobat_vm::InputValue;

use crate::data::{self, Prng};
use crate::{all_tensors, hidden_for, ModelSize, ModelSpec, Properties};

/// The frontend program.
pub fn source(d: usize) -> String {
    let d2 = 2 * d;
    format!(
        r#"
def @cell(%s: Tensor[(1, {d})], %x: Tensor[(1, {d})],
          $cw: Tensor[({d2}, {d})], $cb: Tensor[(1, {d})]) -> Tensor[(1, {d})] {{
    tanh(add(matmul(concat[axis=1](%s, %x), $cw), $cb))
}}

def @parse(%buf: List[Tensor[(1, {d})]], %stack: List[Tensor[(1, {d})]],
           %state: Tensor[(1, {d})], %n: Int,
           $cw: Tensor[({d2}, {d})], $cb: Tensor[(1, {d})], $wa: Tensor[({d}, 2)])
    -> Tensor[(1, {d})] {{
    if %n <= 0 {{ %state }} else {{
        let %act = item(argmax_rows(matmul(%state, $wa)));
        if %act < 0.5 {{
            match %buf {{
                Cons(%tok, %rest) => {{
                    let %ns = @cell(%state, %tok, $cw, $cb);
                    @parse(%rest, Cons(%tok, %stack), %ns, %n - 1, $cw, $cb, $wa)
                }},
                Nil => match %stack {{
                    Cons(%top, %srest) => {{
                        let %ns = @cell(%state, %top, $cw, $cb);
                        @parse(%buf, %srest, %ns, %n - 1, $cw, $cb, $wa)
                    }},
                    Nil => %state
                }}
            }}
        }} else {{
            match %stack {{
                Cons(%top, %srest) => {{
                    let %ns = @cell(%state, %top, $cw, $cb);
                    @parse(%buf, %srest, %ns, %n - 1, $cw, $cb, $wa)
                }},
                Nil => match %buf {{
                    Cons(%tok, %rest) => {{
                        let %ns = @cell(%state, %tok, $cw, $cb);
                        @parse(%rest, Cons(%tok, %stack), %ns, %n - 1, $cw, $cb, $wa)
                    }},
                    Nil => %state
                }}
            }}
        }}
    }}
}}

def @main($cw: Tensor[({d2}, {d})], $cb: Tensor[(1, {d})], $wa: Tensor[({d}, 2)],
          $s0: Tensor[(1, {d})],
          %buf: List[Tensor[(1, {d})]], %n: Int) -> Tensor[(1, {d})] {{
    @parse(%buf, Nil, $s0, %n, $cw, $cb, $wa)
}}
"#
    )
}

/// Model parameters.
pub fn params(d: usize, seed: u64) -> BTreeMap<String, Tensor> {
    let mut rng = Prng::new(seed ^ 0x57ac, 999);
    BTreeMap::from([
        ("cw".into(), data::weight(&mut rng, 2 * d, d)),
        ("cb".into(), data::embedding(&mut rng, d)),
        ("wa".into(), data::weight(&mut rng, d, 2)),
        ("s0".into(), data::embedding(&mut rng, d)),
    ])
}

/// Builds the spec at an explicit hidden size.
pub fn spec_with(d: usize) -> ModelSpec {
    let params = params(d, 0x57);
    let dynet_params = params.clone();
    ModelSpec {
        name: "StackRNN",
        source: source(d),
        params,
        make_instances: Box::new(move |seed, batch| {
            (0..batch)
                .map(|i| {
                    let mut rng = Prng::new(seed, i);
                    let len = data::xnli_length(&mut rng);
                    vec![
                        data::sentence(&mut rng, len, d),
                        // 2·len parser steps (shift everything, reduce everything).
                        InputValue::Int(2 * len as i64),
                    ]
                })
                .collect()
        }),
        dynet_run: Some(Box::new(move |cfg, instances, _| {
            run_dynet(cfg.clone(), &dynet_params, instances)
        })),
        flatten_output: all_tensors,
        properties: Properties { iterative: true, tensor_dependent: true, ..Default::default() },
    }
}

/// The Table 3 configuration.
pub fn spec(size: ModelSize) -> ModelSpec {
    spec_with(hidden_for(size))
}

fn run_dynet(
    cfg: DynetConfig,
    params: &BTreeMap<String, Tensor>,
    instances: &[Vec<InputValue>],
) -> Result<(Vec<Vec<Tensor>>, RuntimeStats), TensorError> {
    acrobat_baselines::dynet::run_minibatch(
        cfg,
        instances.len(),
        |cg| {
            let mut by_name = BTreeMap::new();
            for (k, v) in params {
                by_name.insert(k.clone(), cg.parameter(v)?);
            }
            Ok(by_name)
        },
        |cg, p, i| {
            let mut tokens = Vec::new();
            instances[i][0].tensors(&mut tokens);
            let steps = match &instances[i][1] {
                InputValue::Int(n) => *n,
                other => panic!("{other:?}"),
            };
            let mut buf: Vec<NodeRef> =
                tokens.iter().map(|t| cg.input(t)).collect::<Result<_, _>>()?;
            buf.reverse(); // pop from the front via Vec::pop
            let mut stack: Vec<NodeRef> = Vec::new();
            let mut state = p["s0"];
            let cell = |cg: &mut ComputationGraph,
                        s: NodeRef,
                        x: NodeRef|
             -> Result<NodeRef, TensorError> {
                let cat = cg.apply(PrimOp::Concat { axis: 1 }, &[s, x])?;
                let mm = cg.apply(PrimOp::MatMul, &[cat, p["cw"]])?;
                let a = cg.apply(PrimOp::Add, &[mm, p["cb"]])?;
                cg.apply(PrimOp::Tanh, &[a])
            };
            for _ in 0..steps {
                let logits = cg.apply(PrimOp::MatMul, &[state, p["wa"]])?;
                // Unbatchable vendor argmax + forced value (true TDC).
                let am = cg.apply(PrimOp::ArgmaxRows, &[logits])?;
                let act = cg.forward(am)?.data()[0];
                let shift = act < 0.5;
                let (next, push_tok) = if shift {
                    match buf.pop() {
                        Some(tok) => (tok, true),
                        None => match stack.pop() {
                            Some(top) => (top, false),
                            None => break,
                        },
                    }
                } else {
                    match stack.pop() {
                        Some(top) => (top, false),
                        None => match buf.pop() {
                            Some(tok) => (tok, true),
                            None => break,
                        },
                    }
                };
                state = cell(cg, state, next)?;
                if push_tok {
                    stack.push(next);
                }
            }
            Ok(vec![state])
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::check_acrobat_vs_dynet;

    #[test]
    fn acrobat_and_dynet_agree() {
        check_acrobat_vs_dynet(&spec_with(4), 3, 0x57AC);
    }

    #[test]
    fn dynet_argmax_runs_sequentially() {
        let spec = spec_with(4);
        let instances = (spec.make_instances)(0x9, 4);
        let (_, stats) =
            (spec.dynet_run.as_ref().unwrap())(&DynetConfig::default(), &instances, 0).unwrap();
        // With 4 instances and per-step argmaxes, launches far exceed what a
        // batched framework would need.
        assert!(stats.kernel_launches > 40, "launches: {}", stats.kernel_launches);
    }
}
