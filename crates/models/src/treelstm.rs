//! TreeLSTM (Socher et al. 2013) over SST-like random parse trees.
//!
//! Recursive control flow with high instance parallelism (sibling subtrees
//! encode concurrently, Table 2).  The leaf rule initializes the cell state
//! from a *constant zero tensor* — the §E.4 case where ACROBAT's taint
//! analysis recognizes a reusable constant while stock DyNet re-creates and
//! re-executes the fill per leaf.

use std::collections::BTreeMap;

use acrobat_baselines::dynet::{ComputationGraph, DynetConfig, NodeRef};
use acrobat_runtime::RuntimeStats;
use acrobat_tensor::{PrimOp, Shape, Tensor, TensorError};
use acrobat_vm::InputValue;

use crate::data::{self, Prng};
use crate::{all_tensors, hidden_for, ModelSize, ModelSpec, Properties};

/// The frontend program, parameterized by hidden size and class count.
pub fn source(d: usize, classes: usize) -> String {
    let d2 = 2 * d;
    format!(
        r#"
type Tree[a] {{ Leaf(a), Node(Tree[a], Tree[a]) }}

def @leaf(%e: Tensor[(1, {d})],
          $lwi: Tensor[({d}, {d})], $lwo: Tensor[({d}, {d})], $lwu: Tensor[({d}, {d})],
          $lbi: Tensor[(1, {d})], $lbo: Tensor[(1, {d})], $lbu: Tensor[(1, {d})])
    -> (Tensor[(1, {d})], Tensor[(1, {d})]) {{
    let %i = sigmoid(add(matmul(%e, $lwi), $lbi));
    let %o = sigmoid(add(matmul(%e, $lwo), $lbo));
    let %u = tanh(add(matmul(%e, $lwu), $lbu));
    let %c = add(mul(%i, %u), zeros[shape=(1, {d})]());
    (mul(%o, tanh(%c)), %c)
}}

def @enc(%t: Tree[Tensor[(1, {d})]],
         $lwi: Tensor[({d}, {d})], $lwo: Tensor[({d}, {d})], $lwu: Tensor[({d}, {d})],
         $lbi: Tensor[(1, {d})], $lbo: Tensor[(1, {d})], $lbu: Tensor[(1, {d})],
         $nwi: Tensor[({d2}, {d})], $nwf: Tensor[({d2}, {d})], $nwo: Tensor[({d2}, {d})], $nwu: Tensor[({d2}, {d})],
         $nbi: Tensor[(1, {d})], $nbf: Tensor[(1, {d})], $nbo: Tensor[(1, {d})], $nbu: Tensor[(1, {d})])
    -> (Tensor[(1, {d})], Tensor[(1, {d})]) {{
    match %t {{
        Leaf(%e) => @leaf(%e, $lwi, $lwo, $lwu, $lbi, $lbo, $lbu),
        Node(%l, %r) => {{
            let (%lp, %rp) = parallel(
                @enc(%l, $lwi, $lwo, $lwu, $lbi, $lbo, $lbu, $nwi, $nwf, $nwo, $nwu, $nbi, $nbf, $nbo, $nbu),
                @enc(%r, $lwi, $lwo, $lwu, $lbi, $lbo, $lbu, $nwi, $nwf, $nwo, $nwu, $nbi, $nbf, $nbo, $nbu));
            let %x = concat[axis=1](%lp.0, %rp.0);
            let %i = sigmoid(add(matmul(%x, $nwi), $nbi));
            let %f = sigmoid(add(matmul(%x, $nwf), $nbf));
            let %o = sigmoid(add(matmul(%x, $nwo), $nbo));
            let %u = tanh(add(matmul(%x, $nwu), $nbu));
            let %c = add(mul(%i, %u), mul(%f, add(%lp.1, %rp.1)));
            (mul(%o, tanh(%c)), %c)
        }}
    }}
}}

def @main($lwi: Tensor[({d}, {d})], $lwo: Tensor[({d}, {d})], $lwu: Tensor[({d}, {d})],
          $lbi: Tensor[(1, {d})], $lbo: Tensor[(1, {d})], $lbu: Tensor[(1, {d})],
          $nwi: Tensor[({d2}, {d})], $nwf: Tensor[({d2}, {d})], $nwo: Tensor[({d2}, {d})], $nwu: Tensor[({d2}, {d})],
          $nbi: Tensor[(1, {d})], $nbf: Tensor[(1, {d})], $nbo: Tensor[(1, {d})], $nbu: Tensor[(1, {d})],
          $wc: Tensor[({d}, {classes})], $bc: Tensor[(1, {classes})],
          %t: Tree[Tensor[(1, {d})]]) -> Tensor[(1, {classes})] {{
    let (%h, %c) = @enc(%t, $lwi, $lwo, $lwu, $lbi, $lbo, $lbu,
                        $nwi, $nwf, $nwo, $nwu, $nbi, $nbf, $nbo, $nbu);
    relu(add(matmul(%h, $wc), $bc))
}}
"#
    )
}

/// Model parameters for hidden size `d` and `classes` output classes.
pub fn params(d: usize, classes: usize, seed: u64) -> BTreeMap<String, Tensor> {
    let mut rng = Prng::new(seed ^ 0x7ee, 999);
    let mut p = BTreeMap::new();
    for name in ["lwi", "lwo", "lwu"] {
        p.insert(name.into(), data::weight(&mut rng, d, d));
    }
    for name in ["lbi", "lbo", "lbu"] {
        p.insert(name.into(), data::embedding(&mut rng, d));
    }
    for name in ["nwi", "nwf", "nwo", "nwu"] {
        p.insert(name.into(), data::weight(&mut rng, 2 * d, d));
    }
    for name in ["nbi", "nbf", "nbo", "nbu"] {
        p.insert(name.into(), data::embedding(&mut rng, d));
    }
    p.insert("wc".into(), data::weight(&mut rng, d, classes));
    p.insert("bc".into(), data::embedding(&mut rng, classes));
    p
}

/// Builds the spec at an explicit hidden size (tests use tiny sizes).
pub fn spec_with(d: usize, classes: usize) -> ModelSpec {
    let params = params(d, classes, 0x715);
    let dynet_params = params.clone();
    ModelSpec {
        name: "TreeLSTM",
        source: source(d, classes),
        params,
        make_instances: Box::new(move |seed, batch| {
            (0..batch)
                .map(|i| {
                    let mut rng = Prng::new(seed, i);
                    let leaves = data::sst_length(&mut rng);
                    vec![data::random_tree(&mut rng, leaves, &mut |r| {
                        InputValue::Tensor(data::embedding(r, d))
                    })]
                })
                .collect()
        }),
        dynet_run: Some(Box::new(move |cfg, instances, _seed| {
            run_dynet(cfg.clone(), &dynet_params, d, instances)
        })),
        flatten_output: all_tensors,
        properties: Properties {
            recursive: true,
            instance_parallel: true,
            ..Properties::default()
        },
    }
}

/// The Table 3 configuration.
pub fn spec(size: ModelSize) -> ModelSpec {
    spec_with(hidden_for(size), 5)
}

struct DyParams {
    by_name: BTreeMap<String, NodeRef>,
}

fn dy_setup(
    cg: &mut ComputationGraph,
    params: &BTreeMap<String, Tensor>,
) -> Result<DyParams, TensorError> {
    let mut by_name = BTreeMap::new();
    for (k, v) in params {
        by_name.insert(k.clone(), cg.parameter(v)?);
    }
    Ok(DyParams { by_name })
}

fn linear(
    cg: &mut ComputationGraph,
    x: NodeRef,
    w: NodeRef,
    b: NodeRef,
    act: PrimOp,
) -> Result<NodeRef, TensorError> {
    let mm = cg.apply(PrimOp::MatMul, &[x, w])?;
    let s = cg.apply(PrimOp::Add, &[mm, b])?;
    cg.apply(act, &[s])
}

fn dy_enc(
    cg: &mut ComputationGraph,
    p: &DyParams,
    d: usize,
    t: &InputValue,
) -> Result<(NodeRef, NodeRef), TensorError> {
    let g = |n: &str| p.by_name[n];
    match t {
        InputValue::Adt { ctor, fields } if ctor == "Leaf" => {
            let e = match &fields[0] {
                InputValue::Tensor(t) => cg.input(t)?,
                other => panic!("leaf field {other:?}"),
            };
            let i = linear(cg, e, g("lwi"), g("lbi"), PrimOp::Sigmoid)?;
            let o = linear(cg, e, g("lwo"), g("lbo"), PrimOp::Sigmoid)?;
            let u = linear(cg, e, g("lwu"), g("lbu"), PrimOp::Tanh)?;
            // Constant zero cell state — re-created per leaf under stock
            // DyNet (§E.4), cached under DN++.
            let z = cg.constant(0.0, &Shape::new(&[1, d]));
            let iu = cg.apply(PrimOp::Mul, &[i, u])?;
            let c = cg.apply(PrimOp::Add, &[iu, z])?;
            let tc = cg.apply(PrimOp::Tanh, &[c])?;
            Ok((cg.apply(PrimOp::Mul, &[o, tc])?, c))
        }
        InputValue::Adt { ctor, fields } if ctor == "Node" => {
            let (lh, lc) = dy_enc(cg, p, d, &fields[0])?;
            let (rh, rc) = dy_enc(cg, p, d, &fields[1])?;
            let x = cg.apply(PrimOp::Concat { axis: 1 }, &[lh, rh])?;
            let i = linear(cg, x, g("nwi"), g("nbi"), PrimOp::Sigmoid)?;
            let f = linear(cg, x, g("nwf"), g("nbf"), PrimOp::Sigmoid)?;
            let o = linear(cg, x, g("nwo"), g("nbo"), PrimOp::Sigmoid)?;
            let u = linear(cg, x, g("nwu"), g("nbu"), PrimOp::Tanh)?;
            let iu = cg.apply(PrimOp::Mul, &[i, u])?;
            let cc = cg.apply(PrimOp::Add, &[lc, rc])?;
            let fc = cg.apply(PrimOp::Mul, &[f, cc])?;
            let c = cg.apply(PrimOp::Add, &[iu, fc])?;
            let tc = cg.apply(PrimOp::Tanh, &[c])?;
            Ok((cg.apply(PrimOp::Mul, &[o, tc])?, c))
        }
        other => panic!("not a tree: {other:?}"),
    }
}

fn run_dynet(
    cfg: DynetConfig,
    params: &BTreeMap<String, Tensor>,
    d: usize,
    instances: &[Vec<InputValue>],
) -> Result<(Vec<Vec<Tensor>>, RuntimeStats), TensorError> {
    acrobat_baselines::dynet::run_minibatch(
        cfg,
        instances.len(),
        |cg| dy_setup(cg, params),
        |cg, p, i| {
            let (h, _c) = dy_enc(cg, p, d, &instances[i][0])?;
            let out = linear(cg, h, p.by_name["wc"], p.by_name["bc"], PrimOp::Relu)?;
            Ok(vec![out])
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::check_acrobat_vs_dynet;

    #[test]
    fn acrobat_and_dynet_agree() {
        check_acrobat_vs_dynet(&spec_with(4, 3), 4, 0xABCD);
    }

    #[test]
    fn dynet_leaf_constants_hurt_stock() {
        let spec = spec_with(4, 3);
        let instances = (spec.make_instances)(0x11, 6);
        let stock =
            (spec.dynet_run.as_ref().unwrap())(&DynetConfig::default(), &instances, 0x11).unwrap();
        let improved_cfg = DynetConfig {
            improvements: acrobat_baselines::dynet::Improvements::all(),
            ..Default::default()
        };
        let improved = (spec.dynet_run.as_ref().unwrap())(&improved_cfg, &instances, 0x11).unwrap();
        assert!(
            improved.1.kernel_launches < stock.1.kernel_launches,
            "DN++ reduces launches: {} vs {}",
            improved.1.kernel_launches,
            stock.1.kernel_launches
        );
    }
}
