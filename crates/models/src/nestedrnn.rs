//! NestedRNN: an RNN loop nested inside a GRU loop, each iterating a
//! pseudo-random number of times (Table 3).
//!
//! This is the evaluation's Table 9 model: the inner RNN cell executes many
//! times per outer GRU step, so the PGO-prioritized auto-scheduler gives
//! the inner kernels most of the tuning budget (§E.5).

use std::collections::BTreeMap;

use acrobat_baselines::dynet::{ComputationGraph, DynetConfig, NodeRef};
use acrobat_runtime::RuntimeStats;
use acrobat_tensor::{PrimOp, Shape, Tensor, TensorError};
use acrobat_vm::InputValue;

use crate::data::{self, Prng};
use crate::{all_tensors, hidden_for, ModelSize, ModelSpec, Properties};

/// Loop-bound configuration (the paper uses `[20, 40]` for both loops).
#[derive(Debug, Clone, Copy)]
pub struct Bounds {
    /// Inner RNN trip-count bounds (inclusive).
    pub inner: (i64, i64),
    /// Outer GRU trip-count bounds (inclusive).
    pub outer: (i64, i64),
}

impl Default for Bounds {
    fn default() -> Self {
        Bounds { inner: (20, 40), outer: (20, 40) }
    }
}

/// The frontend program.
pub fn source(d: usize, bounds: Bounds) -> String {
    let (ilo, ihi) = bounds.inner;
    let (olo, ohi) = bounds.outer;
    format!(
        r#"
def @inner(%h: Tensor[(1, {d})], %n: Int,
           $wi: Tensor[({d}, {d})], $bi: Tensor[(1, {d})]) -> Tensor[(1, {d})] {{
    if %n <= 0 {{ %h }} else {{
        @inner(tanh(add(matmul(%h, $wi), $bi)), %n - 1, $wi, $bi)
    }}
}}

def @outer(%h: Tensor[(1, {d})], %n: Int,
           $wi: Tensor[({d}, {d})], $bi: Tensor[(1, {d})],
           $wz: Tensor[({d}, {d})], $wr: Tensor[({d}, {d})], $wh: Tensor[({d}, {d})])
    -> Tensor[(1, {d})] {{
    if %n <= 0 {{ %h }} else {{
        let %hh = @inner(%h, rand_range[lo={ilo}, hi={ihi}](), $wi, $bi);
        let %z = sigmoid(matmul(%hh, $wz));
        let %r = sigmoid(matmul(%hh, $wr));
        let %hc = tanh(matmul(mul(%r, %hh), $wh));
        let %nh = add(mul(%z, %hh), mul(sub(ones[shape=(1, {d})](), %z), %hc));
        @outer(%nh, %n - 1, $wi, $bi, $wz, $wr, $wh)
    }}
}}

def @main($wi: Tensor[({d}, {d})], $bi: Tensor[(1, {d})],
          $wz: Tensor[({d}, {d})], $wr: Tensor[({d}, {d})], $wh: Tensor[({d}, {d})],
          %h0: Tensor[(1, {d})]) -> Tensor[(1, {d})] {{
    @outer(%h0, rand_range[lo={olo}, hi={ohi}](), $wi, $bi, $wz, $wr, $wh)
}}
"#
    )
}

/// Model parameters.
pub fn params(d: usize, seed: u64) -> BTreeMap<String, Tensor> {
    let mut rng = Prng::new(seed ^ 0x2e57, 999);
    let mut p = BTreeMap::new();
    for name in ["wi", "wz", "wr", "wh"] {
        p.insert(name.to_string(), data::weight(&mut rng, d, d));
    }
    p.insert("bi".into(), data::embedding(&mut rng, d));
    p
}

/// Builds the spec at explicit size and bounds.
pub fn spec_with(d: usize, bounds: Bounds) -> ModelSpec {
    let params = params(d, 0x2e);
    let dynet_params = params.clone();
    ModelSpec {
        name: "NestedRNN",
        source: source(d, bounds),
        params,
        make_instances: Box::new(move |seed, batch| {
            (0..batch)
                .map(|i| {
                    let mut rng = Prng::new(seed ^ 0x17, i);
                    vec![InputValue::Tensor(data::embedding(&mut rng, d))]
                })
                .collect()
        }),
        dynet_run: Some(Box::new(move |cfg, instances, seed| {
            run_dynet(cfg.clone(), &dynet_params, bounds, instances, seed)
        })),
        flatten_output: all_tensors,
        // The random trip counts emulate data-dependent iteration without
        // consulting tensor values (the paper's §E.1 protocol), so the
        // model is not tensor-dependent in the Table 2 sense.
        properties: Properties { iterative: true, ..Default::default() },
    }
}

/// The Table 3 configuration.
pub fn spec(size: ModelSize) -> ModelSpec {
    spec_with(hidden_for(size), Bounds::default())
}

fn run_dynet(
    cfg: DynetConfig,
    params: &BTreeMap<String, Tensor>,
    bounds: Bounds,
    instances: &[Vec<InputValue>],
    seed: u64,
) -> Result<(Vec<Vec<Tensor>>, RuntimeStats), TensorError> {
    let d = params["bi"].shape().dim(1);
    acrobat_baselines::dynet::run_minibatch(
        cfg,
        instances.len(),
        |cg| {
            let mut by_name = BTreeMap::new();
            for (k, v) in params {
                by_name.insert(k.clone(), cg.parameter(v)?);
            }
            Ok(by_name)
        },
        |cg, p, i| {
            // Identical pseudo-random trip counts as the ACROBAT run: the
            // ExecCtx stream is Prng::new(seed, instance), consumed once for
            // the outer count and once per outer step for the inner count.
            let mut rng = Prng::new(seed, i);
            let mut h = match &instances[i][0] {
                InputValue::Tensor(t) => cg.input(t)?,
                other => panic!("{other:?}"),
            };
            let outer = rng.next_range(bounds.outer.0, bounds.outer.1);
            let act = |cg: &mut ComputationGraph, x: NodeRef, w: NodeRef, op: PrimOp| {
                let mm = cg.apply(PrimOp::MatMul, &[x, w])?;
                cg.apply(op, &[mm])
            };
            for _ in 0..outer {
                let inner = rng.next_range(bounds.inner.0, bounds.inner.1);
                let mut hh = h;
                for _ in 0..inner {
                    let mm = cg.apply(PrimOp::MatMul, &[hh, p["wi"]])?;
                    let s = cg.apply(PrimOp::Add, &[mm, p["bi"]])?;
                    hh = cg.apply(PrimOp::Tanh, &[s])?;
                }
                let z = act(cg, hh, p["wz"], PrimOp::Sigmoid)?;
                let r = act(cg, hh, p["wr"], PrimOp::Sigmoid)?;
                let rh = cg.apply(PrimOp::Mul, &[r, hh])?;
                let hc = act(cg, rh, p["wh"], PrimOp::Tanh)?;
                let ones = cg.constant(1.0, &Shape::new(&[1, d]));
                let zc = cg.apply(PrimOp::Sub, &[ones, z])?;
                let a = cg.apply(PrimOp::Mul, &[z, hh])?;
                let b = cg.apply(PrimOp::Mul, &[zc, hc])?;
                h = cg.apply(PrimOp::Add, &[a, b])?;
            }
            Ok(vec![h])
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::check_acrobat_vs_dynet;

    #[test]
    fn acrobat_and_dynet_agree() {
        // Tiny bounds keep the test fast while still nesting the loops.
        check_acrobat_vs_dynet(&spec_with(4, Bounds { inner: (2, 4), outer: (2, 3) }), 4, 0x2E57);
    }
}
