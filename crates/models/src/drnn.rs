//! DRNN: doubly-recurrent neural network for top-down tree generation
//! (Alvarez-Melis & Jaakkola 2017).
//!
//! The model *generates* a tree from a root vector: at every node a
//! tensor-dependent decision (emulated with the seeded `sample` stream,
//! §E.1) chooses whether to expand two children, which may then grow
//! *concurrently* — the flagship case for ACROBAT's fiber-based fork-join
//! instance parallelism (§4.2).  DyNet must force the tensor value at every
//! decision and expands depth-first, serializing the sub-trees (§7.2.1).

use std::collections::BTreeMap;

use acrobat_baselines::dynet::{ComputationGraph, DynetConfig, NodeRef};
use acrobat_runtime::RuntimeStats;
use acrobat_tensor::{PrimOp, Tensor, TensorError};
use acrobat_vm::InputValue;

use crate::data::{self, Prng};
use crate::{all_tensors, hidden_for, ModelSize, ModelSpec, Properties};

/// Probability of expanding children at a node.
pub const EXPAND_P: f64 = 0.6;

/// The frontend program; `depth` caps the generated tree depth.
pub fn source(d: usize, depth: i64) -> String {
    format!(
        r#"
def @gen(%h: Tensor[(1, {d})], %depth: Int,
         $wa: Tensor[({d}, {d})], $wl: Tensor[({d}, {d})], $wr: Tensor[({d}, {d})])
    -> Tensor[(1, {d})] {{
    let %ha = tanh(matmul(%h, $wa));
    if %depth <= 0 {{ %ha }} else {{
        if sample(%ha) < {EXPAND_P} {{
            let (%l, %r) = parallel(
                @gen(tanh(matmul(%ha, $wl)), %depth - 1, $wa, $wl, $wr),
                @gen(tanh(matmul(%ha, $wr)), %depth - 1, $wa, $wl, $wr));
            add(%ha, add(%l, %r))
        }} else {{ %ha }}
    }}
}}

def @main($wa: Tensor[({d}, {d})], $wl: Tensor[({d}, {d})], $wr: Tensor[({d}, {d})],
          %x: Tensor[(1, {d})]) -> Tensor[(1, {d})] {{
    @gen(%x, {depth}, $wa, $wl, $wr)
}}
"#
    )
}

/// Model parameters.
pub fn params(d: usize, seed: u64) -> BTreeMap<String, Tensor> {
    let mut rng = Prng::new(seed ^ 0xd2, 999);
    BTreeMap::from([
        ("wa".into(), data::weight(&mut rng, d, d)),
        ("wl".into(), data::weight(&mut rng, d, d)),
        ("wr".into(), data::weight(&mut rng, d, d)),
    ])
}

/// Builds the spec at explicit size and depth cap.
pub fn spec_with(d: usize, depth: i64) -> ModelSpec {
    let params = params(d, 0xd2);
    let dynet_params = params.clone();
    ModelSpec {
        name: "DRNN",
        source: source(d, depth),
        params,
        make_instances: Box::new(move |seed, batch| {
            (0..batch)
                .map(|i| {
                    let mut rng = Prng::new(seed ^ 0xd277, i);
                    vec![InputValue::Tensor(data::embedding(&mut rng, d))]
                })
                .collect()
        }),
        dynet_run: Some(Box::new(move |cfg, instances, seed| {
            run_dynet(cfg.clone(), &dynet_params, depth, instances, seed)
        })),
        flatten_output: all_tensors,
        properties: Properties {
            recursive: true,
            tensor_dependent: true,
            instance_parallel: true,
            ..Default::default()
        },
    }
}

/// The Table 3 configuration (depth cap 5 ⇒ up to 63 generated nodes).
pub fn spec(size: ModelSize) -> ModelSpec {
    spec_with(hidden_for(size), 5)
}

/// DyNet expansion, replicating the AOT fiber rng-splitting exactly: the
/// parent stream draws the decision, then `next_u64` seeds each child.
fn dy_gen(
    cg: &mut ComputationGraph,
    p: &BTreeMap<String, NodeRef>,
    h: NodeRef,
    depth: i64,
    rng: &mut Prng,
) -> Result<NodeRef, TensorError> {
    let mm = cg.apply(PrimOp::MatMul, &[h, p["wa"]])?;
    let ha = cg.apply(PrimOp::Tanh, &[mm])?;
    if depth <= 0 {
        return Ok(ha);
    }
    // Tensor-dependent decision: DyNet must execute everything pending
    // (no fibers → depth-first, per-instance serialization).
    let _ = cg.forward(ha)?;
    if rng.next_f64() < EXPAND_P {
        let mut rl = Prng::new(rng.next_u64(), 0);
        let mut rr = Prng::new(rng.next_u64(), 1);
        let lm = cg.apply(PrimOp::MatMul, &[ha, p["wl"]])?;
        let lh = cg.apply(PrimOp::Tanh, &[lm])?;
        let l = dy_gen(cg, p, lh, depth - 1, &mut rl)?;
        let rm = cg.apply(PrimOp::MatMul, &[ha, p["wr"]])?;
        let rh = cg.apply(PrimOp::Tanh, &[rm])?;
        let r = dy_gen(cg, p, rh, depth - 1, &mut rr)?;
        let lr = cg.apply(PrimOp::Add, &[l, r])?;
        cg.apply(PrimOp::Add, &[ha, lr])
    } else {
        Ok(ha)
    }
}

/// Breadth-first expansion — the Table 8 "DN++" DRNN improvement: the paper
/// manually restructures the DyNet model to expand one tree *level* at a
/// time, so all sibling decisions of a level share one `forward()` and their
/// kernels batch.  Decisions are identical to the depth-first version (each
/// node owns its split rng stream), only the flush schedule changes.
fn dy_gen_bfs(
    cg: &mut ComputationGraph,
    p: &BTreeMap<String, NodeRef>,
    root: NodeRef,
    max_depth: i64,
    rng: Prng,
) -> Result<NodeRef, TensorError> {
    struct Pending {
        h: NodeRef,
        depth: i64,
        rng: Prng,
        /// Index of the parent node record, `usize::MAX` for the root.
        slot: usize,
    }
    // Expand level-by-level; record per-node (ha, children) to fold the
    // subtree sums bottom-up afterwards.
    let mut ha_of: Vec<NodeRef> = Vec::new();
    let mut kids: Vec<Vec<usize>> = Vec::new();
    let mut frontier = vec![Pending { h: root, depth: max_depth, rng, slot: usize::MAX }];
    while !frontier.is_empty() {
        // Build every frontier node's ancestral transform first…
        let mut has = Vec::with_capacity(frontier.len());
        for pend in &frontier {
            let mm = cg.apply(PrimOp::MatMul, &[pend.h, p["wa"]])?;
            has.push(cg.apply(PrimOp::Tanh, &[mm])?);
        }
        // …then force once for the whole level: the batcher executes all
        // sibling transforms together.
        if let Some(&last) = has.last() {
            let _ = cg.forward(last)?;
        }
        let mut next = Vec::new();
        for (pend, ha) in frontier.into_iter().zip(has) {
            let idx = ha_of.len();
            ha_of.push(ha);
            kids.push(Vec::new());
            if pend.slot != usize::MAX {
                kids[pend.slot].push(idx);
            }
            let mut rng = pend.rng;
            if pend.depth > 0 && rng.next_f64() < EXPAND_P {
                let rl = Prng::new(rng.next_u64(), 0);
                let rr = Prng::new(rng.next_u64(), 1);
                for (w, r) in [("wl", rl), ("wr", rr)] {
                    let mm = cg.apply(PrimOp::MatMul, &[ha, p[w]])?;
                    let h = cg.apply(PrimOp::Tanh, &[mm])?;
                    next.push(Pending { h, depth: pend.depth - 1, rng: r, slot: idx });
                }
            }
        }
        frontier = next;
    }
    // Fold subtree sums bottom-up: value(n) = ha(n) [+ value(l) + value(r)].
    let mut value: Vec<Option<NodeRef>> = vec![None; ha_of.len()];
    for idx in (0..ha_of.len()).rev() {
        let v = if kids[idx].is_empty() {
            ha_of[idx]
        } else {
            let l = value[kids[idx][0]].expect("child folded");
            let r = value[kids[idx][1]].expect("child folded");
            let lr = cg.apply(PrimOp::Add, &[l, r])?;
            cg.apply(PrimOp::Add, &[ha_of[idx], lr])?
        };
        value[idx] = Some(v);
    }
    Ok(value[0].expect("root"))
}

fn run_dynet(
    cfg: DynetConfig,
    params: &BTreeMap<String, Tensor>,
    depth: i64,
    instances: &[Vec<InputValue>],
    seed: u64,
) -> Result<(Vec<Vec<Tensor>>, RuntimeStats), TensorError> {
    // The DN++ configuration additionally applies the paper's manual
    // restructuring of the DRNN model (breadth-first expansion, §7.2.1 /
    // Table 8); stock DyNet expands depth-first.
    let bfs = cfg.improvements.matmul_by_shape;
    acrobat_baselines::dynet::run_minibatch(
        cfg,
        instances.len(),
        |cg| {
            let mut by_name = BTreeMap::new();
            for (k, v) in params {
                by_name.insert(k.clone(), cg.parameter(v)?);
            }
            Ok(by_name)
        },
        |cg, p, i| {
            let mut rng = Prng::new(seed, i);
            let x = match &instances[i][0] {
                InputValue::Tensor(t) => cg.input(t)?,
                other => panic!("{other:?}"),
            };
            let out = if bfs {
                dy_gen_bfs(cg, p, x, depth, rng)?
            } else {
                dy_gen(cg, p, x, depth, &mut rng)?
            };
            Ok(vec![out])
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::check_acrobat_vs_dynet;

    #[test]
    fn acrobat_and_dynet_agree_on_generated_trees() {
        // The decisions are seed-reproducible across frameworks because the
        // rng splitting is mirrored exactly.
        check_acrobat_vs_dynet(&spec_with(4, 3), 4, 0xD2D2);
    }

    #[test]
    fn bfs_improvement_agrees_and_flushes_less() {
        let spec = spec_with(4, 3);
        let instances = (spec.make_instances)(0xD2D2, 6);
        let run = spec.dynet_run.as_ref().unwrap();
        let dfs = run(&DynetConfig::default(), &instances, 0xD2D2).unwrap();
        let bfs_cfg = DynetConfig {
            improvements: acrobat_baselines::dynet::Improvements::all(),
            ..Default::default()
        };
        let bfs = run(&bfs_cfg, &instances, 0xD2D2).unwrap();
        for (a, b) in dfs.0.iter().zip(&bfs.0) {
            assert!(a[0].allclose(&b[0], 1e-5), "BFS changed results");
        }
        assert!(
            bfs.1.flushes < dfs.1.flushes,
            "level-wise forcing flushes less: {} vs {}",
            bfs.1.flushes,
            dfs.1.flushes
        );
    }

    #[test]
    fn dynet_forces_many_flushes() {
        let spec = spec_with(4, 3);
        let instances = (spec.make_instances)(0xD2D2, 4);
        let (_, stats) =
            (spec.dynet_run.as_ref().unwrap())(&DynetConfig::default(), &instances, 0xD2D2)
                .unwrap();
        assert!(stats.flushes > 4, "per-decision forward() calls: {}", stats.flushes);
    }
}
