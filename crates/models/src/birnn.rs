//! Bidirectional RNN (Schuster & Paliwal 1997) for token classification
//! over XNLI-like sentences.
//!
//! This model exercises two of ACROBAT's analyses directly:
//!
//! * the same `@rnn` function runs with forward weights and again with
//!   backward weights — the §C.1 *code duplication* case: without
//!   duplication, the weights degrade to batched arguments;
//! * per-token output classifiers follow the recursive stage — the §B.3
//!   *program phases* case: without phases, output operators of
//!   different-length sentences land at different depths and batch poorly.

use std::collections::BTreeMap;

use acrobat_baselines::dynet::{ComputationGraph, DynetConfig, NodeRef};
use acrobat_runtime::RuntimeStats;
use acrobat_tensor::{PrimOp, Tensor, TensorError};
use acrobat_vm::InputValue;

use crate::data::{self, Prng};
use crate::{all_tensors, hidden_for, ModelSize, ModelSpec, Properties};

/// The frontend program.
pub fn source(d: usize, classes: usize) -> String {
    let d2 = 2 * d;
    format!(
        r#"
def @rnn(%xs: List[Tensor[(1, {d})]], %h: Tensor[(1, {d})],
         $w: Tensor[({d2}, {d})], $b: Tensor[(1, {d})]) -> List[Tensor[(1, {d})]] {{
    match %xs {{
        Nil => Nil,
        Cons(%x, %rest) => {{
            let %nh = tanh(add(matmul(concat[axis=1](%h, %x), $w), $b));
            Cons(%nh, @rnn(%rest, %nh, $w, $b))
        }}
    }}
}}

def @rev(%xs: List[Tensor[(1, {d})]], %acc: List[Tensor[(1, {d})]]) -> List[Tensor[(1, {d})]] {{
    match %xs {{
        Nil => %acc,
        Cons(%x, %rest) => @rev(%rest, Cons(%x, %acc))
    }}
}}

def @zipcat(%a: List[Tensor[(1, {d})]], %b: List[Tensor[(1, {d})]]) -> List[Tensor[(1, {d2})]] {{
    match %a {{
        Nil => Nil,
        Cons(%x, %ar) => match %b {{
            Nil => Nil,
            Cons(%y, %br) => Cons(concat[axis=1](%x, %y), @zipcat(%ar, %br))
        }}
    }}
}}

def @main($wf: Tensor[({d2}, {d})], $bf: Tensor[(1, {d})],
          $wb: Tensor[({d2}, {d})], $bb: Tensor[(1, {d})],
          $h0: Tensor[(1, {d})],
          $wc: Tensor[({d2}, {classes})], $bc: Tensor[(1, {classes})],
          %xs: List[Tensor[(1, {d})]]) -> List[Tensor[(1, {classes})]] {{
    let %fwd = @rnn(%xs, $h0, $wf, $bf);
    let %bwd_r = @rnn(@rev(%xs, Nil), $h0, $wb, $bb);
    let %bwd = @rev(%bwd_r, Nil);
    let %both = @zipcat(%fwd, %bwd);
    map(fn(%p) {{ relu(add(matmul(%p, $wc), $bc)) }}, %both)
}}
"#
    )
}

/// Model parameters.
pub fn params(d: usize, classes: usize, seed: u64) -> BTreeMap<String, Tensor> {
    let mut rng = Prng::new(seed ^ 0xb1d1, 999);
    BTreeMap::from([
        ("wf".into(), data::weight(&mut rng, 2 * d, d)),
        ("bf".into(), data::embedding(&mut rng, d)),
        ("wb".into(), data::weight(&mut rng, 2 * d, d)),
        ("bb".into(), data::embedding(&mut rng, d)),
        ("h0".into(), Tensor::zeros(&[1, d])),
        ("wc".into(), data::weight(&mut rng, 2 * d, classes)),
        ("bc".into(), data::embedding(&mut rng, classes)),
    ])
}

/// Builds the spec at an explicit hidden size.
pub fn spec_with(d: usize, classes: usize) -> ModelSpec {
    let params = params(d, classes, 0xb1);
    let dynet_params = params.clone();
    ModelSpec {
        name: "BiRNN",
        source: source(d, classes),
        params,
        make_instances: Box::new(move |seed, batch| {
            (0..batch)
                .map(|i| {
                    let mut rng = Prng::new(seed, i);
                    let len = data::xnli_length(&mut rng);
                    vec![data::sentence(&mut rng, len, d)]
                })
                .collect()
        }),
        dynet_run: Some(Box::new(move |cfg, instances, _| {
            run_dynet(cfg.clone(), &dynet_params, instances)
        })),
        flatten_output: all_tensors,
        properties: Properties { iterative: true, ..Properties::default() },
    }
}

/// The Table 3 configuration.
pub fn spec(size: ModelSize) -> ModelSpec {
    spec_with(hidden_for(size), 3)
}

fn instance_tokens(v: &InputValue) -> Vec<&Tensor> {
    let mut out = Vec::new();
    v.tensors(&mut out);
    out
}

fn run_dynet(
    cfg: DynetConfig,
    params: &BTreeMap<String, Tensor>,
    instances: &[Vec<InputValue>],
) -> Result<(Vec<Vec<Tensor>>, RuntimeStats), TensorError> {
    acrobat_baselines::dynet::run_minibatch(
        cfg,
        instances.len(),
        |cg| {
            let mut by_name = BTreeMap::new();
            for (k, v) in params {
                by_name.insert(k.clone(), cg.parameter(v)?);
            }
            Ok(by_name)
        },
        |cg, p, i| {
            let tokens = instance_tokens(&instances[i][0]);
            let toks: Vec<NodeRef> =
                tokens.iter().map(|t| cg.input(t)).collect::<Result<_, _>>()?;
            let step = |cg: &mut ComputationGraph,
                        h: NodeRef,
                        x: NodeRef,
                        w: NodeRef,
                        b: NodeRef|
             -> Result<NodeRef, TensorError> {
                let cat = cg.apply(PrimOp::Concat { axis: 1 }, &[h, x])?;
                let mm = cg.apply(PrimOp::MatMul, &[cat, w])?;
                let s = cg.apply(PrimOp::Add, &[mm, b])?;
                cg.apply(PrimOp::Tanh, &[s])
            };
            let mut fwd = Vec::with_capacity(toks.len());
            let mut h = p["h0"];
            for &x in &toks {
                h = step(cg, h, x, p["wf"], p["bf"])?;
                fwd.push(h);
            }
            let mut bwd = vec![0usize; toks.len()];
            let mut h = p["h0"];
            for (k, &x) in toks.iter().enumerate().rev() {
                h = step(cg, h, x, p["wb"], p["bb"])?;
                bwd[k] = h;
            }
            let mut outs = Vec::with_capacity(toks.len());
            for (f, b) in fwd.into_iter().zip(bwd) {
                let cat = cg.apply(PrimOp::Concat { axis: 1 }, &[f, b])?;
                let mm = cg.apply(PrimOp::MatMul, &[cat, p["wc"]])?;
                let s = cg.apply(PrimOp::Add, &[mm, p["bc"]])?;
                outs.push(cg.apply(PrimOp::Relu, &[s])?);
            }
            Ok(outs)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::check_acrobat_vs_dynet;

    #[test]
    fn acrobat_and_dynet_agree() {
        check_acrobat_vs_dynet(&spec_with(4, 3), 4, 0xB1D1);
    }

    #[test]
    fn duplication_fires_for_two_directions() {
        let spec = spec_with(4, 3);
        let model =
            acrobat_core::compile(&spec.source, &acrobat_core::CompileOptions::default()).unwrap();
        let copies =
            model.analysis().module.functions.keys().filter(|n| n.starts_with("rnn__c")).count();
        assert_eq!(copies, 2, "forward/backward @rnn duplicated");
    }
}
