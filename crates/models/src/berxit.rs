//! Berxit: early-exit BERT-style inference (Xin et al. 2021).
//!
//! A transformer encoder whose layers all share weights (as in the paper's
//! configuration, Table 3) and that may exit after any layer; the exit
//! decision is tensor-dependent, emulated with the seeded `sample` stream
//! (§E.1).  Mostly-static compute with a little control flow — the class of
//! model that benefits *least* from overhead-reducing optimizations (§7.3)
//! and whose large activations blow DyNet's memory at batch 64 (Table 4).
//!
//! Dimensions are scaled relative to BERT (see EXPERIMENTS.md): hidden
//! 96/144 instead of 768/1024, sequence 32 instead of 128 — the layer
//! *structure* (self-attention + FFN + layer norms, shared weights, 12/18
//! layers) is preserved.

use std::collections::BTreeMap;

use acrobat_baselines::dynet::{ComputationGraph, DynetConfig, NodeRef};
use acrobat_runtime::RuntimeStats;
use acrobat_tensor::{PrimOp, Shape, Tensor, TensorError};
use acrobat_vm::InputValue;

use crate::data::{self, Prng};
use crate::{all_tensors, ModelSize, ModelSpec, Properties};

/// Probability of exiting after each layer.
pub const EXIT_P: f64 = 0.15;

/// Scaled dimensions per size: (hidden, ffn, seq, layers).
pub fn dims(size: ModelSize) -> (usize, usize, usize, usize) {
    match size {
        ModelSize::Small => (96, 384, 32, 12),
        ModelSize::Large => (144, 576, 32, 18),
    }
}

/// The frontend program.
pub fn source(d: usize, f: usize, s: usize, layers: i64) -> String {
    let inv_sqrt_d = 1.0 / (d as f64).sqrt();
    format!(
        r#"
def @layer(%x: Tensor[({s}, {d})],
           $wq: Tensor[({d}, {d})], $wk: Tensor[({d}, {d})], $wv: Tensor[({d}, {d})],
           $wo: Tensor[({d}, {d})],
           $w1: Tensor[({d}, {f})], $b1: Tensor[(1, {f})],
           $w2: Tensor[({f}, {d})], $b2: Tensor[(1, {d})]) -> Tensor[({s}, {d})] {{
    let %q = matmul(%x, $wq);
    let %k = matmul(%x, $wk);
    let %v = matmul(%x, $wv);
    let %scores = mul(matmul(%q, transpose(%k)), fill[value={inv_sqrt_d}, shape=(1, 1)]());
    let %attn = matmul(softmax_rows(%scores), %v);
    let %x1 = layer_norm(add(%x, matmul(%attn, $wo)));
    let %ff = add(matmul(gelu(add(matmul(%x1, $w1), $b1)), $w2), $b2);
    layer_norm(add(%x1, %ff))
}}

def @encode(%x: Tensor[({s}, {d})], %n: Int,
            $wq: Tensor[({d}, {d})], $wk: Tensor[({d}, {d})], $wv: Tensor[({d}, {d})],
            $wo: Tensor[({d}, {d})],
            $w1: Tensor[({d}, {f})], $b1: Tensor[(1, {f})],
            $w2: Tensor[({f}, {d})], $b2: Tensor[(1, {d})]) -> Tensor[({s}, {d})] {{
    if %n <= 0 {{ %x }} else {{
        let %y = @layer(%x, $wq, $wk, $wv, $wo, $w1, $b1, $w2, $b2);
        if sample(%y) < {EXIT_P} {{ %y }}
        else {{ @encode(%y, %n - 1, $wq, $wk, $wv, $wo, $w1, $b1, $w2, $b2) }}
    }}
}}

def @main($wq: Tensor[({d}, {d})], $wk: Tensor[({d}, {d})], $wv: Tensor[({d}, {d})],
          $wo: Tensor[({d}, {d})],
          $w1: Tensor[({d}, {f})], $b1: Tensor[(1, {f})],
          $w2: Tensor[({f}, {d})], $b2: Tensor[(1, {d})],
          %x: Tensor[({s}, {d})]) -> Tensor[({s}, {d})] {{
    @encode(%x, {layers}, $wq, $wk, $wv, $wo, $w1, $b1, $w2, $b2)
}}
"#
    )
}

/// Model parameters (one shared layer).
pub fn params(d: usize, f: usize, seed: u64) -> BTreeMap<String, Tensor> {
    let mut rng = Prng::new(seed ^ 0xbe27, 999);
    let mut p = BTreeMap::new();
    for name in ["wq", "wk", "wv", "wo"] {
        p.insert(name.to_string(), data::weight(&mut rng, d, d));
    }
    p.insert("w1".into(), data::weight(&mut rng, d, f));
    p.insert("b1".into(), data::embedding(&mut rng, f));
    p.insert("w2".into(), data::weight(&mut rng, f, d));
    p.insert("b2".into(), data::embedding(&mut rng, d));
    p
}

/// Builds the spec at explicit dimensions.
pub fn spec_with(d: usize, f: usize, s: usize, layers: i64) -> ModelSpec {
    let params = params(d, f, 0xbe);
    let dynet_params = params.clone();
    ModelSpec {
        name: "Berxit",
        source: source(d, f, s, layers),
        params,
        make_instances: Box::new(move |seed, batch| {
            (0..batch)
                .map(|i| {
                    let mut rng = Prng::new(seed ^ 0xbe11, i);
                    vec![InputValue::Tensor(Tensor::from_fn(&[s, d], |_| {
                        (rng.next_f64() as f32 - 0.5) * 0.6
                    }))]
                })
                .collect()
        }),
        dynet_run: Some(Box::new(move |cfg, instances, seed| {
            run_dynet(cfg.clone(), &dynet_params, layers, instances, seed)
        })),
        flatten_output: all_tensors,
        properties: Properties { tensor_dependent: true, ..Default::default() },
    }
}

/// The Table 3 configuration.
pub fn spec(size: ModelSize) -> ModelSpec {
    let (d, f, s, layers) = dims(size);
    spec_with(d, f, s, layers as i64)
}

fn dy_layer(
    cg: &mut ComputationGraph,
    p: &BTreeMap<String, NodeRef>,
    x: NodeRef,
    d: usize,
) -> Result<NodeRef, TensorError> {
    let q = cg.apply(PrimOp::MatMul, &[x, p["wq"]])?;
    let k = cg.apply(PrimOp::MatMul, &[x, p["wk"]])?;
    let v = cg.apply(PrimOp::MatMul, &[x, p["wv"]])?;
    let kt = cg.apply(PrimOp::Transpose, &[k])?;
    let qk = cg.apply(PrimOp::MatMul, &[q, kt])?;
    let scale = cg.constant(1.0 / (d as f32).sqrt(), &Shape::new(&[1, 1]));
    // Broadcast multiply — no batched vendor kernel (§E.4).
    let scores = cg.apply(PrimOp::Mul, &[qk, scale])?;
    let sm = cg.apply(PrimOp::SoftmaxRows, &[scores])?;
    let attn = cg.apply(PrimOp::MatMul, &[sm, v])?;
    let ao = cg.apply(PrimOp::MatMul, &[attn, p["wo"]])?;
    let res1 = cg.apply(PrimOp::Add, &[x, ao])?;
    let x1 = cg.apply(PrimOp::LayerNormRows { eps: 1e-5 }, &[res1])?;
    let h1 = cg.apply(PrimOp::MatMul, &[x1, p["w1"]])?;
    let h1b = cg.apply(PrimOp::Add, &[h1, p["b1"]])?;
    let g = cg.apply(PrimOp::Gelu, &[h1b])?;
    let h2 = cg.apply(PrimOp::MatMul, &[g, p["w2"]])?;
    let h2b = cg.apply(PrimOp::Add, &[h2, p["b2"]])?;
    let res2 = cg.apply(PrimOp::Add, &[x1, h2b])?;
    cg.apply(PrimOp::LayerNormRows { eps: 1e-5 }, &[res2])
}

fn run_dynet(
    cfg: DynetConfig,
    params: &BTreeMap<String, Tensor>,
    layers: i64,
    instances: &[Vec<InputValue>],
    seed: u64,
) -> Result<(Vec<Vec<Tensor>>, RuntimeStats), TensorError> {
    let d = params["wq"].shape().dim(0);
    acrobat_baselines::dynet::run_minibatch(
        cfg,
        instances.len(),
        |cg| {
            let mut by_name = BTreeMap::new();
            for (k, v) in params {
                by_name.insert(k.clone(), cg.parameter(v)?);
            }
            Ok(by_name)
        },
        |cg, p, i| {
            let mut rng = Prng::new(seed, i);
            let mut x = match &instances[i][0] {
                InputValue::Tensor(t) => cg.input(t)?,
                other => panic!("{other:?}"),
            };
            for _ in 0..layers {
                x = dy_layer(cg, p, x, d)?;
                // Tensor-dependent exit: force the activations, draw.
                let _ = cg.forward(x)?;
                if rng.next_f64() < EXIT_P {
                    break;
                }
            }
            Ok(vec![x])
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::check_acrobat_vs_dynet;

    #[test]
    fn acrobat_and_dynet_agree() {
        check_acrobat_vs_dynet(&spec_with(8, 16, 4, 5), 4, 0xBE27);
    }
}
