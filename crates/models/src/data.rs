//! Seeded synthetic dataset generators.
//!
//! The paper evaluates on the Stanford Sentiment Treebank (TreeLSTM,
//! MV-RNN) and XNLI (BiRNN, StackRNN).  Auto-batching performance depends
//! on the *structure* of the inputs — tree shapes, sentence lengths — not
//! on token identities, so these generators reproduce the structural
//! statistics (SST sentences average ≈19 tokens; XNLI premises ≈21) with
//! seeded pseudo-randomness, and fill embeddings with random values (the
//! paper itself uses random parameters, §6).

use acrobat_tensor::Tensor;
use acrobat_vm::InputValue;

pub use acrobat_vm::session::Prng;

/// Draws an approximately-normal integer via the sum of three uniforms,
/// clamped to `[lo, hi]`.
fn approx_normal(rng: &mut Prng, mean: f64, std: f64, lo: i64, hi: i64) -> usize {
    let u = (rng.next_f64() + rng.next_f64() + rng.next_f64()) / 3.0; // mean .5, bell-ish
    let v = mean + (u - 0.5) * std * 3.46; // match the std of the sum
    (v.round() as i64).clamp(lo, hi) as usize
}

/// A random embedding row `[1, dim]` in `[-0.5, 0.5)`.
pub fn embedding(rng: &mut Prng, dim: usize) -> Tensor {
    Tensor::from_fn(&[1, dim], |_| (rng.next_f64() - 0.5) as f32)
}

/// A random matrix `[rows, cols]` scaled for stable recurrences.
pub fn weight(rng: &mut Prng, rows: usize, cols: usize) -> Tensor {
    let scale = 1.0 / (rows as f64).sqrt();
    Tensor::from_fn(&[rows, cols], |_| ((rng.next_f64() - 0.5) * 2.0 * scale) as f32)
}

/// SST-like sentence length (mean ≈19 tokens, clamped to `[3, 45]`).
pub fn sst_length(rng: &mut Prng) -> usize {
    approx_normal(rng, 19.0, 8.0, 3, 45)
}

/// XNLI-like sentence length (mean ≈21 tokens, clamped to `[4, 50]`).
pub fn xnli_length(rng: &mut Prng) -> usize {
    approx_normal(rng, 21.0, 9.0, 4, 50)
}

/// A list of `len` token embeddings.
pub fn sentence(rng: &mut Prng, len: usize, dim: usize) -> InputValue {
    InputValue::list((0..len).map(|_| InputValue::Tensor(embedding(rng, dim))).collect())
}

/// A random binary tree with `leaves` leaves, each leaf built by `leaf`.
///
/// The shape follows random binary bracketings, like constituency parses.
pub fn random_tree(
    rng: &mut Prng,
    leaves: usize,
    leaf: &mut impl FnMut(&mut Prng) -> InputValue,
) -> InputValue {
    assert!(leaves >= 1);
    if leaves == 1 {
        return InputValue::Adt { ctor: "Leaf".into(), fields: vec![leaf(rng)] };
    }
    // Random split point.
    let left = 1 + (rng.next_u64() as usize) % (leaves - 1);
    let l = random_tree(rng, left, leaf);
    let r = random_tree(rng, leaves - left, leaf);
    InputValue::Adt { ctor: "Node".into(), fields: vec![l, r] }
}

/// Number of `Leaf` nodes in a tree input.
pub fn tree_leaves(v: &InputValue) -> usize {
    match v {
        InputValue::Adt { ctor, fields } if ctor == "Leaf" => {
            let _ = fields;
            1
        }
        InputValue::Adt { ctor, fields } if ctor == "Node" => {
            tree_leaves(&fields[0]) + tree_leaves(&fields[1])
        }
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_in_range_and_seeded() {
        let mut rng = Prng::new(7, 0);
        let lens: Vec<usize> = (0..200).map(|_| sst_length(&mut rng)).collect();
        assert!(lens.iter().all(|&l| (3..=45).contains(&l)));
        let mean: f64 = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
        assert!((12.0..26.0).contains(&mean), "mean {mean}");
        let mut rng2 = Prng::new(7, 0);
        let lens2: Vec<usize> = (0..200).map(|_| sst_length(&mut rng2)).collect();
        assert_eq!(lens, lens2, "seeded determinism");
    }

    #[test]
    fn tree_has_requested_leaves() {
        let mut rng = Prng::new(3, 1);
        for n in [1usize, 2, 7, 19] {
            let t = random_tree(&mut rng, n, &mut |r| InputValue::Tensor(embedding(r, 4)));
            assert_eq!(tree_leaves(&t), n);
        }
    }

    #[test]
    fn sentence_structure() {
        let mut rng = Prng::new(1, 0);
        let s = sentence(&mut rng, 3, 4);
        let mut tensors = Vec::new();
        s.tensors(&mut tensors);
        assert_eq!(tensors.len(), 3);
        assert_eq!(tensors[0].shape().dims(), &[1, 4]);
    }

    #[test]
    fn weight_scaling() {
        let mut rng = Prng::new(2, 0);
        let w = weight(&mut rng, 64, 64);
        let max = w.data().iter().fold(0.0f32, |a, &b| a.max(b.abs()));
        assert!(max <= (1.0 / 8.0) + 1e-6);
    }
}
