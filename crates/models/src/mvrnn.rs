//! MV-RNN (Socher et al. 2012): matrix-vector recursive network over
//! SST-like trees.
//!
//! Every leaf carries a *(vector, matrix)* pair; internal nodes multiply
//! each child's vector by the sibling's matrix — products of two
//! **intermediate activations**, which stock DyNet's first-argument matmul
//! heuristic cannot batch (§E.4), forcing sequential execution.  This is
//! the model where the DN++ shape-based heuristic (Table 8) matters most,
//! and where Cortex's mandatory leaf copies are the most expensive (each
//! leaf ships a `d×d` matrix, §7.2.2).

use std::collections::BTreeMap;

use acrobat_baselines::dynet::{ComputationGraph, DynetConfig, NodeRef};
use acrobat_runtime::RuntimeStats;
use acrobat_tensor::{PrimOp, Tensor, TensorError};
use acrobat_vm::InputValue;

use crate::data::{self, Prng};
use crate::{all_tensors, ModelSize, ModelSpec, Properties};

/// MV-RNN hidden sizes: 64 (small) / 128 (large), §7.1.
pub fn hidden(size: ModelSize) -> usize {
    match size {
        ModelSize::Small => 64,
        ModelSize::Large => 128,
    }
}

/// The frontend program.
pub fn source(d: usize, classes: usize) -> String {
    let d2 = 2 * d;
    format!(
        r#"
type Tree[a] {{ Leaf(a), Node(Tree[a], Tree[a]) }}

def @enc(%t: Tree[(Tensor[(1, {d})], Tensor[({d}, {d})])],
         $w: Tensor[({d2}, {d})], $b: Tensor[(1, {d})],
         $wm1: Tensor[({d}, {d})], $wm2: Tensor[({d}, {d})])
    -> (Tensor[(1, {d})], Tensor[({d}, {d})]) {{
    match %t {{
        Leaf(%p) => %p,
        Node(%l, %r) => {{
            let (%lv, %rv) = parallel(
                @enc(%l, $w, $b, $wm1, $wm2),
                @enc(%r, $w, $b, $wm1, $wm2));
            let %c1 = matmul(%lv.0, %rv.1);
            let %c2 = matmul(%rv.0, %lv.1);
            let %v = tanh(add(matmul(concat[axis=1](%c1, %c2), $w), $b));
            let %m = add(matmul(%lv.1, $wm1), matmul(%rv.1, $wm2));
            (%v, %m)
        }}
    }}
}}

def @main($w: Tensor[({d2}, {d})], $b: Tensor[(1, {d})],
          $wm1: Tensor[({d}, {d})], $wm2: Tensor[({d}, {d})],
          $wc: Tensor[({d}, {classes})], $bc: Tensor[(1, {classes})],
          %t: Tree[(Tensor[(1, {d})], Tensor[({d}, {d})])]) -> Tensor[(1, {classes})] {{
    let (%v, %m) = @enc(%t, $w, $b, $wm1, $wm2);
    relu(add(matmul(%v, $wc), $bc))
}}
"#
    )
}

/// Model parameters.
pub fn params(d: usize, classes: usize, seed: u64) -> BTreeMap<String, Tensor> {
    let mut rng = Prng::new(seed ^ 0x3141, 999);
    BTreeMap::from([
        ("w".into(), data::weight(&mut rng, 2 * d, d)),
        ("b".into(), data::embedding(&mut rng, d)),
        ("wm1".into(), data::weight(&mut rng, d, d)),
        ("wm2".into(), data::weight(&mut rng, d, d)),
        ("wc".into(), data::weight(&mut rng, d, classes)),
        ("bc".into(), data::embedding(&mut rng, classes)),
    ])
}

fn leaf_input(rng: &mut Prng, d: usize) -> InputValue {
    InputValue::Tuple(vec![
        InputValue::Tensor(data::embedding(rng, d)),
        // Near-identity leaf matrix for stability.
        InputValue::Tensor(Tensor::from_fn(&[d, d], |i| {
            let (r, c) = (i / d, i % d);
            let noise = (rng.next_f64() as f32 - 0.5) * 0.1 / d as f32;
            if r == c {
                1.0 + noise
            } else {
                noise
            }
        })),
    ])
}

/// Builds the spec at an explicit hidden size.
pub fn spec_with(d: usize, classes: usize) -> ModelSpec {
    let params = params(d, classes, 0x39);
    let dynet_params = params.clone();
    ModelSpec {
        name: "MV-RNN",
        source: source(d, classes),
        params,
        make_instances: Box::new(move |seed, batch| {
            (0..batch)
                .map(|i| {
                    let mut rng = Prng::new(seed, i);
                    let leaves = data::sst_length(&mut rng);
                    vec![data::random_tree(&mut rng, leaves, &mut |r| leaf_input(r, d))]
                })
                .collect()
        }),
        dynet_run: Some(Box::new(move |cfg, instances, _| {
            run_dynet(cfg.clone(), &dynet_params, instances)
        })),
        flatten_output: all_tensors,
        properties: Properties {
            recursive: true,
            instance_parallel: true,
            ..Properties::default()
        },
    }
}

/// The Table 3 configuration.
pub fn spec(size: ModelSize) -> ModelSpec {
    spec_with(hidden(size), 5)
}

fn dy_enc(
    cg: &mut ComputationGraph,
    p: &BTreeMap<String, NodeRef>,
    t: &InputValue,
) -> Result<(NodeRef, NodeRef), TensorError> {
    match t {
        InputValue::Adt { ctor, fields } if ctor == "Leaf" => match &fields[0] {
            InputValue::Tuple(parts) => {
                let (v, m) = match (&parts[0], &parts[1]) {
                    (InputValue::Tensor(v), InputValue::Tensor(m)) => (v, m),
                    other => panic!("leaf {other:?}"),
                };
                Ok((cg.input(v)?, cg.input(m)?))
            }
            other => panic!("leaf {other:?}"),
        },
        InputValue::Adt { ctor, fields } if ctor == "Node" => {
            let (lv, lm) = dy_enc(cg, p, &fields[0])?;
            let (rv, rm) = dy_enc(cg, p, &fields[1])?;
            // Activation×activation products: unbatchable under stock DyNet.
            let c1 = cg.apply(PrimOp::MatMul, &[lv, rm])?;
            let c2 = cg.apply(PrimOp::MatMul, &[rv, lm])?;
            let x = cg.apply(PrimOp::Concat { axis: 1 }, &[c1, c2])?;
            let mm = cg.apply(PrimOp::MatMul, &[x, p["w"]])?;
            let s = cg.apply(PrimOp::Add, &[mm, p["b"]])?;
            let v = cg.apply(PrimOp::Tanh, &[s])?;
            let m1 = cg.apply(PrimOp::MatMul, &[lm, p["wm1"]])?;
            let m2 = cg.apply(PrimOp::MatMul, &[rm, p["wm2"]])?;
            let m = cg.apply(PrimOp::Add, &[m1, m2])?;
            Ok((v, m))
        }
        other => panic!("not a tree: {other:?}"),
    }
}

fn run_dynet(
    cfg: DynetConfig,
    params: &BTreeMap<String, Tensor>,
    instances: &[Vec<InputValue>],
) -> Result<(Vec<Vec<Tensor>>, RuntimeStats), TensorError> {
    acrobat_baselines::dynet::run_minibatch(
        cfg,
        instances.len(),
        |cg| {
            let mut by_name = BTreeMap::new();
            for (k, v) in params {
                by_name.insert(k.clone(), cg.parameter(v)?);
            }
            Ok(by_name)
        },
        |cg, p, i| {
            let (v, _m) = dy_enc(cg, p, &instances[i][0])?;
            let mm = cg.apply(PrimOp::MatMul, &[v, p["wc"]])?;
            let s = cg.apply(PrimOp::Add, &[mm, p["bc"]])?;
            Ok(vec![cg.apply(PrimOp::Relu, &[s])?])
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::check_acrobat_vs_dynet;

    #[test]
    fn acrobat_and_dynet_agree() {
        check_acrobat_vs_dynet(&spec_with(4, 3), 3, 0xBEEF);
    }

    #[test]
    fn stock_matmul_heuristic_hurts_mvrnn() {
        let spec = spec_with(4, 3);
        let instances = (spec.make_instances)(0x5, 4);
        let stock =
            (spec.dynet_run.as_ref().unwrap())(&DynetConfig::default(), &instances, 0).unwrap();
        let improved_cfg = DynetConfig {
            improvements: acrobat_baselines::dynet::Improvements::all(),
            ..Default::default()
        };
        let improved = (spec.dynet_run.as_ref().unwrap())(&improved_cfg, &instances, 0).unwrap();
        assert!(
            improved.1.kernel_launches < stock.1.kernel_launches,
            "DN++ batches activation products: {} vs {}",
            improved.1.kernel_launches,
            stock.1.kernel_launches
        );
    }
}
