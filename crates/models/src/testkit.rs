//! Test support: cross-framework agreement checks used by the per-model
//! unit tests, the workspace integration tests and the benchmark harness's
//! self-checks.

#![allow(clippy::field_reassign_with_default)] // builder-style option setup reads better

use acrobat_baselines::dynet::DynetConfig;
use acrobat_core::{compile, CompileOptions};

use crate::ModelSpec;

/// Runs a spec through ACROBAT (all optimizations) and the DyNet baseline
/// on identical instances with identical seeds, and asserts that every
/// output tensor matches within `1e-4`.
///
/// # Panics
///
/// Panics on any compile/run error or output mismatch.
pub fn check_acrobat_vs_dynet(spec: &ModelSpec, batch: usize, seed: u64) {
    let instances = (spec.make_instances)(seed, batch);

    let options = CompileOptions { seed, ..Default::default() };
    let model = compile(&spec.source, &options)
        .unwrap_or_else(|e| panic!("{}: compile failed: {e}", spec.name));
    let acrobat = model
        .run(&spec.params, &instances)
        .unwrap_or_else(|e| panic!("{}: ACROBAT run failed: {e}", spec.name));

    let dynet_run =
        spec.dynet_run.as_ref().unwrap_or_else(|| panic!("{} has no DyNet impl", spec.name));
    let (dynet_outs, _) = dynet_run(&DynetConfig::default(), &instances, seed)
        .unwrap_or_else(|e| panic!("{}: DyNet run failed: {e}", spec.name));

    assert_eq!(acrobat.outputs.len(), dynet_outs.len());
    for (i, (a, d)) in acrobat.outputs.iter().zip(&dynet_outs).enumerate() {
        let a_tensors = (spec.flatten_output)(a);
        assert_eq!(
            a_tensors.len(),
            d.len(),
            "{} instance {i}: output arity {} vs {}",
            spec.name,
            a_tensors.len(),
            d.len()
        );
        for (j, (x, y)) in a_tensors.iter().zip(d).enumerate() {
            assert!(
                x.allclose(y, 1e-4),
                "{} instance {i} output {j}: {:?} vs {:?}",
                spec.name,
                &x.data()[..x.data().len().min(4)],
                &y.data()[..y.data().len().min(4)],
            );
        }
    }
}

/// Runs a spec through ACROBAT only (for models without a DyNet
/// counterpart) and sanity-checks the outputs are finite.
///
/// # Panics
///
/// Panics on compile/run errors or non-finite outputs.
pub fn check_acrobat_runs(spec: &ModelSpec, batch: usize, seed: u64) {
    let instances = (spec.make_instances)(seed, batch);
    let options = CompileOptions { seed, ..Default::default() };
    let model = compile(&spec.source, &options)
        .unwrap_or_else(|e| panic!("{}: compile failed: {e}", spec.name));
    let result = model
        .run(&spec.params, &instances)
        .unwrap_or_else(|e| panic!("{}: run failed: {e}", spec.name));
    assert_eq!(result.outputs.len(), batch);
    for out in &result.outputs {
        for t in (spec.flatten_output)(out) {
            assert!(t.data().iter().all(|v| v.is_finite()), "{}: non-finite output", spec.name);
        }
    }
}
