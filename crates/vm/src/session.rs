//! Execution session: the machinery shared by both backends.
//!
//! A [`Session`] owns everything *request-invariant*: the current
//! [`Engine`] (swappable only between runs, for PGO), a [`ContextPool`] of
//! idle [`ExecutionContext`]s, and the aggregate statistics/profile merged
//! across completed runs.  Each call to `Executable::run` builds a
//! [`RunSession`] — the per-run coordination state (fiber hub, poison flag,
//! pinned engine) — and acquires one `ExecutionContext`, so concurrent
//! mini-batches never contend on a shared runtime lock.
//!
//! An [`ExecCtx`] is the per-fiber execution state holding the *inline
//! depth counter* of §4.1, the program-phase counter, the per-instance
//! pseudo-random stream (§E.1) and the open fusion-group accumulators.
//!
//! The central entry point is [`RunSession::exec_op_site`]: called by an
//! executor whenever the unbatched program invokes a tensor operator.  It
//! does **not** execute anything — it records the operator's arguments into
//! its fusion group and, when the group's last site executes, emits one DFG
//! node via `ExecutionContext::add_unit` (this is the lazy DFG construction
//! of §2.2, at the granularity the static analysis chose).
//!
//! How the context is threaded depends on the mode, via [`RtHandle`]:
//! sequential execution passes `RtHandle::Own(&mut ctx)` — direct mutable
//! access, zero lock acquisitions on the flush hot path — while fiber mode
//! (tensor-dependent control flow) shares the run's context between its
//! instance fibers behind a *per-run* mutex (`RtHandle::Shared`), which is
//! still invisible to other concurrent mini-batches.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use acrobat_analysis::blocks::BlockId;
use acrobat_analysis::fusion::GroupId;
use acrobat_analysis::AnalysisResult;
use acrobat_ir::ExprId;
use acrobat_runtime::{ContextPool, Engine, ExecutionContext, FiberHub, RuntimeStats};
use acrobat_tensor::{DeviceTensor, TensorError};
use parking_lot::Mutex;

use crate::value::{TensorRef, Value};

/// Errors produced during model execution.
#[derive(Debug)]
#[non_exhaustive]
pub enum VmError {
    /// Tensor/runtime failure.
    Tensor(TensorError),
    /// The backend does not support a required feature (e.g. the Relay-VM
    /// backend and tensor-dependent control flow).
    Unsupported(String),
    /// Malformed inputs.
    Input(String),
    /// The request was cooperatively cancelled via its
    /// [`acrobat_runtime::CancelToken`].
    Cancelled,
    /// The request exceeded its deadline budget.
    DeadlineExceeded {
        /// Microseconds spent when the deadline check fired.
        spent_us: f64,
        /// The request's budget in microseconds.
        budget_us: f64,
    },
    /// Load shedding: the session's admission limit was reached, so the
    /// request was rejected without acquiring an execution context.
    Overloaded {
        /// Runs in flight when the request arrived.
        in_flight: usize,
        /// The session's `max_in_flight` limit.
        limit: usize,
    },
    /// The fiber hub stalled past its watchdog budget; the run was
    /// cancelled and drained instead of hanging.
    DriveTimeout(acrobat_runtime::DriveTimeout),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Tensor(e) => write!(f, "tensor error: {e}"),
            VmError::Unsupported(s) => write!(f, "unsupported: {s}"),
            VmError::Input(s) => write!(f, "bad input: {s}"),
            VmError::Cancelled => write!(f, "request cancelled"),
            VmError::DeadlineExceeded { spent_us, budget_us } => {
                write!(f, "deadline exceeded: spent {spent_us:.1}us of {budget_us:.1}us budget")
            }
            VmError::Overloaded { in_flight, limit } => {
                write!(f, "overloaded: {in_flight} runs in flight (limit {limit}), request shed")
            }
            VmError::DriveTimeout(t) => write!(f, "{t}"),
        }
    }
}

impl std::error::Error for VmError {}

impl From<TensorError> for VmError {
    fn from(e: TensorError) -> Self {
        match e {
            TensorError::Cancelled => VmError::Cancelled,
            TensorError::DeadlineExceeded { spent_us, budget_us } => {
                VmError::DeadlineExceeded { spent_us, budget_us }
            }
            other => VmError::Tensor(other),
        }
    }
}

impl VmError {
    /// Whether this is the load-shedding rejection.
    pub fn is_overloaded(&self) -> bool {
        matches!(self, VmError::Overloaded { .. })
    }

    /// Whether this is a cooperative-cancellation outcome.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, VmError::Cancelled)
    }

    /// Whether this is a deadline miss.
    pub fn is_deadline_exceeded(&self) -> bool {
        matches!(self, VmError::DeadlineExceeded { .. })
    }
}

/// Module-wide constructor tags (name → dense id) plus arities.
#[derive(Debug, Clone, Default)]
pub struct CtorTable {
    by_name: BTreeMap<String, u32>,
    names: Vec<String>,
}

impl CtorTable {
    /// Builds the table from a module's ADTs.
    pub fn build(module: &acrobat_ir::Module) -> CtorTable {
        let mut t = CtorTable::default();
        for adt in module.adts.values() {
            for c in &adt.ctors {
                let tag = t.names.len() as u32;
                t.by_name.insert(c.name.clone(), tag);
                t.names.push(c.name.clone());
            }
        }
        t
    }

    /// Tag of a constructor name.
    ///
    /// # Panics
    ///
    /// Panics on unknown names (prevented by type checking).
    pub fn tag(&self, name: &str) -> u32 {
        self.by_name[name]
    }

    /// Name of a tag.
    pub fn name(&self, tag: u32) -> &str {
        &self.names[tag as usize]
    }
}

/// A seeded splitmix64 stream (the paper uses pre-determined seeds so
/// pseudo-random control flow is identical across frameworks, §E.1).
#[derive(Debug, Clone)]
pub struct Prng(u64);

impl Prng {
    /// Seeds the stream for one instance by its slot position (the default
    /// key — see [`Prng::keyed`]).
    pub fn new(seed: u64, instance: usize) -> Prng {
        Prng::keyed(seed, instance as u64)
    }

    /// Seeds the stream from a stable `(seed, key)` pair.
    ///
    /// The key — by default the instance index — travels *with* the
    /// instance, not with its submission slot, so an instance's
    /// pseudo-random stream (and therefore its tensor-dependent control
    /// flow) is bit-for-bit identical no matter in which order or on which
    /// thread the mini-batch submits it.
    pub fn keyed(seed: u64, key: u64) -> Prng {
        Prng(seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(key.wrapping_add(1)))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[lo, hi]`.
    pub fn next_range(&mut self, lo: i64, hi: i64) -> i64 {
        let span = (hi - lo + 1) as u64;
        lo + (self.next_u64() % span) as i64
    }
}

/// A fusion group being accumulated for one dynamic block execution.
#[derive(Debug, Default)]
struct GroupAccum {
    /// Recorded argument references, keyed by (site, argument index).
    args: Vec<((ExprId, usize), TensorRef)>,
    /// Result reference per executed site.
    results: Vec<(ExprId, TensorRef)>,
}

/// Per-fiber execution state.
#[derive(Debug)]
pub struct ExecCtx {
    /// Mini-batch instance index (DFG lane).
    pub instance: usize,
    /// Fork-path lane key ([`acrobat_runtime::lane`]): identifies *which
    /// fiber* of the instance is appending, independent of scheduling
    /// order.  Roots at [`acrobat_runtime::lane::root`]`(instance)`;
    /// each `parallel`/`map` branch derives a child key, so the key
    /// encodes the fork path and two runs assign identical keys to the
    /// same program branch no matter how the OS interleaves fibers.
    pub lane: u64,
    /// Inline depth counter (§4.1).
    pub depth: u64,
    /// Program-phase counter (§4.1).
    pub phase: u32,
    /// Per-instance pseudo-random stream.
    pub rng: Prng,
    open: HashMap<GroupId, GroupAccum>,
    current_block: Option<BlockId>,
}

impl ExecCtx {
    /// Fresh context for an instance.  `key` seeds the instance's
    /// pseudo-random stream ([`Prng::keyed`]); callers that do not care
    /// about submission-order stability pass the instance index.
    pub fn new(instance: usize, key: u64, seed: u64, hoist_base: u64) -> ExecCtx {
        ExecCtx {
            instance,
            lane: acrobat_runtime::lane::root(instance),
            depth: hoist_base,
            phase: 0,
            rng: Prng::keyed(seed, key),
            open: HashMap::new(),
            current_block: None,
        }
    }

    /// Forks a child context for `parallel`/`map` branch `branch`: same
    /// depth origin, same instance, independent group state, and a child
    /// lane key derived from the parent's fork path (schedule-independent
    /// fiber identity for canonical window signing).
    pub fn fork(&self, branch: usize) -> ExecCtx {
        ExecCtx {
            instance: self.instance,
            lane: acrobat_runtime::lane::child(self.lane, branch),
            depth: self.depth,
            phase: self.phase,
            rng: self.rng.clone(),
            open: HashMap::new(),
            current_block: None,
        }
    }
}

/// How an executor reaches the run's [`ExecutionContext`].
///
/// Sequential runs own the context outright (`Own`) — method calls compile
/// to direct field access, no synchronization.  Fiber-mode runs share one
/// context among the run's instance fibers behind a mutex that belongs to
/// *this run only* (`Shared`); other concurrent mini-batches have their own
/// contexts and never touch it.
#[derive(Debug)]
pub enum RtHandle<'a> {
    /// Exclusive access (sequential execution) — lock-free.
    Own(&'a mut ExecutionContext),
    /// Per-run shared access (fiber mode).
    Shared(&'a Mutex<ExecutionContext>),
}

impl<'a> RtHandle<'a> {
    /// Runs `f` with mutable access to the context (locking only in fiber
    /// mode, and only the run-local mutex).
    #[inline]
    pub fn with<R>(&mut self, f: impl FnOnce(&mut ExecutionContext) -> R) -> R {
        match self {
            RtHandle::Own(rt) => f(rt),
            RtHandle::Shared(m) => f(&mut m.lock()),
        }
    }

    /// Reborrows the handle for a nested call.
    pub fn reborrow(&mut self) -> RtHandle<'_> {
        match self {
            RtHandle::Own(rt) => RtHandle::Own(rt),
            RtHandle::Shared(m) => RtHandle::Shared(m),
        }
    }

    /// The shared cell, when in fiber mode (child fibers build their own
    /// handles from it).
    pub fn shared(&self) -> Option<&'a Mutex<ExecutionContext>> {
        match self {
            RtHandle::Own(_) => None,
            RtHandle::Shared(m) => Some(m),
        }
    }
}

/// Aggregate state merged across completed runs (all contexts).
#[derive(Debug, Default)]
struct Aggregate {
    stats: RuntimeStats,
    runs: u64,
    profile: BTreeMap<acrobat_codegen::KernelId, u64>,
    outcomes: ServeOutcomes,
}

/// Terminal-outcome counters for every request submitted to a session,
/// including requests that never acquired an execution context (shed at
/// admission).  Completed runs are the only ones that contribute runtime
/// statistics to [`Session::aggregate_stats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServeOutcomes {
    /// Runs that finished and merged their statistics.
    pub completed: u64,
    /// Runs that failed with a fatal (non-interrupt) error.
    pub failed: u64,
    /// Runs cancelled via their [`acrobat_runtime::CancelToken`].
    pub cancelled: u64,
    /// Runs that exceeded their deadline budget.
    pub deadline_exceeded: u64,
    /// Requests rejected at admission (load shedding).
    pub shed: u64,
    /// Runs aborted by the fiber-hub stall watchdog.
    pub timed_out: u64,
}

impl ServeOutcomes {
    /// Total requests observed (every submitted request lands in exactly
    /// one counter).
    pub fn total(&self) -> u64 {
        self.completed
            + self.failed
            + self.cancelled
            + self.deadline_exceeded
            + self.shed
            + self.timed_out
    }
}

/// RAII admission permit: holds one slot of the session's `max_in_flight`
/// budget and releases it on drop.
#[derive(Debug)]
pub struct AdmitPermit<'s>(&'s std::sync::atomic::AtomicUsize);

impl Drop for AdmitPermit<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, std::sync::atomic::Ordering::AcqRel);
    }
}

/// The shared execution session for one compiled model.
///
/// Immutable per request: concurrent `run` calls share it through an `Arc`
/// and synchronize only on the context pool (at acquire/release) and the
/// aggregate-statistics merge (once per run) — never on the flush hot path.
pub struct Session {
    /// Static-analysis results (module, site info, hoisting, phases,
    /// ghosts).
    pub analysis: Arc<AnalysisResult>,
    /// The current engine.  Swapped wholesale by PGO re-scheduling
    /// ([`Session::swap_engine`]); reads happen once per run.
    engine: std::sync::RwLock<Arc<Engine>>,
    /// Idle execution contexts, reused across mini-batches.
    pool: ContextPool,
    /// Whether fibers are active (TDC present and backend supports them).
    pub fiber_mode: bool,
    /// Constructor tags.
    pub ctors: CtorTable,
    /// Random seed for the batch.
    pub seed: u64,
    /// First dynamic depth (above all statically hoisted depths, so a
    /// dynamic consumer never shares a depth bucket with a hoisted
    /// producer).
    pub hoist_base: u64,
    hoist_index: BTreeMap<ExprId, u64>,
    /// Statistics and PGO profile merged across completed runs.
    aggregate: Mutex<Aggregate>,
    /// Admitted runs currently executing (admission-gate occupancy).
    in_flight: std::sync::atomic::AtomicUsize,
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("fiber_mode", &self.fiber_mode)
            .field("seed", &self.seed)
            .field("hoist_base", &self.hoist_base)
            .finish()
    }
}

impl Session {
    /// Builds a session over an engine.
    pub fn new(engine: Arc<Engine>, seed: u64, fiber_mode: bool) -> Session {
        let analysis = engine.analysis().clone();
        // Static depths for hoisted sites: their order of appearance.
        let mut hoist_index = BTreeMap::new();
        for (i, site) in analysis.hoisted.iter().enumerate() {
            hoist_index.insert(*site, i as u64);
        }
        let hoist_base = hoist_index.len() as u64;
        let ctors = CtorTable::build(&analysis.module);
        Session {
            analysis,
            engine: std::sync::RwLock::new(engine),
            pool: ContextPool::new(),
            fiber_mode,
            ctors,
            seed,
            hoist_base,
            hoist_index,
            aggregate: Mutex::new(Aggregate::default()),
            in_flight: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// The current engine (runs pin it once at start).
    pub fn engine(&self) -> Arc<Engine> {
        self.engine.read().expect("engine lock poisoned").clone()
    }

    /// Installs a new engine (PGO re-scheduling, §D.1) and retires every
    /// pooled context built against the old one.  In-flight runs finish on
    /// the engine they pinned at start.
    pub fn swap_engine(&self, engine: Arc<Engine>) {
        *self.engine.write().expect("engine lock poisoned") = engine;
        self.pool.clear();
    }

    /// Statistics merged across every completed run (all contexts, serial
    /// or concurrent).
    pub fn aggregate_stats(&self) -> RuntimeStats {
        self.aggregate.lock().stats
    }

    /// Number of completed runs merged into [`Session::aggregate_stats`].
    pub fn runs_completed(&self) -> u64 {
        self.aggregate.lock().runs
    }

    /// Drains the PGO profile aggregated across completed runs.
    pub fn take_profile(&self) -> BTreeMap<acrobat_codegen::KernelId, u64> {
        std::mem::take(&mut self.aggregate.lock().profile)
    }

    /// Terminal-outcome counters across every request submitted so far.
    pub fn outcomes(&self) -> ServeOutcomes {
        self.aggregate.lock().outcomes
    }

    /// Admitted runs currently executing.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Contexts the pool has quarantined (dropped instead of recycled)
    /// because a run observed a fault, cancellation, or deadline miss.
    pub fn quarantined_count(&self) -> u64 {
        self.pool.quarantined_count()
    }

    /// Admission gate: claims an in-flight slot, or sheds the request when
    /// `limit` (0 = unlimited) is already saturated.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Overloaded`] when the limit is reached; no
    /// execution context is acquired in that case.
    pub fn try_admit(&self, limit: usize) -> Result<AdmitPermit<'_>, VmError> {
        use std::sync::atomic::Ordering;
        let prev = self.in_flight.fetch_add(1, Ordering::AcqRel);
        if limit != 0 && prev >= limit {
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
            return Err(VmError::Overloaded { in_flight: prev, limit });
        }
        Ok(AdmitPermit(&self.in_flight))
    }

    /// Buckets a finished request into its terminal-outcome counter.
    pub fn record_outcome<T>(&self, result: &Result<T, VmError>) {
        let o = &mut self.aggregate.lock().outcomes;
        match result {
            Ok(_) => o.completed += 1,
            Err(VmError::Cancelled) => o.cancelled += 1,
            Err(VmError::DeadlineExceeded { .. }) => o.deadline_exceeded += 1,
            Err(VmError::Overloaded { .. }) => o.shed += 1,
            Err(VmError::DriveTimeout(_)) => o.timed_out += 1,
            Err(_) => o.failed += 1,
        }
    }

    /// Merges one completed run into the aggregate and returns its context
    /// to the pool.
    fn finish_run(&self, mut ctx: ExecutionContext, stats: &RuntimeStats) {
        let profile = ctx.take_profile();
        {
            let mut agg = self.aggregate.lock();
            agg.stats.merge(stats);
            agg.runs += 1;
            for (k, v) in profile {
                *agg.profile.entry(k).or_default() += v;
            }
        }
        self.pool.release(ctx);
    }

    /// Merges one completed broker cohort ([`crate::broker`]) into the
    /// aggregate: every member's demuxed statistics count as one completed
    /// run each, while the shared context returns to the pool once.
    fn finish_cohort_run(&self, mut ctx: ExecutionContext, member_stats: &[RuntimeStats]) {
        let profile = ctx.take_profile();
        {
            let mut agg = self.aggregate.lock();
            for stats in member_stats {
                agg.stats.merge(stats);
            }
            agg.runs += member_stats.len() as u64;
            for (k, v) in profile {
                *agg.profile.entry(k).or_default() += v;
            }
        }
        self.pool.release(ctx);
    }

    /// Applies a ghost-operator padding after a conditional branch (§B.3).
    pub fn apply_ghosts(&self, ctx: &mut ExecCtx, branch: ExprId) {
        if let Some(&bumps) = self.analysis.ghosts.get(&branch) {
            ctx.depth += bumps as u64;
        }
    }

    /// Crosses a program-phase boundary: later work schedules strictly after
    /// all earlier phases (§4.1); the depth counter restarts.
    pub fn bump_phase(&self, ctx: &mut ExecCtx) {
        ctx.phase += 1;
        ctx.depth = self.hoist_base;
    }

    /// Whether a `let` site is a phase boundary.
    pub fn is_phase_boundary(&self, let_site: ExprId) -> bool {
        self.analysis.phase_boundaries.contains(&let_site)
    }
}

/// Per-run coordination state: one mini-batch's fiber hub, poison flag and
/// pinned engine.  Dereferences to the shared [`Session`].
pub struct RunSession<'s> {
    session: &'s Session,
    /// The engine this run executes against, pinned at run start so a
    /// concurrent PGO swap cannot change kernels mid-run.
    engine: Arc<Engine>,
    /// Fiber coordination for this run (used when the model has
    /// tensor-dependent control flow).
    pub hub: FiberHub,
    /// A flush failure (e.g. device OOM, cancellation, deadline miss) that
    /// fibers must observe instead of waiting forever.
    poison: Mutex<Option<TensorError>>,
}

impl fmt::Debug for RunSession<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunSession").field("session", &self.session).finish()
    }
}

impl Deref for RunSession<'_> {
    type Target = Session;

    fn deref(&self) -> &Session {
        self.session
    }
}

impl<'s> RunSession<'s> {
    /// Starts a run: pins the session's current engine.
    pub fn new(session: &'s Session) -> RunSession<'s> {
        RunSession {
            session,
            engine: session.engine(),
            hub: FiberHub::new(),
            poison: Mutex::new(None),
        }
    }

    /// The engine pinned for this run.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Acquires an execution context for this run (pooled when possible).
    pub fn acquire_context(&self) -> ExecutionContext {
        self.session.pool.acquire(&self.engine)
    }

    /// Merges this completed run into the session aggregate and returns the
    /// context to the pool.
    pub fn finish(&self, ctx: ExecutionContext, stats: &RuntimeStats) {
        self.session.finish_run(ctx, stats);
    }

    /// Merges a completed broker cohort — one ledger run per member, one
    /// shared context released — into the session aggregate.
    pub(crate) fn finish_cohort(&self, ctx: ExecutionContext, member_stats: &[RuntimeStats]) {
        self.session.finish_cohort_run(ctx, member_stats);
    }

    /// Abandons a failed run: the context is tainted and released, which
    /// quarantines it at the pool instead of recycling it, and *no*
    /// statistics are merged into the session aggregate.
    pub fn abandon(&self, mut ctx: ExecutionContext) {
        ctx.mark_tainted();
        self.session.pool.release(ctx);
    }

    /// Records a flush failure; fibers observe it at their next sync.  The
    /// first failure wins — later ones (typically cascades from draining)
    /// are dropped.
    pub fn poison(&self, e: TensorError) {
        let mut p = self.poison.lock();
        if p.is_none() {
            *p = Some(e);
        }
    }

    /// The recorded failure, if any.
    pub fn poisoned(&self) -> Option<TensorError> {
        self.poison.lock().clone()
    }

    /// Executes (records) one tensor-operator call site.
    ///
    /// `args` are the evaluated operand values.  Returns the site's (lazy)
    /// tensor result.
    pub fn exec_op_site(
        &self,
        rt: &mut RtHandle<'_>,
        ctx: &mut ExecCtx,
        site: ExprId,
        args: &[Value],
    ) -> Value {
        let info = self.analysis.site_info[&site];
        let accum = ctx.open.entry(info.group).or_default();
        for (i, a) in args.iter().enumerate() {
            accum.args.push(((site, i), a.as_tensor().clone()));
        }
        let result = TensorRef::pending();
        accum.results.push((site, result.clone()));
        if info.closes_group {
            self.close_group(rt, ctx, info.group, info.block, info.closes_block);
        }
        Value::Tensor(result)
    }

    fn close_group(
        &self,
        rt: &mut RtHandle<'_>,
        ctx: &mut ExecCtx,
        group: GroupId,
        block: BlockId,
        closes_block: bool,
    ) {
        let accum = ctx.open.remove(&group).expect("open group");
        // Bindings are per group (several groups may share one deduplicated
        // kernel program); they are immutable engine state, read without
        // touching the execution context.
        let library = self.engine.library();
        let bindings = library.bindings_for_group(group);
        let output_sites = library.outputs_for_group(group);
        let mut arg_ids = Vec::with_capacity(bindings.len());
        for binding in bindings {
            let r = accum
                .args
                .iter()
                .find(|(k, _)| k == binding)
                .map(|(_, r)| r)
                .unwrap_or_else(|| panic!("missing kernel input binding {binding:?}"));
            let vid = r.get().unwrap_or_else(|| {
                panic!("fusion invariant violated: input {binding:?} not materialized")
            });
            arg_ids.push(vid);
        }

        // Depth: statically hoisted groups use their static depth and do not
        // advance the dynamic counter (§B.1); everything else takes the
        // inline counter and bumps it.
        let all_hoisted =
            accum.results.iter().all(|(s, _)| self.session.hoist_index.contains_key(s));
        let depth = if all_hoisted {
            self.session.hoist_index[&accum.results[0].0]
        } else {
            let d = ctx.depth;
            ctx.depth += 1;
            d
        };

        let unit_head = ctx.current_block != Some(block);
        ctx.current_block = if closes_block { None } else { Some(block) };

        let outs = rt.with(|rt| {
            let outs = rt.add_unit_in_lane(
                group,
                ctx.instance,
                ctx.lane,
                depth,
                ctx.phase,
                arg_ids,
                unit_head,
            );
            if rt.options().eager {
                // PyTorch-style eager execution: every operator runs
                // immediately as its own launch — no auto-batching (§E.3
                // baseline).
                rt.flush().expect("eager flush failed");
            }
            outs
        });

        // Fill the escaping results.
        for (site, vid) in output_sites.iter().zip(outs) {
            let (_, r) =
                accum.results.iter().find(|(s, _)| s == site).expect("output site recorded");
            r.set(vid);
        }
    }

    /// Forces a tensor value: blocks (fiber mode) or flushes (sequential)
    /// until it is materialized.
    ///
    /// # Errors
    ///
    /// Propagates flush errors.
    pub fn force(&self, rt: &mut RtHandle<'_>, r: &TensorRef) -> Result<DeviceTensor, VmError> {
        enum Got {
            Ready(DeviceTensor),
            Flushed,
            Pending,
        }
        loop {
            if let Some(e) = self.poisoned() {
                return Err(e.into());
            }
            if let Some(vid) = r.get() {
                let got = rt.with(|rt| -> Result<Got, VmError> {
                    if let Some(t) = rt.tensor(vid) {
                        return Ok(Got::Ready(t.clone()));
                    }
                    if !self.fiber_mode {
                        rt.flush()?;
                        return Ok(Got::Flushed);
                    }
                    Ok(Got::Pending)
                })?;
                match got {
                    Got::Ready(t) => return Ok(t),
                    Got::Flushed => continue,
                    Got::Pending => {}
                }
            } else if !self.fiber_mode {
                panic!("tensor forced before its fusion group closed");
            }
            // Fiber mode: suspend until the driver flushes.
            self.hub.wait_for_flush();
        }
    }

    /// Reads the single element of a forced tensor (`item`).
    ///
    /// # Errors
    ///
    /// Propagates flush/read errors.
    pub fn item(&self, rt: &mut RtHandle<'_>, r: &TensorRef) -> Result<f64, VmError> {
        let t = self.force(rt, r)?;
        let v = rt.with(|rt| -> Result<f64, VmError> { Ok(rt.mem_mut().read(&t)?[0] as f64) })?;
        Ok(v)
    }

    /// `sample(%t)`: forces the tensor, then draws from the instance's
    /// pseudo-random stream (§E.1).
    ///
    /// # Errors
    ///
    /// Propagates flush errors.
    pub fn sample(
        &self,
        rt: &mut RtHandle<'_>,
        ctx: &mut ExecCtx,
        r: &TensorRef,
    ) -> Result<f64, VmError> {
        let _ = self.force(rt, r)?;
        Ok(ctx.rng.next_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prng_deterministic_and_distinct_per_instance() {
        let mut a = Prng::new(42, 0);
        let mut b = Prng::new(42, 0);
        let mut c = Prng::new(42, 1);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
        for _ in 0..100 {
            let f = a.next_f64();
            assert!((0.0..1.0).contains(&f));
            let r = a.next_range(20, 40);
            assert!((20..=40).contains(&r));
        }
    }

    #[test]
    fn prng_stream_follows_key_not_slot() {
        // The keyed constructor is the position-independent generalization
        // of `new`: key == instance index reproduces the legacy streams.
        let mut by_slot = Prng::new(7, 3);
        let mut by_key = Prng::keyed(7, 3);
        for _ in 0..16 {
            assert_eq!(by_slot.next_u64(), by_key.next_u64());
        }
        // Distinct keys give distinct streams regardless of slot.
        assert_ne!(Prng::keyed(7, 0).next_u64(), Prng::keyed(7, 1).next_u64());
    }

    #[test]
    fn ctor_table_tags() {
        let m = acrobat_ir::parse_module(
            "type Tree[a] { Leaf(a), Node(Tree[a], Tree[a]) }
             def @main(%x: Int) -> Int { %x }",
        )
        .unwrap();
        let t = CtorTable::build(&m);
        assert_ne!(t.tag("Nil"), t.tag("Cons"));
        assert_eq!(t.name(t.tag("Leaf")), "Leaf");
        assert_eq!(t.name(t.tag("Node")), "Node");
    }
}
