//! The AOT-compiled backend (§D.2, §E.2 of the paper).
//!
//! The paper compiles the Relay program ahead of time to C++: control flow
//! becomes native, variables become stack slots, zero-dimensional tensors
//! become native scalars, and inline depth-computation code is emitted
//! directly into the program (Listing 2).  Here the same lowering targets a
//! pre-resolved code tree:
//!
//! * variables are frame **slot indices** (no name lookups),
//! * scalars are native `i64`/`f64`/`bool` values (no boxing),
//! * call targets and constructor tags are resolved at compile time,
//! * lambdas are lifted to top-level functions with explicit captures,
//! * ghost-operator bumps and phase boundaries are compiled in.
//!
//! With tensor-dependent control flow, `parallel` branches and `map`
//! elements execute as **fibers** (scoped threads coordinated by the
//! run's [`acrobat_runtime::FiberHub`]) so instance parallelism survives
//! sync points (§4.2).

use std::collections::BTreeMap;
use std::sync::Arc;

use acrobat_ir::{
    Callee, Expr, ExprId, ExprKind, Module, Pattern, ScalarBinOp, ScalarUnOp, SyncKind,
};

use crate::session::{ExecCtx, RtHandle, RunSession, Session, VmError};
use crate::value::Value;

/// One compiled function.
#[derive(Debug)]
pub struct CodeFn {
    /// Number of frame slots.
    pub nslots: usize,
    /// Number of parameters (occupying slots `0..nparams`).
    pub nparams: usize,
    /// Body.
    pub code: Code,
    /// Diagnostic name.
    pub name: String,
}

/// A compiled expression (slot-resolved, tag-resolved).
#[derive(Debug)]
pub enum Code {
    /// Read a frame slot.
    Get(u16),
    /// Integer constant.
    ConstInt(i64),
    /// Float constant.
    ConstFloat(f64),
    /// Boolean constant.
    ConstBool(bool),
    /// `let` (slot `None` discards); `phase_bump` marks a phase boundary.
    Let {
        /// Destination slot.
        slot: Option<u16>,
        /// Phase boundary after evaluating the value (§4.1).
        phase_bump: bool,
        /// Bound value.
        value: Box<Code>,
        /// Continuation.
        body: Box<Code>,
    },
    /// Tuple-destructuring `let`.
    LetTuple {
        /// Destination slots.
        slots: Vec<u16>,
        /// Bound tuple.
        value: Box<Code>,
        /// Continuation.
        body: Box<Code>,
    },
    /// Conditional with compiled-in ghost paddings (§B.3).
    If {
        /// Condition.
        cond: Box<Code>,
        /// Then branch.
        then: Box<Code>,
        /// Else branch.
        els: Box<Code>,
        /// Ghost bumps after the then branch.
        ghost_then: u32,
        /// Ghost bumps after the else branch.
        ghost_els: u32,
    },
    /// Tag dispatch.
    Match {
        /// Scrutinee.
        scrutinee: Box<Code>,
        /// `(tag, field slots, body)` per arm.
        arms: Vec<(u32, Vec<u16>, Code)>,
    },
    /// Direct call of a compiled function.
    Call {
        /// Function index.
        func: usize,
        /// Arguments.
        args: Vec<Code>,
    },
    /// Tuple construction.
    MakeTuple(Vec<Code>),
    /// Tuple projection.
    Proj {
        /// Tuple.
        tuple: Box<Code>,
        /// Index.
        index: usize,
    },
    /// ADT construction with a resolved tag.
    MakeAdt {
        /// Constructor tag.
        tag: u32,
        /// Fields.
        fields: Vec<Code>,
    },
    /// Tensor-operator call site (records into the DFG).
    Op {
        /// The operator call site id (keys all static metadata).
        site: ExprId,
        /// Operand code.
        args: Vec<Code>,
    },
    /// `map` over a list with a lifted lambda.
    Map {
        /// Lifted lambda function index.
        func: usize,
        /// Enclosing-frame slots captured by the lambda (appended to the
        /// element argument).
        captures: Vec<u16>,
        /// List operand.
        list: Box<Code>,
    },
    /// `parallel(…)` concurrent branches.
    Parallel(Vec<Code>),
    /// Scalar binary operation on native values.
    ScalarBin {
        /// Operator.
        op: ScalarBinOp,
        /// Left operand.
        lhs: Box<Code>,
        /// Right operand.
        rhs: Box<Code>,
    },
    /// Scalar unary operation.
    ScalarUn {
        /// Operator.
        op: ScalarUnOp,
        /// Operand.
        operand: Box<Code>,
    },
    /// Tensor-value sync (`item` / `sample`).
    Sync {
        /// Which intrinsic.
        kind: SyncKind,
        /// Tensor operand.
        tensor: Box<Code>,
    },
    /// Seeded random integer.
    RandRange {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
}

/// A whole compiled program.
#[derive(Debug)]
pub struct AotProgram {
    fns: Vec<CodeFn>,
    main: usize,
}

impl AotProgram {
    /// Compiles an analyzed module.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Unsupported`] for constructs the AOT backend does
    /// not lower (first-class closure calls outside `map`).
    pub fn compile(module: &Module, session: &Session) -> Result<AotProgram, VmError> {
        let mut c = Compiler { session, fns: Vec::new(), fn_index: BTreeMap::new() };
        // Pre-register indices so recursion and forward references resolve.
        for (i, name) in module.functions.keys().enumerate() {
            c.fn_index.insert(name.clone(), i);
            c.fns.push(CodeFn {
                nslots: 0,
                nparams: 0,
                code: Code::ConstInt(0),
                name: name.clone(),
            });
        }
        for (name, f) in &module.functions {
            let idx = c.fn_index[name];
            let mut scope = Scope::default();
            for p in &f.params {
                scope.bind(&p.name);
            }
            let nparams = f.params.len();
            let code = c.compile_expr(&f.body, &mut scope)?;
            c.fns[idx] = CodeFn { nslots: scope.max, nparams, code, name: name.clone() };
        }
        let main = c.fn_index["main"];
        Ok(AotProgram { fns: c.fns, main })
    }

    /// The compiled functions (for inspection in tests).
    pub fn functions(&self) -> &[CodeFn] {
        &self.fns
    }
}

#[derive(Default)]
struct Scope {
    names: Vec<(String, u16)>,
    next: u16,
    max: usize,
}

impl Scope {
    fn bind(&mut self, name: &str) -> u16 {
        let slot = self.next;
        self.names.push((name.to_string(), slot));
        self.next += 1;
        self.max = self.max.max(self.next as usize);
        slot
    }

    fn lookup(&self, name: &str) -> Option<u16> {
        self.names.iter().rev().find(|(n, _)| n == name).map(|(_, s)| *s)
    }

    fn save(&self) -> (usize, u16) {
        (self.names.len(), self.next)
    }

    fn restore(&mut self, mark: (usize, u16)) {
        self.names.truncate(mark.0);
        self.next = mark.1;
    }
}

struct Compiler<'m> {
    session: &'m Session,
    fns: Vec<CodeFn>,
    fn_index: BTreeMap<String, usize>,
}

impl<'m> Compiler<'m> {
    fn compile_expr(&mut self, expr: &Expr, scope: &mut Scope) -> Result<Code, VmError> {
        Ok(match &expr.kind {
            ExprKind::Var(name) => {
                let slot = scope
                    .lookup(name)
                    .unwrap_or_else(|| panic!("unbound %{name} (typeck admitted it)"));
                Code::Get(slot)
            }
            ExprKind::IntLit(v) => Code::ConstInt(*v),
            ExprKind::FloatLit(v) => Code::ConstFloat(*v),
            ExprKind::BoolLit(v) => Code::ConstBool(*v),
            ExprKind::PhaseBoundary => Code::ConstInt(0),
            ExprKind::RandRange { lo, hi } => Code::RandRange { lo: *lo, hi: *hi },
            ExprKind::Let { pat, value, body } => {
                let v = self.compile_expr(value, scope)?;
                let phase_bump = self.session.is_phase_boundary(expr.id);
                let mark = scope.save();
                let code = match pat {
                    Pattern::Var(n) => {
                        let slot = scope.bind(n);
                        let b = self.compile_expr(body, scope)?;
                        Code::Let {
                            slot: Some(slot),
                            phase_bump,
                            value: Box::new(v),
                            body: Box::new(b),
                        }
                    }
                    Pattern::Wildcard => {
                        let b = self.compile_expr(body, scope)?;
                        Code::Let { slot: None, phase_bump, value: Box::new(v), body: Box::new(b) }
                    }
                    Pattern::Tuple(ns) => {
                        let slots: Vec<u16> = ns.iter().map(|n| scope.bind(n)).collect();
                        let b = self.compile_expr(body, scope)?;
                        Code::LetTuple { slots, value: Box::new(v), body: Box::new(b) }
                    }
                };
                scope.restore(mark);
                code
            }
            ExprKind::If { cond, then, els } => {
                let ghost = |e: &Expr| -> u32 {
                    self.session.analysis.ghosts.get(&e.id).copied().unwrap_or(0) as u32
                };
                Code::If {
                    ghost_then: ghost(then),
                    ghost_els: ghost(els),
                    cond: Box::new(self.compile_expr(cond, scope)?),
                    then: Box::new(self.compile_expr(then, scope)?),
                    els: Box::new(self.compile_expr(els, scope)?),
                }
            }
            ExprKind::Match { scrutinee, arms } => {
                let s = self.compile_expr(scrutinee, scope)?;
                let mut compiled = Vec::with_capacity(arms.len());
                for arm in arms {
                    let tag = self.session.ctors.tag(&arm.ctor);
                    let mark = scope.save();
                    let slots: Vec<u16> = arm.binders.iter().map(|b| scope.bind(b)).collect();
                    let body = self.compile_expr(&arm.body, scope)?;
                    scope.restore(mark);
                    compiled.push((tag, slots, body));
                }
                Code::Match { scrutinee: Box::new(s), arms: compiled }
            }
            ExprKind::Call { callee, args } => {
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.compile_expr(a, scope)?);
                }
                match callee {
                    Callee::Op { .. } => Code::Op { site: expr.id, args: argv },
                    Callee::Global(name) => Code::Call { func: self.fn_index[name], args: argv },
                    Callee::Ctor(name) => {
                        Code::MakeAdt { tag: self.session.ctors.tag(name), fields: argv }
                    }
                    Callee::Var(name) => {
                        return Err(VmError::Unsupported(format!(
                            "AOT lowering of first-class closure call `%{name}(…)` \
                             (use `map` or a global function)"
                        )))
                    }
                }
            }
            ExprKind::Tuple(parts) => {
                let mut vs = Vec::with_capacity(parts.len());
                for p in parts {
                    vs.push(self.compile_expr(p, scope)?);
                }
                Code::MakeTuple(vs)
            }
            ExprKind::Proj { tuple, index } => {
                Code::Proj { tuple: Box::new(self.compile_expr(tuple, scope)?), index: *index }
            }
            ExprKind::Lambda { .. } => {
                return Err(VmError::Unsupported("AOT lowering of a lambda outside `map`".into()))
            }
            ExprKind::Map { func, list } => {
                let l = self.compile_expr(list, scope)?;
                let ExprKind::Lambda { params, body } = &func.kind else {
                    return Err(VmError::Unsupported("map over a non-lambda".into()));
                };
                // Lambda lifting: free variables become extra parameters.
                let mut free = Vec::new();
                collect_free_vars(
                    body,
                    &params.iter().map(|p| p.name.clone()).collect::<Vec<_>>(),
                    &mut free,
                );
                let captures: Vec<u16> = free
                    .iter()
                    .map(|n| scope.lookup(n).unwrap_or_else(|| panic!("capture %{n} not in scope")))
                    .collect();
                let mut lscope = Scope::default();
                for p in params {
                    lscope.bind(&p.name);
                }
                for n in &free {
                    lscope.bind(n);
                }
                let nparams = params.len() + free.len();
                let code = self.compile_expr(body, &mut lscope)?;
                let idx = self.fns.len();
                self.fns.push(CodeFn {
                    nslots: lscope.max,
                    nparams,
                    code,
                    name: format!("lambda#{idx}"),
                });
                Code::Map { func: idx, captures, list: Box::new(l) }
            }
            ExprKind::Parallel(parts) => {
                let mut vs = Vec::with_capacity(parts.len());
                for p in parts {
                    vs.push(self.compile_expr(p, scope)?);
                }
                Code::Parallel(vs)
            }
            ExprKind::ScalarBin { op, lhs, rhs } => Code::ScalarBin {
                op: *op,
                lhs: Box::new(self.compile_expr(lhs, scope)?),
                rhs: Box::new(self.compile_expr(rhs, scope)?),
            },
            ExprKind::ScalarUn { op, operand } => {
                Code::ScalarUn { op: *op, operand: Box::new(self.compile_expr(operand, scope)?) }
            }
            ExprKind::Sync { kind, tensor } => {
                Code::Sync { kind: *kind, tensor: Box::new(self.compile_expr(tensor, scope)?) }
            }
        })
    }
}

/// Free variables of a lambda body (excluding its parameters and locals).
fn collect_free_vars(body: &Expr, bound: &[String], out: &mut Vec<String>) {
    fn walk(e: &Expr, bound: &mut Vec<String>, out: &mut Vec<String>) {
        match &e.kind {
            ExprKind::Var(n) if !bound.contains(n) && !out.contains(n) => {
                out.push(n.clone());
            }
            ExprKind::Let { pat, value, body } => {
                walk(value, bound, out);
                let mark = bound.len();
                match pat {
                    Pattern::Var(n) => bound.push(n.clone()),
                    Pattern::Wildcard => {}
                    Pattern::Tuple(ns) => bound.extend(ns.iter().cloned()),
                }
                walk(body, bound, out);
                bound.truncate(mark);
            }
            ExprKind::Match { scrutinee, arms } => {
                walk(scrutinee, bound, out);
                for arm in arms {
                    let mark = bound.len();
                    bound.extend(arm.binders.iter().cloned());
                    walk(&arm.body, bound, out);
                    bound.truncate(mark);
                }
            }
            ExprKind::Lambda { params, body } => {
                let mark = bound.len();
                bound.extend(params.iter().map(|p| p.name.clone()));
                walk(body, bound, out);
                bound.truncate(mark);
            }
            ExprKind::Call { args, .. } => args.iter().for_each(|a| walk(a, bound, out)),
            ExprKind::Tuple(es) | ExprKind::Parallel(es) => {
                es.iter().for_each(|x| walk(x, bound, out))
            }
            ExprKind::Proj { tuple, .. } => walk(tuple, bound, out),
            ExprKind::Map { func, list } => {
                walk(func, bound, out);
                walk(list, bound, out);
            }
            ExprKind::If { cond, then, els } => {
                walk(cond, bound, out);
                walk(then, bound, out);
                walk(els, bound, out);
            }
            ExprKind::ScalarBin { lhs, rhs, .. } => {
                walk(lhs, bound, out);
                walk(rhs, bound, out);
            }
            ExprKind::ScalarUn { operand, .. } => walk(operand, bound, out),
            ExprKind::Sync { tensor, .. } => walk(tensor, bound, out),
            _ => {}
        }
    }
    let mut b = bound.to_vec();
    walk(body, &mut b, out);
}

/// The AOT execution backend.
#[derive(Debug)]
pub struct AotBackend {
    program: AotProgram,
}

impl AotBackend {
    /// Compiles the module for execution.
    ///
    /// # Errors
    ///
    /// Propagates lowering errors.
    pub fn compile(module: &Module, session: &Session) -> Result<AotBackend, VmError> {
        Ok(AotBackend { program: AotProgram::compile(module, session)? })
    }

    /// The compiled program.
    pub fn program(&self) -> &AotProgram {
        &self.program
    }

    /// Runs `@main` for one instance.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn run_instance(
        &self,
        run: &RunSession<'_>,
        rt: &mut RtHandle<'_>,
        ctx: &mut ExecCtx,
        args: Vec<Value>,
    ) -> Result<Value, VmError> {
        self.call(self.program.main, args, run, rt, ctx)
    }

    fn call(
        &self,
        func: usize,
        args: Vec<Value>,
        run: &RunSession<'_>,
        rt: &mut RtHandle<'_>,
        ctx: &mut ExecCtx,
    ) -> Result<Value, VmError> {
        let f = &self.program.fns[func];
        debug_assert_eq!(args.len(), f.nparams, "arity of {}", f.name);
        let mut frame: Vec<Value> = Vec::with_capacity(f.nslots);
        frame.extend(args);
        frame.resize(f.nslots, Value::Int(0));
        self.exec(&f.code, &mut frame, run, rt, ctx)
    }

    #[allow(clippy::too_many_lines)]
    fn exec(
        &self,
        code: &Code,
        frame: &mut Vec<Value>,
        run: &RunSession<'_>,
        rt: &mut RtHandle<'_>,
        ctx: &mut ExecCtx,
    ) -> Result<Value, VmError> {
        Ok(match code {
            Code::Get(slot) => frame[*slot as usize].clone(),
            Code::ConstInt(v) => Value::Int(*v),
            Code::ConstFloat(v) => Value::Float(*v),
            Code::ConstBool(v) => Value::Bool(*v),
            Code::RandRange { lo, hi } => Value::Int(ctx.rng.next_range(*lo, *hi)),
            Code::Let { slot, phase_bump, value, body } => {
                let v = self.exec(value, frame, run, rt, ctx)?;
                if *phase_bump {
                    run.bump_phase(ctx);
                }
                if let Some(s) = slot {
                    frame[*s as usize] = v;
                }
                self.exec(body, frame, run, rt, ctx)?
            }
            Code::LetTuple { slots, value, body } => {
                let v = self.exec(value, frame, run, rt, ctx)?;
                match v {
                    Value::Tuple(parts) => {
                        for (s, p) in slots.iter().zip(parts.iter()) {
                            frame[*s as usize] = p.clone();
                        }
                    }
                    other => panic!("tuple pattern on {other:?}"),
                }
                self.exec(body, frame, run, rt, ctx)?
            }
            Code::If { cond, then, els, ghost_then, ghost_els } => {
                let c = match self.exec(cond, frame, run, rt, ctx)? {
                    Value::Bool(b) => b,
                    other => panic!("non-bool condition {other:?}"),
                };
                let (taken, ghosts) = if c { (then, *ghost_then) } else { (els, *ghost_els) };
                let r = self.exec(taken, frame, run, rt, ctx)?;
                ctx.depth += ghosts as u64;
                r
            }
            Code::Match { scrutinee, arms } => {
                let s = self.exec(scrutinee, frame, run, rt, ctx)?;
                let (tag, fields) = match &s {
                    Value::Adt { tag, fields } => (*tag, fields.clone()),
                    other => panic!("match on {other:?}"),
                };
                let (_, slots, body) =
                    arms.iter().find(|(t, _, _)| *t == tag).expect("exhaustive match (typeck)");
                for (slot, f) in slots.iter().zip(fields.iter()) {
                    frame[*slot as usize] = f.clone();
                }
                self.exec(body, frame, run, rt, ctx)?
            }
            Code::Call { func, args } => {
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.exec(a, frame, run, rt, ctx)?);
                }
                self.call(*func, argv, run, rt, ctx)?
            }
            Code::MakeTuple(parts) => {
                let mut vs = Vec::with_capacity(parts.len());
                for p in parts {
                    vs.push(self.exec(p, frame, run, rt, ctx)?);
                }
                Value::Tuple(Arc::new(vs))
            }
            Code::Proj { tuple, index } => match self.exec(tuple, frame, run, rt, ctx)? {
                Value::Tuple(parts) => parts[*index].clone(),
                other => panic!("projection on {other:?}"),
            },
            Code::MakeAdt { tag, fields } => {
                let mut vs = Vec::with_capacity(fields.len());
                for f in fields {
                    vs.push(self.exec(f, frame, run, rt, ctx)?);
                }
                Value::Adt { tag: *tag, fields: Arc::new(vs) }
            }
            Code::Op { site, args } => {
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.exec(a, frame, run, rt, ctx)?);
                }
                run.exec_op_site(rt, ctx, *site, &argv)
            }
            Code::Map { func, captures, list } => {
                let l = self.exec(list, frame, run, rt, ctx)?;
                let captured: Vec<Value> =
                    captures.iter().map(|s| frame[*s as usize].clone()).collect();
                let func = *func;
                // Collect list elements.
                let cons = run.ctors.tag("Cons");
                let nil = run.ctors.tag("Nil");
                let mut items = Vec::new();
                let mut cur = l;
                loop {
                    match cur {
                        Value::Adt { tag, fields } if tag == cons => {
                            items.push(fields[0].clone());
                            cur = fields[1].clone();
                        }
                        Value::Adt { tag, .. } if tag == nil => break,
                        other => panic!("map over {other:?}"),
                    }
                }
                let jobs: Vec<Job<'_>> = items
                    .into_iter()
                    .map(|item| {
                        let captured = captured.clone();
                        Box::new(
                            move |this: &AotBackend,
                                  run: &RunSession<'_>,
                                  rt: &mut RtHandle<'_>,
                                  ctx: &mut ExecCtx| {
                                let mut argv = Vec::with_capacity(1 + captured.len());
                                argv.push(item);
                                argv.extend(captured);
                                this.call(func, argv, run, rt, ctx)
                            },
                        ) as Job<'_>
                    })
                    .collect();
                let results = self.run_branches(run, rt, ctx, jobs)?;
                let mut out = Value::Adt { tag: nil, fields: Arc::new(vec![]) };
                for r in results.into_iter().rev() {
                    out = Value::Adt { tag: cons, fields: Arc::new(vec![r, out]) };
                }
                out
            }
            Code::Parallel(parts) => {
                // Each branch runs on a snapshot of the frame (branches are
                // independent by definition; bindings do not leak out).
                let jobs: Vec<Job<'_>> = parts
                    .iter()
                    .map(|part| {
                        let snapshot: Vec<Value> = frame.clone();
                        Box::new(
                            move |this: &AotBackend,
                                  run: &RunSession<'_>,
                                  rt: &mut RtHandle<'_>,
                                  ctx: &mut ExecCtx| {
                                let mut fr = snapshot;
                                this.exec(part, &mut fr, run, rt, ctx)
                            },
                        ) as Job<'_>
                    })
                    .collect();
                let results = self.run_branches(run, rt, ctx, jobs)?;
                Value::Tuple(Arc::new(results))
            }
            Code::ScalarBin { op, lhs, rhs } => {
                let a = self.exec(lhs, frame, run, rt, ctx)?;
                let b = self.exec(rhs, frame, run, rt, ctx)?;
                scalar_bin(*op, &a, &b)
            }
            Code::ScalarUn { op, operand } => {
                let v = self.exec(operand, frame, run, rt, ctx)?;
                match op {
                    ScalarUnOp::Neg => match v {
                        Value::Int(x) => Value::Int(-x),
                        Value::Float(x) => Value::Float(-x),
                        other => panic!("neg on {other:?}"),
                    },
                    ScalarUnOp::Not => Value::Bool(!v.as_bool()),
                    ScalarUnOp::ToFloat => Value::Float(v.as_int() as f64),
                }
            }
            Code::Sync { kind, tensor } => {
                let t = self.exec(tensor, frame, run, rt, ctx)?;
                let r = t.as_tensor();
                let v = match kind {
                    SyncKind::Item => run.item(rt, r)?,
                    SyncKind::Sample => run.sample(rt, ctx, r)?,
                };
                Value::Float(v)
            }
        })
    }
}

/// One branch of a `map`/`parallel` construct.
type Job<'a> = Box<
    dyn FnOnce(
            &AotBackend,
            &RunSession<'_>,
            &mut RtHandle<'_>,
            &mut ExecCtx,
        ) -> Result<Value, VmError>
        + Send
        + 'a,
>;

impl AotBackend {
    /// Runs branch jobs with concurrent-depth semantics (§4.1): all branches
    /// start at the parent depth; afterwards the parent resumes at the
    /// maximum.  In fiber mode (tensor-dependent control flow present) the
    /// branches run as fibers — fork-join instance parallelism (§4.2);
    /// child pseudo-random streams are split from the parent's so DRNN-style
    /// models stay seed-reproducible per fiber (§E.1).
    fn run_branches(
        &self,
        run: &RunSession<'_>,
        rt: &mut RtHandle<'_>,
        ctx: &mut ExecCtx,
        jobs: Vec<Job<'_>>,
    ) -> Result<Vec<Value>, VmError> {
        let d0 = ctx.depth;
        if !run.fiber_mode || jobs.len() <= 1 {
            let mut dmax = d0;
            let mut out = Vec::with_capacity(jobs.len());
            for job in jobs {
                ctx.depth = d0;
                out.push(job(self, run, rt, ctx)?);
                dmax = dmax.max(ctx.depth);
            }
            ctx.depth = dmax;
            return Ok(out);
        }
        let n = jobs.len();
        let cell = rt.shared().expect("fiber-mode branches share the run context");
        let mut ctxs: Vec<ExecCtx> = (0..n)
            .map(|i| {
                let mut c = ctx.fork(i);
                c.rng = crate::session::Prng::new(ctx.rng.next_u64(), i);
                c
            })
            .collect();
        let results: Vec<Result<Value, VmError>> = std::thread::scope(|scope| {
            let hub = &run.hub;
            let g = hub.fork(n);
            let mut handles = Vec::with_capacity(n);
            for (job, cctx) in jobs.into_iter().zip(ctxs.iter_mut()) {
                handles.push(
                    std::thread::Builder::new()
                        .stack_size(16 << 20)
                        .spawn_scoped(scope, move || {
                            let mut rt = RtHandle::Shared(cell);
                            let r = job(self, run, &mut rt, cctx);
                            hub.finish_child(g);
                            r
                        })
                        .expect("spawn fiber"),
                );
            }
            hub.join_while(g, || {
                handles.into_iter().map(|h| h.join().expect("fiber panicked")).collect()
            })
        });
        ctx.depth = ctxs.iter().map(|c| c.depth).max().unwrap_or(d0);
        results.into_iter().collect()
    }
}

fn scalar_bin(op: ScalarBinOp, a: &Value, b: &Value) -> Value {
    use ScalarBinOp::*;
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => match op {
            Add => Value::Int(x + y),
            Sub => Value::Int(x - y),
            Mul => Value::Int(x * y),
            Div => Value::Int(x / y),
            Lt => Value::Bool(x < y),
            Le => Value::Bool(x <= y),
            Gt => Value::Bool(x > y),
            Ge => Value::Bool(x >= y),
            Eq => Value::Bool(x == y),
            Ne => Value::Bool(x != y),
            And | Or => panic!("logic on ints"),
        },
        (Value::Float(x), Value::Float(y)) => match op {
            Add => Value::Float(x + y),
            Sub => Value::Float(x - y),
            Mul => Value::Float(x * y),
            Div => Value::Float(x / y),
            Lt => Value::Bool(x < y),
            Le => Value::Bool(x <= y),
            Gt => Value::Bool(x > y),
            Ge => Value::Bool(x >= y),
            Eq => Value::Bool(x == y),
            Ne => Value::Bool(x != y),
            And | Or => panic!("logic on floats"),
        },
        (Value::Bool(x), Value::Bool(y)) => match op {
            And => Value::Bool(*x && *y),
            Or => Value::Bool(*x || *y),
            Eq => Value::Bool(x == y),
            Ne => Value::Bool(x != y),
            _ => panic!("arith on bools"),
        },
        (x, y) => panic!("scalar op {op:?} on {x:?} and {y:?}"),
    }
}
