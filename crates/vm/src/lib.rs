//! Execution backends for ACROBAT programs.
//!
//! Two backends execute the (analyzed) frontend program, reproducing the
//! paper's §E.2 comparison:
//!
//! * [`interp::VmBackend`] — a Relay-VM-style interpreter: boxed scalars,
//!   name-resolved environments, per-node dispatch.  Slow on
//!   control-flow-heavy models, exactly like the paper's Relay VM baseline
//!   (Table 7).
//! * [`aot::AotBackend`] — the AOT-compiled path (§D.2): the program is
//!   lowered at compile time to slot-resolved code with native scalars,
//!   compiled-in inline depth computation, ghost-operator bumps and phase
//!   boundaries, and fiber-based concurrency for tensor-dependent control
//!   flow (§4.2).
//!
//! Both backends drive the same lazy-DFG session ([`session::Session`]);
//! batching behaviour is identical, so measured differences isolate
//! program-execution overhead.
//!
//! The top-level entry point is [`Executable`]: build with
//! [`Executable::new`], run mini-batches with [`Executable::run`].

#![deny(missing_docs)]

pub mod aot;
pub mod broker;
pub mod driver;
pub mod interp;
pub mod session;
pub mod value;

pub use broker::{BrokerStats, CohortRequest};
pub use driver::{module_has_sync, BackendKind, Executable, RunOptions, RunResult};
pub use session::{
    AdmitPermit, ExecCtx, Prng, RtHandle, RunSession, ServeOutcomes, Session, VmError,
};
pub use value::{InputValue, OutputValue, TensorRef, Value};
