//! Runtime values shared by both execution backends.
//!
//! Tensor values are *lazy*: a [`TensorRef`] names a DFG value that may not
//! have been computed yet (dynamic batching defers kernel execution).  The
//! reference is filled exactly once, when the producing fusion group's DFG
//! node is created.
//!
//! Scalar representation is where the two backends differ, reproducing the
//! paper's §D.2/§E.2 comparison: the AOT backend stores native
//! [`Value::Int`]/[`Value::Float`]/[`Value::Bool`], while the Relay-VM-style
//! interpreter boxes every scalar as a heap-allocated zero-dimensional
//! tensor ([`Value::BoxedScalar`]) — exactly what Relay's VM does, and a
//! major source of its control-flow overhead.

use std::sync::{Arc, OnceLock};

use acrobat_ir::Expr;
use acrobat_runtime::ValueId;
use acrobat_tensor::Tensor;

/// A lazily-materialized tensor: a slot for the DFG value id, set once when
/// the producing kernel node is built.
#[derive(Debug, Clone, Default)]
pub struct TensorRef(Arc<OnceLock<ValueId>>);

impl TensorRef {
    /// A reference that will be filled when its fusion group closes.
    pub fn pending() -> TensorRef {
        TensorRef::default()
    }

    /// A reference to an already-registered DFG value.
    pub fn ready(v: ValueId) -> TensorRef {
        let cell = OnceLock::new();
        cell.set(v).expect("fresh cell");
        TensorRef(Arc::new(cell))
    }

    /// The DFG value, if assigned.
    pub fn get(&self) -> Option<ValueId> {
        self.0.get().copied()
    }

    /// Assigns the DFG value.
    ///
    /// # Panics
    ///
    /// Panics if already assigned (fusion-group invariant violation).
    pub fn set(&self, v: ValueId) {
        self.0.set(v).expect("tensor reference assigned twice");
    }
}

/// A closure value (Relay-VM backend only; the AOT backend compiles lambdas
/// to functions with explicit captures).
#[derive(Debug)]
pub struct Closure {
    /// Parameter names.
    pub params: Vec<String>,
    /// Body expression (shared with the module).
    pub body: Arc<Expr>,
    /// Captured environment.
    pub env: Vec<(String, Value)>,
}

/// A runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    /// A (lazy) device tensor.
    Tensor(TensorRef),
    /// Native integer (AOT backend).
    Int(i64),
    /// Native float (AOT backend).
    Float(f64),
    /// Native boolean (AOT backend).
    Bool(bool),
    /// A scalar boxed as a heap-allocated zero-dim tensor (Relay-VM
    /// backend; §D.2).
    BoxedScalar(Arc<Tensor>),
    /// Tuple.
    Tuple(Arc<Vec<Value>>),
    /// ADT value with a resolved constructor tag.
    Adt {
        /// Constructor tag (module-wide, see [`crate::session::CtorTable`]).
        tag: u32,
        /// Field values.
        fields: Arc<Vec<Value>>,
    },
    /// Closure (VM backend only).
    Closure(Arc<Closure>),
}

impl Value {
    /// Extracts the tensor reference.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a tensor (type checking prevents this).
    pub fn as_tensor(&self) -> &TensorRef {
        match self {
            Value::Tensor(t) => t,
            other => panic!("expected tensor value, got {other:?}"),
        }
    }

    /// Native integer view (unboxes and converts as needed).
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            Value::Float(v) => *v as i64,
            Value::Bool(v) => i64::from(*v),
            Value::BoxedScalar(t) => t.item().expect("boxed scalar") as i64,
            other => panic!("expected int, got {other:?}"),
        }
    }

    /// Native float view (unboxes and converts as needed).
    pub fn as_float(&self) -> f64 {
        match self {
            Value::Float(v) => *v,
            Value::Int(v) => *v as f64,
            Value::Bool(v) => f64::from(u8::from(*v)),
            Value::BoxedScalar(t) => t.item().expect("boxed scalar") as f64,
            other => panic!("expected float, got {other:?}"),
        }
    }

    /// Native bool view (unboxes if needed; boxed scalars use 0.0/1.0).
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(v) => *v,
            Value::Int(v) => *v != 0,
            Value::BoxedScalar(t) => t.item().expect("boxed scalar") != 0.0,
            other => panic!("expected bool, got {other:?}"),
        }
    }
}

/// Host-side description of one `@main` argument (per-instance input).
#[derive(Debug, Clone, PartialEq)]
pub enum InputValue {
    /// A tensor.
    Tensor(Tensor),
    /// Integer scalar.
    Int(i64),
    /// Float scalar.
    Float(f64),
    /// Boolean scalar.
    Bool(bool),
    /// Tuple of inputs.
    Tuple(Vec<InputValue>),
    /// ADT value by constructor name.
    Adt {
        /// Constructor name (e.g. `Cons`).
        ctor: String,
        /// Field inputs.
        fields: Vec<InputValue>,
    },
}

impl InputValue {
    /// Builds a `List[…]` from items.
    pub fn list(items: Vec<InputValue>) -> InputValue {
        let mut out = InputValue::Adt { ctor: "Nil".into(), fields: vec![] };
        for item in items.into_iter().rev() {
            out = InputValue::Adt { ctor: "Cons".into(), fields: vec![item, out] };
        }
        out
    }

    /// Collects every tensor in traversal order (used for batched uploads).
    pub fn tensors<'a>(&'a self, out: &mut Vec<&'a Tensor>) {
        match self {
            InputValue::Tensor(t) => out.push(t),
            InputValue::Tuple(parts) => {
                for p in parts {
                    p.tensors(out);
                }
            }
            InputValue::Adt { fields, .. } => {
                for f in fields {
                    f.tensors(out);
                }
            }
            _ => {}
        }
    }
}

/// Host-side result of a model run: tensors downloaded, structure preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum OutputValue {
    /// A downloaded tensor.
    Tensor(Tensor),
    /// Integer scalar.
    Int(i64),
    /// Float scalar.
    Float(f64),
    /// Boolean scalar.
    Bool(bool),
    /// Tuple of outputs.
    Tuple(Vec<OutputValue>),
    /// ADT value by constructor name.
    Adt {
        /// Constructor name.
        ctor: String,
        /// Field outputs.
        fields: Vec<OutputValue>,
    },
}

impl OutputValue {
    /// Flattens a `List[…]` output into items; `None` if not a list.
    pub fn into_list(self) -> Option<Vec<OutputValue>> {
        let mut items = Vec::new();
        let mut cur = self;
        loop {
            match cur {
                OutputValue::Adt { ctor, mut fields } if ctor == "Cons" && fields.len() == 2 => {
                    let tail = fields.pop().expect("cons tail");
                    let head = fields.pop().expect("cons head");
                    items.push(head);
                    cur = tail;
                }
                OutputValue::Adt { ctor, .. } if ctor == "Nil" => return Some(items),
                _ => return None,
            }
        }
    }

    /// All tensors in the output, in traversal order.
    pub fn tensors(&self) -> Vec<&Tensor> {
        let mut out = Vec::new();
        fn walk<'a>(v: &'a OutputValue, out: &mut Vec<&'a Tensor>) {
            match v {
                OutputValue::Tensor(t) => out.push(t),
                OutputValue::Tuple(parts) => parts.iter().for_each(|p| walk(p, out)),
                OutputValue::Adt { fields, .. } => fields.iter().for_each(|f| walk(f, out)),
                _ => {}
            }
        }
        walk(self, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_ref_set_once() {
        let r = TensorRef::pending();
        assert!(r.get().is_none());
        r.set(ValueId(3));
        assert_eq!(r.get(), Some(ValueId(3)));
        let ready = TensorRef::ready(ValueId(9));
        assert_eq!(ready.get(), Some(ValueId(9)));
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn tensor_ref_double_set_panics() {
        let r = TensorRef::pending();
        r.set(ValueId(1));
        r.set(ValueId(2));
    }

    #[test]
    fn boxed_scalar_views() {
        let v = Value::BoxedScalar(Arc::new(Tensor::scalar(2.0)));
        assert_eq!(v.as_int(), 2);
        assert_eq!(v.as_float(), 2.0);
        assert!(v.as_bool());
    }

    #[test]
    fn input_list_roundtrip() {
        let l = InputValue::list(vec![InputValue::Int(1), InputValue::Int(2)]);
        match &l {
            InputValue::Adt { ctor, fields } => {
                assert_eq!(ctor, "Cons");
                assert_eq!(fields[0], InputValue::Int(1));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn output_list_flatten() {
        let o = OutputValue::Adt {
            ctor: "Cons".into(),
            fields: vec![
                OutputValue::Int(1),
                OutputValue::Adt { ctor: "Nil".into(), fields: vec![] },
            ],
        };
        assert_eq!(o.into_list().unwrap(), vec![OutputValue::Int(1)]);
        assert!(OutputValue::Int(3).into_list().is_none());
    }

    #[test]
    fn input_tensor_collection() {
        let t = Tensor::ones(&[2]);
        let i = InputValue::Tuple(vec![
            InputValue::Tensor(t.clone()),
            InputValue::list(vec![InputValue::Tensor(t.clone())]),
        ]);
        let mut v = Vec::new();
        i.tensors(&mut v);
        assert_eq!(v.len(), 2);
    }
}
