//! The Relay-VM-style interpreter backend.
//!
//! This backend deliberately executes the way Relay's interpreted virtual
//! machine does (the paper's §E.2 baseline — up to 13.45× slower than AOT
//! compilation):
//!
//! * every scalar is **boxed** as a heap-allocated zero-dimensional tensor
//!   and every scalar operation allocates a fresh box (§D.2);
//! * variables live in an association-list environment searched linearly by
//!   *string comparison*;
//! * global calls re-resolve the callee by name on every invocation;
//! * `match` arms re-resolve constructor tags by name.
//!
//! Dynamic batching itself is unchanged — both backends share the
//! [`crate::Session`] machinery — so the VM-vs-AOT gap isolates pure
//! control-flow-interpretation overhead, exactly as in Table 7.
//!
//! The VM backend runs instances sequentially (no fibers); models with
//! tensor-dependent control flow still execute, but each sync point flushes
//! immediately, forfeiting cross-instance batching — the reason the paper's
//! prototype restricts VM measurements to the non-TDC models.

use std::sync::Arc;

use acrobat_ir::{Arm, Callee, Expr, ExprKind, Module, Pattern, ScalarBinOp, ScalarUnOp, SyncKind};
use acrobat_tensor::Tensor;

use crate::session::{ExecCtx, RtHandle, RunSession, VmError};
use crate::value::{Closure, Value};

/// The interpreter backend.
#[derive(Debug)]
pub struct VmBackend {
    module: Arc<Module>,
}

type Env = Vec<(String, Value)>;

impl VmBackend {
    /// Creates a backend over the analyzed module.
    pub fn new(module: Arc<Module>) -> VmBackend {
        VmBackend { module }
    }

    /// Runs `@main` for one instance.
    ///
    /// # Errors
    ///
    /// Propagates runtime and input errors.
    pub fn run_instance(
        &self,
        run: &RunSession<'_>,
        rt: &mut RtHandle<'_>,
        ctx: &mut ExecCtx,
        args: Vec<Value>,
    ) -> Result<Value, VmError> {
        self.call("main", args, run, rt, ctx)
    }

    fn call(
        &self,
        name: &str,
        args: Vec<Value>,
        run: &RunSession<'_>,
        rt: &mut RtHandle<'_>,
        ctx: &mut ExecCtx,
    ) -> Result<Value, VmError> {
        // Name-based resolution on every call, as an interpreted VM does.
        let f = self
            .module
            .functions
            .get(name)
            .unwrap_or_else(|| panic!("unknown function @{name} (typeck admitted it)"));
        let mut env: Env = f.params.iter().map(|p| p.name.clone()).zip(args).collect();
        self.eval(&f.body, &mut env, run, rt, ctx)
    }

    fn lookup(env: &Env, name: &str) -> Value {
        // Linear scan from the innermost binding.
        for (n, v) in env.iter().rev() {
            if n == name {
                return v.clone();
            }
        }
        panic!("unbound variable %{name} (typeck admitted it)")
    }

    fn boxed(v: f64) -> Value {
        Value::BoxedScalar(Arc::new(Tensor::scalar(v as f32)))
    }

    fn eval(
        &self,
        expr: &Expr,
        env: &mut Env,
        run: &RunSession<'_>,
        rt: &mut RtHandle<'_>,
        ctx: &mut ExecCtx,
    ) -> Result<Value, VmError> {
        match &expr.kind {
            ExprKind::Var(name) => Ok(Self::lookup(env, name)),
            ExprKind::IntLit(v) => Ok(Self::boxed(*v as f64)),
            ExprKind::FloatLit(v) => Ok(Self::boxed(*v)),
            ExprKind::BoolLit(v) => Ok(Self::boxed(if *v { 1.0 } else { 0.0 })),
            ExprKind::PhaseBoundary => Ok(Self::boxed(0.0)),
            ExprKind::RandRange { lo, hi } => Ok(Self::boxed(ctx.rng.next_range(*lo, *hi) as f64)),
            ExprKind::Let { pat, value, body } => {
                let v = self.eval(value, env, run, rt, ctx)?;
                if run.is_phase_boundary(expr.id) {
                    run.bump_phase(ctx);
                }
                let saved = env.len();
                match pat {
                    Pattern::Var(n) => env.push((n.clone(), v)),
                    Pattern::Wildcard => {}
                    Pattern::Tuple(ns) => match v {
                        Value::Tuple(parts) => {
                            for (n, p) in ns.iter().zip(parts.iter()) {
                                env.push((n.clone(), p.clone()));
                            }
                        }
                        other => panic!("tuple pattern on {other:?}"),
                    },
                }
                let r = self.eval(body, env, run, rt, ctx)?;
                env.truncate(saved);
                Ok(r)
            }
            ExprKind::If { cond, then, els } => {
                let c = self.eval(cond, env, run, rt, ctx)?.as_bool();
                let (taken, skipped) = if c { (then, els) } else { (els, then) };
                let r = self.eval(taken, env, run, rt, ctx)?;
                run.apply_ghosts(ctx, taken.id);
                let _ = skipped;
                Ok(r)
            }
            ExprKind::Match { scrutinee, arms } => {
                let sv = self.eval(scrutinee, env, run, rt, ctx)?;
                let (tag, fields) = match &sv {
                    Value::Adt { tag, fields } => (*tag, fields.clone()),
                    other => panic!("match on non-ADT {other:?}"),
                };
                // Per-arm name→tag resolution, VM-style.
                let arm: &Arm = arms
                    .iter()
                    .find(|a| run.ctors.tag(&a.ctor) == tag)
                    .expect("exhaustive match (typeck)");
                let saved = env.len();
                for (b, f) in arm.binders.iter().zip(fields.iter()) {
                    env.push((b.clone(), f.clone()));
                }
                let r = self.eval(&arm.body, env, run, rt, ctx)?;
                env.truncate(saved);
                Ok(r)
            }
            ExprKind::Call { callee, args } => {
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(a, env, run, rt, ctx)?);
                }
                match callee {
                    Callee::Op { name, attrs } => {
                        // Relay's VM re-resolves the packed function and
                        // re-validates operator attributes on *every*
                        // invocation; mirror that dynamic dispatch cost.
                        let _prim = acrobat_ir::ops::build_prim(name, attrs)
                            .expect("typeck validated the operator");
                        Ok(run.exec_op_site(rt, ctx, expr.id, &argv))
                    }
                    Callee::Global(name) => self.call(name, argv, run, rt, ctx),
                    Callee::Ctor(name) => {
                        Ok(Value::Adt { tag: run.ctors.tag(name), fields: Arc::new(argv) })
                    }
                    Callee::Var(name) => {
                        let f = Self::lookup(env, name);
                        match f {
                            Value::Closure(c) => self.apply_closure(&c, argv, run, rt, ctx),
                            other => panic!("calling non-closure {other:?}"),
                        }
                    }
                }
            }
            ExprKind::Tuple(parts) => {
                let mut vs = Vec::with_capacity(parts.len());
                for p in parts {
                    vs.push(self.eval(p, env, run, rt, ctx)?);
                }
                Ok(Value::Tuple(Arc::new(vs)))
            }
            ExprKind::Proj { tuple, index } => {
                let t = self.eval(tuple, env, run, rt, ctx)?;
                match t {
                    Value::Tuple(parts) => Ok(parts[*index].clone()),
                    other => panic!("projection on {other:?}"),
                }
            }
            ExprKind::Lambda { params, body } => Ok(Value::Closure(Arc::new(Closure {
                params: params.iter().map(|p| p.name.clone()).collect(),
                body: Arc::new((**body).clone()),
                env: env.clone(), // capture by deep environment copy, VM-style
            }))),
            ExprKind::Map { func, list } => {
                let f = self.eval(func, env, run, rt, ctx)?;
                let l = self.eval(list, env, run, rt, ctx)?;
                let closure = match f {
                    Value::Closure(c) => c,
                    other => panic!("map over non-closure {other:?}"),
                };
                // Collect elements.
                let mut items = Vec::new();
                let mut cur = l;
                let cons = run.ctors.tag("Cons");
                let nil = run.ctors.tag("Nil");
                loop {
                    match cur {
                        Value::Adt { tag, fields } if tag == cons => {
                            items.push(fields[0].clone());
                            cur = fields[1].clone();
                        }
                        Value::Adt { tag, .. } if tag == nil => break,
                        other => panic!("map over non-list {other:?}"),
                    }
                }
                // Instance parallelism: all elements start at the same depth
                // (§4.1); afterwards the counter resumes at the maximum.
                let d0 = ctx.depth;
                let mut dmax = d0;
                let mut results = Vec::with_capacity(items.len());
                for item in items {
                    ctx.depth = d0;
                    results.push(self.apply_closure(&closure, vec![item], run, rt, ctx)?);
                    dmax = dmax.max(ctx.depth);
                }
                ctx.depth = dmax;
                // Rebuild the list.
                let mut out = Value::Adt { tag: nil, fields: Arc::new(vec![]) };
                for r in results.into_iter().rev() {
                    out = Value::Adt { tag: cons, fields: Arc::new(vec![r, out]) };
                }
                Ok(out)
            }
            ExprKind::Parallel(parts) => {
                // Sequential evaluation with concurrent-depth semantics (the
                // VM backend has no fibers).
                let d0 = ctx.depth;
                let mut dmax = d0;
                let mut vs = Vec::with_capacity(parts.len());
                for p in parts {
                    ctx.depth = d0;
                    vs.push(self.eval(p, env, run, rt, ctx)?);
                    dmax = dmax.max(ctx.depth);
                }
                ctx.depth = dmax;
                Ok(Value::Tuple(Arc::new(vs)))
            }
            ExprKind::ScalarBin { op, lhs, rhs } => {
                let a = self.eval(lhs, env, run, rt, ctx)?.as_float();
                let b = self.eval(rhs, env, run, rt, ctx)?.as_float();
                let r = match op {
                    ScalarBinOp::Add => a + b,
                    ScalarBinOp::Sub => a - b,
                    ScalarBinOp::Mul => a * b,
                    ScalarBinOp::Div => a / b,
                    ScalarBinOp::Lt => f64::from(a < b),
                    ScalarBinOp::Le => f64::from(a <= b),
                    ScalarBinOp::Gt => f64::from(a > b),
                    ScalarBinOp::Ge => f64::from(a >= b),
                    ScalarBinOp::Eq => f64::from(a == b),
                    ScalarBinOp::Ne => f64::from(a != b),
                    ScalarBinOp::And => f64::from(a != 0.0 && b != 0.0),
                    ScalarBinOp::Or => f64::from(a != 0.0 || b != 0.0),
                };
                Ok(Self::boxed(r))
            }
            ExprKind::ScalarUn { op, operand } => {
                let v = self.eval(operand, env, run, rt, ctx)?.as_float();
                let r = match op {
                    ScalarUnOp::Neg => -v,
                    ScalarUnOp::Not => f64::from(v == 0.0),
                    ScalarUnOp::ToFloat => v,
                };
                Ok(Self::boxed(r))
            }
            ExprKind::Sync { kind, tensor } => {
                let t = self.eval(tensor, env, run, rt, ctx)?;
                let r = t.as_tensor();
                let v = match kind {
                    SyncKind::Item => run.item(rt, r)?,
                    SyncKind::Sample => run.sample(rt, ctx, r)?,
                };
                Ok(Self::boxed(v))
            }
        }
    }

    fn apply_closure(
        &self,
        c: &Closure,
        args: Vec<Value>,
        run: &RunSession<'_>,
        rt: &mut RtHandle<'_>,
        ctx: &mut ExecCtx,
    ) -> Result<Value, VmError> {
        let mut env: Env = c.env.clone();
        for (p, a) in c.params.iter().zip(args) {
            env.push((p.clone(), a));
        }
        self.eval(&c.body, &mut env, run, rt, ctx)
    }
}
