//! Cross-request continuous batching (ROADMAP item 1).
//!
//! ACROBAT's auto-batching stops at the request boundary: each
//! [`ExecutionContext`](acrobat_runtime::ExecutionContext) batches only
//! within its own DFG, so two concurrent requests evaluating the same model
//! never share a kernel launch.  The [`BatchBroker`] lifts that limit: it
//! sits between [`Executable::run_with`] and the pooled contexts, queues
//! concurrent requests, and lets the first idle request thread drain every
//! compatible queued peer and execute the whole *cohort* as one merged
//! mini-batch — one DFG whose lanes span requests, one flush plan per sync
//! window, one batched launch per kernel group — then demux per-request
//! outputs and statistics back to each waiter.
//!
//! Correctness rests on two properties the earlier PRs established:
//!
//! * **Lane independence.**  Batched kernels compute each lane from that
//!   lane's operands only, so merging requests into one batch changes
//!   which *launches* execute, never the bits any lane produces.  A cohort
//!   member's outputs are therefore bit-for-bit identical to its solo run
//!   (instance RNG keys are member-relative for the same reason).
//! * **Coarse fault isolation.**  Any cohort-level failure — a member's
//!   injected fault, the strictest member deadline, a cancellation, a
//!   fiber stall — abandons the shared context to the existing quarantine
//!   path and re-runs *every* member solo.  The triggering member
//!   reproduces its genuine outcome; its peers complete with their exact
//!   solo results.  No partial cohort state is ever trusted.

use std::collections::{BTreeMap, HashMap};

use acrobat_runtime::{Deadline, RuntimeStats};
use acrobat_tensor::Tensor;
use parking_lot::{Condvar, Mutex};

use crate::driver::{Executable, RunOptions, RunResult};
use crate::session::{RunSession, VmError};
use crate::value::{InputValue, OutputValue};

/// One member of a broker cohort: the same triple [`Executable::run_with`]
/// takes, borrowed for the duration of the cohort.
#[derive(Debug)]
pub struct CohortRequest<'a> {
    /// Model parameters.  Members whose parameters differ from member 0's
    /// cannot share uploads and fall back to solo runs.
    pub params: &'a BTreeMap<String, Tensor>,
    /// Per-instance inputs, exactly as for [`Executable::run`].
    pub instances: &'a [Vec<InputValue>],
    /// Per-member run options (keys are member-relative, as in a solo run).
    pub opts: RunOptions,
}

impl Executable {
    /// Runs several requests as one *cohort*: their instances merge into a
    /// single mini-batch on one shared context, so compatible DFG windows
    /// across requests flush as shared plans and shared batched launches.
    /// Each member receives exactly its own instances' outputs plus an
    /// apportioned share of the cohort statistics, and lands in the session
    /// ledger as one run — the ledger and aggregate balance exactly as if
    /// every member had run solo.
    ///
    /// Members that cannot merge run solo instead and still get a faithful
    /// result: a parameter map differing from member 0's, a second fault
    /// plan, an already-fired cancel token, or an empty instance list.  If
    /// the merged run fails for any reason (fault, deadline, cancellation,
    /// stall), the shared context is quarantined and *every* merged member
    /// re-runs solo: the trigger observes its genuine error, the peers'
    /// outputs are bit-for-bit what their solo runs produce.
    pub fn run_cohort(&self, requests: &[CohortRequest<'_>]) -> Vec<Result<RunResult, VmError>> {
        let session = &*self.session;
        let mut out: Vec<Option<Result<RunResult, VmError>>> =
            std::iter::repeat_with(|| None).take(requests.len()).collect();
        if requests.is_empty() {
            return Vec::new();
        }

        // Classify members.  The cohort shares member 0's parameter map
        // (one upload, shared operand ValueIds — the precondition for
        // cross-request windows to batch); at most one fault plan can be
        // armed on the shared context; a pre-cancelled member would abort
        // the whole cohort at its first flush, so it is peeled out up
        // front.
        let reference = requests[0].params;
        let mut merged: Vec<usize> = Vec::new();
        let mut solo: Vec<usize> = Vec::new();
        let mut fault_seen = false;
        for (i, r) in requests.iter().enumerate() {
            if let Some(keys) = &r.opts.keys {
                if keys.len() != r.instances.len() {
                    let err: Result<RunResult, VmError> = Err(VmError::Input(format!(
                        "{} rng keys for {} instances",
                        keys.len(),
                        r.instances.len()
                    )));
                    session.record_outcome(&err);
                    out[i] = Some(err);
                    continue;
                }
            }
            let pre_cancelled = r.opts.cancel.as_ref().is_some_and(|t| t.is_cancelled());
            let second_fault = fault_seen && r.opts.fault.is_some();
            if r.instances.is_empty()
                || pre_cancelled
                || second_fault
                || !params_match(r.params, reference)
            {
                solo.push(i);
                continue;
            }
            fault_seen |= r.opts.fault.is_some();
            merged.push(i);
        }

        if !merged.is_empty() {
            // Admission is per member: every merged request claims its own
            // in-flight slot, so `max_in_flight` bounds *requests*, not
            // contexts, exactly as without the broker.
            let run = RunSession::new(session);
            let limit = run.engine().options().max_in_flight;
            let mut admitted: Vec<usize> = Vec::with_capacity(merged.len());
            let mut permits = Vec::with_capacity(merged.len());
            for &i in &merged {
                match session.try_admit(limit) {
                    Ok(p) => {
                        permits.push(p);
                        admitted.push(i);
                    }
                    Err(e) => {
                        let err: Result<RunResult, VmError> = Err(e);
                        session.record_outcome(&err);
                        out[i] = Some(err);
                    }
                }
            }
            if !admitted.is_empty() {
                let counts: Vec<usize> =
                    admitted.iter().map(|&i| requests[i].instances.len()).collect();
                let mut starts: Vec<usize> = Vec::with_capacity(counts.len());
                let mut inst_refs: Vec<&Vec<InputValue>> = Vec::new();
                let mut keys: Vec<u64> = Vec::new();
                for &i in &admitted {
                    starts.push(inst_refs.len());
                    let member_keys = requests[i].opts.keys.as_ref();
                    for (j, inst) in requests[i].instances.iter().enumerate() {
                        inst_refs.push(inst);
                        // Member-relative keys: instance j draws the same
                        // random streams it draws solo, regardless of its
                        // slot in the merged batch.
                        keys.push(member_keys.map_or(j as u64, |k| k[j]));
                    }
                }

                let mut ctx = run.acquire_context();
                if let Some(fault) = admitted.iter().find_map(|&i| requests[i].opts.fault) {
                    ctx.mem_mut().arm_fault(fault);
                }
                let budget = admitted
                    .iter()
                    .filter_map(|&i| requests[i].opts.deadline_us)
                    .fold(f64::INFINITY, f64::min);
                if budget.is_finite() {
                    // The strictest member budget gates the whole cohort: on
                    // success every member's apportioned time is below the
                    // cohort total, hence below its own budget; on a miss
                    // the solo fallback gives each member its own verdict.
                    ctx.set_deadline(Deadline::virtual_us(budget));
                }
                if let Some(token) = admitted.iter().find_map(|&i| requests[i].opts.cancel.clone())
                {
                    ctx.set_cancel(token);
                }
                ctx.set_instance_partition(starts);

                let (result, ctx) = self.run_pinned(
                    session,
                    &run,
                    ctx,
                    requests[admitted[0]].params,
                    &inst_refs,
                    &keys,
                );
                match result {
                    Ok((outputs, stats)) => {
                        let member_stats = demux_stats(&stats, &counts);
                        run.finish_cohort(ctx, &member_stats);
                        let mut outputs = outputs.into_iter();
                        for (k, &i) in admitted.iter().enumerate() {
                            let member: Vec<OutputValue> =
                                outputs.by_ref().take(counts[k]).collect();
                            let r: Result<RunResult, VmError> =
                                Ok(RunResult { outputs: member, stats: member_stats[k] });
                            session.record_outcome(&r);
                            out[i] = Some(r);
                        }
                    }
                    Err(_) => {
                        // Coarse isolation: quarantine the shared context,
                        // release the cohort's admission slots, and peel
                        // every member out to a solo re-run.  The cohort
                        // attempt itself is not recorded — each request
                        // lands in exactly one ledger bucket via its re-run.
                        run.abandon(ctx);
                        drop(permits);
                        for &i in &admitted {
                            out[i] = Some(self.run_direct(
                                requests[i].params,
                                requests[i].instances,
                                &requests[i].opts,
                            ));
                        }
                    }
                }
            }
        }

        for &i in &solo {
            out[i] =
                Some(self.run_direct(requests[i].params, requests[i].instances, &requests[i].opts));
        }
        out.into_iter().map(|r| r.expect("every cohort member resolved")).collect()
    }

    /// Queue-level broker counters, when cross-request batching is enabled
    /// (`RuntimeOptions::broker`).
    pub fn broker_stats(&self) -> Option<BrokerStats> {
        self.broker().map(BatchBroker::stats)
    }
}

fn params_match(a: &BTreeMap<String, Tensor>, b: &BTreeMap<String, Tensor>) -> bool {
    std::ptr::eq(a, b) || a == b
}

/// Splits cohort statistics into per-member shares weighted by instance
/// count.  Sums reproduce the cohort totals exactly: integer counters use
/// largest-remainder apportionment, time accounts give the last member the
/// rounding residue.
fn demux_stats(total: &RuntimeStats, counts: &[usize]) -> Vec<RuntimeStats> {
    let n = counts.len();
    let weight: u64 = counts.iter().map(|&c| c as u64).sum();
    let mut out = vec![RuntimeStats::default(); n];
    macro_rules! split_f {
        ($($field:ident),* $(,)?) => {$(
            let mut acc = 0.0_f64;
            for i in 0..n {
                let share = if i + 1 == n {
                    total.$field - acc
                } else if weight == 0 {
                    0.0
                } else {
                    total.$field * counts[i] as f64 / weight as f64
                };
                out[i].$field = share;
                acc += share;
            }
        )*};
    }
    macro_rules! split_u {
        ($($field:ident),* $(,)?) => {$(
            let shares = apportion(total.$field, counts);
            for i in 0..n {
                out[i].$field = shares[i];
            }
        )*};
    }
    split_f!(
        dfg_construction_us,
        scheduling_us,
        memcpy_us,
        kernel_time_us,
        cuda_api_us,
        fiber_us,
        overlap_saved_us,
        retry_backoff_us,
        plan_sig_us,
        host_wall_us,
        exec_wall_us,
        program_host_us,
    );
    split_u!(
        nodes,
        kernel_launches,
        gather_copies,
        gather_bytes,
        contiguous_hits,
        memcpy_ops,
        memcpy_bytes,
        flops,
        flushes,
        aborted_flushes,
        fiber_switches,
        retries,
        downshifts,
        plan_cache_hits,
        plan_cache_misses,
        plan_cache_evictions,
        shared_flushes,
        solo_flushes,
        backend_compiles,
        backend_hits,
        backend_interp_falls,
    );
    for s in &mut out {
        // Peak device residency was genuinely shared: every member saw it
        // (the aggregate merges peaks by max, so the cohort peak survives).
        s.device_peak_elements = total.device_peak_elements;
    }
    // The signature chain is an XOR digest, not a quantity — it cannot be
    // apportioned.  Member 0 carries it whole, so the XOR across members
    // equals the cohort digest.
    out[0].plan_sig_chain = total.plan_sig_chain;
    out
}

/// Largest-remainder apportionment of `total` by `counts`: shares sum to
/// `total` exactly and each is within one of its proportional value.  Ties
/// in the fractional remainder break toward the lower index.
fn apportion(total: u64, counts: &[usize]) -> Vec<u64> {
    let weight: u128 = counts.iter().map(|&c| c as u128).sum();
    if weight == 0 {
        let mut shares = vec![0; counts.len()];
        shares[0] = total;
        return shares;
    }
    let mut shares: Vec<u64> =
        counts.iter().map(|&c| (u128::from(total) * c as u128 / weight) as u64).collect();
    let assigned: u64 = shares.iter().sum();
    let mut order: Vec<usize> = (0..counts.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(u128::from(total) * counts[i] as u128 % weight), i));
    for &i in order.iter().take((total - assigned) as usize) {
        shares[i] += 1;
    }
    shares
}

/// Queue-level dispatch counters for one [`BatchBroker`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BrokerStats {
    /// Cohort dispatches executed (each drains the whole compatible queue).
    pub dispatches: u64,
    /// Requests dispatched in a cohort of two or more (the requests that
    /// actually shared a context with a peer).
    pub merged_requests: u64,
    /// Cross-request batch-size histogram: cohort size → dispatches of that
    /// size.
    pub cohort_sizes: BTreeMap<usize, u64>,
}

/// The continuous-batching queue for one [`Executable`].
///
/// There is no dedicated broker thread: the first submitter to find the
/// queue idle becomes the dispatcher, drains every queued request sharing
/// its parameter map (by address — concurrently queued maps are all alive
/// and borrowed, so equal addresses mean the very same map), executes the
/// cohort via [`Executable::run_cohort`], publishes peer results and wakes
/// the waiters.  Requests arriving mid-dispatch queue up for the next
/// epoch — classic continuous batching, with the flush epoch as the merge
/// grain.
pub(crate) struct BatchBroker {
    state: Mutex<BrokerState>,
    wake: Condvar,
    stats: Mutex<BrokerStats>,
}

#[derive(Default)]
struct BrokerState {
    next_id: u64,
    queue: Vec<Pending>,
    results: HashMap<u64, Result<RunResult, VmError>>,
    dispatching: bool,
}

struct Pending {
    id: u64,
    params_addr: usize,
    instances: Vec<Vec<InputValue>>,
    opts: RunOptions,
}

impl BatchBroker {
    pub(crate) fn new() -> BatchBroker {
        BatchBroker {
            state: Mutex::new(BrokerState::default()),
            wake: Condvar::new(),
            stats: Mutex::new(BrokerStats::default()),
        }
    }

    pub(crate) fn stats(&self) -> BrokerStats {
        self.stats.lock().clone()
    }

    /// Queues one request and blocks until its result is available —
    /// either computed by this thread (as the dispatcher of a cohort that
    /// includes it) or published by a peer's dispatch.
    pub(crate) fn submit(
        &self,
        exe: &Executable,
        params: &BTreeMap<String, Tensor>,
        instances: &[Vec<InputValue>],
        opts: &RunOptions,
    ) -> Result<RunResult, VmError> {
        let params_addr = params as *const BTreeMap<String, Tensor> as usize;
        let mut st = self.state.lock();
        let id = st.next_id;
        st.next_id += 1;
        st.queue.push(Pending {
            id,
            params_addr,
            instances: instances.to_vec(),
            opts: opts.clone(),
        });
        loop {
            if let Some(result) = st.results.remove(&id) {
                return result;
            }
            // Dispatch only while our own entry is still queued: if a peer
            // drained it, the result is on its way — wait for it instead.
            let queued = st.queue.iter().any(|p| p.id == id);
            if !st.dispatching && queued {
                let mut cohort = Vec::new();
                st.queue.retain_mut(|p| {
                    if p.params_addr == params_addr {
                        cohort.push(Pending {
                            id: p.id,
                            params_addr: p.params_addr,
                            instances: std::mem::take(&mut p.instances),
                            opts: p.opts.clone(),
                        });
                        false
                    } else {
                        true
                    }
                });
                st.dispatching = true;
                drop(st);

                {
                    let mut bs = self.stats.lock();
                    bs.dispatches += 1;
                    if cohort.len() >= 2 {
                        bs.merged_requests += cohort.len() as u64;
                    }
                    *bs.cohort_sizes.entry(cohort.len()).or_default() += 1;
                }
                let cohort_requests: Vec<CohortRequest<'_>> = cohort
                    .iter()
                    .map(|p| CohortRequest {
                        params,
                        instances: &p.instances,
                        opts: p.opts.clone(),
                    })
                    .collect();
                let mut results = exe.run_cohort(&cohort_requests);

                st = self.state.lock();
                let mut own = None;
                for (p, r) in cohort.into_iter().zip(results.drain(..)) {
                    if p.id == id {
                        own = Some(r);
                    } else {
                        st.results.insert(p.id, r);
                    }
                }
                st.dispatching = false;
                self.wake.notify_all();
                return own.expect("dispatcher drained its own entry");
            }
            self.wake.wait(&mut st);
        }
    }
}
