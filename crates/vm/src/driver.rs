//! Batch execution driver: runs a compiled model over a mini-batch.
//!
//! The driver owns the full lifecycle the paper's Fig. 1 runtime half
//! describes: upload weights and instance inputs (batched transfers),
//! execute the unbatched program for every instance — sequentially when the
//! model has no tensor-dependent control flow, concurrently on fibers when
//! it does (§4.2) — flushing the DFG at sync points, then drain the final
//! DFG and download the results.
//!
//! Each `run` call is self-contained: it pins the session's current
//! [`Engine`](acrobat_runtime::Engine), acquires a private
//! [`ExecutionContext`] (pooled across mini-batches), and executes without
//! taking any shared lock on the hot path — so any number of mini-batches
//! may run concurrently against one [`Executable`].

use std::collections::BTreeMap;
use std::sync::Arc;

use acrobat_ir::{ExprKind, ParamKind};
use acrobat_runtime::{CancelToken, Deadline, Engine, ExecutionContext, RuntimeStats};
use acrobat_tensor::{FaultPlan, Tensor, TensorError};

use crate::aot::AotBackend;
use crate::broker::BatchBroker;
use crate::interp::VmBackend;
use crate::session::{ExecCtx, RtHandle, RunSession, Session, VmError};
use crate::value::{InputValue, OutputValue, TensorRef, Value};

/// Which execution backend to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Relay-VM-style tree-walking interpreter (the §E.2 baseline).
    Vm,
    /// AOT-compiled execution (ACROBAT's default).
    Aot,
}

enum BackendImpl {
    Vm(VmBackend),
    Aot(AotBackend),
}

/// A ready-to-run model: session plus backend.
pub struct Executable {
    /// The shared session.
    pub session: Arc<Session>,
    backend: BackendImpl,
    /// Cross-request continuous batching queue
    /// ([`crate::broker::BatchBroker`]); present exactly when the engine
    /// was compiled with `RuntimeOptions::broker`.
    broker: Option<BatchBroker>,
}

impl std::fmt::Debug for Executable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executable")
            .field(
                "backend",
                &match self.backend {
                    BackendImpl::Vm(_) => "vm",
                    BackendImpl::Aot(_) => "aot",
                },
            )
            .field("broker", &self.broker.is_some())
            .finish()
    }
}

/// Result of one mini-batch run.
#[derive(Debug)]
pub struct RunResult {
    /// Per-instance outputs of `@main`.
    pub outputs: Vec<OutputValue>,
    /// Runtime statistics for the batch.
    pub stats: RuntimeStats,
}

/// Per-run options (all default to "off").
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Per-instance pseudo-random-stream keys (§E.1).  When absent, an
    /// instance is keyed by its position in the batch; providing stable keys
    /// makes an instance's stream independent of which slot (or thread) it
    /// is submitted on.
    pub keys: Option<Vec<u64>>,
    /// A deterministic fault to inject into this run's device memory
    /// (testing; see `acrobat_tensor::FaultPlan`).  The fault is scoped to
    /// this run's context only.
    pub fault: Option<FaultPlan>,
    /// Virtual deadline budget in modeled microseconds
    /// ([`Deadline::Virtual`]).  Deterministic: the same run with the same
    /// budget always spends the same modeled time, so it either always or
    /// never misses.
    pub deadline_us: Option<f64>,
    /// Cooperative cancellation token; polled at flush boundaries and
    /// between batched launches.
    pub cancel: Option<CancelToken>,
}

/// Whether the module contains tensor-dependent control flow.
pub fn module_has_sync(module: &acrobat_ir::Module) -> bool {
    module.functions.values().any(|f| {
        let mut found = false;
        acrobat_ir::ast::visit_exprs(&f.body, &mut |e| {
            if matches!(e.kind, ExprKind::Sync { .. }) {
                found = true;
            }
        });
        found
    })
}

impl Executable {
    /// Builds an executable over a compiled engine.
    ///
    /// Fiber mode is enabled automatically for the AOT backend when the
    /// model has tensor-dependent control flow; the VM backend always runs
    /// sequentially (as the paper's Relay-VM baseline does).
    ///
    /// # Errors
    ///
    /// Propagates AOT lowering errors.
    pub fn new(engine: Engine, kind: BackendKind, seed: u64) -> Result<Executable, VmError> {
        let engine = Arc::new(engine);
        let analysis = engine.analysis().clone();
        let fiber_mode = kind == BackendKind::Aot && module_has_sync(&analysis.module);
        let broker = engine.options().broker.then(BatchBroker::new);
        let session = Session::new(engine, seed, fiber_mode);
        let backend = match kind {
            BackendKind::Vm => BackendImpl::Vm(VmBackend::new(Arc::new(analysis.module.clone()))),
            BackendKind::Aot => BackendImpl::Aot(AotBackend::compile(&analysis.module, &session)?),
        };
        Ok(Executable { session: Arc::new(session), backend, broker })
    }

    /// The continuous-batching queue, when enabled.
    pub(crate) fn broker(&self) -> Option<&BatchBroker> {
        self.broker.as_ref()
    }

    /// Runs one mini-batch.
    ///
    /// `params` binds every `$`-parameter of `@main` by name; `instances`
    /// provides, per instance, the `%`-parameter values in declaration
    /// order.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Input`] for missing/mismatched bindings and
    /// propagates runtime errors (including simulated device OOM).
    pub fn run(
        &self,
        params: &BTreeMap<String, Tensor>,
        instances: &[Vec<InputValue>],
    ) -> Result<RunResult, VmError> {
        self.run_with(params, instances, &RunOptions::default())
    }

    /// Runs one mini-batch with explicit [`RunOptions`].
    ///
    /// # Errors
    ///
    /// As [`Executable::run`], plus [`VmError::Input`] when `opts.keys` has
    /// the wrong arity.
    pub fn run_with(
        &self,
        params: &BTreeMap<String, Tensor>,
        instances: &[Vec<InputValue>],
        opts: &RunOptions,
    ) -> Result<RunResult, VmError> {
        if let Some(broker) = &self.broker {
            return broker.submit(self, params, instances, opts);
        }
        self.run_direct(params, instances, opts)
    }

    /// Runs one mini-batch bypassing the broker queue (the pre-broker
    /// request path).  The broker itself uses this for members that cannot
    /// merge and for the solo fallback after a cohort failure — routing
    /// those through `run_with` would re-enter the queue and deadlock the
    /// dispatching thread.
    pub(crate) fn run_direct(
        &self,
        params: &BTreeMap<String, Tensor>,
        instances: &[Vec<InputValue>],
        opts: &RunOptions,
    ) -> Result<RunResult, VmError> {
        let session = &*self.session;
        let result = self.run_request(session, params, instances, opts);
        session.record_outcome(&result);
        result
    }

    /// The full request lifecycle: admission, context acquisition and
    /// arming, execution, and the completed/abandoned split.  Every exit
    /// path either merges the run (success) or quarantines its context
    /// without merging (failure) — a failed run never contributes
    /// statistics to the session aggregate.
    fn run_request(
        &self,
        session: &Session,
        params: &BTreeMap<String, Tensor>,
        instances: &[Vec<InputValue>],
        opts: &RunOptions,
    ) -> Result<RunResult, VmError> {
        if let Some(keys) = &opts.keys {
            if keys.len() != instances.len() {
                return Err(VmError::Input(format!(
                    "{} rng keys for {} instances",
                    keys.len(),
                    instances.len()
                )));
            }
        }
        let keys: Vec<u64> =
            (0..instances.len()).map(|i| opts.keys.as_ref().map_or(i as u64, |k| k[i])).collect();

        // Pin the engine and pass the admission gate before acquiring any
        // per-run resources; shed requests touch nothing but a counter.
        let run = RunSession::new(session);
        let _permit = session.try_admit(run.engine().options().max_in_flight)?;

        // Take a private execution context and arm its lifecycle state;
        // everything below touches only run-local state.
        let mut ctx = run.acquire_context();
        if let Some(fault) = opts.fault {
            ctx.mem_mut().arm_fault(fault);
        }
        if let Some(budget_us) = opts.deadline_us {
            ctx.set_deadline(Deadline::virtual_us(budget_us));
        }
        if let Some(token) = &opts.cancel {
            ctx.set_cancel(token.clone());
        }

        let inst_refs: Vec<&Vec<InputValue>> = instances.iter().collect();
        let (result, ctx) = self.run_pinned(session, &run, ctx, params, &inst_refs, &keys);
        match result {
            Ok((outputs, stats)) => {
                // Merge into the session aggregate and pool the context.
                run.finish(ctx, &stats);
                Ok(RunResult { outputs, stats })
            }
            Err(e) => {
                run.abandon(ctx);
                Err(e)
            }
        }
    }

    /// Executes one admitted mini-batch on its pinned engine.  Returns the
    /// context alongside the result so the caller can route it to the pool
    /// (merge on success, quarantine on failure) from every exit path.
    ///
    /// `instances` is a slice of references so a broker cohort
    /// ([`crate::broker`]) can concatenate its members' instance lists
    /// without cloning any tensors.
    #[allow(clippy::too_many_lines)]
    pub(crate) fn run_pinned(
        &self,
        session: &Session,
        run: &RunSession<'_>,
        mut ctx: ExecutionContext,
        params: &BTreeMap<String, Tensor>,
        instances: &[&Vec<InputValue>],
        keys: &[u64],
    ) -> (Result<(Vec<OutputValue>, RuntimeStats), VmError>, ExecutionContext) {
        let main = session.analysis.module.functions.get("main").expect("main exists");

        // Upload weights (outside the per-batch accounting, as weights
        // persist across mini-batches in a serving system).
        let mut param_values: BTreeMap<String, Value> = BTreeMap::new();
        for p in &main.params {
            if p.kind == ParamKind::Model {
                let host = match params.get(&p.name) {
                    Some(h) => h,
                    None => {
                        let e = VmError::Input(format!("missing model parameter ${}", p.name));
                        return (Err(e), ctx);
                    }
                };
                let dev = match ctx.mem_mut().upload(host) {
                    Ok(d) => d,
                    Err(e) => return (Err(e.into()), ctx),
                };
                let vid = ctx.ready_value(dev);
                param_values.insert(p.name.clone(), Value::Tensor(TensorRef::ready(vid)));
            }
        }

        // Upload all instance input tensors as one batched transfer.
        let input_count = main.params.iter().filter(|p| p.kind == ParamKind::Input).count();
        let mut all_tensors: Vec<&Tensor> = Vec::new();
        for (i, inst) in instances.iter().enumerate() {
            if inst.len() != input_count {
                let e = VmError::Input(format!(
                    "instance {i} provides {} inputs, @main expects {input_count}",
                    inst.len()
                ));
                return (Err(e), ctx);
            }
            for v in inst.iter() {
                v.tensors(&mut all_tensors);
            }
        }
        let mut ids = match ctx.upload_inputs(&all_tensors) {
            Ok(v) => v.into_iter(),
            Err(e) => return (Err(e.into()), ctx),
        };
        let mut instance_args: Vec<Vec<Value>> = Vec::with_capacity(instances.len());
        for inst in instances {
            let mut args = Vec::with_capacity(main.params.len());
            let mut inputs = inst.iter();
            for p in &main.params {
                match p.kind {
                    ParamKind::Model => args.push(param_values[&p.name].clone()),
                    ParamKind::Input => {
                        let iv = inputs.next().expect("arity checked");
                        args.push(convert_input(iv, session, &mut ids));
                    }
                }
            }
            instance_args.push(args);
        }

        // Execute all instances.
        let exec_start = std::time::Instant::now();
        let mut results: Vec<Value> = Vec::with_capacity(instance_args.len());
        // Model recursion depth is input-dependent (long sequences, deep
        // trees), so execution threads get a generous stack — the AOT-to-C++
        // path in the paper likewise relies on native recursion.
        const FIBER_STACK: usize = 64 << 20;
        if session.fiber_mode {
            // The run's instance fibers share this run's context behind a
            // run-local mutex; other concurrent runs have their own.
            let stall = {
                let ms = run.engine().options().drive_timeout_ms;
                (ms != 0).then(|| std::time::Duration::from_millis(ms))
            };
            // Fiber interleaving is nondeterministic, so window signatures
            // must be order-invariant: switch the DFG to lane-canonical
            // signing ([`acrobat_runtime::Dfg::set_lane_canonical`]) before
            // any fiber appends.  Sequential runs keep the cheaper
            // arrival-order chain (their arrival order is deterministic).
            ctx.set_lane_canonical(true);
            let cell = parking_lot::Mutex::new(ctx);
            let slots: Vec<parking_lot::Mutex<Option<Result<Value, VmError>>>> =
                instance_args.iter().map(|_| parking_lot::Mutex::new(None)).collect();
            let mut stalled = None;
            std::thread::scope(|scope| {
                for (i, args) in instance_args.into_iter().enumerate() {
                    run.hub.register();
                    let key = keys[i];
                    let slot = &slots[i];
                    let backend = &self.backend;
                    let cell = &cell;
                    std::thread::Builder::new()
                        .stack_size(FIBER_STACK)
                        .spawn_scoped(scope, move || {
                            let mut ectx = ExecCtx::new(i, key, session.seed, session.hoist_base);
                            let mut rt = RtHandle::Shared(cell);
                            let r = match backend {
                                BackendImpl::Vm(b) => b.run_instance(run, &mut rt, &mut ectx, args),
                                BackendImpl::Aot(b) => {
                                    b.run_instance(run, &mut rt, &mut ectx, args)
                                }
                            };
                            *slot.lock() = Some(r);
                            run.hub.finish();
                        })
                        .expect("spawn fiber");
                }
                let drive = run.hub.drive_timeout(
                    || {
                        let mut rt = cell.lock();
                        if let Err(e) = rt.flush() {
                            drop(rt);
                            run.poison(e);
                        }
                    },
                    stall,
                );
                if let Err(timeout) = drive {
                    // The watchdog fired: cancel the hub so parked fibers
                    // drain and poison the run so running fibers fail fast
                    // at their next sync, then let the scope join them.
                    run.poison(TensorError::Cancelled);
                    run.hub.cancel();
                    stalled = Some(timeout);
                }
            });
            ctx = cell.into_inner();
            if let Some(timeout) = stalled {
                return (Err(VmError::DriveTimeout(timeout)), ctx);
            }
            for slot in slots {
                match slot.into_inner().expect("fiber wrote its result") {
                    Ok(v) => results.push(v),
                    Err(e) => return (Err(e), ctx),
                }
            }
        } else {
            let backend = &self.backend;
            let (sequential, returned) = std::thread::scope(|scope| {
                std::thread::Builder::new()
                    .stack_size(FIBER_STACK)
                    .spawn_scoped(scope, move || {
                        let mut ctx = ctx;
                        let mut out = Vec::with_capacity(instance_args.len());
                        for (i, args) in instance_args.into_iter().enumerate() {
                            let mut ectx =
                                ExecCtx::new(i, keys[i], session.seed, session.hoist_base);
                            let mut rt = RtHandle::Own(&mut ctx);
                            let r = match backend {
                                BackendImpl::Vm(b) => b.run_instance(run, &mut rt, &mut ectx, args),
                                BackendImpl::Aot(b) => {
                                    b.run_instance(run, &mut rt, &mut ectx, args)
                                }
                            };
                            match r {
                                Ok(v) => out.push(v),
                                Err(e) => return (Err(e), ctx),
                            }
                        }
                        (Ok(out), ctx)
                    })
                    .expect("spawn executor")
                    .join()
                    .expect("executor panicked")
            });
            ctx = returned;
            match sequential {
                Ok(out) => results = out,
                Err(e) => return (Err(e), ctx),
            }
        }
        // Drain remaining work.  The hub is per-run, so its switch count is
        // exactly this run's fiber activity.
        if let Err(e) = ctx.flush() {
            return (Err(e.into()), ctx);
        }
        ctx.charge_fiber_switches(run.hub.switch_count());
        let program_host_us = exec_start.elapsed().as_secs_f64() * 1e6;

        // Download outputs.
        let mut outputs = Vec::with_capacity(results.len());
        for v in results {
            match convert_output(&v, session, &mut ctx) {
                Ok(o) => outputs.push(o),
                Err(e) => return (Err(e), ctx),
            }
        }

        let mut stats = *ctx.stats();
        // Program host time excludes time spent inside flush (measured
        // separately as host_wall_us).
        stats.program_host_us = (program_host_us - stats.host_wall_us).max(0.0);
        (Ok((outputs, stats)), ctx)
    }
}

fn convert_input(
    v: &InputValue,
    session: &Session,
    ids: &mut std::vec::IntoIter<acrobat_runtime::ValueId>,
) -> Value {
    match v {
        InputValue::Tensor(_) => {
            Value::Tensor(TensorRef::ready(ids.next().expect("uploaded tensor id")))
        }
        InputValue::Int(x) => Value::Int(*x),
        InputValue::Float(x) => Value::Float(*x),
        InputValue::Bool(x) => Value::Bool(*x),
        InputValue::Tuple(parts) => {
            Value::Tuple(Arc::new(parts.iter().map(|p| convert_input(p, session, ids)).collect()))
        }
        InputValue::Adt { ctor, fields } => Value::Adt {
            tag: session.ctors.tag(ctor),
            fields: Arc::new(fields.iter().map(|f| convert_input(f, session, ids)).collect()),
        },
    }
}

fn convert_output(
    v: &Value,
    session: &Session,
    ctx: &mut ExecutionContext,
) -> Result<OutputValue, VmError> {
    Ok(match v {
        Value::Tensor(r) => {
            let vid = r.get().ok_or_else(|| VmError::Input("dangling tensor in output".into()))?;
            OutputValue::Tensor(ctx.download(vid)?)
        }
        Value::Int(x) => OutputValue::Int(*x),
        Value::Float(x) => OutputValue::Float(*x),
        Value::Bool(x) => OutputValue::Bool(*x),
        Value::BoxedScalar(t) => OutputValue::Float(t.item()? as f64),
        Value::Tuple(parts) => OutputValue::Tuple(
            parts.iter().map(|p| convert_output(p, session, ctx)).collect::<Result<_, _>>()?,
        ),
        Value::Adt { tag, fields } => OutputValue::Adt {
            ctor: session.ctors.name(*tag).to_string(),
            fields: fields
                .iter()
                .map(|f| convert_output(f, session, ctx))
                .collect::<Result<_, _>>()?,
        },
        Value::Closure(_) => {
            return Err(VmError::Input("closure escaped as a model output".into()))
        }
    })
}
