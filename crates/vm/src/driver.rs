//! Batch execution driver: runs a compiled model over a mini-batch.
//!
//! The driver owns the full lifecycle the paper's Fig. 1 runtime half
//! describes: upload weights and instance inputs (batched transfers),
//! execute the unbatched program for every instance — sequentially when the
//! model has no tensor-dependent control flow, concurrently on fibers when
//! it does (§4.2) — flushing the DFG at sync points, then drain the final
//! DFG and download the results.

use std::collections::BTreeMap;
use std::sync::Arc;

use acrobat_analysis::AnalysisResult;
use acrobat_ir::{ExprKind, ParamKind};
use acrobat_runtime::{Runtime, RuntimeStats};
use acrobat_tensor::Tensor;

use crate::aot::AotBackend;
use crate::interp::VmBackend;
use crate::session::{ExecCtx, Session, VmError};
use crate::value::{InputValue, OutputValue, TensorRef, Value};

/// Which execution backend to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Relay-VM-style tree-walking interpreter (the §E.2 baseline).
    Vm,
    /// AOT-compiled execution (ACROBAT's default).
    Aot,
}

enum BackendImpl {
    Vm(VmBackend),
    Aot(AotBackend),
}

/// A ready-to-run model: session plus backend.
pub struct Executable {
    /// The shared session.
    pub session: Arc<Session>,
    backend: BackendImpl,
}

impl std::fmt::Debug for Executable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executable")
            .field(
                "backend",
                &match self.backend {
                    BackendImpl::Vm(_) => "vm",
                    BackendImpl::Aot(_) => "aot",
                },
            )
            .finish()
    }
}

/// Result of one mini-batch run.
#[derive(Debug)]
pub struct RunResult {
    /// Per-instance outputs of `@main`.
    pub outputs: Vec<OutputValue>,
    /// Runtime statistics for the batch.
    pub stats: RuntimeStats,
}

/// Whether the module contains tensor-dependent control flow.
pub fn module_has_sync(module: &acrobat_ir::Module) -> bool {
    module.functions.values().any(|f| {
        let mut found = false;
        acrobat_ir::ast::visit_exprs(&f.body, &mut |e| {
            if matches!(e.kind, ExprKind::Sync { .. }) {
                found = true;
            }
        });
        found
    })
}

impl Executable {
    /// Builds an executable from analysis results and a configured runtime.
    ///
    /// Fiber mode is enabled automatically for the AOT backend when the
    /// model has tensor-dependent control flow; the VM backend always runs
    /// sequentially (as the paper's Relay-VM baseline does).
    ///
    /// # Errors
    ///
    /// Propagates AOT lowering errors.
    pub fn new(
        analysis: Arc<AnalysisResult>,
        runtime: Runtime,
        kind: BackendKind,
        seed: u64,
    ) -> Result<Executable, VmError> {
        let fiber_mode = kind == BackendKind::Aot && module_has_sync(&analysis.module);
        let session = Session::new(analysis.clone(), runtime, seed, fiber_mode);
        let backend = match kind {
            BackendKind::Vm => BackendImpl::Vm(VmBackend::new(Arc::new(analysis.module.clone()))),
            BackendKind::Aot => BackendImpl::Aot(AotBackend::compile(&analysis.module, &session)?),
        };
        Ok(Executable { session: Arc::new(session), backend })
    }

    /// Runs one mini-batch.
    ///
    /// `params` binds every `$`-parameter of `@main` by name; `instances`
    /// provides, per instance, the `%`-parameter values in declaration
    /// order.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Input`] for missing/mismatched bindings and
    /// propagates runtime errors (including simulated device OOM).
    pub fn run(
        &self,
        params: &BTreeMap<String, Tensor>,
        instances: &[Vec<InputValue>],
    ) -> Result<RunResult, VmError> {
        let session = &*self.session;
        let main = session.analysis.module.functions.get("main").expect("main exists");

        // Reset and upload weights (outside the per-batch accounting, as
        // weights persist across mini-batches in a serving system).
        let mut param_values: BTreeMap<String, Value> = BTreeMap::new();
        {
            let mut rt = session.runtime.lock();
            rt.reset();
            for p in &main.params {
                if p.kind == ParamKind::Model {
                    let host = params.get(&p.name).ok_or_else(|| {
                        VmError::Input(format!("missing model parameter ${}", p.name))
                    })?;
                    let dev = rt.mem_mut().upload(host)?;
                    let vid = rt.ready_value(dev);
                    param_values.insert(p.name.clone(), Value::Tensor(TensorRef::ready(vid)));
                }
            }
        }

        // Upload all instance input tensors as one batched transfer.
        let input_count = main.params.iter().filter(|p| p.kind == ParamKind::Input).count();
        let mut all_tensors: Vec<&Tensor> = Vec::new();
        for (i, inst) in instances.iter().enumerate() {
            if inst.len() != input_count {
                return Err(VmError::Input(format!(
                    "instance {i} provides {} inputs, @main expects {input_count}",
                    inst.len()
                )));
            }
            for v in inst {
                v.tensors(&mut all_tensors);
            }
        }
        let mut ids = {
            let mut rt = session.runtime.lock();
            rt.upload_inputs(&all_tensors)?.into_iter()
        };
        let mut instance_args: Vec<Vec<Value>> = Vec::with_capacity(instances.len());
        for inst in instances {
            let mut args = Vec::with_capacity(main.params.len());
            let mut inputs = inst.iter();
            for p in &main.params {
                match p.kind {
                    ParamKind::Model => args.push(param_values[&p.name].clone()),
                    ParamKind::Input => {
                        let iv = inputs.next().expect("arity checked");
                        args.push(convert_input(iv, session, &mut ids));
                    }
                }
            }
            instance_args.push(args);
        }

        // Execute all instances.
        let exec_start = std::time::Instant::now();
        let switches_before = session.hub.switch_count();
        let mut results: Vec<Value> = Vec::with_capacity(instance_args.len());
        // Model recursion depth is input-dependent (long sequences, deep
        // trees), so execution threads get a generous stack — the AOT-to-C++
        // path in the paper likewise relies on native recursion.
        const FIBER_STACK: usize = 64 << 20;
        if session.fiber_mode {
            let slots: Vec<parking_lot::Mutex<Option<Result<Value, VmError>>>> =
                instance_args.iter().map(|_| parking_lot::Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for (i, args) in instance_args.into_iter().enumerate() {
                    session.hub.register();
                    let slot = &slots[i];
                    let backend = &self.backend;
                    std::thread::Builder::new()
                        .stack_size(FIBER_STACK)
                        .spawn_scoped(scope, move || {
                            let mut ctx = ExecCtx::new(i, session.seed, session.hoist_base);
                            let r = match backend {
                                BackendImpl::Vm(b) => b.run_instance(session, &mut ctx, args),
                                BackendImpl::Aot(b) => b.run_instance(session, &mut ctx, args),
                            };
                            *slot.lock() = Some(r);
                            session.hub.finish();
                        })
                        .expect("spawn fiber");
                }
                session.hub.drive(|| {
                    let mut rt = session.runtime.lock();
                    if let Err(e) = rt.flush() {
                        drop(rt);
                        session.poison(e.to_string());
                    }
                });
            });
            for slot in slots {
                let r = slot.into_inner().expect("fiber wrote its result")?;
                results.push(r);
            }
        } else {
            let backend = &self.backend;
            let sequential = std::thread::scope(|scope| {
                std::thread::Builder::new()
                    .stack_size(FIBER_STACK)
                    .spawn_scoped(scope, move || -> Result<Vec<Value>, VmError> {
                        let mut out = Vec::with_capacity(instance_args.len());
                        for (i, args) in instance_args.into_iter().enumerate() {
                            let mut ctx = ExecCtx::new(i, session.seed, session.hoist_base);
                            let r = match backend {
                                BackendImpl::Vm(b) => b.run_instance(session, &mut ctx, args),
                                BackendImpl::Aot(b) => b.run_instance(session, &mut ctx, args),
                            }?;
                            out.push(r);
                        }
                        Ok(out)
                    })
                    .expect("spawn executor")
                    .join()
                    .expect("executor panicked")
            })?;
            results = sequential;
        }
        // Drain remaining work.
        {
            let mut rt = session.runtime.lock();
            rt.flush()?;
            rt.charge_fiber_switches(session.hub.switch_count() - switches_before);
        }
        let program_host_us = exec_start.elapsed().as_secs_f64() * 1e6;

        // Download outputs.
        let mut outputs = Vec::with_capacity(results.len());
        for v in results {
            outputs.push(convert_output(&v, session)?);
        }

        let mut stats = {
            let rt = session.runtime.lock();
            *rt.stats()
        };
        // Program host time excludes time spent inside flush (measured
        // separately as host_wall_us).
        stats.program_host_us = (program_host_us - stats.host_wall_us).max(0.0);
        Ok(RunResult { outputs, stats })
    }
}

fn convert_input(
    v: &InputValue,
    session: &Session,
    ids: &mut std::vec::IntoIter<acrobat_runtime::ValueId>,
) -> Value {
    match v {
        InputValue::Tensor(_) => {
            Value::Tensor(TensorRef::ready(ids.next().expect("uploaded tensor id")))
        }
        InputValue::Int(x) => Value::Int(*x),
        InputValue::Float(x) => Value::Float(*x),
        InputValue::Bool(x) => Value::Bool(*x),
        InputValue::Tuple(parts) => {
            Value::Tuple(Arc::new(parts.iter().map(|p| convert_input(p, session, ids)).collect()))
        }
        InputValue::Adt { ctor, fields } => Value::Adt {
            tag: session.ctors.tag(ctor),
            fields: Arc::new(fields.iter().map(|f| convert_input(f, session, ids)).collect()),
        },
    }
}

fn convert_output(v: &Value, session: &Session) -> Result<OutputValue, VmError> {
    Ok(match v {
        Value::Tensor(r) => {
            let vid = r.get().ok_or_else(|| VmError::Input("dangling tensor in output".into()))?;
            let mut rt = session.runtime.lock();
            OutputValue::Tensor(rt.download(vid)?)
        }
        Value::Int(x) => OutputValue::Int(*x),
        Value::Float(x) => OutputValue::Float(*x),
        Value::Bool(x) => OutputValue::Bool(*x),
        Value::BoxedScalar(t) => OutputValue::Float(t.item()? as f64),
        Value::Tuple(parts) => OutputValue::Tuple(
            parts.iter().map(|p| convert_output(p, session)).collect::<Result<_, _>>()?,
        ),
        Value::Adt { tag, fields } => OutputValue::Adt {
            ctor: session.ctors.name(*tag).to_string(),
            fields: fields.iter().map(|f| convert_output(f, session)).collect::<Result<_, _>>()?,
        },
        Value::Closure(_) => {
            return Err(VmError::Input("closure escaped as a model output".into()))
        }
    })
}
