//! End-to-end execution tests: compile → analyze → run on both backends,
//! checking numerical correctness against hand-computed references,
//! VM ≡ AOT agreement, batching behaviour and tensor-dependent control flow.

use std::collections::BTreeMap;
use std::sync::Arc;

use acrobat_analysis::{analyze, AnalysisOptions};
use acrobat_codegen::KernelLibrary;
use acrobat_ir::{parse_module, typeck};
use acrobat_runtime::{DeviceModel, Engine, RuntimeOptions};
use acrobat_tensor::Tensor;
use acrobat_vm::{BackendKind, Executable, InputValue, OutputValue};

fn build(src: &str, kind: BackendKind, opts: AnalysisOptions) -> Executable {
    let m = typeck::check_module(parse_module(src).unwrap()).unwrap();
    let a = Arc::new(analyze(m, opts).unwrap());
    let lib = KernelLibrary::build(&a);
    let engine = Engine::new(a, lib, DeviceModel::default(), RuntimeOptions::default());
    Executable::new(engine, kind, 42).unwrap()
}

fn out_tensor(o: &OutputValue) -> &Tensor {
    match o {
        OutputValue::Tensor(t) => t,
        other => panic!("expected tensor output, got {other:?}"),
    }
}

const SIMPLE: &str = "def @main($w: Tensor[(2, 2)], %x: Tensor[(1, 2)]) -> Tensor[(1, 2)] {
    relu(matmul(%x, $w))
}";

#[test]
fn simple_model_correct_on_both_backends() {
    let w = Tensor::from_vec(vec![1.0, -1.0, 2.0, 0.5], &[2, 2]).unwrap();
    let params = BTreeMap::from([("w".to_string(), w.clone())]);
    let instances: Vec<Vec<InputValue>> =
        (0..4).map(|i| vec![InputValue::Tensor(Tensor::fill(&[1, 2], i as f32 - 1.0))]).collect();

    for kind in [BackendKind::Aot, BackendKind::Vm] {
        let exe = build(SIMPLE, kind, AnalysisOptions::default());
        let result = exe.run(&params, &instances).unwrap();
        assert_eq!(result.outputs.len(), 4);
        for (i, out) in result.outputs.iter().enumerate() {
            let x = Tensor::fill(&[1, 2], i as f32 - 1.0);
            let mm = acrobat_tensor::execute(&acrobat_tensor::PrimOp::MatMul, &[&x, &w]).unwrap();
            let want = acrobat_tensor::execute(&acrobat_tensor::PrimOp::Relu, &[&mm]).unwrap();
            assert!(out_tensor(out).allclose(&want, 1e-6), "{kind:?} instance {i}");
        }
        // 4 instances of the same fused kernel → a single launch.
        assert_eq!(result.stats.kernel_launches, 1, "{kind:?}");
    }
}

const RNN: &str = r#"
    def @rnn(%inps: List[Tensor[(1, 4)]], %state: Tensor[(1, 4)],
             $bias: Tensor[(1, 4)], $i_wt: Tensor[(4, 4)], $h_wt: Tensor[(4, 4)])
        -> List[Tensor[(1, 4)]] {
        match %inps {
            Nil => Nil,
            Cons(%inp, %tail) => {
                let %inp_linear = add($bias, matmul(%inp, $i_wt));
                let %new_state = sigmoid(add(%inp_linear, matmul(%state, $h_wt)));
                Cons(%new_state, @rnn(%tail, %new_state, $bias, $i_wt, $h_wt))
            }
        }
    }
    def @main($bias: Tensor[(1, 4)], $i_wt: Tensor[(4, 4)], $h_wt: Tensor[(4, 4)],
              $init: Tensor[(1, 4)], $c_wt: Tensor[(4, 2)],
              %inps: List[Tensor[(1, 4)]]) -> List[Tensor[(1, 2)]] {
        let %states = @rnn(%inps, $init, $bias, $i_wt, $h_wt);
        map(fn(%p) { relu(matmul(%p, $c_wt)) }, %states)
    }
"#;

fn rnn_params() -> BTreeMap<String, Tensor> {
    BTreeMap::from([
        ("bias".into(), Tensor::from_fn(&[1, 4], |i| 0.01 * i as f32)),
        ("i_wt".into(), Tensor::from_fn(&[4, 4], |i| ((i * 7 % 5) as f32 - 2.0) * 0.2)),
        ("h_wt".into(), Tensor::from_fn(&[4, 4], |i| ((i * 3 % 7) as f32 - 3.0) * 0.15)),
        ("init".into(), Tensor::zeros(&[1, 4])),
        ("c_wt".into(), Tensor::from_fn(&[4, 2], |i| (i as f32 - 3.5) * 0.25)),
    ])
}

fn rnn_instances(lens: &[usize]) -> Vec<Vec<InputValue>> {
    lens.iter()
        .enumerate()
        .map(|(inst, &len)| {
            let items: Vec<InputValue> = (0..len)
                .map(|t| {
                    InputValue::Tensor(Tensor::from_fn(&[1, 4], |i| {
                        ((inst * 31 + t * 7 + i) % 13) as f32 * 0.1 - 0.6
                    }))
                })
                .collect();
            vec![InputValue::list(items)]
        })
        .collect()
}

/// Host-side reference RNN.
fn rnn_reference(params: &BTreeMap<String, Tensor>, inputs: &[Tensor]) -> Vec<Tensor> {
    use acrobat_tensor::{execute, PrimOp};
    let mut state = params["init"].clone();
    let mut outs = Vec::new();
    for x in inputs {
        let il = execute(&PrimOp::MatMul, &[x, &params["i_wt"]]).unwrap();
        let il = execute(&PrimOp::Add, &[&params["bias"], &il]).unwrap();
        let hl = execute(&PrimOp::MatMul, &[&state, &params["h_wt"]]).unwrap();
        let s = execute(&PrimOp::Add, &[&il, &hl]).unwrap();
        state = execute(&PrimOp::Sigmoid, &[&s]).unwrap();
        let o = execute(&PrimOp::MatMul, &[&state, &params["c_wt"]]).unwrap();
        outs.push(execute(&PrimOp::Relu, &[&o]).unwrap());
    }
    outs
}

#[test]
fn rnn_matches_reference_and_backends_agree() {
    let params = rnn_params();
    let lens = [3usize, 5, 1, 4];
    let instances = rnn_instances(&lens);

    let mut per_backend: Vec<Vec<Vec<Tensor>>> = Vec::new();
    for kind in [BackendKind::Aot, BackendKind::Vm] {
        let exe = build(RNN, kind, AnalysisOptions::default());
        let result = exe.run(&params, &instances).unwrap();
        let mut all = Vec::new();
        for (inst, out) in result.outputs.iter().enumerate() {
            let list = out.clone().into_list().expect("list output");
            assert_eq!(list.len(), lens[inst]);
            // Rebuild the host inputs for the reference.
            let host_inputs: Vec<Tensor> = (0..lens[inst])
                .map(|t| {
                    Tensor::from_fn(&[1, 4], |i| ((inst * 31 + t * 7 + i) % 13) as f32 * 0.1 - 0.6)
                })
                .collect();
            let reference = rnn_reference(&params, &host_inputs);
            let got: Vec<Tensor> = list.iter().map(|o| out_tensor(o).clone()).collect();
            for (g, r) in got.iter().zip(&reference) {
                assert!(g.allclose(r, 1e-5), "{kind:?} inst {inst}: {g:?} vs {r:?}");
            }
            all.push(got);
        }
        per_backend.push(all);
    }
    assert_eq!(per_backend[0], per_backend[1], "AOT and VM agree bitwise");
}

#[test]
fn rnn_batching_efficiency() {
    // All-optimizations run: hoisting batches the input transforms of all
    // tokens of all instances together; phases batch the output transforms.
    let params = rnn_params();
    let instances = rnn_instances(&[3, 5, 1, 4]); // 13 tokens total
    let exe = build(RNN, BackendKind::Aot, AnalysisOptions::default());
    let full = exe.run(&params, &instances).unwrap();

    let exe_none = build(RNN, BackendKind::Aot, AnalysisOptions::none());
    let none = exe_none.run(&params, &instances).unwrap();

    assert!(
        full.stats.kernel_launches < none.stats.kernel_launches,
        "optimizations reduce launches: {} vs {}",
        full.stats.kernel_launches,
        none.stats.kernel_launches
    );
    assert!(
        full.stats.total_us() < none.stats.total_us(),
        "modeled latency improves: {} vs {}",
        full.stats.total_us(),
        none.stats.total_us()
    );
    // Results identical regardless of optimization flags.
    for (a, b) in full.outputs.iter().zip(&none.outputs) {
        let (la, lb) = (a.clone().into_list().unwrap(), b.clone().into_list().unwrap());
        for (x, y) in la.iter().zip(&lb) {
            assert!(out_tensor(x).allclose(out_tensor(y), 1e-5));
        }
    }
}

#[test]
fn vm_slower_than_aot_on_host_execution() {
    // Table 7's mechanism: interpretation overhead on control-flow-heavy
    // programs. Use long sequences to get measurable times.
    let params = rnn_params();
    let instances = rnn_instances(&[40, 40, 40, 40, 40, 40, 40, 40]);
    let aot = build(RNN, BackendKind::Aot, AnalysisOptions::default());
    let vm = build(RNN, BackendKind::Vm, AnalysisOptions::default());
    // Warm up, then take the best of three (robust to scheduler noise when
    // the test suite runs in parallel).
    let _ = aot.run(&params, &instances).unwrap();
    let _ = vm.run(&params, &instances).unwrap();
    let best = |exe: &Executable| {
        (0..3)
            .map(|_| exe.run(&params, &instances).unwrap().stats.program_host_us)
            .fold(f64::INFINITY, f64::min)
    };
    let a = best(&aot);
    let v = best(&vm);
    assert!(v > a, "VM ({v:.1}µs) should be slower than AOT ({a:.1}µs) on host execution");
}

const TDC: &str = r#"
    def @steps(%h: Tensor[(1, 2)], $w: Tensor[(2, 2)], %n: Int) -> Tensor[(1, 2)] {
        if %n <= 0 {
            %h
        } else {
            let %nh = tanh(matmul(%h, $w));
            if sample(%nh) < 0.7 { @steps(%nh, $w, %n - 1) } else { %nh }
        }
    }
    def @main($w: Tensor[(2, 2)], %x: Tensor[(1, 2)]) -> Tensor[(1, 2)] {
        @steps(%x, $w, 6)
    }
"#;

#[test]
fn tensor_dependent_control_flow_with_fibers() {
    let params =
        BTreeMap::from([("w".to_string(), Tensor::from_fn(&[2, 2], |i| (i as f32 - 1.5) * 0.4))]);
    let instances: Vec<Vec<InputValue>> =
        (0..8).map(|i| vec![InputValue::Tensor(Tensor::fill(&[1, 2], 0.1 * i as f32))]).collect();
    let exe = build(TDC, BackendKind::Aot, AnalysisOptions::default());
    assert!(exe.session.fiber_mode, "TDC model must use fibers");
    let result = exe.run(&params, &instances).unwrap();
    assert_eq!(result.outputs.len(), 8);
    assert!(result.stats.fiber_switches > 0, "instances suspended at sync points");
    assert!(result.stats.flushes >= 2, "sync points force intermediate flushes");
    // Batch parallelism survived: fewer launches than a fully sequential
    // execution would need (8 instances × up to 6 steps each).
    assert!(result.stats.kernel_launches < 30, "launches: {}", result.stats.kernel_launches);

    // Determinism: same seed → same outputs.
    let again = exe.run(&params, &instances).unwrap();
    for (a, b) in result.outputs.iter().zip(&again.outputs) {
        assert_eq!(out_tensor(a).data(), out_tensor(b).data());
    }
}

#[test]
fn fork_join_instance_parallelism() {
    // DRNN-style: parallel recursive expansion with TDC.
    let src = r#"
        def @grow(%h: Tensor[(1, 2)], $w: Tensor[(2, 2)], %d: Int) -> Tensor[(1, 2)] {
            let %nh = tanh(matmul(%h, $w));
            if %d <= 0 {
                %nh
            } else {
                if sample(%nh) < 0.8 {
                    let (%l, %r) = parallel(@grow(%nh, $w, %d - 1), @grow(%nh, $w, %d - 1));
                    add(%l, %r)
                } else {
                    %nh
                }
            }
        }
        def @main($w: Tensor[(2, 2)], %x: Tensor[(1, 2)]) -> Tensor[(1, 2)] {
            @grow(%x, $w, 3)
        }
    "#;
    let params =
        BTreeMap::from([("w".to_string(), Tensor::from_fn(&[2, 2], |i| (i as f32 - 1.5) * 0.3))]);
    let instances: Vec<Vec<InputValue>> = (0..4)
        .map(|i| vec![InputValue::Tensor(Tensor::fill(&[1, 2], 0.2 * i as f32 - 0.3))])
        .collect();
    let exe = build(src, BackendKind::Aot, AnalysisOptions::default());
    let result = exe.run(&params, &instances).unwrap();
    assert_eq!(result.outputs.len(), 4);
    assert!(result.stats.fiber_switches > 0);
    // Deterministic under the same seed.
    let again = exe.run(&params, &instances).unwrap();
    for (a, b) in result.outputs.iter().zip(&again.outputs) {
        assert_eq!(out_tensor(a).data(), out_tensor(b).data());
    }
}

#[test]
fn treelstm_like_tree_model() {
    let src = r#"
        type Tree[a] { Leaf(a), Node(Tree[a], Tree[a]) }
        def @enc(%t: Tree[Tensor[(1, 4)]], $w: Tensor[(4, 4)], $u: Tensor[(4, 4)]) -> Tensor[(1, 4)] {
            match %t {
                Leaf(%e) => tanh(matmul(%e, $w)),
                Node(%l, %r) => {
                    let (%a, %b) = parallel(@enc(%l, $w, $u), @enc(%r, $w, $u));
                    tanh(matmul(add(%a, %b), $u))
                }
            }
        }
        def @main($w: Tensor[(4, 4)], $u: Tensor[(4, 4)], %t: Tree[Tensor[(1, 4)]]) -> Tensor[(1, 4)] {
            @enc(%t, $w, $u)
        }
    "#;
    fn leaf(seed: usize) -> InputValue {
        InputValue::Adt {
            ctor: "Leaf".into(),
            fields: vec![InputValue::Tensor(Tensor::from_fn(&[1, 4], |i| {
                ((seed * 5 + i) % 7) as f32 * 0.1
            }))],
        }
    }
    fn node(l: InputValue, r: InputValue) -> InputValue {
        InputValue::Adt { ctor: "Node".into(), fields: vec![l, r] }
    }
    let params = BTreeMap::from([
        ("w".to_string(), Tensor::from_fn(&[4, 4], |i| ((i % 5) as f32 - 2.0) * 0.2)),
        ("u".to_string(), Tensor::from_fn(&[4, 4], |i| ((i % 3) as f32 - 1.0) * 0.3)),
    ]);
    let instances = vec![
        vec![node(node(leaf(0), leaf(1)), leaf(2))],
        vec![node(leaf(3), node(leaf(4), node(leaf(5), leaf(6))))],
        vec![leaf(7)],
    ];
    let aot = build(src, BackendKind::Aot, AnalysisOptions::default());
    let vm = build(src, BackendKind::Vm, AnalysisOptions::default());
    let ra = aot.run(&params, &instances).unwrap();
    let rv = vm.run(&params, &instances).unwrap();
    for (a, b) in ra.outputs.iter().zip(&rv.outputs) {
        assert!(out_tensor(a).allclose(out_tensor(b), 1e-6));
    }
    // Leaf encodings are hoisted and batch across trees: all 8 leaves in
    // one launch.
    assert!(ra.stats.kernel_launches <= rv.stats.kernel_launches,);
    assert!(ra.stats.kernel_launches < 16, "launches: {}", ra.stats.kernel_launches);
}

#[test]
fn missing_param_is_input_error() {
    let exe = build(SIMPLE, BackendKind::Aot, AnalysisOptions::default());
    let err = exe.run(&BTreeMap::new(), &[vec![InputValue::Tensor(Tensor::zeros(&[1, 2]))]]);
    assert!(matches!(err, Err(acrobat_vm::VmError::Input(_))));
}

#[test]
fn wrong_instance_arity_is_input_error() {
    let exe = build(SIMPLE, BackendKind::Aot, AnalysisOptions::default());
    let params = BTreeMap::from([("w".to_string(), Tensor::zeros(&[2, 2]))]);
    let err = exe.run(&params, &[vec![]]);
    assert!(matches!(err, Err(acrobat_vm::VmError::Input(_))));
}

#[test]
fn device_oom_surfaces_as_error() {
    let m = typeck::check_module(parse_module(SIMPLE).unwrap()).unwrap();
    let a = Arc::new(analyze(m, AnalysisOptions::default()).unwrap());
    let lib = KernelLibrary::build(&a);
    let engine = Engine::new(
        a,
        lib,
        DeviceModel::default(),
        RuntimeOptions { device_memory: 5, ..Default::default() },
    );
    let exe = Executable::new(engine, BackendKind::Aot, 0).unwrap();
    let params = BTreeMap::from([("w".to_string(), Tensor::zeros(&[2, 2]))]);
    let err = exe.run(&params, &[vec![InputValue::Tensor(Tensor::zeros(&[1, 2]))]]);
    assert!(err.is_err(), "5-element device must OOM");
}
