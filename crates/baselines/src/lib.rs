//! Baseline frameworks the ACROBAT paper evaluates against — implemented
//! from scratch so every comparison in the benchmark harness runs real code:
//!
//! * [`dynet`] — a DyNet-style fully-dynamic auto-batching framework
//!   (§2.2, Fig. 6): eager per-instance graph construction, on-the-fly
//!   batching with signature heuristics, vendor-library kernels with
//!   coverage gaps (no batched `argmax`, no batched broadcasting multiply,
//!   unbatched constant construction, the first-argument matmul heuristic —
//!   all documented in §E.4), explicit memory gathers, and DyNet's two
//!   schedulers (depth-based and agenda-based).  The `DN++` improvement
//!   toggles of Table 8 are provided.
//! * [`cortex`] — a Cortex-style static compiler for *recursive* models
//!   (Fegade et al., MLSYS 2021): fully static scheduling with near-zero
//!   runtime overheads and aggressively fused persistent kernels, but
//!   restricted model support and mandatory dense copies of leaf inputs
//!   (the MV-RNN penalty of §7.2.2).
//! * [`pytorch`] — a PyTorch-style eager executor: well-tuned kernels, no
//!   auto-batching whatsoever (§E.3).

#![deny(missing_docs)]

pub mod cortex;
pub mod dynet;
pub mod pytorch;
