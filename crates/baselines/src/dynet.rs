//! A DyNet-style dynamic auto-batching framework.
//!
//! Architecture (the paper's Fig. 6): the user program builds a lazy
//! computation graph per instance through an imperative API
//! ([`ComputationGraph`]); calling [`ComputationGraph::forward`] triggers
//! the runtime batcher, which repeatedly groups executable nodes by a
//! *signature heuristic* and launches vendor-library kernels, gathering
//! scattered operands into contiguous memory first.
//!
//! The deliberate limitations — each verified against §E.4 of the paper —
//! are what the evaluation measures:
//!
//! * **Matmul heuristic**: matrix multiplications batch only when their
//!   *first argument is literally the same tensor* (true for linear layers
//!   whose first argument is a weight parameter; false for MV-RNN's
//!   activation×activation products, which then execute one by one).
//! * **Vendor-kernel gaps**: `argmax` and broadcasting element-wise
//!   multiplication have no batched implementation; constant-tensor
//!   construction is re-executed per call instead of being reused.
//! * **Dynamic-only analysis**: no fusion, no coarsening, no hoisting, no
//!   phases — every operator is a graph node and a scheduling decision.
//! * **Explicit gathers**: batched operands are copied into staging unless
//!   already contiguous.
//!
//! [`Improvements`] enables the DN++ fixes of Table 8.

use std::collections::BTreeMap;

use acrobat_codegen::autosched::Schedule;
use acrobat_runtime::{DeviceModel, RuntimeStats};
use acrobat_tensor::batch::{run_batched_prim, run_prim, BatchArg, BatchMode};
use acrobat_tensor::{DeviceMem, DeviceTensor, PrimOp, Shape, Tensor, TensorError};

/// DyNet's two auto-batching schedulers (Neubig et al. 2017b).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynetScheduler {
    /// Batch by topological depth.
    Depth,
    /// Agenda-based: repeatedly pick the available signature class with the
    /// lowest average depth.
    Agenda,
}

/// The DN++ improvement toggles of Table 8.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Improvements {
    /// Batch matmuls by shape even when the first argument differs
    /// (fixes MV-RNN).
    pub matmul_by_shape: bool,
    /// Cache constant tensors by (value, shape) and reuse them
    /// (fixes TreeLSTM leaf initialization).
    pub constant_cache: bool,
}

impl Improvements {
    /// All Table 8 improvements on (the `DN++` configuration).
    pub fn all() -> Improvements {
        Improvements { matmul_by_shape: true, constant_cache: true }
    }
}

/// Framework configuration.
#[derive(Debug, Clone)]
pub struct DynetConfig {
    /// Scheduler choice (the paper reports the better of the two).
    pub scheduler: DynetScheduler,
    /// DN++ toggles.
    pub improvements: Improvements,
    /// Shared accelerator model (same constants as the ACROBAT runtime).
    pub device: DeviceModel,
    /// Device memory in `f32` elements.
    pub device_memory: usize,
    /// Vendor-kernel quality (cuDNN/Eigen kernels are well tuned).
    pub kernel_quality: f64,
}

impl Default for DynetConfig {
    fn default() -> Self {
        DynetConfig {
            scheduler: DynetScheduler::Agenda,
            improvements: Improvements::default(),
            device: DeviceModel::default(),
            device_memory: 64 << 20,
            kernel_quality: 0.9,
        }
    }
}

/// A node reference within a [`ComputationGraph`].
pub type NodeRef = usize;

#[derive(Debug, Clone)]
struct DyNode {
    op: PrimOp,
    args: Vec<NodeRef>,
    shape: Shape,
    /// Vendor libraries provide no batched kernel for this node (executes
    /// as a singleton launch).
    unbatchable: bool,
    /// Registered model parameter (resident tensor).
    is_param: bool,
}

/// The lazily-built computation graph plus the executing runtime.
#[derive(Debug)]
pub struct ComputationGraph {
    cfg: DynetConfig,
    mem: DeviceMem,
    nodes: Vec<DyNode>,
    values: Vec<Option<DeviceTensor>>,
    stats: RuntimeStats,
    const_cache: BTreeMap<(u32, Shape), NodeRef>,
    schedule: Schedule,
}

impl ComputationGraph {
    /// Creates an empty graph.
    pub fn new(cfg: DynetConfig) -> ComputationGraph {
        let schedule = Schedule {
            tile: 1,
            vector: 1,
            unroll: 1,
            quality: cfg.kernel_quality,
            tuned_batch: 1,
            local_padding: true,
            iterations_spent: 0,
        };
        ComputationGraph {
            mem: DeviceMem::new(cfg.device_memory),
            cfg,
            nodes: Vec::new(),
            values: Vec::new(),
            stats: RuntimeStats::default(),
            const_cache: BTreeMap::new(),
            schedule,
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &RuntimeStats {
        &self.stats
    }

    fn push(&mut self, node: DyNode) -> NodeRef {
        // Eager per-node graph construction cost (Fig. 6: no static
        // analysis amortizes this).
        self.stats.dfg_construction_us += self.cfg.device.dfg_node_cost_us;
        self.stats.nodes += 1;
        self.nodes.push(node);
        self.values.push(None);
        self.nodes.len() - 1
    }

    /// Registers a model parameter (resident on the device; uploads are not
    /// charged, as in the ACROBAT runtime).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DeviceOom`] when memory is exhausted.
    pub fn parameter(&mut self, t: &Tensor) -> Result<NodeRef, TensorError> {
        let dev = self.mem.upload(t)?;
        let node = self.push(DyNode {
            op: PrimOp::Copy,
            args: vec![],
            shape: t.shape().clone(),
            unbatchable: false,
            is_param: true,
        });
        self.values[node] = Some(dev);
        Ok(node)
    }

    /// Uploads an input tensor — one transfer *per call*, as DyNet performs
    /// (no transfer batching; this is the "Mem. copy time" line of Table 5).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DeviceOom`] when memory is exhausted.
    pub fn input(&mut self, t: &Tensor) -> Result<NodeRef, TensorError> {
        let before = self.mem.stats();
        let dev = self.mem.upload(t)?;
        let bytes = self.mem.stats().upload_bytes - before.upload_bytes;
        self.stats.memcpy_bytes += bytes;
        self.stats.memcpy_ops += 1;
        self.stats.memcpy_us += self.cfg.device.memcpy_time_us(bytes, 1);
        self.stats.cuda_api_us += self.cfg.device.memcpy_overhead_us;
        let node = self.push(DyNode {
            op: PrimOp::Copy,
            args: vec![],
            shape: t.shape().clone(),
            unbatchable: false,
            is_param: false,
        });
        self.values[node] = Some(dev);
        Ok(node)
    }

    /// Applies a primitive operator.
    ///
    /// # Errors
    ///
    /// Returns shape errors immediately (DyNet also shape-checks at graph
    /// construction).
    pub fn apply(&mut self, op: PrimOp, args: &[NodeRef]) -> Result<NodeRef, TensorError> {
        let shapes: Vec<&Shape> = args.iter().map(|&a| &self.nodes[a].shape).collect();
        let shape = acrobat_tensor::infer_shape(&op, &shapes)?;
        // Vendor-library coverage gaps (§E.4).
        let unbatchable = match &op {
            PrimOp::ArgmaxRows => true,
            PrimOp::Mul => {
                // Broadcasting element-wise multiply has no batched kernel.
                shapes.len() == 2 && shapes[0] != shapes[1]
            }
            _ => false,
        };
        Ok(self.push(DyNode { op, args: args.to_vec(), shape, unbatchable, is_param: false }))
    }

    /// Creates a constant-filled tensor node.  Without
    /// [`Improvements::constant_cache`] every call creates (and later
    /// executes) a fresh node — the TreeLSTM leaf-state pathology of §E.4.
    pub fn constant(&mut self, value: f32, shape: &Shape) -> NodeRef {
        if self.cfg.improvements.constant_cache {
            let key = (value.to_bits(), shape.clone());
            if let Some(&n) = self.const_cache.get(&key) {
                return n;
            }
            let n = self.push(DyNode {
                op: PrimOp::Fill { value, shape: shape.clone() },
                args: vec![],
                shape: shape.clone(),
                unbatchable: true,
                is_param: false,
            });
            self.const_cache.insert(key, n);
            return n;
        }
        self.push(DyNode {
            op: PrimOp::Fill { value, shape: shape.clone() },
            args: vec![],
            shape: shape.clone(),
            unbatchable: true,
            is_param: false,
        })
    }

    /// The shape of a node.
    pub fn shape(&self, n: NodeRef) -> &Shape {
        &self.nodes[n].shape
    }

    /// Batching signature: nodes sharing a signature may execute as one
    /// batched vendor kernel.
    fn signature(&self, n: NodeRef) -> String {
        let node = &self.nodes[n];
        if node.unbatchable {
            return format!("solo:{n}");
        }
        let mut sig = format!("{}", node.op);
        for &a in &node.args {
            sig.push(';');
            sig.push_str(&self.nodes[a].shape.to_string());
        }
        if matches!(node.op, PrimOp::MatMul) {
            let weight_is_param = self.nodes[node.args[1]].is_param;
            if !self.cfg.improvements.matmul_by_shape || weight_is_param {
                // DyNet's heuristic: batch only when the weight-position
                // operand is the SAME tensor (§E.4 "brittle heuristics").
                // DyNet's column-vector layout puts the weight first; our
                // row-vector layout puts it second — same heuristic,
                // transposed.  The DN++ improvement relaxes this *only* for
                // activation×activation products (the MV-RNN case): linear
                // layers keep the identity signature, since batching across
                // different weight tensors would gather the weights
                // themselves.
                sig.push_str(&format!(";w={}", node.args[1]));
            }
        }
        sig
    }

    /// Executes all pending nodes needed to materialize `target`, batching
    /// on the fly, then returns its host value.
    ///
    /// # Errors
    ///
    /// Propagates device and kernel errors.
    pub fn forward(&mut self, target: NodeRef) -> Result<Tensor, TensorError> {
        self.execute_pending()?;
        let t = self.values[target].clone().expect("executed");
        let before = self.mem.stats();
        let host = self.mem.download(&t)?;
        let bytes = self.mem.stats().download_bytes - before.download_bytes;
        self.stats.memcpy_bytes += bytes;
        self.stats.memcpy_ops += 1;
        self.stats.memcpy_us += self.cfg.device.memcpy_time_us(bytes, 1);
        self.stats.cuda_api_us += self.cfg.device.memcpy_overhead_us;
        Ok(host)
    }

    /// Executes everything currently pending.
    ///
    /// # Errors
    ///
    /// Propagates device and kernel errors.
    pub fn execute_pending(&mut self) -> Result<(), TensorError> {
        let pending: Vec<NodeRef> =
            (0..self.nodes.len()).filter(|&n| self.values[n].is_none()).collect();
        if pending.is_empty() {
            return Ok(());
        }
        self.stats.flushes += 1;

        // Incremental batcher, as in DyNet: one pass computes topological
        // depths and dependency counts (charged per node+edge); thereafter
        // availability is maintained incrementally — completing a node
        // decrements its consumers' counters — so scheduling cost is linear
        // in nodes+edges rather than quadratic.
        let per_node = match self.cfg.scheduler {
            DynetScheduler::Depth => self.cfg.device.sched_dyn_depth_cost_us,
            DynetScheduler::Agenda => self.cfg.device.sched_agenda_cost_us,
        };
        let mut depth: BTreeMap<NodeRef, u64> = BTreeMap::new();
        let mut missing: BTreeMap<NodeRef, usize> = BTreeMap::new();
        let mut consumers: BTreeMap<NodeRef, Vec<NodeRef>> = BTreeMap::new();
        for &n in &pending {
            let mut d = 0;
            let mut miss = 0;
            for &a in &self.nodes[n].args {
                self.stats.scheduling_us += per_node * 0.3; // per-edge work
                if self.values[a].is_none() {
                    d = d.max(depth.get(&a).copied().unwrap_or(0) + 1);
                    miss += 1;
                    consumers.entry(a).or_default().push(n);
                }
            }
            depth.insert(n, d);
            missing.insert(n, miss);
        }

        self.stats.device_peak_elements = self.mem.stats().peak_elements;
        // Signature classes of currently-available nodes.
        let mut classes: BTreeMap<String, Vec<NodeRef>> = BTreeMap::new();
        for &n in &pending {
            self.stats.scheduling_us += per_node;
            if missing[&n] == 0 {
                classes.entry(self.signature(n)).or_default().push(n);
            }
        }
        let mut left = pending.len();
        while left > 0 {
            // Pick a class: depth scheduler takes the minimum depth first;
            // agenda takes the class with the lowest average depth.
            self.stats.scheduling_us += per_node * classes.len() as f64 * 0.2;
            let key = match self.cfg.scheduler {
                DynetScheduler::Depth => classes
                    .iter()
                    .min_by_key(|(_, v)| v.iter().map(|n| depth[n]).min().unwrap_or(0))
                    .map(|(k, _)| k.clone()),
                DynetScheduler::Agenda => classes
                    .iter()
                    .min_by(|(_, a), (_, b)| {
                        let avg = |v: &Vec<NodeRef>| {
                            v.iter().map(|n| depth[n] as f64).sum::<f64>() / v.len() as f64
                        };
                        avg(a).partial_cmp(&avg(b)).expect("finite")
                    })
                    .map(|(k, _)| k.clone()),
            }
            .expect("ready nodes exist");
            let batch = classes.remove(&key).expect("chosen class");
            self.launch(&batch)?;
            left -= batch.len();
            for &n in &batch {
                for &c in consumers.get(&n).map(Vec::as_slice).unwrap_or(&[]) {
                    let m = missing.get_mut(&c).expect("pending consumer");
                    *m -= 1;
                    self.stats.scheduling_us += per_node * 0.3;
                    if *m == 0 {
                        self.stats.scheduling_us += per_node;
                        classes.entry(self.signature(c)).or_default().push(c);
                    }
                }
            }
        }
        self.stats.device_peak_elements = self.mem.stats().peak_elements;
        Ok(())
    }

    /// Launches one batch (possibly a singleton) as a vendor kernel.
    fn launch(&mut self, batch: &[NodeRef]) -> Result<(), TensorError> {
        let node0 = self.nodes[batch[0]].clone();
        let lanes = batch.len();

        if lanes == 1 {
            // Sequential (unbatched) vendor-kernel call.
            let args: Vec<DeviceTensor> =
                node0.args.iter().map(|&a| self.values[a].clone().expect("ready")).collect();
            let arg_refs: Vec<&DeviceTensor> = args.iter().collect();
            let out = run_prim(&mut self.mem, &node0.op, &arg_refs)?;
            self.charge_launch(&node0, lanes, 0, 0);
            self.values[batch[0]] = Some(out);
            return Ok(());
        }

        // Classify argument positions: shared iff every lane passes the
        // same tensor.
        let nargs = node0.args.len();
        let mut args: Vec<BatchArg> = Vec::with_capacity(nargs);
        for j in 0..nargs {
            let first = self.values[self.nodes[batch[0]].args[j]].clone().expect("ready");
            let shared =
                batch.iter().all(|&n| self.values[self.nodes[n].args[j]].as_ref() == Some(&first));
            if shared {
                args.push(BatchArg::Shared(first));
            } else {
                args.push(BatchArg::Batched(
                    batch
                        .iter()
                        .map(|&n| self.values[self.nodes[n].args[j]].clone().expect("ready"))
                        .collect(),
                ));
            }
        }
        let before = self.mem.stats();
        let (outs, bstats) =
            run_batched_prim(&mut self.mem, &node0.op, &args, lanes, BatchMode::ExplicitGather)?;
        let after = self.mem.stats();
        self.stats.gather_bytes += after.gather_bytes - before.gather_bytes;
        self.stats.gather_copies += bstats.gather_copies;
        self.stats.contiguous_hits += bstats.contiguous_hits;
        self.charge_launch(&node0, lanes, bstats.gather_bytes, bstats.gather_copies);
        for (&n, out) in batch.iter().zip(outs) {
            self.values[n] = Some(out);
        }
        Ok(())
    }

    fn charge_launch(&mut self, node: &DyNode, lanes: usize, gather_bytes: u64, gathers: u64) {
        let shapes: Vec<&Shape> = node.args.iter().map(|&a| &self.nodes[a].shape).collect();
        let flops = acrobat_tensor::flops(&node.op, &shapes) * lanes as u64;
        let in_bytes: u64 = shapes.iter().map(|s| s.byte_size() as u64).sum::<u64>() * lanes as u64;
        let out_bytes = node.shape.byte_size() as u64 * lanes as u64;
        let lstats = acrobat_codegen::KernelLaunchStats {
            launches: 1,
            flops,
            batched_bytes: in_bytes,
            output_bytes: out_bytes,
            gather_bytes,
            gather_copies: gathers,
            ..Default::default()
        };
        self.stats.kernel_launches += 1;
        self.stats.flops += flops;
        self.stats.kernel_time_us +=
            self.cfg.device.kernel_time_us(&lstats, Some(&self.schedule), lanes)
                + self.cfg.device.gather_time_us(&lstats);
        self.stats.cuda_api_us += self.cfg.device.launch_overhead_us
            + gathers as f64 * self.cfg.device.launch_overhead_us * 0.5;
    }
}

/// Runs a mini-batch through a user-supplied per-instance graph builder and
/// returns per-instance outputs plus statistics.
///
/// `setup` registers model parameters once (shared parameter nodes are what
/// make the stock matmul heuristic batch linear layers); `build` constructs
/// one instance's graph and returns the node(s) whose values constitute the
/// instance output.  Tensor-dependent models call
/// [`ComputationGraph::forward`] *during* building, which flushes
/// everything pending (there are no fibers — this is DyNet's limitation the
/// DRNN experiment exercises, §7.2.1).
///
/// # Errors
///
/// Propagates device and kernel errors (the Berxit OOM of Table 4 arrives
/// through here).
pub fn run_minibatch<P, S, F>(
    cfg: DynetConfig,
    batch_size: usize,
    setup: S,
    mut build: F,
) -> Result<(Vec<Vec<Tensor>>, RuntimeStats), TensorError>
where
    S: FnOnce(&mut ComputationGraph) -> Result<P, TensorError>,
    F: FnMut(&mut ComputationGraph, &P, usize) -> Result<Vec<NodeRef>, TensorError>,
{
    let mut cg = ComputationGraph::new(cfg);
    let params = setup(&mut cg)?;
    let wall = std::time::Instant::now();
    let mut per_instance_nodes = Vec::with_capacity(batch_size);
    for i in 0..batch_size {
        per_instance_nodes.push(build(&mut cg, &params, i)?);
    }
    cg.execute_pending()?;
    let mut outputs = Vec::with_capacity(batch_size);
    for nodes in per_instance_nodes {
        let mut outs = Vec::with_capacity(nodes.len());
        for n in nodes {
            outs.push(cg.forward(n)?);
        }
        outputs.push(outs);
    }
    let mut stats = *cg.stats();
    stats.program_host_us = wall.elapsed().as_secs_f64() * 1e6;
    Ok((outputs, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev(v: f32, dims: &[usize]) -> Tensor {
        Tensor::fill(dims, v)
    }

    #[test]
    fn linear_layers_batch_via_shared_weight() {
        let mut cg = ComputationGraph::new(DynetConfig::default());
        let w = cg.parameter(&Tensor::from_fn(&[2, 2], |i| i as f32)).unwrap();
        let mut outs = Vec::new();
        for i in 0..4 {
            let x = cg.input(&dev(i as f32, &[1, 2])).unwrap();
            let mm = cg.apply(PrimOp::MatMul, &[x, w]).unwrap();
            outs.push(cg.apply(PrimOp::Tanh, &[mm]).unwrap());
        }
        cg.execute_pending().unwrap();
        // One batched matmul + one batched tanh.
        assert_eq!(cg.stats().kernel_launches, 2);
        for (i, o) in outs.into_iter().enumerate() {
            let got = cg.forward(o).unwrap();
            let x = dev(i as f32, &[1, 2]);
            let w = Tensor::from_fn(&[2, 2], |i| i as f32);
            let mm = acrobat_tensor::execute(&PrimOp::MatMul, &[&x, &w]).unwrap();
            let want = acrobat_tensor::execute(&PrimOp::Tanh, &[&mm]).unwrap();
            assert!(got.allclose(&want, 1e-6));
        }
    }

    #[test]
    fn matmul_heuristic_blocks_activation_products() {
        // MV-RNN-style activation×activation: first args differ → one
        // launch per instance under stock DyNet.
        let run = |improved: bool| {
            let cfg = DynetConfig {
                improvements: Improvements { matmul_by_shape: improved, ..Default::default() },
                ..Default::default()
            };
            let mut cg = ComputationGraph::new(cfg);
            for i in 0..6 {
                let a = cg.input(&dev(1.0 + i as f32, &[2, 2])).unwrap();
                let b = cg.input(&dev(2.0, &[2, 2])).unwrap();
                cg.apply(PrimOp::MatMul, &[a, b]).unwrap();
            }
            cg.execute_pending().unwrap();
            cg.stats().kernel_launches
        };
        assert_eq!(run(false), 6, "stock heuristic: sequential execution");
        assert_eq!(run(true), 1, "DN++ batches by shape");
    }

    #[test]
    fn argmax_never_batches() {
        let mut cg = ComputationGraph::new(DynetConfig::default());
        for i in 0..5 {
            let x = cg.input(&dev(i as f32, &[1, 4])).unwrap();
            cg.apply(PrimOp::ArgmaxRows, &[x]).unwrap();
        }
        cg.execute_pending().unwrap();
        assert_eq!(cg.stats().kernel_launches, 5);
    }

    #[test]
    fn broadcast_mul_never_batches() {
        let mut cg = ComputationGraph::new(DynetConfig::default());
        for _ in 0..4 {
            let a = cg.input(&dev(2.0, &[2, 3])).unwrap();
            let b = cg.input(&dev(3.0, &[1, 3])).unwrap();
            cg.apply(PrimOp::Mul, &[a, b]).unwrap();
        }
        cg.execute_pending().unwrap();
        assert_eq!(cg.stats().kernel_launches, 4);
        // Same-shape mul DOES batch.
        let mut cg = ComputationGraph::new(DynetConfig::default());
        for _ in 0..4 {
            let a = cg.input(&dev(2.0, &[2, 3])).unwrap();
            let b = cg.input(&dev(3.0, &[2, 3])).unwrap();
            cg.apply(PrimOp::Mul, &[a, b]).unwrap();
        }
        cg.execute_pending().unwrap();
        assert_eq!(cg.stats().kernel_launches, 1);
    }

    #[test]
    fn constants_reexecute_unless_cached() {
        let shape = Shape::new(&[1, 4]);
        let run = |cache: bool| {
            let cfg = DynetConfig {
                improvements: Improvements { constant_cache: cache, ..Default::default() },
                ..Default::default()
            };
            let mut cg = ComputationGraph::new(cfg);
            let mut outs = Vec::new();
            for _ in 0..8 {
                let c = cg.constant(0.0, &shape);
                let x = cg.input(&dev(1.0, &[1, 4])).unwrap();
                outs.push(cg.apply(PrimOp::Add, &[c, x]).unwrap());
            }
            cg.execute_pending().unwrap();
            cg.stats().kernel_launches
        };
        // 8 constant fills + adds vs 1 fill + adds.
        assert!(run(false) > run(true) + 5);
    }

    #[test]
    fn run_minibatch_collects_outputs_and_stats() {
        let w = Tensor::from_fn(&[2, 2], |i| (i as f32) * 0.5);
        let (outs, stats) = run_minibatch(
            DynetConfig::default(),
            3,
            |cg| cg.parameter(&w),
            |cg, &wp, i| {
                let x = cg.input(&Tensor::fill(&[1, 2], i as f32))?;
                let y = cg.apply(PrimOp::MatMul, &[x, wp])?;
                Ok(vec![y])
            },
        )
        .unwrap();
        assert_eq!(outs.len(), 3);
        assert!(stats.total_us() > 0.0);
        assert!(stats.memcpy_ops >= 3, "one transfer per input");
        // Shared parameter node → the stock heuristic batches all three.
        assert_eq!(stats.kernel_launches, 1);
        for (i, o) in outs.iter().enumerate() {
            let x = Tensor::fill(&[1, 2], i as f32);
            let want = acrobat_tensor::execute(&PrimOp::MatMul, &[&x, &w]).unwrap();
            assert!(o[0].allclose(&want, 1e-6));
        }
    }

    #[test]
    fn oom_propagates() {
        let cfg = DynetConfig { device_memory: 8, ..Default::default() };
        let err = run_minibatch(
            cfg,
            1,
            |_| Ok(()),
            |cg, _, _| {
                let x = cg.input(&Tensor::zeros(&[16]))?;
                Ok(vec![x])
            },
        );
        assert!(matches!(err, Err(TensorError::DeviceOom { .. })));
    }
}
