//! A PyTorch-style eager baseline (§E.3 of the paper).
//!
//! PyTorch executes every operator immediately with well-tuned vendor
//! kernels, but performs **no auto-batching**: neither batch parallelism
//! (across mini-batch instances) nor instance parallelism is exploited for
//! dynamic models — each operator invocation is its own kernel launch.
//!
//! Implemented by running the ACROBAT frontend program through the shared
//! pipeline with every batching optimization disabled and the runtime in
//! eager mode (flush after every node), with a generous kernel-tuning
//! budget standing in for hand-optimized vendor kernels.

#![allow(clippy::field_reassign_with_default)] // builder-style option setup reads better

use std::collections::BTreeMap;

use acrobat_core::{compile, AnalysisOptions, CompileError, CompileOptions, InputValue, Tensor};
use acrobat_vm::RunResult;

/// Compile options replicating eager PyTorch execution.
pub fn options() -> CompileOptions {
    let mut o = CompileOptions::default();
    // Eager frameworks see one operator at a time: no fusion, no phases, no
    // hoisting, no ghost operators, no coarsening.
    o.analysis = AnalysisOptions::none();
    o.runtime.eager = true;
    o.runtime.gather_fusion = false;
    o.runtime.coarsen = false;
    // Vendor kernels are heavily hand-tuned.
    o.schedule.iterations = 3000;
    // Eager execution materializes every intermediate with no batch-level
    // reuse; give it a roomy simulated device (PyTorch's caching allocator
    // would recycle, which the bump arena does not model).
    o.runtime.device_memory = 512 << 20;
    o
}

/// Compiles and runs a mini-batch eagerly.
///
/// # Errors
///
/// Propagates compile and runtime errors.
pub fn run(
    source: &str,
    params: &BTreeMap<String, Tensor>,
    instances: &[Vec<InputValue>],
) -> Result<RunResult, CompileError> {
    let model = compile(source, &options())?;
    model.run(params, instances)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "def @main($w: Tensor[(2, 2)], %x: Tensor[(1, 2)]) -> Tensor[(1, 2)] {
        relu(matmul(%x, $w))
    }";

    #[test]
    fn eager_launches_one_kernel_per_op_per_instance() {
        let params = BTreeMap::from([("w".to_string(), Tensor::ones(&[2, 2]))]);
        let instances: Vec<Vec<InputValue>> =
            (0..4).map(|i| vec![InputValue::Tensor(Tensor::fill(&[1, 2], i as f32))]).collect();
        let r = run(SRC, &params, &instances).unwrap();
        // 2 ops × 4 instances = 8 launches (vs 1–2 for ACROBAT).
        assert_eq!(r.stats.kernel_launches, 8);
        // Results are still correct.
        for (i, o) in r.outputs.iter().enumerate() {
            let x = Tensor::fill(&[1, 2], i as f32);
            let mm = acrobat_tensor::execute(
                &acrobat_tensor::PrimOp::MatMul,
                &[&x, &Tensor::ones(&[2, 2])],
            )
            .unwrap();
            let want = acrobat_tensor::execute(&acrobat_tensor::PrimOp::Relu, &[&mm]).unwrap();
            match o {
                acrobat_vm::OutputValue::Tensor(t) => assert!(t.allclose(&want, 1e-6)),
                other => panic!("{other:?}"),
            }
        }
    }
}
