//! A Cortex-style baseline: a static compiler specialized for *recursive*
//! deep-learning models (Fegade et al., MLSYS 2021; §7.2.2 of the ACROBAT
//! paper).
//!
//! Cortex trades generality and developer effort for performance:
//!
//! * it supports **only recursive computations** — no tensor-dependent
//!   control flow, no general iteration (the `@main`s it accepts must drive
//!   a self-recursive function);
//! * scheduling is fully static and kernels are aggressively fused and
//!   persistent, so runtime overheads (graph construction, scheduling,
//!   kernel-launch API) are a fraction of a dynamic framework's;
//! * kernels are *manually* optimized by the user (the paper quantifies the
//!   burden: 325 LoC for MV-RNN vs ACROBAT's 79+108), modeled as a large
//!   tuning budget;
//! * its restrictive interface requires the embedding vectors at the leaves
//!   of the input structures to be **copied into dense internal buffers** —
//!   negligible for TreeLSTM's small leaf vectors, ruinous for MV-RNN's
//!   per-word matrices (§7.2.2).
//!
//! Implemented as the shared pipeline driven with a Cortex-calibrated
//! overhead model plus explicit accounting of the mandatory leaf copies.

use std::collections::BTreeMap;

use acrobat_core::{
    compile, CompileError, CompileOptions, DeviceModel, InputValue, Tensor, VmError,
};
use acrobat_ir::{parse_module, typeck, ExprKind};
use acrobat_vm::RunResult;

/// Overhead model for Cortex's static runtime, derived from the shared
/// [`DeviceModel`]: persistence and static scheduling shrink the host-side
/// and launch overheads; the compute/bandwidth terms are unchanged.
pub fn cortex_device(base: DeviceModel) -> DeviceModel {
    DeviceModel {
        launch_overhead_us: base.launch_overhead_us * 0.4,
        dfg_node_cost_us: base.dfg_node_cost_us * 0.15,
        sched_inline_cost_us: base.sched_inline_cost_us * 0.3,
        memcpy_overhead_us: base.memcpy_overhead_us,
        ..base
    }
}

/// Compile options replicating Cortex.
pub fn options() -> CompileOptions {
    let mut o = CompileOptions::default();
    o.device = cortex_device(o.device);
    // Manual expert kernel optimization: a very large tuning budget.
    o.schedule.iterations = 5000;
    o
}

/// Whether Cortex supports a model: recursive control flow only, no
/// tensor-dependent decisions.
///
/// # Errors
///
/// Returns frontend errors for unparseable sources.
pub fn supports(source: &str) -> Result<bool, CompileError> {
    let module = typeck::check_module(parse_module(source)?)?;
    let mut has_sync = false;
    let mut has_recursion = false;
    for (name, f) in &module.functions {
        acrobat_ir::ast::visit_exprs(&f.body, &mut |e| match &e.kind {
            ExprKind::Sync { .. } => has_sync = true,
            ExprKind::Call { callee: acrobat_ir::Callee::Global(n), .. } if n == name => {
                has_recursion = true
            }
            _ => {}
        });
    }
    Ok(has_recursion && !has_sync)
}

/// Compiles and runs a mini-batch the Cortex way.
///
/// # Errors
///
/// Returns [`CompileError::Execution`] with
/// [`VmError::Unsupported`] for models outside Cortex's domain
/// (non-recursive or tensor-dependent), and propagates runtime errors.
pub fn run(
    source: &str,
    params: &BTreeMap<String, Tensor>,
    instances: &[Vec<InputValue>],
) -> Result<RunResult, CompileError> {
    if !supports(source)? {
        return Err(CompileError::Execution(VmError::Unsupported(
            "Cortex supports only recursive models without tensor-dependent control flow".into(),
        )));
    }
    let opts = options();
    let model = compile(source, &opts)?;
    let mut result = model.run(params, instances)?;

    // Mandatory dense copies of the leaf inputs (§7.2.2): every input
    // tensor is copied once more into Cortex's internal buffers.
    let mut leaf_bytes = 0u64;
    let mut leaf_tensors = 0u64;
    for inst in instances {
        for v in inst {
            let mut ts = Vec::new();
            v.tensors(&mut ts);
            leaf_tensors += ts.len() as u64;
            leaf_bytes += ts.iter().map(|t| t.shape().byte_size() as u64).sum::<u64>();
        }
    }
    let device = opts.device;
    result.stats.gather_bytes += leaf_bytes;
    result.stats.gather_copies += leaf_tensors;
    // The copies are per-leaf strided small-block device copies into
    // Cortex's dense recursion buffers; such access patterns achieve on the
    // order of 1% of peak bandwidth.  Cheap for TreeLSTM's per-leaf vectors,
    // ruinous for MV-RNN's per-leaf d×d matrices — the §7.2.2 inversion.
    const STRIDED_COPY_BYTES_PER_US: f64 = 1300.0; // ~1.3 GB/s effective
    result.stats.kernel_time_us += leaf_bytes as f64 / STRIDED_COPY_BYTES_PER_US;
    result.stats.cuda_api_us += instances.len() as f64 * device.launch_overhead_us * 0.5;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TREE: &str = r#"
        type Tree[a] { Leaf(a), Node(Tree[a], Tree[a]) }
        def @enc(%t: Tree[Tensor[(1, 4)]], $w: Tensor[(4, 4)], $u: Tensor[(4, 4)]) -> Tensor[(1, 4)] {
            match %t {
                Leaf(%e) => tanh(matmul(%e, $w)),
                Node(%l, %r) => {
                    let (%a, %b) = parallel(@enc(%l, $w, $u), @enc(%r, $w, $u));
                    tanh(matmul(add(%a, %b), $u))
                }
            }
        }
        def @main($w: Tensor[(4, 4)], $u: Tensor[(4, 4)], %t: Tree[Tensor[(1, 4)]]) -> Tensor[(1, 4)] {
            @enc(%t, $w, $u)
        }
    "#;

    const FEEDFORWARD: &str =
        "def @main($w: Tensor[(2, 2)], %x: Tensor[(1, 2)]) -> Tensor[(1, 2)] {
        relu(matmul(%x, $w))
    }";

    const TDC: &str = r#"
        def @f(%x: Tensor[(1, 2)], $w: Tensor[(2, 2)], %n: Int) -> Tensor[(1, 2)] {
            if %n <= 0 { %x } else {
                let %y = tanh(matmul(%x, $w));
                if sample(%y) < 0.5 { @f(%y, $w, %n - 1) } else { %y }
            }
        }
        def @main($w: Tensor[(2, 2)], %x: Tensor[(1, 2)]) -> Tensor[(1, 2)] { @f(%x, $w, 3) }
    "#;

    #[test]
    fn support_matrix() {
        assert!(supports(TREE).unwrap(), "recursive, no TDC: supported");
        assert!(!supports(FEEDFORWARD).unwrap(), "non-recursive: unsupported");
        assert!(!supports(TDC).unwrap(), "TDC: unsupported");
    }

    #[test]
    fn unsupported_model_is_an_error() {
        let params = BTreeMap::from([("w".to_string(), Tensor::ones(&[2, 2]))]);
        let err = run(FEEDFORWARD, &params, &[vec![InputValue::Tensor(Tensor::zeros(&[1, 2]))]]);
        assert!(matches!(err, Err(CompileError::Execution(VmError::Unsupported(_)))));
    }

    #[test]
    fn runs_tree_model_with_lower_overheads_but_leaf_copies() {
        let params = BTreeMap::from([
            ("w".to_string(), Tensor::from_fn(&[4, 4], |i| ((i % 5) as f32 - 2.0) * 0.2)),
            ("u".to_string(), Tensor::from_fn(&[4, 4], |i| ((i % 3) as f32 - 1.0) * 0.3)),
        ]);
        let leaf = |s: usize| InputValue::Adt {
            ctor: "Leaf".into(),
            fields: vec![InputValue::Tensor(Tensor::from_fn(&[1, 4], move |i| {
                ((s + i) % 7) as f32 * 0.1
            }))],
        };
        let node = |l, r| InputValue::Adt { ctor: "Node".into(), fields: vec![l, r] };
        let instances =
            vec![vec![node(leaf(0), node(leaf(1), leaf(2)))], vec![node(leaf(3), leaf(4))]];

        let cortex = run(TREE, &params, &instances).unwrap();
        let acrobat = acrobat_core::compile(TREE, &CompileOptions::default())
            .unwrap()
            .run(&params, &instances)
            .unwrap();
        // Same numerical results.
        for (a, b) in cortex.outputs.iter().zip(&acrobat.outputs) {
            match (a, b) {
                (acrobat_vm::OutputValue::Tensor(x), acrobat_vm::OutputValue::Tensor(y)) => {
                    assert!(x.allclose(y, 1e-6));
                }
                _ => panic!(),
            }
        }
        // Lower host overheads…
        assert!(
            cortex.stats.dfg_construction_us + cortex.stats.scheduling_us
                < acrobat.stats.dfg_construction_us + acrobat.stats.scheduling_us
        );
        // …but the mandatory leaf copies show up in the gather account.
        assert!(cortex.stats.gather_bytes >= 5 * 4 * 4, "5 leaves × 16 bytes");
    }
}
