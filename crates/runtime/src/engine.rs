//! The immutable, shareable half of the execution stack.
//!
//! ACROBAT computes the expensive artifacts once, at compile time — batched
//! kernels, static analysis, execution plans (§3–§4 of the paper) — and
//! only the cheap DFG-and-flush machinery runs per mini-batch (§2.2, §5).
//! The object model mirrors that split: an [`Engine`] owns the
//! request-invariant artifacts and is immutable and `Send + Sync`, shared
//! via `Arc` by every concurrent mini-batch (the way TVM shares one
//! compiled module across per-call execution state); all mutable per-batch
//! state lives in a [`crate::ExecutionContext`].  `Model::run` therefore
//! needs no global runtime lock: each request acquires its own context —
//! usually from a [`ContextPool`] — and executes independently.
//!
//! Profile-guided re-scheduling (§D.1) never mutates a live engine: the
//! aggregated profile is applied to a *clone* of the kernel library via
//! [`Engine::retuned`], producing a fresh engine that new requests pick up
//! while in-flight requests finish against the old one.

use std::collections::BTreeMap;
use std::sync::Arc;

use acrobat_analysis::AnalysisResult;
use acrobat_codegen::{
    InterpBackend, KernelBackend, KernelBackendKind, KernelId, KernelLibrary, SpecializedBackend,
};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::context::ExecutionContext;
use crate::device::DeviceModel;
use crate::scheduler::SchedulerKind;

/// Configuration of the execution stack, resolved at compile time and owned
/// by the [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuntimeOptions {
    /// Scheduling algorithm.
    pub scheduler: SchedulerKind,
    /// Gather-operator fusion (§5.2): `true` launches kernels that read
    /// scattered operands in place; `false` performs explicit gathers.
    pub gather_fusion: bool,
    /// Grain-size coarsening (§B.2): charge DFG-construction and scheduling
    /// overheads per static block rather than per fusion group.
    pub coarsen: bool,
    /// Eager execution: flush after every node (PyTorch-style, no
    /// auto-batching — the §E.3 baseline).
    pub eager: bool,
    /// Device memory capacity in `f32` elements.
    pub device_memory: usize,
    /// Checked mode ([`crate::check`]): validate every flush against the
    /// scheduler/DFG invariants and the reference schedulers.  Orders of
    /// magnitude slower; costs the hot path one branch per flush when off.
    #[serde(default)]
    pub checked: bool,
    /// Transient-fault retry policy for the flush path (default: retry
    /// disabled — every fault surfaces to the caller).
    #[serde(default)]
    pub retry: crate::resilience::RetryPolicy,
    /// Admission limit: maximum concurrently executing runs per session
    /// before new requests are load-shed with an `Overloaded` error
    /// (0 = unlimited).
    #[serde(default)]
    pub max_in_flight: usize,
    /// Fiber-hub watchdog: if the hub fails to reach a flush point or
    /// termination for this many milliseconds, the run fails with a
    /// structured [`crate::fiber::DriveTimeout`] instead of hanging
    /// (0 = no watchdog).
    #[serde(default = "default_drive_timeout_ms")]
    pub drive_timeout_ms: u64,
    /// Simulated device timeline ([`crate::timeline`]): compute-stream
    /// count, copy engine, host/device overlap.  The default (one stream,
    /// everything synchronous) reproduces the legacy serial accumulation
    /// bit-for-bit.
    #[serde(default)]
    pub timeline: crate::timeline::TimelineOptions,
    /// Worker threads for *real* parallel execution of independent
    /// same-level batches within a flush (0 or 1 = sequential).  Results
    /// are bit-for-bit identical to sequential execution; incompatible
    /// with an active lane-cap downshift (chunked flushes run
    /// sequentially).
    #[serde(default)]
    pub parallel_workers: usize,
    /// Flush-plan memoization ([`crate::plan_cache`]): structurally
    /// repeated pending windows are served by remapping a frozen plan
    /// instead of re-running the scheduler.  Off by default — the paper
    /// configuration reschedules every flush, and all default artifacts
    /// are produced with the cache off.
    #[serde(default)]
    pub plan_cache: bool,
    /// Cross-request continuous batching: route concurrent `run` calls
    /// through a `BatchBroker` that coalesces compatible in-flight requests
    /// into shared flush plans (one merged DFG, one kernel launch per
    /// batched group across requests).  Off by default — each request
    /// batches only within itself, exactly the pre-broker behaviour.
    #[serde(default)]
    pub broker: bool,
    /// Kernel-execution backend for the execute phase of every launch.
    /// The default interpreter reproduces all published artifacts
    /// unchanged; [`KernelBackendKind::Spec`] compiles hot
    /// `(kernel, batch-size-class)` pairs into monomorphized
    /// allocation-free plans with bit-identical results.
    #[serde(default)]
    pub backend: KernelBackendKind,
    /// Launch-count threshold at which the specialized backend compiles a
    /// kernel.  Counters are pre-seeded from hotness estimates (static
    /// frequencies, or the PGO profile after retuning), so hot kernels
    /// reach the threshold immediately while cold ones keep interpreting.
    #[serde(default = "default_spec_threshold")]
    pub spec_threshold: u64,
}

fn default_drive_timeout_ms() -> u64 {
    60_000
}

fn default_spec_threshold() -> u64 {
    4
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        RuntimeOptions {
            scheduler: SchedulerKind::InlineDepth,
            gather_fusion: true,
            coarsen: true,
            eager: false,
            device_memory: 64 << 20, // 256 MB
            checked: false,
            retry: crate::resilience::RetryPolicy::default(),
            max_in_flight: 0,
            drive_timeout_ms: default_drive_timeout_ms(),
            timeline: crate::timeline::TimelineOptions::default(),
            parallel_workers: 0,
            plan_cache: false,
            broker: false,
            backend: KernelBackendKind::Interp,
            spec_threshold: default_spec_threshold(),
        }
    }
}

/// Builds the kernel backend an engine drives, seeding the specialized
/// backend's launch counters with per-kernel hotness estimates: the
/// aggregated PGO `profile` when one is available (post-retune), otherwise
/// the static invocation-frequency estimates of §D.1 — the same weights
/// that prioritize the auto-scheduler budget.
fn build_backend(
    options: &RuntimeOptions,
    analysis: &AnalysisResult,
    library: &KernelLibrary,
    profile: Option<&BTreeMap<KernelId, u64>>,
) -> Arc<dyn KernelBackend> {
    match options.backend {
        KernelBackendKind::Interp => Arc::new(InterpBackend),
        KernelBackendKind::Spec => {
            let mut backend = SpecializedBackend::new(library.len(), options.spec_threshold);
            match profile {
                Some(profile) => {
                    for (&kid, &weight) in profile {
                        backend.seed(kid, weight);
                    }
                }
                None => {
                    let freqs = acrobat_analysis::freq::estimate_frequencies(&analysis.module);
                    for block in &analysis.blocks.blocks {
                        for group in &block.groups {
                            let w = group
                                .sites
                                .iter()
                                .map(|s| freqs.get(s).copied().unwrap_or(1))
                                .max()
                                .unwrap_or(1);
                            backend.seed(library.kernel_id_for_group(group.id), w);
                        }
                    }
                }
            }
            Arc::new(backend)
        }
    }
}

/// The immutable compiled artifact shared by all concurrent mini-batches.
///
/// Everything in here is request-invariant: the kernel library generated by
/// codegen, the static-analysis results, the device cost model and the
/// resolved options.  An engine is never mutated after construction —
/// [`Engine::retuned`] builds a *new* engine for PGO re-scheduling.
#[derive(Debug)]
pub struct Engine {
    analysis: Arc<AnalysisResult>,
    library: Arc<KernelLibrary>,
    model: DeviceModel,
    options: RuntimeOptions,
    /// The shared flush-plan cache ([`crate::plan_cache`]).  Engine-resident
    /// so every context serving the same compiled model shares one warm
    /// set; engine swaps ([`Engine::retuned`]) build a fresh cache, which
    /// is the wholesale invalidation the PGO path needs.
    plan_cache: crate::plan_cache::PlanCache,
    /// The kernel-execution backend ([`acrobat_codegen::backend`]).
    /// Engine-resident for the same reason as the plan cache: its launch
    /// counters and compiled-kernel cache are shared lock-free by every
    /// pooled context, and an engine swap ([`Engine::retuned`]) builds a
    /// fresh backend, which is exactly the invalidation a retuned library
    /// needs.
    backend: Arc<dyn KernelBackend>,
}

impl Engine {
    /// Builds an engine from compile-time artifacts.
    pub fn new(
        analysis: Arc<AnalysisResult>,
        library: KernelLibrary,
        model: DeviceModel,
        options: RuntimeOptions,
    ) -> Engine {
        let backend = build_backend(&options, &analysis, &library, None);
        Engine {
            analysis,
            library: Arc::new(library),
            model,
            options,
            plan_cache: crate::plan_cache::PlanCache::new(),
            backend,
        }
    }

    /// The static-analysis results.
    pub fn analysis(&self) -> &Arc<AnalysisResult> {
        &self.analysis
    }

    /// The kernel library.
    pub fn library(&self) -> &KernelLibrary {
        &self.library
    }

    /// The device cost model.
    pub fn model(&self) -> &DeviceModel {
        &self.model
    }

    /// The resolved options.
    pub fn options(&self) -> &RuntimeOptions {
        &self.options
    }

    /// The shared flush-plan cache.
    pub fn plan_cache(&self) -> &crate::plan_cache::PlanCache {
        &self.plan_cache
    }

    /// The kernel-execution backend.
    pub fn backend(&self) -> &Arc<dyn KernelBackend> {
        &self.backend
    }

    /// Starts a fresh [`ExecutionContext`] (one mini-batch's mutable state)
    /// against this engine.
    pub fn new_context(self: &Arc<Engine>) -> ExecutionContext {
        ExecutionContext::new(Arc::clone(self))
    }

    /// Derives a new engine with a re-tuned kernel library (PGO, §D.1):
    /// clones the library, lets `retune` mutate the clone, and wraps the
    /// result.  In-flight contexts keep the old engine alive through their
    /// `Arc`; new requests pick up the retuned one.
    pub fn retuned(&self, retune: impl FnOnce(&mut KernelLibrary)) -> Engine {
        self.retuned_with_profile(None, retune)
    }

    /// [`Engine::retuned`] with an aggregated PGO profile (lane counts per
    /// kernel) that seeds the new engine's backend hotness counters: after
    /// a PGO retune, kernels the profile says are hot compile on their
    /// first launch against the new engine.
    pub fn retuned_with_profile(
        &self,
        profile: Option<&BTreeMap<KernelId, u64>>,
        retune: impl FnOnce(&mut KernelLibrary),
    ) -> Engine {
        let mut library = (*self.library).clone();
        retune(&mut library);
        // A retuned library can change batch schedules; stale plans and
        // stale compiled kernels must not survive the swap, so the new
        // engine starts with an empty plan cache and a freshly built
        // backend (in-flight contexts keep the old engine — and its
        // caches — alive through their `Arc`).
        let backend = build_backend(&self.options, &self.analysis, &library, profile);
        Engine {
            analysis: Arc::clone(&self.analysis),
            library: Arc::new(library),
            model: self.model,
            options: self.options,
            plan_cache: crate::plan_cache::PlanCache::new(),
            backend,
        }
    }
}

// `Engine` must stay shareable across serving threads without locks; keep
// this a compile-time guarantee.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
};

/// Idle contexts kept per pool; beyond this, released contexts are dropped.
const MAX_IDLE_CONTEXTS: usize = 8;

/// A small pool of idle [`ExecutionContext`]s, reused across mini-batches so
/// steady-state serving performs no context construction.
///
/// The pool is engine-aware: a context built against a superseded engine
/// (PGO swapped it, [`Engine::retuned`]) is discarded on acquire rather than
/// reused, so stale kernel schedules can never leak into new requests.  It
/// also quarantines: a context that observed a fault, cancellation or
/// deadline miss ([`ExecutionContext::tainted`]) is dropped on release —
/// its device arena, armed fault plan and partial DFG die with it rather
/// than being trusted to reset cleanly.
#[derive(Debug, Default)]
pub struct ContextPool {
    idle: Mutex<Vec<ExecutionContext>>,
    quarantined: std::sync::atomic::AtomicU64,
}

impl ContextPool {
    /// An empty pool.
    pub fn new() -> ContextPool {
        ContextPool::default()
    }

    /// Acquires a context for `engine`: reuses (and resets) an idle context
    /// belonging to the same engine `Arc`, otherwise constructs a fresh one.
    pub fn acquire(&self, engine: &Arc<Engine>) -> ExecutionContext {
        let mut idle = self.idle.lock();
        while let Some(mut ctx) = idle.pop() {
            if Arc::ptr_eq(ctx.engine(), engine) {
                drop(idle);
                ctx.reset();
                return ctx;
            }
            // Built against a superseded engine: drop it.
        }
        drop(idle);
        engine.new_context()
    }

    /// Returns a context to the pool (dropped if the pool is full, or
    /// quarantined — dropped and counted — if the context is tainted).
    pub fn release(&self, ctx: ExecutionContext) {
        if ctx.tainted() {
            self.quarantined.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return;
        }
        let mut idle = self.idle.lock();
        if idle.len() < MAX_IDLE_CONTEXTS {
            idle.push(ctx);
        }
    }

    /// Drops every idle context (called after an engine swap).
    pub fn clear(&self) {
        self.idle.lock().clear();
    }

    /// Number of idle contexts currently pooled.
    pub fn idle_count(&self) -> usize {
        self.idle.lock().len()
    }

    /// Number of tainted contexts quarantined (dropped at release) so far.
    pub fn quarantined_count(&self) -> u64 {
        self.quarantined.load(std::sync::atomic::Ordering::Relaxed)
    }
}
