//! Fibers for tensor-dependent control flow (§4.2, Fig. 3 of the paper).
//!
//! With tensor-dependent control flow, executing the unbatched program
//! sequentially per instance would force a DFG flush at every control-flow
//! decision of every instance — destroying batch parallelism.  ACROBAT
//! instead runs *all* instances concurrently; each runs until it cannot
//! progress without a tensor value, then suspends.  When nobody can
//! progress, the accumulated DFG is flushed once (executing the pending
//! work of *all* instances in batches), and everyone resumes.
//!
//! The paper uses Boost fibers (cooperative user-level stacks).  Here each
//! logical fiber is an OS thread coordinated by a [`FiberHub`]: the hub
//! tracks how many fibers are runnable vs suspended-at-a-sync-point, and the
//! driver thread flushes exactly when the runnable count reaches zero.  The
//! semantics (suspension points, flush-when-stuck, fork-join instance
//! parallelism) are identical; the fiber-switch *cost* is charged via the
//! device model's `fiber_switch_cost_us`, not measured from thread context
//! switches.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

/// Structured watchdog failure from [`FiberHub::drive_timeout`]: the hub
/// failed to reach a flush point (or termination) within the stall budget.
///
/// Carries a snapshot of the hub's counters so the error message pinpoints
/// *what* is stuck (a runnable fiber spinning, a fork-join parent blocked on
/// children, …) instead of a bare panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriveTimeout {
    /// The stall budget that elapsed.
    pub stalled_ms: u64,
    /// Fibers counted runnable when the watchdog fired.
    pub runnable: usize,
    /// Fibers waiting for a flush.
    pub waiting: usize,
    /// Fibers woken by a flush but not yet resumed.
    pub resuming: usize,
    /// Fork-join parents parked in [`FiberHub::join_while`].
    pub suspended: usize,
    /// Fork-join parents whose children have all finished but that have not
    /// re-entered the runnable count yet (the driver holds flushes for them).
    pub joinable: usize,
    /// Flush generation reached before the stall.
    pub generation: u64,
}

impl fmt::Display for DriveTimeout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fiber hub stalled for {}ms at generation {} \
             (runnable {}, waiting {}, resuming {}, suspended {}, joinable {})",
            self.stalled_ms,
            self.generation,
            self.runnable,
            self.waiting,
            self.resuming,
            self.suspended,
            self.joinable
        )
    }
}

impl std::error::Error for DriveTimeout {}

/// Handle for one fork-join group created by [`FiberHub::fork`]: children
/// exit through [`FiberHub::finish_child`] with it, the parent parks in
/// [`FiberHub::join_while`] with it.  The slot is recycled when the parent
/// resumes.
#[derive(Debug, Clone, Copy)]
pub struct JoinId(usize);

#[derive(Debug, Default)]
struct HubState {
    /// Fibers currently able to make progress.
    runnable: usize,
    /// Fibers suspended waiting for a DFG flush.
    waiting: usize,
    /// Fibers woken by a flush that have not yet resumed (the driver must
    /// not flush again until they have, or it would spin).
    resuming: usize,
    /// Fibers parked in [`FiberHub::join_while`] (fork-join parents
    /// blocked on children).  They do not block a flush while their
    /// children are live, but the driver must not report "everyone
    /// finished" while any remain — they resume and keep executing once
    /// their children finish.
    suspended: usize,
    /// Fork-join parents whose last child has finished but that have not
    /// resumed yet.  The last child's [`FiberHub::finish_child`] performs
    /// this handoff *inside the hub lock*, so the driver never flushes in
    /// the gap between "children done" and "parent re-registered" — the
    /// flush boundary (and therefore every DFG window) is deterministic,
    /// not a race between the parent's wakeup and the driver.
    joinable: usize,
    /// Live-children count per fork-join group (slab; slots recycled via
    /// `free_groups`).
    groups: Vec<u32>,
    /// Recycled slots of `groups`.
    free_groups: Vec<usize>,
    /// True while the driver is inside `flush` with the lock released.
    /// Nothing may become runnable while this is set: a fork-join parent
    /// whose children just finished must wait it out before resuming
    /// (otherwise it would mutate the DFG concurrently with the flush).
    flushing: bool,
    /// Incremented after every flush; waiters from older generations wake.
    generation: u64,
    /// Set by [`FiberHub::cancel`]: parked fibers drain (wake without a
    /// flush) instead of waiting forever, so a failed or abandoned drive
    /// never strands its fiber threads.
    cancelled: bool,
}

/// Coordination point between fibers and the flush driver.
#[derive(Debug, Default)]
pub struct FiberHub {
    state: Mutex<HubState>,
    cv: Condvar,
    /// Total suspensions observed (runtime statistic).
    switches: AtomicU64,
}

impl FiberHub {
    /// Creates a hub with no registered fibers.
    pub fn new() -> FiberHub {
        FiberHub::default()
    }

    /// Registers a new runnable fiber (call before spawning it).
    pub fn register(&self) {
        self.state.lock().runnable += 1;
    }

    /// Marks the calling fiber finished.
    pub fn finish(&self) {
        let mut st = self.state.lock();
        st.runnable -= 1;
        if st.runnable == 0 {
            self.cv.notify_all();
        }
    }

    /// Registers `children` runnable fibers as one fork-join group (call
    /// before spawning them, then park the parent with
    /// [`FiberHub::join_while`]).  Each child must exit via
    /// [`FiberHub::finish_child`] with the returned id.
    pub fn fork(&self, children: usize) -> JoinId {
        let mut st = self.state.lock();
        st.runnable += children;
        let slot = match st.free_groups.pop() {
            Some(s) => s,
            None => {
                st.groups.push(0);
                st.groups.len() - 1
            }
        };
        st.groups[slot] = children as u32;
        JoinId(slot)
    }

    /// Marks the calling fiber — a child of fork-join group `g` — finished.
    ///
    /// When the *last* child of the group finishes, the group's parent is
    /// atomically handed the baton (counted `joinable`) under the hub lock,
    /// so the driver holds any flush until the parent has resumed and
    /// reached its own next sync point.  This is what makes fiber-mode
    /// flush boundaries schedule-independent: without the handoff, the
    /// driver could flush in the instant between "children done" and
    /// "parent re-registered", splitting a window nondeterministically.
    pub fn finish_child(&self, g: JoinId) {
        let mut st = self.state.lock();
        st.runnable -= 1;
        st.groups[g.0] -= 1;
        if st.groups[g.0] == 0 {
            st.joinable += 1;
        }
        if st.runnable == 0 {
            self.cv.notify_all();
        }
    }

    /// Suspends the calling fiber until the next DFG flush completes — or
    /// until the hub is [`FiberHub::cancel`]led, which wakes it without a
    /// flush (callers then observe the run's poison/cancel state and
    /// unwind).
    pub fn wait_for_flush(&self) {
        self.switches.fetch_add(1, Ordering::Relaxed);
        let mut st = self.state.lock();
        st.runnable -= 1;
        st.waiting += 1;
        let my_gen = st.generation;
        if st.runnable == 0 {
            self.cv.notify_all(); // wake the driver
        }
        while st.generation == my_gen && !st.cancelled {
            self.cv.wait(&mut st);
        }
        // A cancel can land while the driver is mid-flush with the lock
        // released; wait the flush out so a draining fiber never mutates
        // the DFG (or trips the driver's runnable==0 assertion) during it.
        while st.flushing {
            self.cv.wait(&mut st);
        }
        st.waiting -= 1;
        if st.generation != my_gen {
            // Woken by a real flush: account the resume handshake.  A
            // cancel-drain without a flush has no resume accounting.
            st.resuming -= 1;
        }
        st.runnable += 1;
        if st.resuming == 0 {
            self.cv.notify_all(); // let the driver re-evaluate
        }
    }

    /// Runs `f` (joining the children of group `g`) with the calling fiber
    /// counted as not-runnable, so a flush can proceed while the parent
    /// blocks on its children (fork-join instance parallelism, §4.2).
    ///
    /// The resume is gated on no flush being in progress: `drive` releases
    /// the hub lock around its `flush` callback, so without the gate a
    /// parent whose children finished mid-flush would re-enter runnable
    /// state — and mutate the DFG — concurrently with the flush.  The
    /// matching `joinable` baton taken by the last child's
    /// [`FiberHub::finish_child`] is released here, letting the driver
    /// flush again once the parent is genuinely runnable.
    pub fn join_while<R>(&self, g: JoinId, f: impl FnOnce() -> R) -> R {
        {
            let mut st = self.state.lock();
            st.runnable -= 1;
            st.suspended += 1;
            if st.runnable == 0 {
                self.cv.notify_all();
            }
        }
        let r = f();
        let mut st = self.state.lock();
        while st.flushing {
            self.cv.wait(&mut st);
        }
        debug_assert_eq!(st.groups[g.0], 0, "join returned with live children");
        st.suspended -= 1;
        st.joinable -= 1;
        st.free_groups.push(g.0);
        st.runnable += 1;
        r
    }

    /// Drives the fiber pool: blocks until no fiber is runnable, then — if
    /// fibers are suspended at sync points — calls `flush` and wakes them;
    /// returns once every fiber has finished.
    ///
    /// Call from the coordinator thread after spawning all fibers.
    ///
    /// # Panics
    ///
    /// Panics if a fiber becomes runnable while `flush` runs — that would
    /// mean the flush raced a live fiber, which the protocol forbids (a
    /// fiber registered from inside [`FiberHub::join_while`] would do
    /// this; fork child fibers before joining on them).
    pub fn drive(&self, flush: impl FnMut()) {
        self.drive_timeout(flush, None).expect("unreachable: drive without a stall budget");
    }

    /// [`FiberHub::drive`] with a watchdog: if the hub fails to reach
    /// quiescence (a flush point or termination) within `stall`, returns a
    /// structured [`DriveTimeout`] instead of blocking forever.
    ///
    /// On timeout the caller owns recovery — typically poison the run and
    /// [`FiberHub::cancel`] so parked fibers drain and their threads join.
    ///
    /// # Errors
    ///
    /// [`DriveTimeout`] with a snapshot of the hub counters.
    ///
    /// # Panics
    ///
    /// Panics if a fiber becomes runnable while `flush` runs (see
    /// [`FiberHub::drive`]).
    pub fn drive_timeout(
        &self,
        mut flush: impl FnMut(),
        stall: Option<Duration>,
    ) -> Result<(), DriveTimeout> {
        loop {
            {
                let mut st = self.state.lock();
                // Wait for quiescence.  A fork-join parent inside
                // `join_while` with no waiting fibers is NOT termination:
                // it resumes once its children finish and may reach further
                // sync points that need this driver.  A `joinable` parent
                // (children all finished, resume imminent) holds the flush:
                // it is logically runnable, merely not rescheduled yet, and
                // flushing under it would split its window on a race.
                let mut stalled_since: Option<Instant> = None;
                while st.runnable > 0
                    || st.resuming > 0
                    || st.joinable > 0
                    || (st.waiting == 0 && st.suspended > 0)
                {
                    match stall {
                        None => self.cv.wait(&mut st),
                        Some(limit) => {
                            let started = *stalled_since.get_or_insert_with(Instant::now);
                            let elapsed = started.elapsed();
                            if elapsed >= limit {
                                return Err(DriveTimeout {
                                    stalled_ms: limit.as_millis() as u64,
                                    runnable: st.runnable,
                                    waiting: st.waiting,
                                    resuming: st.resuming,
                                    suspended: st.suspended,
                                    joinable: st.joinable,
                                    generation: st.generation,
                                });
                            }
                            let _ = self.cv.wait_for(&mut st, limit - elapsed);
                        }
                    }
                }
                if st.waiting == 0 {
                    return Ok(()); // everyone finished
                }
                if st.cancelled {
                    // Parked fibers are draining themselves; flushing for
                    // them would execute work for a dead run.
                    return Ok(());
                }
                st.flushing = true;
            }
            flush();
            let mut st = self.state.lock();
            assert_eq!(st.runnable, 0, "fiber became runnable during a flush");
            st.flushing = false;
            st.resuming = st.waiting;
            st.generation += 1;
            self.cv.notify_all();
        }
    }

    /// Cancels the hub: every fiber parked in [`FiberHub::wait_for_flush`]
    /// (now or later) wakes without a flush and drains, so fiber threads
    /// can always be joined even after a timed-out or abandoned drive.
    /// Idempotent.
    pub fn cancel(&self) {
        self.state.lock().cancelled = true;
        self.cv.notify_all();
    }

    /// Whether [`FiberHub::cancel`] was called.
    pub fn is_cancelled(&self) -> bool {
        self.state.lock().cancelled
    }

    /// Number of fiber suspensions observed so far.
    pub fn switch_count(&self) -> u64 {
        self.switches.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn fibers_sync_at_flush_points() {
        let hub = Arc::new(FiberHub::new());
        let flushes = Arc::new(AtomicUsize::new(0));
        let progress = Arc::new(AtomicUsize::new(0));

        let mut handles = Vec::new();
        for _ in 0..4 {
            hub.register();
            let hub = hub.clone();
            let progress = progress.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..3 {
                    progress.fetch_add(1, Ordering::SeqCst);
                    hub.wait_for_flush();
                }
                hub.finish();
            }));
        }
        {
            let flushes = flushes.clone();
            let progress = progress.clone();
            hub.drive(move || {
                let f = flushes.fetch_add(1, Ordering::SeqCst);
                // Every fiber progressed exactly once more before this flush.
                assert_eq!(progress.load(Ordering::SeqCst), (f + 1) * 4);
            });
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(flushes.load(Ordering::SeqCst), 3);
        assert_eq!(hub.switch_count(), 12);
    }

    #[test]
    fn fork_join_does_not_deadlock() {
        let hub = Arc::new(FiberHub::new());
        hub.register();
        let hub2 = hub.clone();
        let parent = std::thread::spawn(move || {
            // Parent forks two children, each of which syncs once.
            let g = hub2.fork(2);
            let mut kids = Vec::new();
            for _ in 0..2 {
                let h = hub2.clone();
                kids.push(std::thread::spawn(move || {
                    h.wait_for_flush();
                    h.finish_child(g);
                    7
                }));
            }
            let sum: i32 = hub2.join_while(g, || kids.into_iter().map(|k| k.join().unwrap()).sum());
            hub2.finish();
            sum
        });
        let flushes = Arc::new(AtomicUsize::new(0));
        let fc = flushes.clone();
        hub.drive(move || {
            fc.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(parent.join().unwrap(), 14);
        assert_eq!(flushes.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn join_handoff_makes_flush_boundaries_deterministic() {
        // A parent forks a child that finishes without syncing while a
        // sibling parks at a sync point.  Pre-handoff, the driver could
        // flush in the gap between the child's finish and the parent's
        // resume (1 or 2 flushes depending on the OS schedule); with the
        // joinable baton the parent's next wait always coalesces into the
        // sibling's flush — exactly one flush, on every schedule.
        for _ in 0..50 {
            let hub = Arc::new(FiberHub::new());
            hub.register(); // parent
            hub.register(); // sibling
            let h = hub.clone();
            let parent = std::thread::spawn(move || {
                let g = h.fork(1);
                let hc = h.clone();
                let kid = std::thread::spawn(move || hc.finish_child(g));
                h.join_while(g, || kid.join().unwrap());
                h.wait_for_flush();
                h.finish();
            });
            let h = hub.clone();
            let sibling = std::thread::spawn(move || {
                h.wait_for_flush();
                h.finish();
            });
            let flushes = Arc::new(AtomicUsize::new(0));
            let fc = flushes.clone();
            hub.drive(move || {
                fc.fetch_add(1, Ordering::SeqCst);
            });
            parent.join().unwrap();
            sibling.join().unwrap();
            assert_eq!(flushes.load(Ordering::SeqCst), 1, "flush boundary raced the join handoff");
        }
    }

    #[test]
    fn no_fibers_drive_returns_immediately() {
        let hub = FiberHub::new();
        hub.drive(|| panic!("no flush expected"));
    }

    #[test]
    fn drive_timeout_completes_normally_within_budget() {
        let hub = Arc::new(FiberHub::new());
        let mut handles = Vec::new();
        for _ in 0..2 {
            hub.register();
            let hub = hub.clone();
            handles.push(std::thread::spawn(move || {
                hub.wait_for_flush();
                hub.finish();
            }));
        }
        let flushes = Arc::new(AtomicUsize::new(0));
        let fc = flushes.clone();
        hub.drive_timeout(
            move || {
                fc.fetch_add(1, Ordering::SeqCst);
            },
            Some(std::time::Duration::from_secs(30)),
        )
        .expect("no stall");
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(flushes.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn drive_timeout_reports_stall_and_cancel_drains_parked_fibers() {
        let hub = Arc::new(FiberHub::new());
        // One fiber parks at a sync point; another stays "runnable" but
        // stuck on an external event the driver knows nothing about.
        hub.register();
        hub.register();
        let h = hub.clone();
        let parked = std::thread::spawn(move || {
            h.wait_for_flush();
            h.finish();
        });
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let h = hub.clone();
        let stuck = std::thread::spawn(move || {
            rx.recv().unwrap();
            h.finish();
        });

        let err = hub
            .drive_timeout(
                || panic!("quiescence is unreachable"),
                Some(std::time::Duration::from_millis(50)),
            )
            .expect_err("watchdog must fire");
        // The parked fiber may or may not have reached its sync point when
        // the watchdog fired; the stuck one is always counted runnable.
        assert!(err.runnable >= 1, "the stuck fiber shows up in the snapshot: {err}");
        assert_eq!(err.runnable + err.waiting, 2, "{err}");
        assert!(err.to_string().contains("stalled for 50ms"), "{err}");

        // Recovery: cancel drains the parked fiber without a flush, the
        // external event releases the stuck one, and both threads join —
        // no panicking watchdog, no stranded threads.
        hub.cancel();
        assert!(hub.is_cancelled());
        tx.send(()).unwrap();
        parked.join().unwrap();
        stuck.join().unwrap();
    }

    #[test]
    fn cancel_before_flush_skips_the_flush() {
        // All fibers reach the sync point, but the hub is cancelled: drive
        // must not execute work for a dead run, and the fibers drain.
        let hub = Arc::new(FiberHub::new());
        hub.cancel();
        let mut handles = Vec::new();
        for _ in 0..3 {
            hub.register();
            let hub = hub.clone();
            handles.push(std::thread::spawn(move || {
                hub.wait_for_flush(); // returns without a flush: cancelled
                hub.finish();
            }));
        }
        hub.drive(|| panic!("flush must not run for a cancelled hub"));
        for h in handles {
            h.join().unwrap();
        }
    }
}
