//! Runtime activity accounting — the Table 5 breakdown.

use serde::{Deserialize, Serialize};

/// Time and count accounting for one mini-batch execution.
///
/// The `*_us` fields are model-derived times (see
/// [`crate::device::DeviceModel`]); the count fields are exact observations.
/// `host_wall_us` is real measured wall-clock time of the host-side work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RuntimeStats {
    /// Host time constructing DFG nodes, µs.
    pub dfg_construction_us: f64,
    /// Host time spent in the scheduler, µs.
    pub scheduling_us: f64,
    /// Host↔device memory transfer time, µs.
    pub memcpy_us: f64,
    /// Device busy time in kernels (including gather kernels), µs.
    pub kernel_time_us: f64,
    /// CUDA-API-style time: launch overheads + transfer calls, µs.
    pub cuda_api_us: f64,
    /// Host time in fiber context switches, µs.
    pub fiber_us: f64,
    /// Modeled time recovered by device-timeline overlap (multi-stream,
    /// copy engine, host/device concurrency — [`crate::timeline`]), µs.
    /// Exactly `0.0` in the default serialized configuration, where the
    /// critical path equals the serial sum of charges.
    #[serde(default)]
    pub overlap_saved_us: f64,

    /// DFG nodes constructed.
    pub nodes: u64,
    /// Batched kernel launches.
    pub kernel_launches: u64,
    /// Explicit gather copies.
    pub gather_copies: u64,
    /// Bytes moved by explicit gathers.
    pub gather_bytes: u64,
    /// Gathers skipped because operands were contiguous.
    pub contiguous_hits: u64,
    /// Host↔device transfer operations.
    pub memcpy_ops: u64,
    /// Bytes moved host↔device.
    pub memcpy_bytes: u64,
    /// Total floating-point work executed.
    pub flops: u64,
    /// DFG flushes (sync points + the final drain).
    pub flushes: u64,
    /// Flushes aborted by a mid-plan device or kernel error.  Batches
    /// launched before the failure are accounted normally; the rest of the
    /// plan stays pending and replannable (see [`crate::ExecutionContext::flush`]).
    pub aborted_flushes: u64,
    /// Fiber suspensions.
    pub fiber_switches: u64,
    /// Transient-fault retries performed by the flush path.
    pub retries: u64,
    /// Modeled retry backoff charged as virtual time, µs.
    pub retry_backoff_us: f64,
    /// Graceful-degradation lane-cap reductions (batch-size downshifts)
    /// taken after repeated aborted flushes.
    pub downshifts: u64,
    /// Flushes served by remapping a frozen plan ([`crate::plan_cache`]).
    #[serde(default)]
    pub plan_cache_hits: u64,
    /// Flushes that scheduled fresh with the plan cache enabled (including
    /// signature bypasses after partial completions).
    #[serde(default)]
    pub plan_cache_misses: u64,
    /// Shared-cache entries evicted by this context's publishes.
    #[serde(default)]
    pub plan_cache_evictions: u64,
    /// Host time folding window signatures and remapping cached plans, µs.
    /// A sub-account of `scheduling_us` (already included there — not
    /// added again by [`RuntimeStats::total_us`]); exactly `0.0` with the
    /// plan cache off.
    #[serde(default)]
    pub plan_sig_us: f64,
    /// XOR digest of every signed window's [`crate::WindowSig`] audit
    /// token (`chain_token`: accumulators + length, never the run-varying
    /// base).  XOR accumulation makes the digest invariant to flush order
    /// and to how windows are partitioned across contexts/workers, so two
    /// runs of the same workload must produce the same digest bit for bit
    /// at any worker count — the run-to-run determinism gate the fiber
    /// tests and `scripts/check.sh` assert on.  `0` with the cache off.
    #[serde(default)]
    pub plan_sig_chain: u64,
    /// Flushes whose plan co-batched DFG nodes from two or more distinct
    /// requests of a broker cohort (cross-request continuous batching).
    /// Exactly `0` outside broker cohorts — a context only classifies its
    /// flushes when the cohort driver installs a request partition
    /// ([`crate::ExecutionContext::set_instance_partition`]).
    #[serde(default)]
    pub shared_flushes: u64,
    /// Flushes inside a broker dispatch whose plan touched a single
    /// request (no cross-request sharing at that sync point).  `0` outside
    /// broker cohorts, like [`RuntimeStats::shared_flushes`].
    #[serde(default)]
    pub solo_flushes: u64,
    /// Launches whose selection compiled a `(kernel, size-class)` pair on
    /// the spot (specialized backend only; `0` under the interpreter).
    #[serde(default)]
    pub backend_compiles: u64,
    /// Launches served by an already-compiled kernel.
    #[serde(default)]
    pub backend_hits: u64,
    /// Launches the specialized backend declined (kernel still below the
    /// compile threshold) and routed to the interpreter.  `0` under the
    /// interpreter backend — the interpreter is not a fallback for itself.
    #[serde(default)]
    pub backend_interp_falls: u64,

    /// High-water mark of simulated device memory, in `f32` elements.
    pub device_peak_elements: u64,
    /// Measured host wall-clock time, µs.
    pub host_wall_us: f64,
    /// Measured wall-clock time of the kernel *execute* phase (the part a
    /// [`acrobat_codegen::backend::KernelBackend`] replaces: interpreter
    /// dispatch or compiled-kernel execution, excluding prepare/gather,
    /// scheduling and finish), µs.  This is the host time the specialized
    /// backend attacks; the `kernel_backend` bench gates on it.
    #[serde(default)]
    pub exec_wall_us: f64,
    /// Measured wall-clock time of unbatched-program execution (the
    /// interpreter or AOT code driving DFG construction), µs.  This is where
    /// the Relay-VM-vs-AOT gap of Table 7 lives.
    pub program_host_us: f64,
}

impl RuntimeStats {
    /// Total modeled latency, µs: the per-account charges minus the time
    /// recovered by timeline overlap ([`crate::timeline`]) — i.e. the
    /// critical path through host lane, compute streams and copy engine.
    ///
    /// With overlap disabled (the default: one stream, no copy engine,
    /// synchronous host) `overlap_saved_us` is exactly `0.0` and this is
    /// the plain serial sum, as in the original scalar accumulator.
    pub fn total_us(&self) -> f64 {
        self.dfg_construction_us
            + self.scheduling_us
            + self.memcpy_us
            + self.kernel_time_us
            + self.cuda_api_us
            + self.fiber_us
            + self.retry_backoff_us
            - self.overlap_saved_us
    }

    /// Total modeled latency in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_us() / 1000.0
    }

    /// Modeled latency plus the *measured* host cost of executing the
    /// unbatched program (used by the VM-vs-AOT comparison, where the
    /// difference is real interpretation overhead rather than a model).
    pub fn total_with_host_us(&self) -> f64 {
        self.total_us() + self.program_host_us
    }

    /// Accumulates another run's statistics (for averaging across repeats).
    pub fn merge(&mut self, o: &RuntimeStats) {
        self.dfg_construction_us += o.dfg_construction_us;
        self.scheduling_us += o.scheduling_us;
        self.memcpy_us += o.memcpy_us;
        self.kernel_time_us += o.kernel_time_us;
        self.cuda_api_us += o.cuda_api_us;
        self.fiber_us += o.fiber_us;
        self.overlap_saved_us += o.overlap_saved_us;
        self.nodes += o.nodes;
        self.kernel_launches += o.kernel_launches;
        self.gather_copies += o.gather_copies;
        self.gather_bytes += o.gather_bytes;
        self.contiguous_hits += o.contiguous_hits;
        self.memcpy_ops += o.memcpy_ops;
        self.memcpy_bytes += o.memcpy_bytes;
        self.flops += o.flops;
        self.flushes += o.flushes;
        self.aborted_flushes += o.aborted_flushes;
        self.fiber_switches += o.fiber_switches;
        self.retries += o.retries;
        self.retry_backoff_us += o.retry_backoff_us;
        self.downshifts += o.downshifts;
        self.plan_cache_hits += o.plan_cache_hits;
        self.plan_cache_misses += o.plan_cache_misses;
        self.plan_cache_evictions += o.plan_cache_evictions;
        self.plan_sig_us += o.plan_sig_us;
        // XOR, not add: the digest stays a set-of-windows invariant under
        // any merge grouping (merge is how per-worker stats aggregate, and
        // the digest must not depend on the worker count).
        self.plan_sig_chain ^= o.plan_sig_chain;
        self.shared_flushes += o.shared_flushes;
        self.solo_flushes += o.solo_flushes;
        self.backend_compiles += o.backend_compiles;
        self.backend_hits += o.backend_hits;
        self.backend_interp_falls += o.backend_interp_falls;
        self.device_peak_elements = self.device_peak_elements.max(o.device_peak_elements);
        self.host_wall_us += o.host_wall_us;
        self.exec_wall_us += o.exec_wall_us;
        self.program_host_us += o.program_host_us;
    }

    /// Divides all quantities by `n` (averaging after [`RuntimeStats::merge`]).
    ///
    /// Count fields round to the nearest integer: a truncating division
    /// biased every averaged count downward (3 runs of 10, 10 and 11
    /// launches averaged to 10.33 and reported 10, but 11, 11, 10 reported
    /// 10 as well while 32/3 should read 11).
    pub fn scaled(&self, n: f64) -> RuntimeStats {
        let avg = |x: u64| (x as f64 / n).round() as u64;
        RuntimeStats {
            dfg_construction_us: self.dfg_construction_us / n,
            scheduling_us: self.scheduling_us / n,
            memcpy_us: self.memcpy_us / n,
            kernel_time_us: self.kernel_time_us / n,
            cuda_api_us: self.cuda_api_us / n,
            fiber_us: self.fiber_us / n,
            overlap_saved_us: self.overlap_saved_us / n,
            nodes: avg(self.nodes),
            kernel_launches: avg(self.kernel_launches),
            gather_copies: avg(self.gather_copies),
            gather_bytes: avg(self.gather_bytes),
            contiguous_hits: avg(self.contiguous_hits),
            memcpy_ops: avg(self.memcpy_ops),
            memcpy_bytes: avg(self.memcpy_bytes),
            flops: avg(self.flops),
            flushes: avg(self.flushes),
            aborted_flushes: avg(self.aborted_flushes),
            fiber_switches: avg(self.fiber_switches),
            retries: avg(self.retries),
            retry_backoff_us: self.retry_backoff_us / n,
            downshifts: avg(self.downshifts),
            plan_cache_hits: avg(self.plan_cache_hits),
            plan_cache_misses: avg(self.plan_cache_misses),
            plan_cache_evictions: avg(self.plan_cache_evictions),
            plan_sig_us: self.plan_sig_us / n,
            // A digest does not average; it passes through unchanged.
            plan_sig_chain: self.plan_sig_chain,
            shared_flushes: avg(self.shared_flushes),
            solo_flushes: avg(self.solo_flushes),
            backend_compiles: avg(self.backend_compiles),
            backend_hits: avg(self.backend_hits),
            backend_interp_falls: avg(self.backend_interp_falls),
            device_peak_elements: self.device_peak_elements,
            host_wall_us: self.host_wall_us / n,
            exec_wall_us: self.exec_wall_us / n,
            program_host_us: self.program_host_us / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_merge() {
        let mut a =
            RuntimeStats { kernel_time_us: 100.0, scheduling_us: 10.0, ..Default::default() };
        let b = RuntimeStats { kernel_time_us: 50.0, nodes: 7, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.kernel_time_us, 150.0);
        assert_eq!(a.nodes, 7);
        assert!((a.total_us() - 160.0).abs() < 1e-9);
        let avg = a.scaled(2.0);
        assert_eq!(avg.kernel_time_us, 75.0);
    }

    #[test]
    fn overlap_saved_reduces_total() {
        let s = RuntimeStats {
            kernel_time_us: 100.0,
            memcpy_us: 40.0,
            overlap_saved_us: 30.0,
            ..Default::default()
        };
        assert!((s.total_us() - 110.0).abs() < 1e-12);
        let mut a = s;
        a.merge(&s);
        assert_eq!(a.overlap_saved_us, 60.0);
        assert_eq!(a.scaled(2.0).overlap_saved_us, 30.0);
    }

    #[test]
    fn scaled_rounds_counts_to_nearest() {
        // 3 runs × (10, 10, 11) launches: the truncating average reported
        // 10 for 31/3 ≈ 10.33 (fine) but also 10 for 32/3 ≈ 10.67 (wrong).
        let mut acc = RuntimeStats::default();
        for launches in [10u64, 11, 11] {
            acc.merge(&RuntimeStats { kernel_launches: launches, ..Default::default() });
        }
        assert_eq!(acc.kernel_launches, 32);
        assert_eq!(acc.scaled(3.0).kernel_launches, 11, "round to nearest, not floor");
        let mut acc = RuntimeStats::default();
        for nodes in [10u64, 10, 11] {
            acc.merge(&RuntimeStats { nodes, ..Default::default() });
        }
        assert_eq!(acc.scaled(3.0).nodes, 10);
        // A count that divides exactly is unchanged.
        let s = RuntimeStats { flushes: 12, ..Default::default() };
        assert_eq!(s.scaled(4.0).flushes, 3);
    }
}
