//! Flush-plan memoization: structural window signatures → frozen plans.
//!
//! ACROBAT pushes batching work to compile time because re-deriving it per
//! invocation is wasted; this module applies the same logic to the *flush*:
//! production traffic draws from a small family of DFG shapes (the paper's
//! tree/sentence suites, any serving workload with repeated request
//! structure), so in steady state every scheduling run recomputes a plan
//! the runtime has already produced.  The cache turns those flushes into a
//! hash probe plus an O(n) remap.
//!
//! # Signature
//!
//! [`crate::dfg::WindowSig`] is folded incrementally during DFG
//! construction (amortizing the hash over `add_node`, where the metadata is
//! already in registers): per node it commits the kernel id, phase, depth,
//! shared-operand signature, arity, and each argument's *window-relative*
//! producer distance — the same packed keys the schedulers group on.  The
//! signature is therefore order-independent over lane identity: two windows
//! with identical structure hash equal no matter which request, instance
//! numbering or absolute id offsets produced them.  A clean window is by
//! construction a contiguous id range `base..base + n`, so a frozen plan
//! stores dense window positions and remapping onto a new window is a
//! single offset add per node.
//!
//! # Keying and invalidation
//!
//! The probe key mixes the signature with every configuration bit the plan
//! depends on — `(SchedulerKind, gather_fusion, coarsen, lane-cap
//! downshift state)` — so a resilience downshift or an ablation sweep can
//! never be served another configuration's plan.  The shared cache lives on
//! the [`crate::Engine`]; [`crate::Engine::retuned`] builds a *new* engine
//! (and with it a fresh cache), which is wholesale invalidation for free.
//! Contexts that observed a fault ([`crate::ExecutionContext::tainted`]) or
//! run downshifted keep read access but never publish
//! ([`CacheConfig::share`]), so a quarantined context cannot poison the
//! shared cache.
//!
//! # Concurrency
//!
//! The flush hot path stays zero-shared-lock in steady state: each context
//! probes its private direct-mapped [`PlanL1`] first and only falls through
//! to the sharded, read-locked [`PlanCache`] on an L1 miss.  Probes verify
//! both signature accumulators plus the window length, so a false hit
//! requires a simultaneous 2×64-bit collision; checked mode additionally
//! re-schedules every hit from scratch and asserts bit-for-bit equality
//! ([`crate::check::validate_cached_plan`]).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use acrobat_codegen::KernelId;
use parking_lot::RwLock;

use crate::dfg::{Dfg, WindowSig};
use crate::scheduler::{self, Plan, SchedulerKind, SchedulerScratch};

/// splitmix64 finalizer (the workspace-standard mixer).
#[inline]
fn mix64(v: u64) -> u64 {
    let mut x = v.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// The configuration bits a frozen plan depends on, mixed into every probe
/// key so stale plans can never cross configurations.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Scheduling algorithm the plan was produced by.
    pub kind: SchedulerKind,
    /// Gather-fusion setting (execution layout baked into the launch
    /// template).
    pub gather_fusion: bool,
    /// Grain-size coarsening setting.
    pub coarsen: bool,
    /// Active graceful-degradation lane cap (0 = none): a downshifted
    /// context must not share plans with full-size ones.
    pub lane_cap: usize,
    /// Whether misses may publish into the shared cache.  `false` for
    /// tainted (quarantined) or downshifted contexts.
    pub share: bool,
}

impl CacheConfig {
    /// Derives the config from resolved runtime options plus the
    /// context's resilience state.
    pub fn from_options(options: &crate::RuntimeOptions, lane_cap: usize, tainted: bool) -> Self {
        CacheConfig {
            kind: options.scheduler,
            gather_fusion: options.gather_fusion,
            coarsen: options.coarsen,
            lane_cap,
            share: !tainted && lane_cap == 0,
        }
    }

    /// Packs the configuration into the key-mixing bits.
    fn bits(&self) -> u64 {
        let kind = match self.kind {
            SchedulerKind::InlineDepth => 1u64,
            SchedulerKind::DynamicDepth => 2,
            SchedulerKind::Agenda => 3,
        };
        kind | (self.gather_fusion as u64) << 8
            | (self.coarsen as u64) << 9
            | (self.lane_cap as u64) << 16
    }
}

/// The probe key: window signature mixed with the configuration bits.
///
/// The key only *routes* the probe; it is not trusted for identity.  In
/// particular `bits()` truncates `lane_cap` to 48 bits, so two distinct
/// configurations can alias to one key — entries therefore store their
/// exact configuration and [`CachedPlan::matches`] verifies it field by
/// field before a hit is served.
fn probe_key(cfg: &CacheConfig, win: &WindowSig) -> u64 {
    mix64(win.sig ^ mix64(cfg.bits()))
}

/// Outcome of one [`plan_cached`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The plan was served by remapping a frozen entry (L1 or shared).
    Hit,
    /// The window was scheduled fresh and (where allowed) published;
    /// `evicted` counts shared-cache entries displaced by the insert.
    Miss {
        /// Entries evicted from the shared cache by this insert.
        evicted: u64,
    },
    /// No clean window signature was available (a partial completion —
    /// eager drain or aborted-flush retry — dirtied it); scheduled fresh,
    /// nothing published.
    Bypass,
}

/// A plan frozen in window-relative coordinates, plus its batch-binding
/// layout template (the kernel launched per batch).
#[derive(Debug)]
pub struct CachedPlan {
    /// Signature of the origin window (`base` is not used for matching —
    /// the whole point is that the structure recurs at new offsets).
    sig: WindowSig,
    /// Scheduler the plan was produced by (exact-match verified on probe:
    /// the probe key is lossy, entries are not).
    kind: SchedulerKind,
    /// Gather-fusion setting the plan was produced under.
    gather_fusion: bool,
    /// Coarsening setting the plan was produced under.
    coarsen: bool,
    /// Full-width lane cap the plan was produced under.  `bits()` packs
    /// this into 48 key bits, so after a deep lane-cap downshift two
    /// different caps can alias to one probe key — this field is what
    /// actually rejects the stale entry.
    lane_cap: usize,
    /// *Canonical window positions* of [`Plan::nodes`]: entry `i` is
    /// `canon_pos(plan.nodes[i])` — the window offset for sequential
    /// windows, the lane-sorted rank in lane-canonical mode.
    nodes: Box<[u32]>,
    /// Flat-CSR batch boundaries, copied verbatim.
    offsets: Box<[u32]>,
    /// Per-batch kernel — the binding-layout template a hit dispatches
    /// with, and what checked mode verifies against the live DFG.
    kernels: Box<[KernelId]>,
    /// Modeled elementary decisions of the frozen plan (the decisions
    /// contract survives memoization unchanged).
    decisions: u64,
}

impl CachedPlan {
    /// Freezes a freshly scheduled plan for the window `win`, produced
    /// under configuration `cfg`.  Node references are stored in canonical
    /// window coordinates ([`Dfg::canon_pos`]), which for lane-canonical
    /// windows are interleave-invariant — the property that lets a plan
    /// frozen under one fiber interleaving be replayed under any other.
    pub fn freeze(dfg: &Dfg, plan: &Plan, win: &WindowSig, cfg: &CacheConfig) -> CachedPlan {
        debug_assert_eq!(plan.num_nodes(), win.n as usize, "plan must cover the window");
        CachedPlan {
            sig: *win,
            kind: cfg.kind,
            gather_fusion: cfg.gather_fusion,
            coarsen: cfg.coarsen,
            lane_cap: cfg.lane_cap,
            nodes: plan.nodes.iter().map(|id| dfg.canon_pos(*id)).collect(),
            offsets: plan.offsets.clone().into_boxed_slice(),
            kernels: plan.batches().map(|b| dfg.node(b[0]).kernel).collect(),
            decisions: plan.decisions,
        }
    }

    /// Whether this entry is the plan for window `win` under configuration
    /// `cfg`: both signature accumulators, the window length *and* every
    /// configuration field must agree exactly — probe-key aliasing (e.g.
    /// two lane caps colliding in `bits()`'s 48-bit pack) is rejected
    /// here, never served.
    pub fn matches(&self, win: &WindowSig, cfg: &CacheConfig) -> bool {
        self.sig.sig == win.sig
            && self.sig.check == win.check
            && self.sig.n == win.n
            && self.kind == cfg.kind
            && self.gather_fusion == cfg.gather_fusion
            && self.coarsen == cfg.coarsen
            && self.lane_cap == cfg.lane_cap
    }

    /// Rebinds the frozen plan onto the current window of `dfg`: one
    /// canonical-position → id lookup per node ([`Dfg::id_at_canon`] — an
    /// offset add for sequential windows), no allocation when `out` has
    /// capacity.
    pub fn remap_into(&self, dfg: &Dfg, out: &mut Plan) {
        out.clear();
        out.nodes.extend(self.nodes.iter().map(|&p| dfg.id_at_canon(p)));
        out.offsets.extend_from_slice(&self.offsets);
        out.decisions = self.decisions;
    }

    /// The per-batch kernel template.
    pub fn batch_kernels(&self) -> &[KernelId] {
        &self.kernels
    }
}

/// L1 slot count (power of two).
const L1_SLOTS: usize = 64;

/// Per-context direct-mapped front cache: absorbs steady-state probes so
/// the flush path touches no shared state at all on a warm shape.
/// Retained across [`crate::ExecutionContext`] resets (a pooled context's
/// warm set *is* the steady state).
#[derive(Debug)]
pub struct PlanL1 {
    slots: Vec<Option<(u64, Arc<CachedPlan>)>>,
}

impl Default for PlanL1 {
    fn default() -> Self {
        PlanL1::new()
    }
}

impl PlanL1 {
    /// An empty L1.
    pub fn new() -> PlanL1 {
        PlanL1 { slots: vec![None; L1_SLOTS] }
    }

    /// Drops every entry (tests and engine-swap hygiene).
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
    }

    /// The resident entry for `key`, iff it verifies against `win` *and*
    /// `cfg` (full-field match — see [`CachedPlan::matches`]).  Public so
    /// property tests can exercise the aliasing-rejection path directly.
    pub fn get(&self, key: u64, win: &WindowSig, cfg: &CacheConfig) -> Option<Arc<CachedPlan>> {
        match &self.slots[key as usize & (L1_SLOTS - 1)] {
            Some((k, e)) if *k == key && e.matches(win, cfg) => Some(Arc::clone(e)),
            _ => None,
        }
    }

    /// Installs `entry` in `key`'s direct-mapped slot.
    pub fn insert(&mut self, key: u64, entry: Arc<CachedPlan>) {
        self.slots[key as usize & (L1_SLOTS - 1)] = Some((key, entry));
    }
}

/// One shard of the shared cache.  The FIFO mirrors the map's key set so
/// eviction order is deterministic (hash-map iteration order is not).
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<u64, Arc<CachedPlan>>,
    fifo: VecDeque<u64>,
}

/// Default shard count (power of two).
const DEFAULT_SHARDS: usize = 16;
/// Default per-shard entry capacity.
const DEFAULT_SHARD_CAPACITY: usize = 128;

/// The engine-resident shared plan cache: sharded `RwLock`s so concurrent
/// flush paths take only a read lock, and only on an L1 miss.
#[derive(Debug)]
pub struct PlanCache {
    shards: Box<[RwLock<Shard>]>,
    shard_capacity: usize,
    evictions: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new()
    }
}

impl PlanCache {
    /// A cache with the default geometry (16 shards × 128 entries).
    pub fn new() -> PlanCache {
        PlanCache::with_capacity(DEFAULT_SHARDS, DEFAULT_SHARD_CAPACITY)
    }

    /// A cache with explicit geometry — tests force tiny capacities to
    /// stress collision/eviction behavior.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is not a power of two or `shard_capacity` is 0.
    pub fn with_capacity(shards: usize, shard_capacity: usize) -> PlanCache {
        assert!(shards.is_power_of_two(), "shard count must be a power of two");
        assert!(shard_capacity > 0, "shard capacity must be positive");
        PlanCache {
            shards: (0..shards).map(|_| RwLock::new(Shard::default())).collect(),
            shard_capacity,
            evictions: AtomicU64::new(0),
        }
    }

    /// The shard for `key`; high bits select so the choice does not
    /// correlate with L1 slots or the in-shard hash.
    fn shard(&self, key: u64) -> &RwLock<Shard> {
        &self.shards[(key >> 48) as usize & (self.shards.len() - 1)]
    }

    fn get(&self, key: u64, win: &WindowSig, cfg: &CacheConfig) -> Option<Arc<CachedPlan>> {
        let shard = self.shard(key).read();
        match shard.map.get(&key) {
            Some(e) if e.matches(win, cfg) => Some(Arc::clone(e)),
            _ => None,
        }
    }

    /// Inserts (or refreshes) an entry; returns how many entries FIFO
    /// eviction displaced.
    fn insert(&self, key: u64, entry: Arc<CachedPlan>) -> u64 {
        let mut shard = self.shard(key).write();
        let mut evicted = 0u64;
        if shard.map.insert(key, entry).is_none() {
            shard.fifo.push_back(key);
            while shard.map.len() > self.shard_capacity {
                let old = shard.fifo.pop_front().expect("fifo mirrors map keys");
                debug_assert_ne!(old, key, "capacity >= 1 keeps the new key resident");
                if shard.map.remove(&old).is_some() {
                    evicted += 1;
                }
            }
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        evicted
    }

    /// Total entries currently resident (diagnostics).
    pub fn entry_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().map.len()).sum()
    }

    /// Total entries ever evicted (diagnostics).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Drops every entry (tests; engine swaps get a fresh cache instead).
    pub fn clear(&self) {
        for s in self.shards.iter() {
            let mut s = s.write();
            s.map.clear();
            s.fifo.clear();
        }
    }
}

/// The cache-assisted scheduling entry point, shared by the flush path,
/// the benchmarks and the tests: probes L1 then the shared cache, remaps
/// on a hit, and falls back to [`scheduler::plan_into`] (freezing and
/// publishing the result) on a miss.
pub fn plan_cached(
    cfg: &CacheConfig,
    dfg: &mut Dfg,
    scratch: &mut SchedulerScratch,
    l1: &mut PlanL1,
    shared: &PlanCache,
    out: &mut Plan,
) -> CacheOutcome {
    // `&mut` because lane-canonical windows derive (and memoize) their
    // canonical order on first signature access; repeat calls are O(1).
    let Some(win) = dfg.window_signature() else {
        scheduler::plan_into(cfg.kind, dfg, scratch, out);
        return CacheOutcome::Bypass;
    };
    let key = probe_key(cfg, &win);
    if let Some(entry) = l1.get(key, &win, cfg) {
        entry.remap_into(dfg, out);
        return CacheOutcome::Hit;
    }
    if let Some(entry) = shared.get(key, &win, cfg) {
        entry.remap_into(dfg, out);
        l1.insert(key, entry);
        return CacheOutcome::Hit;
    }
    scheduler::plan_into(cfg.kind, dfg, scratch, out);
    let entry = Arc::new(CachedPlan::freeze(dfg, out, &win, cfg));
    let evicted = if cfg.share { shared.insert(key, Arc::clone(&entry)) } else { 0 };
    l1.insert(key, entry);
    CacheOutcome::Miss { evicted }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acrobat_codegen::KernelId;

    fn cfg(kind: SchedulerKind) -> CacheConfig {
        CacheConfig { kind, gather_fusion: true, coarsen: true, lane_cap: 0, share: true }
    }

    /// A two-level chain window: `n` roots feeding `n` dependents.
    fn build_window(dfg: &mut Dfg, n: usize) {
        for i in 0..n {
            let (_, o) = dfg.add_node(KernelId(0), i, 0, 0, 7, vec![], 1);
            dfg.add_node(KernelId(1), i, 1, 0, 7, vec![o[0]], 1);
        }
    }

    #[test]
    fn second_identical_window_hits_and_remaps() {
        let mut mem = acrobat_tensor::DeviceMem::new(1 << 16);
        let mut dfg = Dfg::new();
        dfg.set_signature_tracking(true);
        build_window(&mut dfg, 4);

        let cache = PlanCache::new();
        let mut l1 = PlanL1::new();
        let mut scratch = SchedulerScratch::new();
        let mut plan = Plan::default();
        let c = cfg(SchedulerKind::InlineDepth);

        let first = plan_cached(&c, &mut dfg, &mut scratch, &mut l1, &cache, &mut plan);
        assert!(matches!(first, CacheOutcome::Miss { .. }));
        let first_batches = plan.to_batches();

        // Drain the window, then rebuild the same structure at new ids.
        let pending: Vec<_> = plan.batches().map(|b| b.to_vec()).collect();
        for batch in pending {
            let outs = vec![(0..batch.len())
                .map(|_| mem.upload(&acrobat_tensor::Tensor::ones(&[1])).unwrap())
                .collect()];
            dfg.complete_batch(&batch, outs);
        }
        build_window(&mut dfg, 4);
        let hit = plan_cached(&c, &mut dfg, &mut scratch, &mut l1, &cache, &mut plan);
        assert_eq!(hit, CacheOutcome::Hit);

        // The remapped plan must be the fresh plan shifted by the window
        // base delta (8 nodes per window).
        let shifted: Vec<Vec<crate::NodeId>> = first_batches
            .iter()
            .map(|b| b.iter().map(|id| crate::NodeId(id.0 + 8)).collect())
            .collect();
        assert_eq!(plan.to_batches(), shifted);
    }

    #[test]
    fn partial_completion_bypasses() {
        let mut mem = acrobat_tensor::DeviceMem::new(1 << 16);
        let mut dfg = Dfg::new();
        dfg.set_signature_tracking(true);
        build_window(&mut dfg, 2);
        let roots: Vec<_> =
            dfg.pending().iter().copied().filter(|&id| dfg.node(id).depth == 0).collect();
        let t = mem.upload(&acrobat_tensor::Tensor::ones(&[1])).unwrap();
        dfg.complete_node(roots[0], vec![t]);

        let cache = PlanCache::new();
        let mut l1 = PlanL1::new();
        let mut scratch = SchedulerScratch::new();
        let mut plan = Plan::default();
        let out = plan_cached(
            &cfg(SchedulerKind::InlineDepth),
            &mut dfg,
            &mut scratch,
            &mut l1,
            &cache,
            &mut plan,
        );
        assert_eq!(out, CacheOutcome::Bypass);
        assert_eq!(cache.entry_count(), 0, "bypass must not publish");
    }

    #[test]
    fn configs_do_not_share_entries() {
        let mut dfg = Dfg::new();
        dfg.set_signature_tracking(true);
        build_window(&mut dfg, 3);
        let cache = PlanCache::new();
        let mut scratch = SchedulerScratch::new();
        let mut plan = Plan::default();
        for kind in [SchedulerKind::InlineDepth, SchedulerKind::DynamicDepth, SchedulerKind::Agenda]
        {
            // Fresh L1 per config: the probe must miss in the *shared*
            // cache, not be saved by L1 slot separation.
            let mut l1 = PlanL1::new();
            let out = plan_cached(&cfg(kind), &mut dfg, &mut scratch, &mut l1, &cache, &mut plan);
            assert!(matches!(out, CacheOutcome::Miss { .. }), "{kind:?} must miss");
        }
        // A downshifted context (lane_cap != 0) probes a different key and
        // must not publish.
        let mut l1 = PlanL1::new();
        let down = CacheConfig { lane_cap: 2, share: false, ..cfg(SchedulerKind::InlineDepth) };
        let out = plan_cached(&down, &mut dfg, &mut scratch, &mut l1, &cache, &mut plan);
        assert!(matches!(out, CacheOutcome::Miss { .. }));
        assert_eq!(cache.entry_count(), 3, "no-share miss must not publish");
    }

    #[test]
    fn tiny_capacity_evicts_fifo() {
        let cache = PlanCache::with_capacity(1, 1);
        let mut scratch = SchedulerScratch::new();
        let mut plan = Plan::default();
        let c = cfg(SchedulerKind::InlineDepth);
        let mut mem = acrobat_tensor::DeviceMem::new(1 << 16);

        // Two structurally different windows, alternating: capacity 1
        // forces an eviction on every publish after the first.
        let mut dfg = Dfg::new();
        dfg.set_signature_tracking(true);
        for round in 0..4u64 {
            let shape = 2 + (round % 2) as usize;
            build_window(&mut dfg, shape);
            let mut l1 = PlanL1::new();
            let out = plan_cached(&c, &mut dfg, &mut scratch, &mut l1, &cache, &mut plan);
            match out {
                CacheOutcome::Miss { evicted } => assert_eq!(evicted, u64::from(round > 0)),
                other => panic!("round {round}: expected miss, got {other:?}"),
            }
            let batches: Vec<_> = plan.batches().map(|b| b.to_vec()).collect();
            for batch in batches {
                let outs = vec![(0..batch.len())
                    .map(|_| mem.upload(&acrobat_tensor::Tensor::ones(&[1])).unwrap())
                    .collect()];
                dfg.complete_batch(&batch, outs);
            }
        }
        assert_eq!(cache.evictions(), 3);
        assert_eq!(cache.entry_count(), 1);
    }
}
