//! Checked mode: flush-invariant validation and a deterministic explorer
//! for the [`crate::FiberHub`] fiber/flush protocol.
//!
//! Auto-batching is only sound if it is *semantically invisible* — batched
//! execution must be bit-for-bit equivalent to unbatched eager execution.
//! PR 1 rebuilt the flush hot path around incremental indices and
//! allocation-free planning, so the equivalence now rests on invariants
//! that are easy to break silently.  This module enforces them at runtime
//! when [`crate::RuntimeOptions::checked`] is set:
//!
//! * every plan is an exact partition of the pending set,
//! * batches respect topological dependences and agree on
//!   `(kernel, shared_sig)`,
//! * the bucket/pending/`pending_pos` indices stay mutually consistent
//!   ([`crate::Dfg::verify_consistent`]),
//! * values transition Pending→Ready exactly once,
//! * [`crate::scheduler::Plan::decisions`] and the batch partition itself
//!   match the reference schedulers in [`crate::scheduler::reference`].
//!
//! All checks are panics: an invariant violation is a bug in the runtime,
//! never a recoverable condition.  With `checked` off (the default) none of
//! this code runs — the hot path pays one branch per flush.
//!
//! The [`hubsim`] submodule is the protocol explorer: a single-threaded
//! model of [`crate::FiberHub`] driven by seeded interleavings, standing in
//! for `loom` (dependencies are fixed).  It detects flushes overlapping
//! runnable fibers, lost wakeups, counter underflows and non-termination,
//! asserts switch-count confluence, and bounds flush counts to a
//! schedule-independence envelope (exact for fork-free traces).

use crate::dfg::{Dfg, NodeId};
use crate::scheduler::{self, Plan, SchedulerKind};

/// Validates one flush of the runtime end to end.
///
/// Created by [`FlushChecker::validate_plan`] before the first batch
/// launches; fed every completed batch via [`FlushChecker::after_batch`];
/// closed out by [`FlushChecker::finish`] when the flush completes.
#[derive(Debug)]
pub struct FlushChecker {
    /// Planned nodes not yet observed complete.
    remaining: usize,
}

impl FlushChecker {
    /// Checks a freshly produced plan against the pending set, the
    /// dependence structure, the batching compatibility rule and the
    /// reference schedulers.
    ///
    /// # Panics
    ///
    /// Panics on any invariant violation (a runtime bug).
    pub fn validate_plan(dfg: &Dfg, plan: &Plan, kind: SchedulerKind) -> FlushChecker {
        // The plan must partition the pending set exactly: every pending
        // node once, nothing else.
        let mut planned: Vec<NodeId> = plan.batches().flatten().copied().collect();
        planned.sort_unstable();
        assert!(
            planned.windows(2).all(|w| w[0] < w[1]),
            "checked mode: plan schedules a node more than once"
        );
        let mut pending = dfg.pending().to_vec();
        pending.sort_unstable();
        assert_eq!(
            planned, pending,
            "checked mode: plan is not an exact partition of the pending set"
        );

        // Per batch: one (kernel, shared_sig) class, outputs still pending,
        // and every pending-produced argument launched in an earlier batch.
        let mut done: std::collections::HashSet<NodeId> =
            std::collections::HashSet::with_capacity(planned.len());
        for batch in plan.batches() {
            let head = dfg.node(batch[0]);
            for &id in batch {
                let n = dfg.node(id);
                assert_eq!(
                    (n.kernel, n.shared_sig),
                    (head.kernel, head.shared_sig),
                    "checked mode: batch mixes (kernel, shared_sig) classes"
                );
                assert!(!n.executed, "checked mode: plan schedules an executed node");
                for &v in &n.outputs {
                    assert!(
                        dfg.tensor(v).is_none(),
                        "checked mode: planned node {id:?} already has a Ready output"
                    );
                }
                for a in &n.args {
                    if let Some(p) = dfg.producer(*a) {
                        assert!(
                            done.contains(&p),
                            "checked mode: {id:?} launches before its dependency {p:?}"
                        );
                    }
                }
            }
            done.extend(batch.iter().copied());
        }

        // The accounting contract: the optimized scheduler must produce the
        // reference partition and charge the reference decision count.
        let reference = scheduler::reference::plan(kind, dfg);
        assert_eq!(
            plan.to_batches(),
            reference.to_batches(),
            "checked mode: {kind:?} diverges from the reference partition"
        );
        assert_eq!(
            plan.decisions, reference.decisions,
            "checked mode: {kind:?} decision count diverges from the reference"
        );

        if let Err(e) = dfg.verify_consistent() {
            panic!("checked mode: DFG inconsistent before flush: {e}");
        }
        FlushChecker { remaining: planned.len() }
    }

    /// Checks the post-conditions of one completed batch: every node
    /// executed, off the pending set, with all outputs materialized (the
    /// Pending→Ready transition happened, and `complete_batch` enforces it
    /// happens at most once).
    ///
    /// # Panics
    ///
    /// Panics on any invariant violation.
    pub fn after_batch(&mut self, dfg: &Dfg, batch: &[NodeId]) {
        for &id in batch {
            let n = dfg.node(id);
            assert!(n.executed, "checked mode: completed node {id:?} not marked executed");
            assert!(!dfg.is_pending(id), "checked mode: completed node {id:?} still pending");
            for &v in &n.outputs {
                assert!(
                    dfg.tensor(v).is_some(),
                    "checked mode: completed node {id:?} output {v:?} not materialized"
                );
            }
        }
        self.remaining -= batch.len();
    }

    /// Closes out a successful flush: the whole plan ran, nothing is left
    /// pending, and the DFG indices are consistent.
    ///
    /// # Panics
    ///
    /// Panics on any invariant violation.
    pub fn finish(self, dfg: &Dfg) {
        assert_eq!(self.remaining, 0, "checked mode: flush completed only part of its plan");
        assert!(!dfg.has_pending(), "checked mode: pending nodes survived a full flush");
        if let Err(e) = dfg.verify_consistent() {
            panic!("checked mode: DFG inconsistent after flush: {e}");
        }
    }
}

/// Checked-mode gate for plan-cache hits ([`crate::plan_cache`]): re-runs
/// the optimized scheduler from scratch on the live pending window and
/// asserts the cached, remapped plan is bit-for-bit identical — batch
/// partition, launch order, flat-CSR layout, decision count — and that
/// every batch's binding layout (kernel, shared-operand signature) is
/// homogeneous on the *current* DFG, not just the one the plan was frozen
/// from.  The differential fuzzer runs the whole config matrix in checked
/// mode, so every hit it produces passes through here.
///
/// # Panics
///
/// Panics if the cached plan diverges from a fresh schedule in any way (a
/// signature collision or a remap bug — both runtime bugs).
pub fn validate_cached_plan(dfg: &Dfg, cached: &Plan, kind: SchedulerKind) {
    let mut scratch = scheduler::SchedulerScratch::new();
    let mut fresh = Plan::default();
    scheduler::plan_into(kind, dfg, &mut scratch, &mut fresh);
    assert_eq!(
        cached.decisions, fresh.decisions,
        "checked mode: cached plan's decision count diverges from a fresh schedule"
    );
    assert!(
        *cached == fresh,
        "checked mode: cached plan is not bit-identical to a fresh schedule \
         (cached {:?} vs fresh {:?})",
        cached.to_batches(),
        fresh.to_batches()
    );
    for batch in cached.batches() {
        let head = dfg.node(batch[0]);
        for &id in batch {
            let n = dfg.node(id);
            assert_eq!(
                (n.kernel, n.shared_sig),
                (head.kernel, head.shared_sig),
                "checked mode: cached batch binding layout is not homogeneous on the live DFG"
            );
        }
    }
}

pub mod hubsim {
    //! Deterministic single-threaded explorer for the fiber/flush protocol.
    //!
    //! [`crate::FiberHub`] coordinates OS threads with a mutex, a condvar
    //! and five counters; its bugs are interleaving bugs.  This simulator
    //! replays the protocol's lock-section-granularity transitions —
    //! either over seeded random schedules ([`run`] / [`explore`]) or over
    //! the **entire reachable state space** ([`exhaustive`], loom-style) —
    //! and checks the safety and liveness properties directly:
    //!
    //! * **no flush overlaps a runnable fiber** — the driver releases the
    //!   hub lock around its flush callback, so this is exactly the window
    //!   the [`FiberOp::Fork`] resume race (fixed in this PR) raced into;
    //! * **no lost wakeups / deadlock** — if no actor can step and not
    //!   everyone finished, the schedule found a stuck state;
    //! * **no counter underflow**;
    //! * **termination** within a step budget;
    //! * **schedule independence** — the switch count equals the number of
    //!   sync points in the trace, on every interleaving; [`explore`]
    //!   asserts this confluence.  Flush counts are schedule-independent
    //!   too, fork-join traces included: the join-handoff protocol
    //!   ([`crate::FiberHub::finish_child`] hands the parent a `joinable`
    //!   baton under the hub lock, and the driver holds flushes while one
    //!   is outstanding) closed the historical benign race where the driver
    //!   could flush in the gap between "children finished" and "parent
    //!   re-registered", splitting one window into two on some schedules.
    //!   [`explore`] still reports the observed
    //!   `[flushes_min, flushes_max]` envelope and [`exhaustive`] the tight
    //!   one over all schedules — under the current protocol tests assert
    //!   they are *exact* (`min == max`) on every trace, which is what
    //!   makes fiber-mode DFG window boundaries (and therefore plan-cache
    //!   signature streams) deterministic run to run.
    //!
    //! `legacy = true` replays the pre-fix protocol (resume not gated on an
    //! in-progress flush; driver returns while fork-join parents are still
    //! suspended; no join handoff) and exists so regression tests can prove
    //! the explorer actually finds those bugs.

    /// One action in a fiber's script.
    #[derive(Debug, Clone)]
    pub enum FiberOp {
        /// Suspend at a sync point until the next flush
        /// (`FiberHub::wait_for_flush`).
        Wait,
        /// Fork one child fiber per script (`FiberHub::fork`), then park
        /// joining them (`FiberHub::join_while`).
        Fork(Vec<Vec<FiberOp>>),
    }

    /// Protocol outcome of one (or many agreeing) simulated schedules.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SimStats {
        /// Flushes the driver performed.
        pub flushes: u64,
        /// Fiber suspensions at sync points.
        pub switches: u64,
        /// Interleaving steps executed (schedule-dependent; informational).
        pub steps: u64,
    }

    /// splitmix64 — the workspace's standard seeded PRNG recurrence.
    #[derive(Debug)]
    struct Prng(u64);

    impl Prng {
        fn new(seed: u64) -> Prng {
            Prng(seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1))
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        fn next_below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Micro-state of one simulated fiber, at lock-section granularity.
    #[derive(Debug, Clone, Copy, PartialEq)]
    enum FiberState {
        /// Pre-instantiated but not yet activated by its parent's fork.
        NotStarted,
        /// About to execute its next op (or finish when the script is done).
        Ready,
        /// Children registered and spawned; about to take the suspend lock
        /// section (`runnable -= 1; suspended += 1`).
        PreSuspend,
        /// Parked inside `join_while`'s join; resumes when all children
        /// finished (and, in the fixed protocol, no flush is in progress).
        /// In the fixed protocol a parent whose children all finished is
        /// *joinable*: the driver refuses to start a flush until it has
        /// resumed (the join handoff).
        Suspended,
        /// Parked at a sync point taken at generation `gen`.
        Waiting {
            gen: u64,
        },
        Finished,
    }

    /// A script op with fork targets resolved to fiber ids.  All fibers —
    /// including not-yet-forked children — are instantiated up front, so
    /// fiber ids are schedule-independent and simulator states from
    /// different interleavings can be compared (the basis of
    /// [`exhaustive`]'s memoization).
    #[derive(Debug, Clone)]
    enum SimOp {
        Wait,
        Fork(Vec<usize>),
    }

    #[derive(Debug, Clone)]
    struct SimFiber {
        ops: Vec<SimOp>,
        ip: usize,
        state: FiberState,
        parent: Option<usize>,
        /// Unfinished children (the suspend-join barrier).
        unjoined: usize,
    }

    /// The hub counters, signed so underflows are detected, not wrapped.
    #[derive(Debug, Clone, Default)]
    struct Hub {
        runnable: i64,
        waiting: i64,
        resuming: i64,
        suspended: i64,
        /// Set while the driver is inside its flush callback (tracked in
        /// both protocols purely to detect overlap violations).
        flushing: bool,
        generation: u64,
        flushes: u64,
        switches: u64,
    }

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Driver {
        Idle,
        MidFlush,
        Done,
    }

    #[derive(Debug, Clone, Copy)]
    enum Step {
        Fiber(usize),
        Driver,
    }

    /// One simulator configuration: every fiber's micro-state plus the hub
    /// and the driver.
    #[derive(Debug, Clone)]
    struct Sim {
        fibers: Vec<SimFiber>,
        hub: Hub,
        driver: Driver,
    }

    fn instantiate(fibers: &mut Vec<SimFiber>, script: &[FiberOp], parent: Option<usize>) {
        let id = fibers.len();
        let state = if parent.is_none() { FiberState::Ready } else { FiberState::NotStarted };
        fibers.push(SimFiber { ops: Vec::new(), ip: 0, state, parent, unjoined: 0 });
        let ops = script
            .iter()
            .map(|op| match op {
                FiberOp::Wait => SimOp::Wait,
                FiberOp::Fork(children) => SimOp::Fork(
                    children
                        .iter()
                        .map(|c| {
                            let child = fibers.len();
                            instantiate(fibers, c, Some(id));
                            child
                        })
                        .collect(),
                ),
            })
            .collect();
        fibers[id].ops = ops;
    }

    impl Sim {
        fn new(scripts: &[Vec<FiberOp>]) -> Sim {
            let mut fibers = Vec::new();
            for s in scripts {
                instantiate(&mut fibers, s, None);
            }
            let hub = Hub { runnable: scripts.len() as i64, ..Default::default() };
            Sim { fibers, hub, driver: Driver::Idle }
        }

        fn enabled(&self, legacy: bool, out: &mut Vec<Step>) {
            out.clear();
            for (i, f) in self.fibers.iter().enumerate() {
                let can = match f.state {
                    FiberState::NotStarted | FiberState::Finished => false,
                    FiberState::Ready | FiberState::PreSuspend => true,
                    FiberState::Suspended => f.unjoined == 0 && (legacy || !self.hub.flushing),
                    FiberState::Waiting { gen } => self.hub.generation != gen,
                };
                if can {
                    out.push(Step::Fiber(i));
                }
            }
            match self.driver {
                Driver::Idle => {
                    let quiesced = self.hub.runnable == 0 && self.hub.resuming == 0;
                    // The fixed driver keeps waiting while fork-join parents
                    // are suspended with nobody at a sync point: they will
                    // resume and may need flushes.  The legacy driver
                    // returned early in that state (the lost-wakeup bug).
                    // It also holds the flush while any *joinable* parent
                    // (children all finished, resume imminent) exists — the
                    // join-handoff protocol: flushing in that gap would make
                    // the flush boundary a race against the parent's wakeup,
                    // i.e. a schedule-dependent DFG window.
                    let joinable = self
                        .fibers
                        .iter()
                        .any(|f| f.state == FiberState::Suspended && f.unjoined == 0);
                    let hold =
                        !legacy && ((self.hub.waiting == 0 && self.hub.suspended > 0) || joinable);
                    if quiesced && !hold {
                        out.push(Step::Driver);
                    }
                }
                Driver::MidFlush => out.push(Step::Driver),
                Driver::Done => {}
            }
        }

        fn apply(&mut self, step: Step) {
            match step {
                Step::Driver => match self.driver {
                    Driver::Idle => {
                        if self.hub.waiting == 0 {
                            self.driver = Driver::Done;
                        } else {
                            self.hub.flushing = true;
                            self.driver = Driver::MidFlush;
                        }
                    }
                    Driver::MidFlush => {
                        self.hub.flushes += 1;
                        self.hub.flushing = false;
                        self.hub.resuming = self.hub.waiting;
                        self.hub.generation += 1;
                        self.driver = Driver::Idle;
                    }
                    Driver::Done => unreachable!("done driver is never enabled"),
                },
                Step::Fiber(i) => match self.fibers[i].state {
                    FiberState::Ready => {
                        let op = self.fibers[i].ops.get(self.fibers[i].ip).cloned();
                        match op {
                            None => {
                                self.fibers[i].state = FiberState::Finished;
                                self.hub.runnable -= 1;
                                if let Some(p) = self.fibers[i].parent {
                                    self.fibers[p].unjoined -= 1;
                                }
                            }
                            Some(SimOp::Wait) => {
                                self.hub.switches += 1;
                                self.hub.runnable -= 1;
                                self.hub.waiting += 1;
                                self.fibers[i].state =
                                    FiberState::Waiting { gen: self.hub.generation };
                                self.fibers[i].ip += 1;
                            }
                            Some(SimOp::Fork(children)) => {
                                for c in children {
                                    self.hub.runnable += 1;
                                    self.fibers[i].unjoined += 1;
                                    self.fibers[c].state = FiberState::Ready;
                                }
                                self.fibers[i].state = FiberState::PreSuspend;
                                self.fibers[i].ip += 1;
                            }
                        }
                    }
                    FiberState::PreSuspend => {
                        self.hub.runnable -= 1;
                        self.hub.suspended += 1;
                        self.fibers[i].state = FiberState::Suspended;
                    }
                    FiberState::Suspended => {
                        self.hub.suspended -= 1;
                        self.hub.runnable += 1;
                        self.fibers[i].state = FiberState::Ready;
                    }
                    FiberState::Waiting { .. } => {
                        self.hub.waiting -= 1;
                        self.hub.resuming -= 1;
                        self.hub.runnable += 1;
                        self.fibers[i].state = FiberState::Ready;
                    }
                    FiberState::NotStarted | FiberState::Finished => {
                        unreachable!("inactive fiber is never enabled")
                    }
                },
            }
        }

        fn violation(&self) -> Option<String> {
            if self.hub.flushing && self.hub.runnable > 0 {
                return Some("flush overlapping a runnable fiber".into());
            }
            let h = &self.hub;
            if h.runnable < 0 || h.waiting < 0 || h.resuming < 0 || h.suspended < 0 {
                return Some(format!("counter underflow: {h:?}"));
            }
            None
        }

        fn terminal(&self) -> bool {
            self.driver == Driver::Done
                && self.fibers.iter().all(|f| f.state == FiberState::Finished)
        }

        /// Canonical state key: per-fiber `(ip, state)` packed into a `u64`
        /// (with `Waiting` generations normalized to fresh/stale relative to
        /// the hub generation), plus the driver/flushing mode.  Counters and
        /// flush/switch totals are excluded: the former are derivable from
        /// the fiber states, the latter are path totals accumulated outside
        /// the key by [`exhaustive`].
        fn key(&self) -> (Vec<u64>, u8) {
            let fibers = self
                .fibers
                .iter()
                .map(|f| {
                    let tag = match f.state {
                        FiberState::NotStarted => 0u64,
                        FiberState::Ready => 1,
                        FiberState::PreSuspend => 2,
                        FiberState::Suspended => 3,
                        FiberState::Waiting { gen } if gen == self.hub.generation => 4,
                        FiberState::Waiting { .. } => 5,
                        FiberState::Finished => 6,
                    };
                    ((f.ip as u64) << 3) | tag
                })
                .collect();
            let mode = match self.driver {
                Driver::Idle => 0u8,
                Driver::MidFlush => 2,
                Driver::Done => 4,
            } | u8::from(self.hub.flushing);
            (fibers, mode)
        }
    }

    /// Runs one seeded interleaving of `scripts` (each entry is one
    /// top-level fiber, registered before the driver starts, as the VM
    /// driver does).
    ///
    /// # Errors
    ///
    /// Returns a description of the first protocol violation the schedule
    /// exposes (flush overlapping a runnable fiber, lost wakeup/deadlock,
    /// counter underflow, or non-termination).
    pub fn run(scripts: &[Vec<FiberOp>], seed: u64, legacy: bool) -> Result<SimStats, String> {
        const STEP_BUDGET: u64 = 1_000_000;
        let mut sim = Sim::new(scripts);
        let mut prng = Prng::new(seed);
        let mut steps = 0u64;
        let mut enabled: Vec<Step> = Vec::new();
        loop {
            sim.enabled(legacy, &mut enabled);
            if enabled.is_empty() {
                if sim.terminal() {
                    return Ok(SimStats {
                        flushes: sim.hub.flushes,
                        switches: sim.hub.switches,
                        steps,
                    });
                }
                return Err(format!(
                    "lost wakeup / deadlock after {steps} steps: driver {:?}, hub {:?}",
                    sim.driver, sim.hub
                ));
            }
            steps += 1;
            if steps > STEP_BUDGET {
                return Err(format!("no termination within {STEP_BUDGET} steps"));
            }
            sim.apply(enabled[prng.next_below(enabled.len())]);
            if let Some(v) = sim.violation() {
                return Err(format!("{v} after {steps} steps"));
            }
        }
    }

    /// Exhaustively enumerates **every** reachable interleaving of
    /// `scripts` (loom-style, with state-graph memoization), checking the
    /// protocol invariants at every state and returning the exact
    /// flush-count envelope over all complete executions.
    ///
    /// Unlike the sampled [`explore`], a clean result here is a proof over
    /// the whole schedule space of the trace, and the returned bounds are
    /// tight — real-thread runs of the same trace must land inside them.
    ///
    /// # Errors
    ///
    /// Returns the first violation found anywhere in the state space, or an
    /// error if the trace exceeds the state budget (keep traces small).
    pub fn exhaustive(scripts: &[Vec<FiberOp>], legacy: bool) -> Result<ExploreStats, String> {
        use std::collections::{BTreeSet, HashMap};
        const STATE_BUDGET: usize = 1 << 17;
        type Memo = HashMap<(Vec<u64>, u8), BTreeSet<u64>>;

        /// Flush counts reachable from `sim` to termination.
        fn go(sim: &Sim, legacy: bool, memo: &mut Memo) -> Result<BTreeSet<u64>, String> {
            if let Some(v) = sim.violation() {
                return Err(v);
            }
            let key = sim.key();
            if let Some(s) = memo.get(&key) {
                return Ok(s.clone());
            }
            if memo.len() > STATE_BUDGET {
                return Err(format!("state budget ({STATE_BUDGET}) exceeded"));
            }
            let mut enabled = Vec::new();
            sim.enabled(legacy, &mut enabled);
            if enabled.is_empty() {
                if sim.terminal() {
                    memo.insert(key, BTreeSet::from([0]));
                    return Ok(BTreeSet::from([0]));
                }
                return Err(format!(
                    "lost wakeup / deadlock: driver {:?}, hub {:?}",
                    sim.driver, sim.hub
                ));
            }
            let mut out = BTreeSet::new();
            for &step in &enabled {
                let mut next = sim.clone();
                let before = next.hub.flushes;
                next.apply(step);
                let delta = next.hub.flushes - before;
                for v in go(&next, legacy, memo)? {
                    out.insert(v + delta);
                }
            }
            memo.insert(key, out.clone());
            Ok(out)
        }

        fn total_waits(scripts: &[Vec<FiberOp>]) -> u64 {
            scripts
                .iter()
                .flatten()
                .map(|op| match op {
                    FiberOp::Wait => 1,
                    FiberOp::Fork(children) => total_waits(children),
                })
                .sum()
        }

        let mut memo = Memo::new();
        let flushes = go(&Sim::new(scripts), legacy, &mut memo)?;
        Ok(ExploreStats {
            switches: total_waits(scripts),
            flushes_min: flushes.first().copied().unwrap_or(0),
            flushes_max: flushes.last().copied().unwrap_or(0),
        })
    }

    /// Aggregate outcome of exploring many interleavings of one trace.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ExploreStats {
        /// Switch count — identical on every schedule (asserted).
        pub switches: u64,
        /// Fewest flushes any schedule performed.
        pub flushes_min: u64,
        /// Most flushes any schedule performed.  Under the join-handoff
        /// protocol this equals `flushes_min` on every trace — fork-join
        /// included — because flushes only happen at true global
        /// quiescence (see the module docs).  Legacy mode can diverge.
        pub flushes_max: u64,
    }

    impl ExploreStats {
        /// The flush count, when it is schedule-independent.
        ///
        /// # Panics
        ///
        /// Panics if the schedules disagreed (`flushes_min != flushes_max`).
        pub fn exact_flushes(&self) -> u64 {
            assert_eq!(
                self.flushes_min, self.flushes_max,
                "flush count is schedule-dependent for this trace"
            );
            self.flushes_min
        }
    }

    /// Explores `count` seeded interleavings of `scripts`, checking every
    /// schedule for protocol violations and asserting switch-count
    /// confluence.  Returns the switch count and the flush-count envelope.
    ///
    /// # Errors
    ///
    /// Returns the first violation any schedule exposes, or a switch-count
    /// divergence between schedules.
    pub fn explore(
        scripts: &[Vec<FiberOp>],
        seed: u64,
        count: u64,
        legacy: bool,
    ) -> Result<ExploreStats, String> {
        let mut agg: Option<ExploreStats> = None;
        for i in 0..count {
            let schedule_seed = seed ^ i.wrapping_mul(0xD1B54A32D192ED03);
            let stats = run(scripts, schedule_seed, legacy)?;
            match &mut agg {
                None => {
                    agg = Some(ExploreStats {
                        switches: stats.switches,
                        flushes_min: stats.flushes,
                        flushes_max: stats.flushes,
                    });
                }
                Some(a) => {
                    if a.switches != stats.switches {
                        return Err(format!(
                            "switch count diverged across schedules: {} vs {} (seed {schedule_seed})",
                            a.switches, stats.switches
                        ));
                    }
                    a.flushes_min = a.flushes_min.min(stats.flushes);
                    a.flushes_max = a.flushes_max.max(stats.flushes);
                }
            }
        }
        Ok(agg.unwrap_or(ExploreStats { switches: 0, flushes_min: 0, flushes_max: 0 }))
    }

    /// Generates a seeded random fork-join trace: `fibers` top-level
    /// scripts of at most `max_ops` ops each, forking up to `depth` levels
    /// deep.
    pub fn random_scripts(
        seed: u64,
        fibers: usize,
        max_ops: usize,
        depth: usize,
    ) -> Vec<Vec<FiberOp>> {
        let mut prng = Prng::new(seed);
        (0..fibers).map(|_| random_script(&mut prng, max_ops, depth)).collect()
    }

    fn random_script(prng: &mut Prng, max_ops: usize, depth: usize) -> Vec<FiberOp> {
        let n = prng.next_below(max_ops + 1);
        (0..n)
            .map(|_| {
                if depth > 0 && prng.next_below(4) == 0 {
                    let kids = 1 + prng.next_below(2);
                    FiberOp::Fork(
                        (0..kids).map(|_| random_script(prng, max_ops.min(2), depth - 1)).collect(),
                    )
                } else {
                    FiberOp::Wait
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::hubsim::{self, FiberOp};

    #[test]
    fn explorer_exact_flush_counts_on_lockstep_trace() {
        // Mirrors fiber.rs's fibers_sync_at_flush_points: 4 fibers × 3
        // waits → exactly 3 flushes and 12 switches, on every schedule.
        let scripts = vec![vec![FiberOp::Wait, FiberOp::Wait, FiberOp::Wait]; 4];
        let stats = hubsim::explore(&scripts, 7, 200, false).unwrap();
        assert_eq!(stats.exact_flushes(), 3);
        assert_eq!(stats.switches, 12);
    }

    #[test]
    fn explorer_handles_uneven_wait_counts() {
        // Fibers with 1, 2 and 4 waits: flushes == the maximum (each flush
        // wakes everyone still alive), switches == the sum.
        let scripts =
            vec![vec![FiberOp::Wait], vec![FiberOp::Wait, FiberOp::Wait], vec![FiberOp::Wait; 4]];
        let stats = hubsim::explore(&scripts, 11, 200, false).unwrap();
        assert_eq!(stats.exact_flushes(), 4);
        assert_eq!(stats.switches, 7);
    }

    #[test]
    fn explorer_fork_join_trace_is_clean() {
        // A parent forking two waiting children while a sibling also waits.
        let scripts = vec![
            vec![FiberOp::Fork(vec![vec![FiberOp::Wait], vec![FiberOp::Wait]]), FiberOp::Wait],
            vec![FiberOp::Wait],
        ];
        let stats = hubsim::explore(&scripts, 3, 500, false).unwrap();
        assert_eq!(stats.exact_flushes(), 2, "children sync once, then the parent");
        assert_eq!(stats.switches, 4, "two children, the sibling, then the parent");
        // The exhaustive enumerator proves the count over ALL schedules.
        assert_eq!(hubsim::exhaustive(&scripts, false).unwrap(), stats);
    }

    #[test]
    fn explorer_random_trees_have_exact_flush_counts() {
        // Under the join-handoff protocol the flush count is
        // schedule-independent on *every* trace, fork-join included: the
        // driver never flushes while a joinable parent is in flight, so
        // flushes happen only at true global quiescence.  (Before the
        // handoff this corpus exhibited a benign join/flush race and the
        // envelope could only be asserted as a containment.)
        for trace_seed in 0..40u64 {
            let scripts = hubsim::random_scripts(trace_seed, 1 + (trace_seed as usize % 4), 4, 2);
            let stats = hubsim::explore(&scripts, trace_seed.wrapping_mul(31), 25, false)
                .unwrap_or_else(|e| panic!("trace seed {trace_seed}: {e}"));
            assert_eq!(
                stats.flushes_min, stats.flushes_max,
                "trace seed {trace_seed}: flush count diverged across schedules"
            );
        }
    }

    #[test]
    fn exhaustive_proves_join_handoff_closes_the_boundary_race() {
        // The exact trace from the old benign race: a parent whose child
        // finishes without syncing, while a sibling waits.  Legacy-lineage
        // protocols served 1 or 2 flushes depending on whether the driver
        // won the race against the parent's resume; the handoff pins it.
        let scripts = vec![vec![FiberOp::Fork(vec![vec![]]), FiberOp::Wait], vec![FiberOp::Wait]];
        let exact = hubsim::exhaustive(&scripts, false).unwrap();
        assert_eq!(exact.exact_flushes(), 1, "parent's wait must coalesce into the sibling's");
        // Deeper variant: the race window also existed at every fork level.
        let nested = vec![
            vec![
                FiberOp::Fork(vec![vec![FiberOp::Fork(vec![vec![]]), FiberOp::Wait]]),
                FiberOp::Wait,
            ],
            vec![FiberOp::Wait, FiberOp::Wait],
        ];
        let exact = hubsim::exhaustive(&nested, false).unwrap();
        assert_eq!(exact.flushes_min, exact.flushes_max, "nested fork-join must stay exact");
    }

    #[test]
    fn explorer_finds_legacy_resume_race() {
        // Regression for the suspend_while resume race: a parent suspends
        // joining a child that finishes without syncing, while a sibling
        // waits for a flush.  Legacy protocol: the parent may resume while
        // the driver is mid-flush.  The exhaustive enumerator must expose
        // it; the fixed protocol must be clean on every schedule.
        let scripts = vec![vec![FiberOp::Fork(vec![vec![]])], vec![FiberOp::Wait]];
        let err = hubsim::exhaustive(&scripts, true)
            .expect_err("enumerator failed to find the legacy resume race");
        assert!(err.contains("flush overlapping"), "unexpected violation: {err}");
        assert_eq!(hubsim::exhaustive(&scripts, false).unwrap().exact_flushes(), 1);
        hubsim::explore(&scripts, 5, 256, false).unwrap();
    }

    #[test]
    fn explorer_finds_legacy_early_return() {
        // Regression for the driver returning while a fork-join parent is
        // still suspended: the parent then waits for a flush that never
        // comes.  The legacy protocol deadlocks or races; fixed is clean.
        let scripts = vec![vec![FiberOp::Fork(vec![vec![]]), FiberOp::Wait]];
        assert!(
            hubsim::exhaustive(&scripts, true).is_err(),
            "enumerator failed to find the legacy early-return deadlock"
        );
        let legacy_violations = (0..64u64).filter(|&s| hubsim::run(&scripts, s, true).is_err());
        assert!(legacy_violations.count() > 0, "sampling failed to find the deadlock");
        let stats = hubsim::explore(&scripts, 9, 256, false).unwrap();
        assert_eq!(stats.exact_flushes(), 1, "the parent's post-join wait still gets its flush");
    }

    #[test]
    fn exhaustive_bounds_contain_sampled_envelopes() {
        // The sampled envelope can only ever see a subset of the schedules
        // the enumerator proves over.
        for trace_seed in 0..12u64 {
            let scripts = hubsim::random_scripts(trace_seed, 1 + (trace_seed as usize % 2), 3, 1);
            let exact = hubsim::exhaustive(&scripts, false)
                .unwrap_or_else(|e| panic!("trace seed {trace_seed}: {e}"));
            let sampled = hubsim::explore(&scripts, trace_seed, 50, false).unwrap();
            assert_eq!(sampled.switches, exact.switches, "trace seed {trace_seed}");
            assert!(
                exact.flushes_min <= sampled.flushes_min
                    && sampled.flushes_max <= exact.flushes_max,
                "trace seed {trace_seed}: sampled {sampled:?} outside exact {exact:?}"
            );
        }
    }
}
