//! Request-lifecycle resilience: deadlines, cooperative cancellation and
//! transient-fault retry policy.
//!
//! ACROBAT's lazy-DFG runtime interleaves many requests' tensor work into
//! shared flushes, so one faulty or slow request can poison its neighbours
//! unless the runtime carries explicit per-request lifecycle state.  This
//! module provides the three primitives the serving layer threads through
//! an [`crate::ExecutionContext`]:
//!
//! * [`CancelToken`] — cooperative cancellation, checked at flush
//!   boundaries and between batched launches;
//! * [`Deadline`] — a latency budget, either *virtual* (compared against
//!   the device model's accumulated time, deterministic and reproducible)
//!   or *wall-clock* (a real serving SLA);
//! * [`RetryPolicy`] — bounded retry with exponential backoff for
//!   *transient* device faults ([`acrobat_tensor::FaultClass::Transient`]),
//!   reusing the aborted-flush replan machinery: a failed flush leaves the
//!   unexecuted suffix of the plan pending, so a retry simply replans and
//!   reruns it, bit-for-bit.  Backoff is charged as virtual time to the
//!   device cost model rather than slept.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use acrobat_tensor::TensorError;
use serde::{Deserialize, Serialize};

/// Cooperative cancellation flag shared between a request's submitter and
/// its execution context.
///
/// Cloning is cheap (an `Arc` bump); all clones observe the same flag.
/// Cancellation is *cooperative*: the runtime polls the token at flush
/// boundaries and between batched kernel launches, so an in-flight batch
/// always completes before the request observes [`TensorError::Cancelled`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation.  Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// A per-request latency budget.
///
/// The default is [`Deadline::Unlimited`].  Virtual deadlines compare
/// against the *modeled* time a context has accumulated
/// ([`crate::RuntimeStats::total_us`]), which makes deadline behaviour
/// deterministic — the chaos harness relies on this to predict exactly
/// which requests miss their budget.  Wall deadlines compare against real
/// elapsed time, for actual serving SLAs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Deadline {
    /// No deadline.
    #[default]
    Unlimited,
    /// Budget in modeled microseconds; a check trips once the context's
    /// accumulated modeled time reaches the budget (so a zero budget trips
    /// on the first check, deterministically).
    Virtual {
        /// Modeled-microsecond budget.
        budget_us: f64,
    },
    /// Wall-clock budget measured from `start`.
    Wall {
        /// When the request was admitted.
        start: Instant,
        /// Real-time budget.
        budget: Duration,
    },
}

impl Deadline {
    /// A virtual deadline of `budget_us` modeled microseconds.
    pub fn virtual_us(budget_us: f64) -> Deadline {
        Deadline::Virtual { budget_us }
    }

    /// A wall-clock deadline of `budget` starting now.
    pub fn wall(budget: Duration) -> Deadline {
        Deadline::Wall { start: Instant::now(), budget }
    }

    /// Checks the budget against `spent_us` modeled microseconds.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DeadlineExceeded`] when the budget is spent.
    pub fn check(&self, spent_us: f64) -> Result<(), TensorError> {
        match *self {
            Deadline::Unlimited => Ok(()),
            Deadline::Virtual { budget_us } => {
                if spent_us >= budget_us {
                    Err(TensorError::DeadlineExceeded { spent_us, budget_us })
                } else {
                    Ok(())
                }
            }
            Deadline::Wall { start, budget } => {
                let elapsed = start.elapsed();
                if elapsed > budget {
                    Err(TensorError::DeadlineExceeded {
                        spent_us: elapsed.as_secs_f64() * 1e6,
                        budget_us: budget.as_secs_f64() * 1e6,
                    })
                } else {
                    Ok(())
                }
            }
        }
    }
}

/// Bounded retry-with-backoff policy for transient device faults.
///
/// `max_retries == 0` (the default) disables retry entirely: every fault
/// surfaces to the caller, preserving the pre-resilience behaviour.  With
/// retries enabled, only faults classified
/// [`acrobat_tensor::FaultClass::Transient`] are retried; fatal faults and
/// interrupts (cancellation, deadline) surface immediately.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum retry attempts per flush (0 = retry disabled).
    pub max_retries: u32,
    /// Backoff before retry attempt `n` is `backoff_base_us * 2^(n-1)`
    /// modeled microseconds, charged to the context's statistics (and thus
    /// counted against any virtual deadline) rather than slept.
    pub backoff_base_us: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 0, backoff_base_us: 50.0 }
    }
}

impl RetryPolicy {
    /// Backoff charged before the `attempt`-th retry (1-based), µs.
    pub fn backoff_us(&self, attempt: u32) -> f64 {
        self.backoff_base_us * f64::from(2u32.saturating_pow(attempt.saturating_sub(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_is_shared() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
        b.cancel(); // idempotent
        assert!(a.is_cancelled());
    }

    #[test]
    fn virtual_deadline_trips_deterministically() {
        assert!(Deadline::Unlimited.check(1e12).is_ok());
        let d = Deadline::virtual_us(100.0);
        assert!(d.check(99.9).is_ok());
        let err = d.check(100.0).unwrap_err();
        assert_eq!(err, TensorError::DeadlineExceeded { spent_us: 100.0, budget_us: 100.0 });
        // A zero budget trips on the very first check.
        assert!(Deadline::virtual_us(0.0).check(0.0).is_err());
    }

    #[test]
    fn wall_deadline_trips_after_elapsing() {
        let d = Deadline::wall(Duration::from_secs(3600));
        assert!(d.check(0.0).is_ok());
        let expired = Deadline::Wall {
            start: Instant::now() - Duration::from_secs(2),
            budget: Duration::ZERO,
        };
        assert!(matches!(expired.check(0.0), Err(TensorError::DeadlineExceeded { .. })));
    }

    #[test]
    fn backoff_is_exponential() {
        let p = RetryPolicy { max_retries: 3, backoff_base_us: 50.0 };
        assert_eq!(p.backoff_us(1), 50.0);
        assert_eq!(p.backoff_us(2), 100.0);
        assert_eq!(p.backoff_us(3), 200.0);
        assert_eq!(RetryPolicy::default().max_retries, 0, "retry is opt-in");
    }
}
