//! The mutable per-mini-batch half of the execution stack.
//!
//! An [`ExecutionContext`] ties the DFG, the scheduler scratch, the device
//! memory and the per-run statistics together for *one* mini-batch, against
//! an immutable shared [`Engine`].  Contexts are cheap to construct, own no
//! locks, and are `Send`, so a serving system runs one per in-flight
//! request with zero shared-state synchronization on the flush hot path.

use std::sync::Arc;

use acrobat_analysis::fusion::GroupId;
use acrobat_codegen::exec::{bind_args_ref, run_batched_kernel_ref};
use acrobat_tensor::{DeviceMem, DeviceTensor, Tensor, TensorError};

use crate::dfg::{Dfg, ValueId};
use crate::engine::Engine;
use crate::scheduler::{self, Plan, SchedulerKind, SchedulerScratch};
use crate::stats::RuntimeStats;

/// Per-mini-batch execution state over a shared [`Engine`].
///
/// Typical lifecycle per mini-batch: acquire (or [`Engine::new_context`]),
/// upload inputs, interleave [`ExecutionContext::add_unit`] (from the
/// executing program) with [`ExecutionContext::flush`] (at sync points),
/// read results, inspect [`ExecutionContext::stats`], release back to a
/// [`crate::ContextPool`].
#[derive(Debug)]
pub struct ExecutionContext {
    /// The shared immutable engine (kernels, analysis, device model,
    /// options).  Kept alive by this `Arc` even if a PGO swap retires the
    /// engine mid-run.
    engine: Arc<Engine>,
    mem: DeviceMem,
    dfg: Dfg,
    stats: RuntimeStats,
    units: u64,
    /// Per-kernel launch counts (PGO profile data), drained per run and
    /// aggregated by the session.
    profile: std::collections::BTreeMap<acrobat_codegen::KernelId, u64>,
    /// Scheduler working memory, reused across flushes so steady-state
    /// planning performs no allocations.
    sched_scratch: SchedulerScratch,
    /// The current flush's plan, reused for the same reason.
    plan_buf: Plan,
}

impl ExecutionContext {
    /// Creates a fresh context over an engine.
    pub fn new(engine: Arc<Engine>) -> ExecutionContext {
        let device_memory = engine.options().device_memory;
        ExecutionContext {
            engine,
            mem: DeviceMem::new(device_memory),
            dfg: Dfg::new(),
            stats: RuntimeStats::default(),
            units: 0,
            profile: Default::default(),
            sched_scratch: SchedulerScratch::new(),
            plan_buf: Plan::default(),
        }
    }

    /// The engine this context executes against.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// The accumulated statistics for this context's runs.
    pub fn stats(&self) -> &RuntimeStats {
        &self.stats
    }

    /// Active options (owned by the engine).
    pub fn options(&self) -> &crate::RuntimeOptions {
        self.engine.options()
    }

    /// The kernel library (owned by the engine).
    pub fn library(&self) -> &acrobat_codegen::KernelLibrary {
        self.engine.library()
    }

    /// The device model in use (owned by the engine).
    pub fn model(&self) -> &crate::DeviceModel {
        self.engine.model()
    }

    /// Per-kernel launch counts observed so far (profile data for PGO,
    /// aggregated across contexts by the caller).
    pub fn take_profile(&mut self) -> std::collections::BTreeMap<acrobat_codegen::KernelId, u64> {
        std::mem::take(&mut self.profile)
    }

    /// Clears the DFG, device memory, fault plan and statistics for a fresh
    /// mini-batch (called on pool reuse).
    pub fn reset(&mut self) {
        self.mem.reset();
        self.mem.clear_fault();
        let _ = self.mem.take_stats();
        self.dfg = Dfg::new();
        self.stats = RuntimeStats::default();
        self.units = 0;
        self.profile.clear();
    }

    /// Uploads a batch of host tensors as one transfer operation (the
    /// paper's batched memcpys, §D.3), returning ready values.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DeviceOom`] if device memory is exhausted.
    pub fn upload_inputs(&mut self, tensors: &[&Tensor]) -> Result<Vec<ValueId>, TensorError> {
        let before = self.mem.stats();
        let handles = self.mem.upload_batched(tensors)?;
        let after = self.mem.stats();
        let bytes = after.upload_bytes - before.upload_bytes;
        let ops = after.upload_ops - before.upload_ops;
        let model = self.engine.model();
        self.stats.memcpy_bytes += bytes;
        self.stats.memcpy_ops += ops;
        self.stats.memcpy_us += model.memcpy_time_us(bytes, ops);
        self.stats.cuda_api_us += ops as f64 * model.memcpy_overhead_us;
        Ok(handles.into_iter().map(|h| self.dfg.ready_value(h)).collect())
    }

    /// Registers an already-resident tensor as a ready value (weights are
    /// uploaded once and reused across mini-batches in the real system; the
    /// benchmark harness uploads them outside the timed region).
    pub fn ready_value(&mut self, tensor: DeviceTensor) -> ValueId {
        self.dfg.ready_value(tensor)
    }

    /// Direct access to device memory (weight upload, result download,
    /// fault arming).
    pub fn mem_mut(&mut self) -> &mut DeviceMem {
        &mut self.mem
    }

    /// Appends one scheduling unit to the DFG.
    ///
    /// `unit_head` is false when grain-size coarsening merges this node into
    /// the previous one's scheduling unit (same static block); construction
    /// and scheduling overheads are then charged once per block.
    ///
    /// Returns the node's output values (one per kernel output slot).
    pub fn add_unit(
        &mut self,
        group: GroupId,
        instance: usize,
        depth: u64,
        phase: u32,
        args: Vec<ValueId>,
        unit_head: bool,
    ) -> Vec<ValueId> {
        let library = self.engine.library();
        let kernel = library.kernel_id_for_group(group);
        let program = library.kernel(kernel);
        let outputs = program.outputs.len();
        // Shared-operand signature: nodes batch only when their shared
        // kernel operands are identical tensors.
        let mut shared_sig = 0xcbf29ce484222325u64;
        for (input, arg) in program.inputs.iter().zip(&args) {
            if input.class == acrobat_analysis::ArgClass::Shared {
                shared_sig ^= arg.0.wrapping_add(0x9E3779B97F4A7C15);
                shared_sig = shared_sig.wrapping_mul(0x100000001b3);
            }
        }
        let charge = !self.engine.options().coarsen || unit_head;
        if charge {
            self.units += 1;
            self.stats.dfg_construction_us += self.engine.model().dfg_node_cost_us;
        }
        let (_, outs) =
            self.dfg.add_node(kernel, instance, depth, phase, shared_sig, args, outputs);
        self.stats.nodes = self.dfg.node_count();
        outs
    }

    /// The tensor behind a value, if already materialized.
    pub fn tensor(&self, v: ValueId) -> Option<&DeviceTensor> {
        self.dfg.tensor(v)
    }

    /// Forces a value: flushes the DFG if it is still pending.
    ///
    /// # Errors
    ///
    /// Propagates flush errors.
    pub fn force(&mut self, v: ValueId) -> Result<DeviceTensor, TensorError> {
        if self.dfg.tensor(v).is_none() {
            self.flush()?;
        }
        self.dfg.tensor(v).cloned().ok_or(TensorError::StaleHandle)
    }

    /// Downloads a value to the host (forcing it first).
    ///
    /// # Errors
    ///
    /// Propagates flush and transfer errors.
    pub fn download(&mut self, v: ValueId) -> Result<Tensor, TensorError> {
        let t = self.force(v)?;
        let before = self.mem.stats();
        let host = self.mem.download(&t)?;
        let bytes = self.mem.stats().download_bytes - before.download_bytes;
        let model = self.engine.model();
        self.stats.memcpy_bytes += bytes;
        self.stats.memcpy_ops += 1;
        self.stats.memcpy_us += model.memcpy_time_us(bytes, 1);
        self.stats.cuda_api_us += model.memcpy_overhead_us;
        Ok(host)
    }

    /// Executes all pending DFG nodes in batched kernel launches.
    ///
    /// This is the serving hot path; it takes no locks — every mutable
    /// structure it touches is owned by this context, and everything shared
    /// (library, device model, options) is immutable engine state.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DeviceOom`] or kernel errors; a scheduling
    /// inconsistency (a batch whose dependences are unmet) is a bug and
    /// panics.
    pub fn flush(&mut self) -> Result<(), TensorError> {
        if !self.dfg.has_pending() {
            return Ok(());
        }
        let wall = std::time::Instant::now();
        // Split borrows: the plan and its scratch, the DFG and the device
        // memory are distinct fields, letting batches bind argument tensors
        // by reference out of the DFG value table while the executor holds
        // the device memory mutably.  The library, model and options are
        // immutable engine state.
        let ExecutionContext { engine, mem, dfg, stats, units, profile, sched_scratch, plan_buf } =
            self;
        let library = engine.library();
        let model = engine.model();
        let options = engine.options();
        scheduler::plan_into(options.scheduler, dfg, sched_scratch, plan_buf);
        let mut checker = options
            .checked
            .then(|| crate::check::FlushChecker::validate_plan(dfg, plan_buf, options.scheduler));

        // Host scheduling cost: per elementary decision, scaled so that with
        // coarsening the inline scheduler pays per scheduling unit.
        let per_decision = match options.scheduler {
            SchedulerKind::InlineDepth => model.sched_inline_cost_us,
            SchedulerKind::DynamicDepth => model.sched_dyn_depth_cost_us,
            SchedulerKind::Agenda => model.sched_agenda_cost_us,
        };
        let unit_ratio = if options.coarsen && dfg.node_count() > 0 {
            (*units as f64 / dfg.node_count() as f64).min(1.0)
        } else {
            1.0
        };
        stats.scheduling_us += plan_buf.decisions as f64 * per_decision * unit_ratio;

        let mode = if options.gather_fusion {
            acrobat_tensor::batch::BatchMode::GatherFused
        } else {
            acrobat_tensor::batch::BatchMode::ExplicitGather
        };
        for b in 0..plan_buf.num_batches() {
            let batch = plan_buf.batch(b);
            let kernel_id = dfg.node(batch[0]).kernel;
            let program = library.kernel(kernel_id);
            let lanes = batch.len();
            // Bind arguments by reference straight out of the DFG value
            // table — no per-lane tensor-handle clones.
            let args = bind_args_ref(program, lanes, |lane, slot| {
                let node = dfg.node(batch[lane]);
                debug_assert_eq!(node.kernel, kernel_id);
                dfg.tensor(node.args[slot]).expect("scheduler produced unmet dependency")
            });
            let (outs, lstats) = match run_batched_kernel_ref(mem, program, &args, lanes, mode) {
                Ok(r) => r,
                Err(e) => {
                    // A mid-plan failure aborts the flush but must leave the
                    // context well-defined and resumable: batches that ran
                    // are already accounted and materialized; the failing
                    // batch and the rest of the plan stay pending, so the
                    // next flush replans them from scratch.  Scheduling time
                    // stays charged in full — planning genuinely ran, and a
                    // retry replans (and recharges) just like a real system.
                    stats.aborted_flushes += 1;
                    stats.device_peak_elements = mem.stats().peak_elements;
                    stats.host_wall_us += wall.elapsed().as_secs_f64() * 1e6;
                    if options.checked {
                        if let Err(msg) = dfg.verify_consistent() {
                            panic!("checked mode: DFG inconsistent after aborted flush: {msg}");
                        }
                    }
                    return Err(e);
                }
            };

            // Accounting.
            stats.kernel_launches += lstats.launches;
            // PGO profiles count operator *invocations* (DFG nodes), not
            // batched launches — the paper prioritizes by execution
            // frequency (§D.1).
            *profile.entry(kernel_id).or_default() += lanes as u64;
            stats.flops += lstats.flops;
            stats.gather_copies += lstats.gather_copies;
            stats.gather_bytes += lstats.gather_bytes;
            stats.contiguous_hits += lstats.contiguous_hits;
            stats.kernel_time_us += model.kernel_time_us(&lstats, program.schedule.as_ref(), lanes)
                + model.gather_time_us(&lstats);
            stats.cuda_api_us += lstats.launches as f64 * model.launch_overhead_us
                + lstats.gather_copies as f64 * model.launch_overhead_us * 0.5;

            // Materialize the whole batch in one pass: outs[slot][lane]
            // moves straight into the value table.
            dfg.complete_batch(batch, outs);
            if let Some(c) = checker.as_mut() {
                c.after_batch(dfg, batch);
            }
        }
        if let Some(c) = checker {
            c.finish(dfg);
        }
        self.stats.flushes += 1;
        self.stats.device_peak_elements = self.mem.stats().peak_elements;
        self.stats.host_wall_us += wall.elapsed().as_secs_f64() * 1e6;
        Ok(())
    }

    /// Cross-checks the DFG's pending/bucket/value indices against each
    /// other (see [`crate::Dfg::verify_consistent`]).  O(nodes); used by
    /// checked-mode tests, especially after error paths.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn verify_consistent(&self) -> Result<(), String> {
        self.dfg.verify_consistent()
    }

    /// Charges fiber-switch costs observed by a [`crate::FiberHub`].
    pub fn charge_fiber_switches(&mut self, switches: u64) {
        self.stats.fiber_switches += switches;
        self.stats.fiber_us += switches as f64 * self.engine.model().fiber_switch_cost_us;
    }
}

// Contexts move between serving threads (and sit inside per-run mutexes in
// fiber mode); keep that a compile-time guarantee.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<ExecutionContext>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceModel;
    use crate::engine::{ContextPool, RuntimeOptions};
    use acrobat_analysis::{analyze, AnalysisOptions, AnalysisResult};
    use acrobat_codegen::KernelLibrary;
    use acrobat_ir::{parse_module, typeck};

    fn setup(src: &str, options: RuntimeOptions) -> (Arc<AnalysisResult>, ExecutionContext) {
        let m = typeck::check_module(parse_module(src).unwrap()).unwrap();
        let a = Arc::new(analyze(m, AnalysisOptions::default()).unwrap());
        let lib = KernelLibrary::build(&a);
        let engine = Arc::new(Engine::new(a.clone(), lib, DeviceModel::default(), options));
        (a, engine.new_context())
    }

    const PROGRAM: &str = "def @main($w: Tensor[(2, 2)], %x: Tensor[(1, 2)]) -> Tensor[(1, 2)] {
        relu(matmul(%x, $w))
    }";

    #[test]
    fn manual_batch_execution() {
        let (a, mut rt) = setup(PROGRAM, RuntimeOptions::default());
        let group = a.blocks.blocks[0].groups[0].id;
        let w_host = Tensor::from_fn(&[2, 2], |i| i as f32);
        let w = rt.mem_mut().upload(&w_host).unwrap();
        let wv = rt.ready_value(w);

        let xs: Vec<Tensor> = (0..4).map(|i| Tensor::fill(&[1, 2], i as f32 - 1.5)).collect();
        let refs: Vec<&Tensor> = xs.iter().collect();
        let xvs = rt.upload_inputs(&refs).unwrap();

        // Input slot order: discover batched-vs-shared from the kernel.
        let kernel = rt.library().kernel_for_group(group).clone();
        let mut outs = Vec::new();
        for (i, xv) in xvs.iter().enumerate() {
            let args: Vec<ValueId> = kernel
                .inputs
                .iter()
                .map(|inp| match inp.class {
                    acrobat_analysis::ArgClass::Batched => *xv,
                    acrobat_analysis::ArgClass::Shared => wv,
                })
                .collect();
            let o = rt.add_unit(group, i, 0, 0, args, true);
            outs.push(o[0]);
        }
        rt.flush().unwrap();
        assert_eq!(rt.stats().kernel_launches, 1, "4 instances, one launch");
        assert_eq!(rt.stats().nodes, 4);
        for (x, o) in xs.iter().zip(&outs) {
            let got = rt.download(*o).unwrap();
            let mm =
                acrobat_tensor::execute(&acrobat_tensor::PrimOp::MatMul, &[x, &w_host]).unwrap();
            let want = acrobat_tensor::execute(&acrobat_tensor::PrimOp::Relu, &[&mm]).unwrap();
            assert!(got.allclose(&want, 1e-6));
        }
        assert!(rt.stats().total_us() > 0.0);
    }

    #[test]
    fn force_triggers_flush() {
        let (a, mut rt) = setup(PROGRAM, RuntimeOptions::default());
        let group = a.blocks.blocks[0].groups[0].id;
        let w = rt.mem_mut().upload(&Tensor::ones(&[2, 2])).unwrap();
        let wv = rt.ready_value(w);
        let x = rt.upload_inputs(&[&Tensor::ones(&[1, 2])]).unwrap()[0];
        let kernel = rt.library().kernel_for_group(group).clone();
        let args: Vec<ValueId> = kernel
            .inputs
            .iter()
            .map(|inp| match inp.class {
                acrobat_analysis::ArgClass::Batched => x,
                acrobat_analysis::ArgClass::Shared => wv,
            })
            .collect();
        let o = rt.add_unit(group, 0, 0, 0, args, true);
        assert!(rt.tensor(o[0]).is_none());
        let t = rt.force(o[0]).unwrap();
        assert_eq!(rt.mem_mut().read(&t).unwrap(), &[2.0, 2.0]);
        assert_eq!(rt.stats().flushes, 1);
        // Flushing with nothing pending is free.
        rt.flush().unwrap();
        assert_eq!(rt.stats().flushes, 1);
    }

    #[test]
    fn gather_fusion_toggle_changes_accounting_not_results() {
        let run = |fusion: bool| {
            let (a, mut rt) =
                setup(PROGRAM, RuntimeOptions { gather_fusion: fusion, ..Default::default() });
            let group = a.blocks.blocks[0].groups[0].id;
            let w = rt.mem_mut().upload(&Tensor::from_fn(&[2, 2], |i| i as f32)).unwrap();
            let wv = rt.ready_value(w);
            let kernel = rt.library().kernel_for_group(group).clone();
            let mut outs = Vec::new();
            for i in 0..3 {
                // Interleave pad allocations to scatter instance tensors.
                let x = rt.upload_inputs(&[&Tensor::fill(&[1, 2], i as f32)]).unwrap()[0];
                rt.mem_mut().alloc(&acrobat_tensor::Shape::new(&[3 + i])).unwrap();
                let args: Vec<ValueId> = kernel
                    .inputs
                    .iter()
                    .map(|inp| match inp.class {
                        acrobat_analysis::ArgClass::Batched => x,
                        acrobat_analysis::ArgClass::Shared => wv,
                    })
                    .collect();
                outs.push(rt.add_unit(group, i, 0, 0, args, true)[0]);
            }
            rt.flush().unwrap();
            let results: Vec<Tensor> = outs.iter().map(|o| rt.download(*o).unwrap()).collect();
            (results, rt.stats().gather_copies, rt.stats().gather_bytes)
        };
        let (r_fused, gc_fused, gb_fused) = run(true);
        let (r_gather, gc_gather, gb_gather) = run(false);
        for (a, b) in r_fused.iter().zip(&r_gather) {
            assert_eq!(a.data(), b.data());
        }
        assert_eq!(gc_fused, 0);
        assert_eq!(gb_fused, 0);
        assert!(gc_gather > 0 && gb_gather > 0);
    }

    #[test]
    fn oom_propagates() {
        let (a, mut rt) =
            setup(PROGRAM, RuntimeOptions { device_memory: 16, ..Default::default() });
        let _ = a;
        let big = Tensor::zeros(&[32]);
        assert!(matches!(rt.upload_inputs(&[&big]), Err(TensorError::DeviceOom { .. })));
    }

    #[test]
    fn checked_mode_passes_and_matches_unchecked() {
        for kind in [SchedulerKind::InlineDepth, SchedulerKind::DynamicDepth, SchedulerKind::Agenda]
        {
            for gather_fusion in [true, false] {
                let run = |checked: bool| {
                    let (a, mut rt) = setup(
                        PROGRAM,
                        RuntimeOptions {
                            scheduler: kind,
                            gather_fusion,
                            checked,
                            ..Default::default()
                        },
                    );
                    let group = a.blocks.blocks[0].groups[0].id;
                    let w = rt.mem_mut().upload(&Tensor::from_fn(&[2, 2], |i| i as f32)).unwrap();
                    let wv = rt.ready_value(w);
                    let kernel = rt.library().kernel_for_group(group).clone();
                    let mut outs = Vec::new();
                    for i in 0..4 {
                        let x =
                            rt.upload_inputs(&[&Tensor::fill(&[1, 2], i as f32 - 1.5)]).unwrap()[0];
                        rt.mem_mut().alloc(&acrobat_tensor::Shape::new(&[1 + i])).unwrap();
                        let args: Vec<ValueId> = kernel
                            .inputs
                            .iter()
                            .map(|inp| match inp.class {
                                acrobat_analysis::ArgClass::Batched => x,
                                acrobat_analysis::ArgClass::Shared => wv,
                            })
                            .collect();
                        outs.push(rt.add_unit(group, i, 0, 0, args, true)[0]);
                    }
                    rt.flush().unwrap();
                    rt.verify_consistent().unwrap();
                    outs.iter().map(|o| rt.download(*o).unwrap()).collect::<Vec<Tensor>>()
                };
                let checked = run(true);
                let plain = run(false);
                for (a, b) in checked.iter().zip(&plain) {
                    assert_eq!(a.data(), b.data(), "{kind:?} fusion={gather_fusion}");
                }
            }
        }
    }

    #[test]
    fn aborted_flush_is_resumable_with_consistent_stats() {
        use acrobat_tensor::FaultPlan;
        // Two fused groups per instance → a two-batch plan; failing the
        // second launch aborts the flush halfway through.
        let src = "def @main($w1: Tensor[(2, 2)], $w2: Tensor[(2, 2)], %x: Tensor[(1, 2)]) -> Tensor[(1, 2)] {
            matmul(matmul(%x, $w1), $w2)
        }";
        let build = || {
            let (a, mut rt) = setup(src, RuntimeOptions { checked: true, ..Default::default() });
            let block = &a.blocks.blocks[0];
            let (g0, g1) = (block.groups[0].id, block.groups[1].id);
            let w1 = rt.mem_mut().upload(&Tensor::from_fn(&[2, 2], |i| i as f32)).unwrap();
            let w1v = rt.ready_value(w1);
            let w2 = rt.mem_mut().upload(&Tensor::from_fn(&[2, 2], |i| 1.0 - i as f32)).unwrap();
            let w2v = rt.ready_value(w2);
            let mut outs = Vec::new();
            for i in 0..3 {
                let x = rt.upload_inputs(&[&Tensor::fill(&[1, 2], i as f32 - 1.0)]).unwrap()[0];
                let o0 = rt.add_unit(g0, i, 0, 0, vec![x, w1v], true);
                outs.push(rt.add_unit(g1, i, 1, 0, vec![o0[0], w2v], false)[0]);
            }
            (rt, outs)
        };
        // Unfaulted reference outputs.
        let (mut rt, outs) = build();
        rt.flush().unwrap();
        let want: Vec<Tensor> = outs.iter().map(|o| rt.download(*o).unwrap()).collect();

        for plan in ["launch:1:kernel", "launch:1:oom", "launch:0:kernel"] {
            let fault = FaultPlan::parse(plan).unwrap();
            let (mut rt, outs) = build();
            rt.mem_mut().arm_fault(fault);
            let err = rt.flush().expect_err("fault must surface");
            match fault.kind {
                acrobat_tensor::FaultKind::Oom => {
                    assert!(matches!(err, TensorError::DeviceOom { .. }), "{plan}")
                }
                acrobat_tensor::FaultKind::Kernel => {
                    assert!(matches!(err, TensorError::Injected { .. }), "{plan}")
                }
            }
            // The abort is recorded, the completed prefix is accounted, and
            // nothing counts as a finished flush.
            assert_eq!(rt.stats().aborted_flushes, 1, "{plan}");
            assert_eq!(rt.stats().flushes, 0, "{plan}");
            assert_eq!(rt.stats().kernel_launches, fault.nth, "{plan}: prefix accounted");
            assert!(rt.stats().host_wall_us > 0.0, "{plan}");
            rt.verify_consistent().unwrap();

            // The context is resumable: clear the fault, flush again, and
            // the results match the unfaulted run bit for bit.
            rt.mem_mut().clear_fault();
            rt.flush().unwrap();
            assert_eq!(rt.stats().flushes, 1, "{plan}");
            assert_eq!(rt.stats().aborted_flushes, 1, "{plan}");
            for (o, w) in outs.iter().zip(&want) {
                assert_eq!(rt.download(*o).unwrap().data(), w.data(), "{plan}");
            }
        }
    }

    #[test]
    fn gather_and_upload_faults_are_recoverable() {
        use acrobat_tensor::FaultPlan;
        // Gather faults need the explicit-gather path with scattered lanes.
        let (a, mut rt) = setup(
            PROGRAM,
            RuntimeOptions { gather_fusion: false, checked: true, ..Default::default() },
        );
        let group = a.blocks.blocks[0].groups[0].id;
        let w = rt.mem_mut().upload(&Tensor::from_fn(&[2, 2], |i| i as f32)).unwrap();
        let wv = rt.ready_value(w);
        let kernel = rt.library().kernel_for_group(group).clone();
        let mut outs = Vec::new();
        for i in 0..3 {
            let x = rt.upload_inputs(&[&Tensor::fill(&[1, 2], i as f32)]).unwrap()[0];
            rt.mem_mut().alloc(&acrobat_tensor::Shape::new(&[3 + i])).unwrap();
            let args: Vec<ValueId> = kernel
                .inputs
                .iter()
                .map(|inp| match inp.class {
                    acrobat_analysis::ArgClass::Batched => x,
                    acrobat_analysis::ArgClass::Shared => wv,
                })
                .collect();
            outs.push(rt.add_unit(group, i, 0, 0, args, true)[0]);
        }
        rt.mem_mut().arm_fault(FaultPlan::parse("gather:0:oom").unwrap());
        assert!(matches!(rt.flush(), Err(TensorError::DeviceOom { .. })));
        assert_eq!(rt.stats().aborted_flushes, 1);
        rt.verify_consistent().unwrap();
        rt.mem_mut().clear_fault();
        rt.flush().unwrap();
        assert!(rt.stats().gather_copies > 0);
        for (i, o) in outs.iter().enumerate() {
            let x = Tensor::fill(&[1, 2], i as f32);
            let w_host = Tensor::from_fn(&[2, 2], |i| i as f32);
            let mm =
                acrobat_tensor::execute(&acrobat_tensor::PrimOp::MatMul, &[&x, &w_host]).unwrap();
            let want = acrobat_tensor::execute(&acrobat_tensor::PrimOp::Relu, &[&mm]).unwrap();
            assert!(rt.download(*o).unwrap().allclose(&want, 1e-6));
        }

        // Upload faults surface from upload_inputs and clear cleanly too.
        let (_, mut rt) = setup(PROGRAM, RuntimeOptions { checked: true, ..Default::default() });
        rt.mem_mut().arm_fault(FaultPlan::parse("upload:0:oom").unwrap());
        let x = Tensor::ones(&[1, 2]);
        assert!(matches!(rt.upload_inputs(&[&x]), Err(TensorError::DeviceOom { .. })));
        rt.verify_consistent().unwrap();
        rt.mem_mut().clear_fault();
        assert_eq!(rt.upload_inputs(&[&x]).unwrap().len(), 1);
    }

    #[test]
    fn coarsening_reduces_charged_overheads() {
        // Two groups in one block: with coarsening, only the unit head is
        // charged for DFG construction.
        let src = "def @main($w1: Tensor[(2, 2)], $w2: Tensor[(2, 2)], %x: Tensor[(1, 2)]) -> Tensor[(1, 2)] {
            matmul(matmul(%x, $w1), $w2)
        }";
        let run = |coarsen: bool| {
            let (a, mut rt) = setup(src, RuntimeOptions { coarsen, ..Default::default() });
            let block = &a.blocks.blocks[0];
            assert_eq!(block.groups.len(), 2);
            let w1 = rt.mem_mut().upload(&Tensor::ones(&[2, 2])).unwrap();
            let w1v = rt.ready_value(w1);
            let w2 = rt.mem_mut().upload(&Tensor::ones(&[2, 2])).unwrap();
            let w2v = rt.ready_value(w2);
            let x = rt.upload_inputs(&[&Tensor::ones(&[1, 2])]).unwrap()[0];
            let g0 = block.groups[0].id;
            let g1 = block.groups[1].id;
            let o0 = rt.add_unit(g0, 0, 0, 0, vec![x, w1v], true);
            let _o1 = rt.add_unit(g1, 0, 1, 0, vec![o0[0], w2v], false);
            rt.flush().unwrap();
            rt.stats().dfg_construction_us
        };
        assert!(run(true) < run(false));
    }

    #[test]
    fn pool_reuses_same_engine_and_discards_stale_contexts() {
        let (_, rt) = setup(PROGRAM, RuntimeOptions::default());
        let engine = rt.engine().clone();
        let pool = ContextPool::new();
        pool.release(rt);
        assert_eq!(pool.idle_count(), 1);
        let again = pool.acquire(&engine);
        assert!(Arc::ptr_eq(again.engine(), &engine), "same-engine context is reused");
        assert_eq!(pool.idle_count(), 0);
        pool.release(again);

        // A PGO-style engine swap retires pooled contexts: acquiring against
        // the retuned engine discards the stale one and builds afresh.
        let retuned = Arc::new(engine.retuned(|_lib| {}));
        let fresh = pool.acquire(&retuned);
        assert!(Arc::ptr_eq(fresh.engine(), &retuned));
        assert_eq!(pool.idle_count(), 0, "stale context was dropped, not reused");
    }

    #[test]
    fn pool_reuse_resets_state_and_fault_plan() {
        let (a, mut rt) = setup(PROGRAM, RuntimeOptions::default());
        let group = a.blocks.blocks[0].groups[0].id;
        let w = rt.mem_mut().upload(&Tensor::ones(&[2, 2])).unwrap();
        let wv = rt.ready_value(w);
        let x = rt.upload_inputs(&[&Tensor::ones(&[1, 2])]).unwrap()[0];
        let kernel = rt.library().kernel_for_group(group).clone();
        let args: Vec<ValueId> = kernel
            .inputs
            .iter()
            .map(|inp| match inp.class {
                acrobat_analysis::ArgClass::Batched => x,
                acrobat_analysis::ArgClass::Shared => wv,
            })
            .collect();
        rt.add_unit(group, 0, 0, 0, args, true);
        rt.flush().unwrap();
        rt.mem_mut().arm_fault(acrobat_tensor::FaultPlan::parse("upload:0:oom").unwrap());

        let engine = rt.engine().clone();
        let pool = ContextPool::new();
        pool.release(rt);
        let mut rt = pool.acquire(&engine);
        assert_eq!(rt.stats(), &RuntimeStats::default(), "stats cleared on reuse");
        assert!(rt.take_profile().is_empty(), "profile cleared on reuse");
        // The armed fault from the previous request must not fire.
        assert_eq!(rt.upload_inputs(&[&Tensor::ones(&[1, 2])]).unwrap().len(), 1);
    }
}
