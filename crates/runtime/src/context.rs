//! The mutable per-mini-batch half of the execution stack.
//!
//! An [`ExecutionContext`] ties the DFG, the scheduler scratch, the device
//! memory and the per-run statistics together for *one* mini-batch, against
//! an immutable shared [`Engine`].  Contexts are cheap to construct, own no
//! locks, and are `Send`, so a serving system runs one per in-flight
//! request with zero shared-state synchronization on the flush hot path.

use std::sync::Arc;

use acrobat_analysis::fusion::GroupId;
use acrobat_codegen::backend::{BackendScratch, KernelBackend, KernelBackendKind, Selection};
use acrobat_codegen::exec::{finish_prepared, prepare_batched_kernel_with, PreparedLaunch};
use acrobat_tensor::{DeviceMem, DeviceTensor, Tensor, TensorError};

use acrobat_tensor::FaultClass;

use crate::dfg::{Dfg, ValueId};
use crate::engine::Engine;
use crate::resilience::{CancelToken, Deadline};
use crate::scheduler::{self, BatchLevels, Plan, SchedulerKind, SchedulerScratch};
use crate::stats::RuntimeStats;
use crate::timeline::DeviceTimeline;

/// Per-mini-batch execution state over a shared [`Engine`].
///
/// Typical lifecycle per mini-batch: acquire (or [`Engine::new_context`]),
/// upload inputs, interleave [`ExecutionContext::add_unit`] (from the
/// executing program) with [`ExecutionContext::flush`] (at sync points),
/// read results, inspect [`ExecutionContext::stats`], release back to a
/// [`crate::ContextPool`].
#[derive(Debug)]
pub struct ExecutionContext {
    /// The shared immutable engine (kernels, analysis, device model,
    /// options).  Kept alive by this `Arc` even if a PGO swap retires the
    /// engine mid-run.
    engine: Arc<Engine>,
    mem: DeviceMem,
    dfg: Dfg,
    stats: RuntimeStats,
    units: u64,
    /// Per-kernel launch counts (PGO profile data), drained per run and
    /// aggregated by the session.
    profile: std::collections::BTreeMap<acrobat_codegen::KernelId, u64>,
    /// Scheduler working memory, reused across flushes so steady-state
    /// planning performs no allocations.
    sched_scratch: SchedulerScratch,
    /// Per-context plan-cache front ([`crate::plan_cache::PlanL1`]):
    /// absorbs steady-state probes so a warm flush touches no shared
    /// state.  Deliberately *retained* across [`ExecutionContext::reset`]
    /// — a pooled context's warm set is what makes repeated-shape serving
    /// hit without ever taking the shared cache's read lock.
    plan_l1: crate::plan_cache::PlanL1,
    /// The current flush's plan, reused for the same reason.
    plan_buf: Plan,
    /// The simulated device timeline ([`crate::timeline`]): every modeled
    /// charge is also sequenced as an event on the host lane, a compute
    /// stream or the copy engine, and `stats.overlap_saved_us` tracks the
    /// difference between the serial charge sum and the critical path.
    timeline: DeviceTimeline,
    /// Batch dependency-level scratch for the parallel execution path,
    /// reused across flushes.
    levels: BatchLevels,
    /// The request's latency budget, checked at flush boundaries and
    /// between batched launches.
    deadline: Deadline,
    /// Cooperative cancellation flag, checked at the same points.
    cancel: Option<CancelToken>,
    /// Set once this context observes any fault, cancellation or deadline
    /// miss.  A tainted context is quarantined by [`crate::ContextPool`]:
    /// dropped on release, never recycled into another request.
    tainted: bool,
    /// Flushes aborted by a device fault since the last clean flush;
    /// drives the graceful-degradation batch-size downshift.
    consecutive_aborts: u32,
    /// Maximum lanes per batched launch (0 = unlimited).  Halved after
    /// repeated aborted flushes, restored after clean ones; chunking a
    /// planned batch is bit-for-bit neutral because kernels are
    /// lane-independent.
    lane_cap: usize,
    /// Broker-cohort request partition: member start offsets over the
    /// merged instance index space (e.g. `[0, 4, 6]` for three requests of
    /// 4, 2 and N−6 instances).  When set, every clean flush is classified
    /// as shared (its plan touched ≥ 2 members) or solo; `None` — every
    /// non-cohort run — leaves both counters at zero.
    instance_partition: Option<Vec<usize>>,
    /// Kernel-backend working memory (interpreter registers, compiled-path
    /// flat scratch and tiles, checked-mode snapshot), persistent across
    /// launches so the steady-state execute phase performs no allocations.
    backend_scratch: BackendScratch,
}

impl ExecutionContext {
    /// Creates a fresh context over an engine.
    pub fn new(engine: Arc<Engine>) -> ExecutionContext {
        let device_memory = engine.options().device_memory;
        let timeline = DeviceTimeline::new(engine.options().timeline);
        let mut dfg = Dfg::new();
        dfg.set_signature_tracking(engine.options().plan_cache);
        ExecutionContext {
            engine,
            mem: DeviceMem::new(device_memory),
            dfg,
            stats: RuntimeStats::default(),
            units: 0,
            profile: Default::default(),
            sched_scratch: SchedulerScratch::new(),
            plan_l1: crate::plan_cache::PlanL1::new(),
            plan_buf: Plan::default(),
            timeline,
            levels: BatchLevels::new(),
            deadline: Deadline::Unlimited,
            cancel: None,
            tainted: false,
            consecutive_aborts: 0,
            lane_cap: 0,
            instance_partition: None,
            backend_scratch: BackendScratch::default(),
        }
    }

    /// Arms the request's deadline (checked at flush boundaries and
    /// between batched launches).
    pub fn set_deadline(&mut self, deadline: Deadline) {
        self.deadline = deadline;
    }

    /// Arms the request's cancellation token (checked at the same points).
    pub fn set_cancel(&mut self, cancel: CancelToken) {
        self.cancel = Some(cancel);
    }

    /// Whether this context observed a fault, cancellation or deadline
    /// miss and must be quarantined instead of recycled.
    pub fn tainted(&self) -> bool {
        self.tainted
    }

    /// Marks this context quarantine-only (used by drivers when a failure
    /// happens outside the flush path, e.g. a poisoned fiber run).
    pub fn mark_tainted(&mut self) {
        self.tainted = true;
    }

    /// Current per-launch lane cap (0 = unlimited); lowered by the
    /// graceful-degradation downshift after repeated aborted flushes.
    pub fn lane_cap(&self) -> usize {
        self.lane_cap
    }

    /// Raises [`TensorError::Cancelled`] / [`TensorError::DeadlineExceeded`]
    /// if the request was cancelled or ran out of budget; taints the
    /// context so it cannot be recycled.
    ///
    /// # Errors
    ///
    /// The interrupt, classified [`FaultClass::Interrupt`].
    pub fn check_interrupt(&mut self) -> Result<(), TensorError> {
        if self.cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
            self.tainted = true;
            return Err(TensorError::Cancelled);
        }
        if let Err(e) = self.deadline.check(self.stats.total_us()) {
            self.tainted = true;
            return Err(e);
        }
        Ok(())
    }

    /// The engine this context executes against.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// The accumulated statistics for this context's runs.
    pub fn stats(&self) -> &RuntimeStats {
        &self.stats
    }

    /// Active options (owned by the engine).
    pub fn options(&self) -> &crate::RuntimeOptions {
        self.engine.options()
    }

    /// The kernel library (owned by the engine).
    pub fn library(&self) -> &acrobat_codegen::KernelLibrary {
        self.engine.library()
    }

    /// The device model in use (owned by the engine).
    pub fn model(&self) -> &crate::DeviceModel {
        self.engine.model()
    }

    /// Per-kernel launch counts observed so far (profile data for PGO,
    /// aggregated across contexts by the caller).
    pub fn take_profile(&mut self) -> std::collections::BTreeMap<acrobat_codegen::KernelId, u64> {
        std::mem::take(&mut self.profile)
    }

    /// Clears the DFG, device memory, fault plan and statistics for a fresh
    /// mini-batch (called on pool reuse).
    pub fn reset(&mut self) {
        self.mem.reset();
        self.mem.clear_fault();
        let _ = self.mem.take_stats();
        self.dfg = Dfg::new();
        self.dfg.set_signature_tracking(self.engine.options().plan_cache);
        // `plan_l1` is NOT cleared: frozen plans are engine-scoped (the
        // context is pinned to its engine by the pool's `Arc::ptr_eq`
        // check), so the warm set carries over and the next request's
        // repeated shapes hit without touching shared state.
        self.stats = RuntimeStats::default();
        self.units = 0;
        self.profile.clear();
        self.timeline.reset();
        self.deadline = Deadline::Unlimited;
        self.cancel = None;
        self.tainted = false;
        self.consecutive_aborts = 0;
        self.lane_cap = 0;
        self.instance_partition = None;
    }

    /// Installs the broker-cohort request partition (member start offsets
    /// over the merged instance index space, strictly increasing, starting
    /// at 0).  Flushes are then classified into
    /// [`RuntimeStats::shared_flushes`] / [`RuntimeStats::solo_flushes`]
    /// by whether their plan co-batched nodes from ≥ 2 members.
    pub fn set_instance_partition(&mut self, member_starts: Vec<usize>) {
        debug_assert!(member_starts.first() == Some(&0), "partition must start at instance 0");
        debug_assert!(member_starts.windows(2).all(|w| w[0] < w[1]), "partition must increase");
        self.instance_partition = Some(member_starts);
    }

    /// Uploads a batch of host tensors as one transfer operation (the
    /// paper's batched memcpys, §D.3), returning ready values.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DeviceOom`] if device memory is exhausted.
    pub fn upload_inputs(&mut self, tensors: &[&Tensor]) -> Result<Vec<ValueId>, TensorError> {
        let before = self.mem.stats();
        let handles = self.mem.upload_batched(tensors)?;
        let after = self.mem.stats();
        let bytes = after.upload_bytes - before.upload_bytes;
        let ops = after.upload_ops - before.upload_ops;
        let model = self.engine.model();
        let transfer_us = model.memcpy_time_us(bytes, ops);
        let api_us = ops as f64 * model.memcpy_overhead_us;
        self.stats.memcpy_bytes += bytes;
        self.stats.memcpy_ops += ops;
        self.stats.memcpy_us += transfer_us;
        self.stats.cuda_api_us += api_us;
        let values: Vec<ValueId> = handles.into_iter().map(|h| self.dfg.ready_value(h)).collect();
        self.timeline.upload(api_us, transfer_us, &values);
        self.stats.overlap_saved_us = self.timeline.overlap_saved_us();
        Ok(values)
    }

    /// Registers an already-resident tensor as a ready value (weights are
    /// uploaded once and reused across mini-batches in the real system; the
    /// benchmark harness uploads them outside the timed region).
    pub fn ready_value(&mut self, tensor: DeviceTensor) -> ValueId {
        self.dfg.ready_value(tensor)
    }

    /// Direct access to device memory (weight upload, result download,
    /// fault arming).
    pub fn mem_mut(&mut self) -> &mut DeviceMem {
        &mut self.mem
    }

    /// Appends one scheduling unit to the DFG.
    ///
    /// `unit_head` is false when grain-size coarsening merges this node into
    /// the previous one's scheduling unit (same static block); construction
    /// and scheduling overheads are then charged once per block.
    ///
    /// Returns the node's output values (one per kernel output slot).
    pub fn add_unit(
        &mut self,
        group: GroupId,
        instance: usize,
        depth: u64,
        phase: u32,
        args: Vec<ValueId>,
        unit_head: bool,
    ) -> Vec<ValueId> {
        let lane = crate::dfg::lane::root(instance);
        self.add_unit_in_lane(group, instance, lane, depth, phase, args, unit_head)
    }

    /// [`ExecutionContext::add_unit`] with an explicit fiber-lane key (see
    /// [`crate::dfg::lane`]): fiber-mode drivers pass each fiber's
    /// fork-path lane so lane-canonical window signing is invariant to the
    /// OS interleaving of fibers.
    #[allow(clippy::too_many_arguments)]
    pub fn add_unit_in_lane(
        &mut self,
        group: GroupId,
        instance: usize,
        lane: u64,
        depth: u64,
        phase: u32,
        args: Vec<ValueId>,
        unit_head: bool,
    ) -> Vec<ValueId> {
        let library = self.engine.library();
        let kernel = library.kernel_id_for_group(group);
        let program = library.kernel(kernel);
        let outputs = program.outputs.len();
        // Shared-operand signature: nodes batch only when their shared
        // kernel operands are identical tensors.
        let mut shared_sig = 0xcbf29ce484222325u64;
        for (input, arg) in program.inputs.iter().zip(&args) {
            if input.class == acrobat_analysis::ArgClass::Shared {
                shared_sig ^= arg.0.wrapping_add(0x9E3779B97F4A7C15);
                shared_sig = shared_sig.wrapping_mul(0x100000001b3);
            }
        }
        let charge = !self.engine.options().coarsen || unit_head;
        if charge {
            self.units += 1;
            let cost = self.engine.model().dfg_node_cost_us;
            self.stats.dfg_construction_us += cost;
            self.timeline.host(cost);
            self.stats.overlap_saved_us = self.timeline.overlap_saved_us();
        }
        let (_, outs) = self
            .dfg
            .add_node_in_lane(kernel, instance, lane, depth, phase, shared_sig, args, outputs);
        self.stats.nodes = self.dfg.node_count();
        outs
    }

    /// Enables lane-canonical window signing on this context's DFG (see
    /// [`crate::Dfg::set_lane_canonical`]).  Fiber-mode drivers call this
    /// once per run, before the first [`ExecutionContext::add_unit_in_lane`].
    ///
    /// Lane-canonical mode forces signature tracking on even with the plan
    /// cache off: the per-lane accumulators are what the flush path sorts
    /// to emit batches in canonical lane order, and without that order
    /// fresh plans would emit in fiber *arrival* order — making device
    /// placement of intermediates, and hence the `gather_copies` vs
    /// `contiguous_hits` split, a function of the OS interleave.
    pub fn set_lane_canonical(&mut self, on: bool) {
        self.dfg.set_lane_canonical(on);
        if on && !self.engine.options().plan_cache {
            self.dfg.set_signature_tracking(true);
        }
    }

    /// The tensor behind a value, if already materialized.
    pub fn tensor(&self, v: ValueId) -> Option<&DeviceTensor> {
        self.dfg.tensor(v)
    }

    /// Forces a value: flushes the DFG if it is still pending.
    ///
    /// # Errors
    ///
    /// Propagates flush errors.
    pub fn force(&mut self, v: ValueId) -> Result<DeviceTensor, TensorError> {
        if self.dfg.tensor(v).is_none() {
            self.flush()?;
        }
        self.dfg.tensor(v).cloned().ok_or(TensorError::StaleHandle)
    }

    /// Downloads a value to the host (forcing it first).
    ///
    /// # Errors
    ///
    /// Propagates flush and transfer errors.
    pub fn download(&mut self, v: ValueId) -> Result<Tensor, TensorError> {
        let t = self.force(v)?;
        let before = self.mem.stats();
        let host = self.mem.download(&t)?;
        let bytes = self.mem.stats().download_bytes - before.download_bytes;
        let model = self.engine.model();
        let transfer_us = model.memcpy_time_us(bytes, 1);
        let api_us = model.memcpy_overhead_us;
        self.stats.memcpy_bytes += bytes;
        self.stats.memcpy_ops += 1;
        self.stats.memcpy_us += transfer_us;
        self.stats.cuda_api_us += api_us;
        self.timeline.download(api_us, transfer_us, Some(v));
        self.stats.overlap_saved_us = self.timeline.overlap_saved_us();
        Ok(host)
    }

    /// Executes all pending DFG nodes in batched kernel launches, retrying
    /// transient faults per the engine's [`crate::resilience::RetryPolicy`].
    ///
    /// The flush boundary is also the request's interrupt point: the
    /// deadline and cancellation token are checked on entry and between
    /// batched launches, and an interrupt surfaces as
    /// [`TensorError::Cancelled`] / [`TensorError::DeadlineExceeded`]
    /// (class [`FaultClass::Interrupt`] — never retried).  Transient
    /// faults are retried up to `max_retries` times with exponential
    /// backoff charged as virtual time to this context's statistics; the
    /// retry replans the aborted plan's pending suffix, which is
    /// bit-for-bit equivalent to an uninterrupted flush.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DeviceOom`], kernel errors, or an interrupt;
    /// a scheduling inconsistency (a batch whose dependences are unmet) is
    /// a bug and panics.
    pub fn flush(&mut self) -> Result<(), TensorError> {
        self.check_interrupt()?;
        let retry = self.engine.options().retry;
        let mut attempt = 0u32;
        loop {
            let e = match self.flush_once() {
                Ok(()) => return Ok(()),
                Err(e) => e,
            };
            if e.fault_class() != FaultClass::Transient || attempt >= retry.max_retries {
                self.tainted = true;
                return Err(e);
            }
            attempt += 1;
            let backoff = retry.backoff_us(attempt);
            self.stats.retries += 1;
            self.stats.retry_backoff_us += backoff;
            self.timeline.host(backoff);
            self.stats.overlap_saved_us = self.timeline.overlap_saved_us();
            // The backoff counts against a virtual deadline; a request that
            // runs out of budget while backing off stops retrying.
            self.check_interrupt()?;
        }
    }

    /// One flush attempt: plan the pending set and execute it.
    fn flush_once(&mut self) -> Result<(), TensorError> {
        if !self.dfg.has_pending() {
            return Ok(());
        }
        let wall = std::time::Instant::now();
        // Split borrows: the plan and its scratch, the DFG and the device
        // memory are distinct fields, letting batches bind argument tensors
        // by reference out of the DFG value table while the executor holds
        // the device memory mutably.  The library, model and options are
        // immutable engine state.
        let ExecutionContext {
            engine,
            mem,
            dfg,
            stats,
            units,
            profile,
            sched_scratch,
            plan_l1,
            plan_buf,
            timeline,
            levels,
            deadline,
            cancel,
            tainted,
            consecutive_aborts,
            lane_cap,
            instance_partition,
            backend_scratch,
        } = self;
        let library = engine.library();
        let model = engine.model();
        let options = engine.options();
        let backend = engine.backend();
        // Plan-cache path ([`crate::plan_cache`]): probe the per-context L1
        // then the engine's shared cache on the window's structural
        // signature; a hit remaps the frozen plan onto the current window,
        // a miss falls back to `plan_into` and (for healthy, undownshifted
        // contexts) publishes the result.
        let cache_outcome = if options.plan_cache {
            let cfg = crate::plan_cache::CacheConfig::from_options(options, *lane_cap, *tainted);
            Some(crate::plan_cache::plan_cached(
                &cfg,
                dfg,
                sched_scratch,
                plan_l1,
                engine.plan_cache(),
                plan_buf,
            ))
        } else {
            // Canonical-emission parity with the cached path: a clean
            // lane-canonical (fiber-mode) window derives its canonical
            // node order here even with the plan cache off, so fresh
            // plans emit batches in lane-key order rather than fiber
            // arrival order.  Device placement of intermediates — and
            // with it the `gather_copies`/`contiguous_hits` split — is
            // then a pure function of the workload, not the OS
            // interleave.  Sequential windows (`win_track` off) return
            // `None` immediately and pay nothing.
            let _ = dfg.window_signature();
            scheduler::plan_into(options.scheduler, dfg, sched_scratch, plan_buf);
            None
        };
        if cache_outcome.is_some() {
            // Run-to-run determinism audit trail: XOR the window's
            // signature token (accumulators + length, NOT the run-varying
            // base) into an order-independent digest.  XOR makes the
            // digest invariant to flush order and to how windows are
            // partitioned across worker contexts, so two runs of the same
            // workload — at any worker count — must agree bit for bit.
            // Dirty (bypassed) windows have no signature and fold nothing.
            if let Some(w) = dfg.window_signature() {
                stats.plan_sig_chain ^= w.chain_token();
            }
        }
        match cache_outcome {
            Some(crate::plan_cache::CacheOutcome::Hit) => {
                stats.plan_cache_hits += 1;
                if options.checked {
                    // Every hit must be bit-identical to a fresh schedule,
                    // including the batch binding layout.
                    crate::check::validate_cached_plan(dfg, plan_buf, options.scheduler);
                }
            }
            Some(crate::plan_cache::CacheOutcome::Miss { evicted }) => {
                stats.plan_cache_misses += 1;
                stats.plan_cache_evictions += evicted;
            }
            Some(crate::plan_cache::CacheOutcome::Bypass) => stats.plan_cache_misses += 1,
            None => {}
        }
        // Cross-request flush classification (broker cohorts): did this
        // plan co-batch nodes from two or more member requests?  Outside a
        // cohort no partition is installed and neither counter moves.
        let cohort_shared = instance_partition.as_ref().and_then(|starts| {
            let member_of = |inst: usize| starts.partition_point(|&s| s <= inst) - 1;
            let mut nodes = plan_buf.nodes.iter();
            let first = member_of(dfg.node(*nodes.next()?).instance);
            Some(nodes.any(|&id| member_of(dfg.node(id).instance) != first))
        });
        let mut checker = options
            .checked
            .then(|| crate::check::FlushChecker::validate_plan(dfg, plan_buf, options.scheduler));

        // Host scheduling cost: per elementary decision, scaled so that with
        // coarsening the inline scheduler pays per scheduling unit.
        let per_decision = match options.scheduler {
            SchedulerKind::InlineDepth => model.sched_inline_cost_us,
            SchedulerKind::DynamicDepth => model.sched_dyn_depth_cost_us,
            SchedulerKind::Agenda => model.sched_agenda_cost_us,
        };
        let unit_ratio = if options.coarsen && dfg.node_count() > 0 {
            (*units as f64 / dfg.node_count() as f64).min(1.0)
        } else {
            1.0
        };
        // With the cache on, every *signed* flush pays signature folding
        // per node; a hit replaces the per-decision scheduling work with
        // the O(n) remap, a miss pays folding on top of the full schedule.
        // A bypassed (dirty) window was never signed — incremental folding
        // stopped the moment the window went dirty and the probe never ran
        // — so it must not be charged signing cost it didn't pay.
        let node_window = plan_buf.num_nodes() as f64;
        let sig_us = match cache_outcome {
            Some(crate::plan_cache::CacheOutcome::Hit) => {
                node_window * (model.sched_sig_cost_us + model.sched_remap_cost_us) * unit_ratio
            }
            Some(crate::plan_cache::CacheOutcome::Miss { .. }) => {
                node_window * model.sched_sig_cost_us * unit_ratio
            }
            Some(crate::plan_cache::CacheOutcome::Bypass) | None => 0.0,
        };
        let decision_us = match cache_outcome {
            Some(crate::plan_cache::CacheOutcome::Hit) => 0.0,
            _ => plan_buf.decisions as f64 * per_decision * unit_ratio,
        };
        let sched_us = sig_us + decision_us;
        stats.plan_sig_us += sig_us;
        stats.scheduling_us += sched_us;
        timeline.host(sched_us);
        stats.overlap_saved_us = timeline.overlap_saved_us();

        let mode = if options.gather_fusion {
            acrobat_tensor::batch::BatchMode::GatherFused
        } else {
            acrobat_tensor::batch::BatchMode::ExplicitGather
        };
        let max_planned_batch =
            (0..plan_buf.num_batches()).map(|b| plan_buf.batch(b).len()).max().unwrap_or(0);
        let workers = options.parallel_workers;
        // Real parallel execution applies when a worker pool is configured
        // and no graceful-degradation lane cap is active (a downshifted
        // context chunks batches and stays on the sequential path).
        let use_parallel = workers >= 2 && *lane_cap == 0;
        let run_result = if use_parallel {
            levels.compute(dfg, plan_buf);
            run_batches_parallel(
                mem,
                dfg,
                stats,
                profile,
                timeline,
                plan_buf,
                levels.levels(),
                library,
                model,
                deadline,
                cancel,
                &mut checker,
                mode,
                workers,
                backend.as_ref(),
                options,
            )
        } else {
            let mut run_batches = || -> Result<(), TensorError> {
                for b in 0..plan_buf.num_batches() {
                    // Between-batch interrupt point: a cancelled or
                    // over-budget request stops after the launch in flight,
                    // never mid-batch.
                    if b > 0 {
                        if cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
                            return Err(TensorError::Cancelled);
                        }
                        deadline.check(stats.total_us())?;
                    }
                    let batch = plan_buf.batch(b);
                    let kernel_id = dfg.node(batch[0]).kernel;
                    let program = library.kernel(kernel_id);
                    // Graceful degradation: a downshifted context chunks each
                    // planned batch to its lane cap.  Kernels are
                    // lane-independent, so chunking changes launch counts and
                    // modeled times but never the computed values.
                    let cap = if *lane_cap == 0 { batch.len() } else { (*lane_cap).max(1) };
                    for chunk in batch.chunks(cap) {
                        let lanes = chunk.len();
                        // Prepare straight out of the DFG value table — no
                        // per-lane tensor-handle clones and no per-launch
                        // argument vectors (the old `BatchedArgsRef` path
                        // built one `Vec` per batched slot per launch).
                        let prep = prepare_batched_kernel_with(
                            mem,
                            program,
                            lanes,
                            mode,
                            |lane, slot| {
                                let node = dfg.node(chunk[lane]);
                                debug_assert_eq!(node.kernel, kernel_id);
                                dfg.tensor(node.args[slot])
                                    .expect("scheduler produced unmet dependency")
                            },
                        )?;
                        let selection = backend.select(program, lanes);
                        count_selection(stats, &selection, options.backend);
                        {
                            let exec_wall = std::time::Instant::now();
                            let view = mem.exec_view();
                            selection.execute(
                                &view,
                                program,
                                &prep,
                                0..lanes,
                                backend_scratch,
                                options.checked,
                            )?;
                            stats.exec_wall_us += exec_wall.elapsed().as_secs_f64() * 1e6;
                        }
                        let outs = finish_prepared(mem, &prep)?;

                        // PGO profiles count operator *invocations* (DFG
                        // nodes), not batched launches — the paper
                        // prioritizes by execution frequency (§D.1).
                        *profile.entry(kernel_id).or_default() += lanes as u64;
                        account_launch(
                            stats,
                            timeline,
                            model,
                            dfg,
                            chunk,
                            &prep.stats,
                            program.schedule.as_ref(),
                            lanes,
                        );

                        // Materialize the chunk in one pass: outs[slot][lane]
                        // moves straight into the value table.
                        dfg.complete_batch(chunk, outs);
                        if let Some(c) = checker.as_mut() {
                            c.after_batch(dfg, chunk);
                        }
                    }
                }
                Ok(())
            };
            run_batches()
        };
        if let Err(e) = run_result {
            // A mid-plan failure aborts the flush but must leave the
            // context well-defined and resumable: batches that ran are
            // already accounted and materialized; the failing batch and the
            // rest of the plan stay pending, so the next flush replans them
            // from scratch.  Scheduling time stays charged in full —
            // planning genuinely ran, and a retry replans (and recharges)
            // just like a real system.
            stats.aborted_flushes += 1;
            stats.device_peak_elements = mem.stats().peak_elements;
            stats.host_wall_us += wall.elapsed().as_secs_f64() * 1e6;
            *tainted = true;
            if e.fault_class() != FaultClass::Interrupt {
                // Downshift: repeated device faults halve the lane cap so a
                // flaky accelerator sees smaller launches (and a one-lane
                // floor), trading modeled throughput for progress.
                *consecutive_aborts += 1;
                if *consecutive_aborts >= 2 {
                    let current = if *lane_cap == 0 { max_planned_batch } else { *lane_cap };
                    let next = (current / 2).max(1);
                    if next < current || *lane_cap == 0 {
                        *lane_cap = next;
                        stats.downshifts += 1;
                    }
                }
            }
            if options.checked {
                if let Err(msg) = dfg.verify_consistent() {
                    panic!("checked mode: DFG inconsistent after aborted flush: {msg}");
                }
            }
            return Err(e);
        }
        if let Some(c) = checker {
            c.finish(dfg);
        }
        // A clean flush recovers: the lane cap doubles back toward the
        // unlimited steady state and the abort streak resets.
        *consecutive_aborts = 0;
        if *lane_cap != 0 {
            let doubled = lane_cap.saturating_mul(2);
            *lane_cap = if doubled >= max_planned_batch { 0 } else { doubled };
        }
        self.stats.flushes += 1;
        match cohort_shared {
            Some(true) => self.stats.shared_flushes += 1,
            Some(false) => self.stats.solo_flushes += 1,
            None => {}
        }
        self.stats.device_peak_elements = self.mem.stats().peak_elements;
        self.stats.host_wall_us += wall.elapsed().as_secs_f64() * 1e6;
        Ok(())
    }

    /// Cross-checks the DFG's pending/bucket/value indices against each
    /// other (see [`crate::Dfg::verify_consistent`]).  O(nodes); used by
    /// checked-mode tests, especially after error paths.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn verify_consistent(&self) -> Result<(), String> {
        self.dfg.verify_consistent()
    }

    /// Charges fiber-switch costs observed by a [`crate::FiberHub`].
    pub fn charge_fiber_switches(&mut self, switches: u64) {
        let us = switches as f64 * self.engine.model().fiber_switch_cost_us;
        self.stats.fiber_switches += switches;
        self.stats.fiber_us += us;
        self.timeline.host(us);
        self.stats.overlap_saved_us = self.timeline.overlap_saved_us();
    }

    /// Read access to the simulated device timeline (critical path, per-lane
    /// busy times, overlap savings).
    pub fn timeline(&self) -> &DeviceTimeline {
        &self.timeline
    }
}

/// Folds one launch's backend selection into the stats counters.  The
/// interpreter-fallback counter only moves under the specialized backend —
/// the reference interpreter is not a fallback for itself.
fn count_selection(stats: &mut RuntimeStats, selection: &Selection, kind: KernelBackendKind) {
    match selection {
        Selection::Compiled { fresh: true, .. } => stats.backend_compiles += 1,
        Selection::Compiled { fresh: false, .. } => stats.backend_hits += 1,
        Selection::Interp => {
            if kind == KernelBackendKind::Spec {
                stats.backend_interp_falls += 1;
            }
        }
    }
}

/// Per-launch modeled accounting, shared by the sequential and parallel
/// execution paths: charges the scalar stats accounts exactly as the legacy
/// accumulator did, then sequences the launch as an event on the simulated
/// device timeline.  Returns the compute stream the launch was placed on.
#[allow(clippy::too_many_arguments)]
fn account_launch(
    stats: &mut RuntimeStats,
    timeline: &mut DeviceTimeline,
    model: &crate::DeviceModel,
    dfg: &Dfg,
    chunk: &[crate::dfg::NodeId],
    lstats: &acrobat_codegen::KernelLaunchStats,
    schedule: Option<&acrobat_codegen::Schedule>,
    lanes: usize,
) -> u32 {
    stats.kernel_launches += lstats.launches;
    stats.flops += lstats.flops;
    stats.gather_copies += lstats.gather_copies;
    stats.gather_bytes += lstats.gather_bytes;
    stats.contiguous_hits += lstats.contiguous_hits;
    let gather_us = model.gather_time_us(lstats);
    let kernel_us = model.kernel_time_us(lstats, schedule, lanes);
    let api_us = lstats.launches as f64 * model.launch_overhead_us
        + lstats.gather_copies as f64 * model.launch_overhead_us * 0.5;
    stats.kernel_time_us += kernel_us + gather_us;
    stats.cuda_api_us += api_us;
    // The launch waits for the completion events of its producers — the
    // plan's DFG edges are exactly the cross-stream dependencies an
    // event-wait would encode.
    let deps =
        timeline.args_ready_us(chunk.iter().flat_map(|&id| dfg.node(id).args.iter().copied()));
    let stream = timeline.launch(
        deps,
        gather_us,
        kernel_us,
        api_us,
        chunk.iter().flat_map(|&id| dfg.node(id).outputs.iter().copied()),
    );
    stats.overlap_saved_us = timeline.overlap_saved_us();
    stream
}

/// The parallel flush path: the plan's batches are partitioned into *runs*
/// of consecutive same-dependency-level batches (mutually independent by
/// construction); each run is prepared sequentially in plan order, executed
/// for real on a scoped worker pool, and committed in plan order —
/// bit-for-bit identical to sequential execution.
#[allow(clippy::too_many_arguments)]
fn run_batches_parallel(
    mem: &mut DeviceMem,
    dfg: &mut Dfg,
    stats: &mut RuntimeStats,
    profile: &mut std::collections::BTreeMap<acrobat_codegen::KernelId, u64>,
    timeline: &mut DeviceTimeline,
    plan: &Plan,
    levels: &[u32],
    library: &acrobat_codegen::KernelLibrary,
    model: &crate::DeviceModel,
    deadline: &Deadline,
    cancel: &Option<CancelToken>,
    checker: &mut Option<crate::check::FlushChecker>,
    mode: acrobat_tensor::batch::BatchMode,
    workers: usize,
    backend: &dyn KernelBackend,
    options: &crate::RuntimeOptions,
) -> Result<(), TensorError> {
    let mut b0 = 0usize;
    while b0 < plan.num_batches() {
        // A run: the maximal span of consecutive plan batches on one level.
        let mut b1 = b0 + 1;
        while b1 < plan.num_batches() && levels[b1] == levels[b0] {
            b1 += 1;
        }
        // Between-run interrupt point (the sequential path checks between
        // batches; a run is the parallel path's unit of progress).
        if b0 > 0 {
            if cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
                return Err(TensorError::Cancelled);
            }
            deadline.check(stats.total_us())?;
        }
        run_level(
            mem,
            dfg,
            stats,
            profile,
            timeline,
            plan,
            b0..b1,
            levels[b0],
            library,
            model,
            checker,
            mode,
            workers,
            backend,
            options,
        )?;
        b0 = b1;
    }
    Ok(())
}

/// Executes one run of independent batches on a scoped worker pool.
///
/// Phase 1 prepares every batch sequentially in plan order — injected
/// fault trips, explicit-gather staging and output reservation happen in
/// exactly the order the sequential executor performs them, so fault
/// occurrence numbers and output addresses are identical.  Phase 2 executes
/// (batch, contiguous lane range) work units on scoped threads through a
/// shared [`acrobat_tensor::ExecView`]; lanes are independent and every
/// output was reserved in phase 1, so workers write disjoint regions.
/// Phase 3 commits in plan order.  The run is all-or-nothing: a failure in
/// phase 1 or 2 rolls the modeled charges back and leaves every batch of
/// the run pending for the next flush to replan.
#[allow(clippy::too_many_arguments)]
fn run_level(
    mem: &mut DeviceMem,
    dfg: &mut Dfg,
    stats: &mut RuntimeStats,
    profile: &mut std::collections::BTreeMap<acrobat_codegen::KernelId, u64>,
    timeline: &mut DeviceTimeline,
    plan: &Plan,
    run: std::ops::Range<usize>,
    level: u32,
    library: &acrobat_codegen::KernelLibrary,
    model: &crate::DeviceModel,
    checker: &mut Option<crate::check::FlushChecker>,
    mode: acrobat_tensor::batch::BatchMode,
    workers: usize,
    backend: &dyn KernelBackend,
    options: &crate::RuntimeOptions,
) -> Result<(), TensorError> {
    let stats_before = *stats;
    let timeline_before = timeline.clone();
    let mut preps: Vec<(acrobat_codegen::KernelId, PreparedLaunch, Selection)> =
        Vec::with_capacity(run.len());
    let prepared = (|| -> Result<(), TensorError> {
        for b in run.clone() {
            let batch = plan.batch(b);
            let kernel_id = dfg.node(batch[0]).kernel;
            let program = library.kernel(kernel_id);
            let lanes = batch.len();
            let mut prep = prepare_batched_kernel_with(mem, program, lanes, mode, |lane, slot| {
                let node = dfg.node(batch[lane]);
                debug_assert_eq!(node.kernel, kernel_id);
                dfg.tensor(node.args[slot]).expect("scheduler produced unmet dependency")
            })?;
            prep.stream = account_launch(
                stats,
                timeline,
                model,
                dfg,
                batch,
                &prep.stats,
                program.schedule.as_ref(),
                lanes,
            );
            prep.level = level;
            // Backend selection happens here, in plan order, so hotness
            // counters advance deterministically regardless of how phase 2
            // interleaves workers.
            let selection = backend.select(program, lanes);
            count_selection(stats, &selection, options.backend);
            preps.push((kernel_id, prep, selection));
        }
        Ok(())
    })();
    if let Err(e) = prepared {
        *stats = stats_before;
        *timeline = timeline_before;
        return Err(e);
    }

    // Work units: each prepared batch split into at most `workers`
    // contiguous lane ranges.
    let mut work: Vec<(usize, std::ops::Range<usize>)> = Vec::new();
    for (pi, (_, prep, _)) in preps.iter().enumerate() {
        let lanes = prep.batch;
        let parts = workers.min(lanes).max(1);
        let base = lanes / parts;
        let rem = lanes % parts;
        let mut lane = 0usize;
        for p in 0..parts {
            let len = base + usize::from(p < rem);
            work.push((pi, lane..lane + len));
            lane += len;
        }
    }
    let exec_wall = std::time::Instant::now();
    let exec_err = {
        let view = mem.exec_view();
        let next = std::sync::atomic::AtomicUsize::new(0);
        // Every unit runs regardless of failures elsewhere (executions are
        // pure), and the error of the smallest unit ordinal wins — the
        // surfaced error does not depend on thread timing.
        let err_slot = parking_lot::Mutex::new(None::<(usize, TensorError)>);
        std::thread::scope(|scope| {
            for _ in 0..workers.min(work.len()) {
                scope.spawn(|| {
                    let mut scratch = BackendScratch::default();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= work.len() {
                            break;
                        }
                        let (pi, ref range) = work[i];
                        let (kernel_id, ref prep, ref selection) = preps[pi];
                        let program = library.kernel(kernel_id);
                        if let Err(e) = selection.execute(
                            &view,
                            program,
                            prep,
                            range.clone(),
                            &mut scratch,
                            options.checked,
                        ) {
                            let mut slot = err_slot.lock();
                            if slot.as_ref().is_none_or(|(j, _)| i < *j) {
                                *slot = Some((i, e));
                            }
                        }
                    }
                });
            }
        });
        err_slot.into_inner().map(|(_, e)| e)
    };
    // Wall time of the whole execute phase (workers overlap, so this is
    // elapsed wall, not summed busy time — same meaning as sequentially).
    stats.exec_wall_us += exec_wall.elapsed().as_secs_f64() * 1e6;
    if let Some(e) = exec_err {
        *stats = stats_before;
        *timeline = timeline_before;
        return Err(e);
    }

    // Commit in plan order: scatter views, materialize values, drive the
    // checker and the PGO profile exactly as sequential execution would.
    for (b, (kernel_id, prep, _)) in run.zip(preps.iter()) {
        let batch = plan.batch(b);
        let outs = finish_prepared(mem, prep)?;
        *profile.entry(*kernel_id).or_default() += prep.batch as u64;
        dfg.complete_batch(batch, outs);
        if let Some(c) = checker.as_mut() {
            c.after_batch(dfg, batch);
        }
    }
    Ok(())
}

// Contexts move between serving threads (and sit inside per-run mutexes in
// fiber mode); keep that a compile-time guarantee.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<ExecutionContext>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceModel;
    use crate::engine::{ContextPool, RuntimeOptions};
    use acrobat_analysis::{analyze, AnalysisOptions, AnalysisResult};
    use acrobat_codegen::KernelLibrary;
    use acrobat_ir::{parse_module, typeck};

    fn setup(src: &str, options: RuntimeOptions) -> (Arc<AnalysisResult>, ExecutionContext) {
        let m = typeck::check_module(parse_module(src).unwrap()).unwrap();
        let a = Arc::new(analyze(m, AnalysisOptions::default()).unwrap());
        let lib = KernelLibrary::build(&a);
        let engine = Arc::new(Engine::new(a.clone(), lib, DeviceModel::default(), options));
        (a, engine.new_context())
    }

    const PROGRAM: &str = "def @main($w: Tensor[(2, 2)], %x: Tensor[(1, 2)]) -> Tensor[(1, 2)] {
        relu(matmul(%x, $w))
    }";

    #[test]
    fn manual_batch_execution() {
        let (a, mut rt) = setup(PROGRAM, RuntimeOptions::default());
        let group = a.blocks.blocks[0].groups[0].id;
        let w_host = Tensor::from_fn(&[2, 2], |i| i as f32);
        let w = rt.mem_mut().upload(&w_host).unwrap();
        let wv = rt.ready_value(w);

        let xs: Vec<Tensor> = (0..4).map(|i| Tensor::fill(&[1, 2], i as f32 - 1.5)).collect();
        let refs: Vec<&Tensor> = xs.iter().collect();
        let xvs = rt.upload_inputs(&refs).unwrap();

        // Input slot order: discover batched-vs-shared from the kernel.
        let kernel = rt.library().kernel_for_group(group).clone();
        let mut outs = Vec::new();
        for (i, xv) in xvs.iter().enumerate() {
            let args: Vec<ValueId> = kernel
                .inputs
                .iter()
                .map(|inp| match inp.class {
                    acrobat_analysis::ArgClass::Batched => *xv,
                    acrobat_analysis::ArgClass::Shared => wv,
                })
                .collect();
            let o = rt.add_unit(group, i, 0, 0, args, true);
            outs.push(o[0]);
        }
        rt.flush().unwrap();
        assert_eq!(rt.stats().kernel_launches, 1, "4 instances, one launch");
        assert_eq!(rt.stats().nodes, 4);
        for (x, o) in xs.iter().zip(&outs) {
            let got = rt.download(*o).unwrap();
            let mm =
                acrobat_tensor::execute(&acrobat_tensor::PrimOp::MatMul, &[x, &w_host]).unwrap();
            let want = acrobat_tensor::execute(&acrobat_tensor::PrimOp::Relu, &[&mm]).unwrap();
            assert!(got.allclose(&want, 1e-6));
        }
        assert!(rt.stats().total_us() > 0.0);
    }

    #[test]
    fn force_triggers_flush() {
        let (a, mut rt) = setup(PROGRAM, RuntimeOptions::default());
        let group = a.blocks.blocks[0].groups[0].id;
        let w = rt.mem_mut().upload(&Tensor::ones(&[2, 2])).unwrap();
        let wv = rt.ready_value(w);
        let x = rt.upload_inputs(&[&Tensor::ones(&[1, 2])]).unwrap()[0];
        let kernel = rt.library().kernel_for_group(group).clone();
        let args: Vec<ValueId> = kernel
            .inputs
            .iter()
            .map(|inp| match inp.class {
                acrobat_analysis::ArgClass::Batched => x,
                acrobat_analysis::ArgClass::Shared => wv,
            })
            .collect();
        let o = rt.add_unit(group, 0, 0, 0, args, true);
        assert!(rt.tensor(o[0]).is_none());
        let t = rt.force(o[0]).unwrap();
        assert_eq!(rt.mem_mut().read(&t).unwrap(), &[2.0, 2.0]);
        assert_eq!(rt.stats().flushes, 1);
        // Flushing with nothing pending is free.
        rt.flush().unwrap();
        assert_eq!(rt.stats().flushes, 1);
    }

    #[test]
    fn gather_fusion_toggle_changes_accounting_not_results() {
        let run = |fusion: bool| {
            let (a, mut rt) =
                setup(PROGRAM, RuntimeOptions { gather_fusion: fusion, ..Default::default() });
            let group = a.blocks.blocks[0].groups[0].id;
            let w = rt.mem_mut().upload(&Tensor::from_fn(&[2, 2], |i| i as f32)).unwrap();
            let wv = rt.ready_value(w);
            let kernel = rt.library().kernel_for_group(group).clone();
            let mut outs = Vec::new();
            for i in 0..3 {
                // Interleave pad allocations to scatter instance tensors.
                let x = rt.upload_inputs(&[&Tensor::fill(&[1, 2], i as f32)]).unwrap()[0];
                rt.mem_mut().alloc(&acrobat_tensor::Shape::new(&[3 + i])).unwrap();
                let args: Vec<ValueId> = kernel
                    .inputs
                    .iter()
                    .map(|inp| match inp.class {
                        acrobat_analysis::ArgClass::Batched => x,
                        acrobat_analysis::ArgClass::Shared => wv,
                    })
                    .collect();
                outs.push(rt.add_unit(group, i, 0, 0, args, true)[0]);
            }
            rt.flush().unwrap();
            let results: Vec<Tensor> = outs.iter().map(|o| rt.download(*o).unwrap()).collect();
            (results, rt.stats().gather_copies, rt.stats().gather_bytes)
        };
        let (r_fused, gc_fused, gb_fused) = run(true);
        let (r_gather, gc_gather, gb_gather) = run(false);
        for (a, b) in r_fused.iter().zip(&r_gather) {
            assert_eq!(a.data(), b.data());
        }
        assert_eq!(gc_fused, 0);
        assert_eq!(gb_fused, 0);
        assert!(gc_gather > 0 && gb_gather > 0);
    }

    #[test]
    fn oom_propagates() {
        let (a, mut rt) =
            setup(PROGRAM, RuntimeOptions { device_memory: 16, ..Default::default() });
        let _ = a;
        let big = Tensor::zeros(&[32]);
        assert!(matches!(rt.upload_inputs(&[&big]), Err(TensorError::DeviceOom { .. })));
    }

    #[test]
    fn pool_quarantines_context_after_aborted_flush() {
        use acrobat_tensor::FaultPlan;
        let m = typeck::check_module(parse_module(PROGRAM).unwrap()).unwrap();
        let a = Arc::new(analyze(m, AnalysisOptions::default()).unwrap());
        let lib = KernelLibrary::build(&a);
        let engine = Arc::new(Engine::new(
            a.clone(),
            lib,
            DeviceModel::default(),
            RuntimeOptions::default(),
        ));
        let pool = ContextPool::new();
        let group = a.blocks.blocks[0].groups[0].id;

        let run_units = |rt: &mut ExecutionContext| -> Result<Vec<Tensor>, TensorError> {
            let w = rt.mem_mut().upload(&Tensor::from_fn(&[2, 2], |i| i as f32))?;
            let wv = rt.ready_value(w);
            let kernel = rt.library().kernel_for_group(group).clone();
            let mut outs = Vec::new();
            for i in 0..4 {
                let x = rt.upload_inputs(&[&Tensor::fill(&[1, 2], i as f32 - 1.5)])?[0];
                let args: Vec<ValueId> = kernel
                    .inputs
                    .iter()
                    .map(|inp| match inp.class {
                        acrobat_analysis::ArgClass::Batched => x,
                        acrobat_analysis::ArgClass::Shared => wv,
                    })
                    .collect();
                outs.push(rt.add_unit(group, i, 0, 0, args, true)[0]);
            }
            rt.flush()?;
            outs.iter().map(|o| rt.download(*o)).collect()
        };

        let mut clean = pool.acquire(&engine);
        let reference = run_units(&mut clean).unwrap();
        pool.release(clean);
        assert_eq!(pool.idle_count(), 1, "clean context is recycled");
        assert_eq!(pool.quarantined_count(), 0);

        // Abort the recycled context's flush (no retry configured, so the
        // injected fault surfaces) and audit what the pool does with it.
        let mut faulty = pool.acquire(&engine);
        assert_eq!(pool.idle_count(), 0, "acquire reused the idle context");
        faulty.mem_mut().arm_fault(FaultPlan::parse("launch:0:kernel").unwrap());
        let err = run_units(&mut faulty).unwrap_err();
        assert!(matches!(err, TensorError::Injected { .. }), "wrong error: {err}");
        assert!(faulty.tainted(), "aborted flush must taint the context");
        assert_eq!(faulty.stats().aborted_flushes, 1);
        pool.release(faulty);
        assert_eq!(pool.idle_count(), 0, "tainted context must not be recycled");
        assert_eq!(pool.quarantined_count(), 1);

        // The next acquire constructs a fresh context — no armed fault, no
        // stale DFG or stats — and reproduces the reference bit-for-bit.
        let mut fresh = pool.acquire(&engine);
        assert!(fresh.mem_mut().armed_fault().is_none(), "fault plan leaked through the pool");
        assert!(!fresh.tainted());
        assert_eq!(fresh.stats().nodes, 0);
        let again = run_units(&mut fresh).unwrap();
        for (r, g) in reference.iter().zip(&again) {
            assert_eq!(r.data(), g.data(), "post-quarantine run diverged");
        }
        pool.release(fresh);
        assert_eq!(pool.idle_count(), 1);
        assert_eq!(pool.quarantined_count(), 1);
    }

    #[test]
    fn checked_mode_passes_and_matches_unchecked() {
        for kind in [SchedulerKind::InlineDepth, SchedulerKind::DynamicDepth, SchedulerKind::Agenda]
        {
            for gather_fusion in [true, false] {
                let run = |checked: bool| {
                    let (a, mut rt) = setup(
                        PROGRAM,
                        RuntimeOptions {
                            scheduler: kind,
                            gather_fusion,
                            checked,
                            ..Default::default()
                        },
                    );
                    let group = a.blocks.blocks[0].groups[0].id;
                    let w = rt.mem_mut().upload(&Tensor::from_fn(&[2, 2], |i| i as f32)).unwrap();
                    let wv = rt.ready_value(w);
                    let kernel = rt.library().kernel_for_group(group).clone();
                    let mut outs = Vec::new();
                    for i in 0..4 {
                        let x =
                            rt.upload_inputs(&[&Tensor::fill(&[1, 2], i as f32 - 1.5)]).unwrap()[0];
                        rt.mem_mut().alloc(&acrobat_tensor::Shape::new(&[1 + i])).unwrap();
                        let args: Vec<ValueId> = kernel
                            .inputs
                            .iter()
                            .map(|inp| match inp.class {
                                acrobat_analysis::ArgClass::Batched => x,
                                acrobat_analysis::ArgClass::Shared => wv,
                            })
                            .collect();
                        outs.push(rt.add_unit(group, i, 0, 0, args, true)[0]);
                    }
                    rt.flush().unwrap();
                    rt.verify_consistent().unwrap();
                    outs.iter().map(|o| rt.download(*o).unwrap()).collect::<Vec<Tensor>>()
                };
                let checked = run(true);
                let plain = run(false);
                for (a, b) in checked.iter().zip(&plain) {
                    assert_eq!(a.data(), b.data(), "{kind:?} fusion={gather_fusion}");
                }
            }
        }
    }

    #[test]
    fn aborted_flush_is_resumable_with_consistent_stats() {
        use acrobat_tensor::FaultPlan;
        // Two fused groups per instance → a two-batch plan; failing the
        // second launch aborts the flush halfway through.
        let src = "def @main($w1: Tensor[(2, 2)], $w2: Tensor[(2, 2)], %x: Tensor[(1, 2)]) -> Tensor[(1, 2)] {
            matmul(matmul(%x, $w1), $w2)
        }";
        let build = || {
            let (a, mut rt) = setup(src, RuntimeOptions { checked: true, ..Default::default() });
            let block = &a.blocks.blocks[0];
            let (g0, g1) = (block.groups[0].id, block.groups[1].id);
            let w1 = rt.mem_mut().upload(&Tensor::from_fn(&[2, 2], |i| i as f32)).unwrap();
            let w1v = rt.ready_value(w1);
            let w2 = rt.mem_mut().upload(&Tensor::from_fn(&[2, 2], |i| 1.0 - i as f32)).unwrap();
            let w2v = rt.ready_value(w2);
            let mut outs = Vec::new();
            for i in 0..3 {
                let x = rt.upload_inputs(&[&Tensor::fill(&[1, 2], i as f32 - 1.0)]).unwrap()[0];
                let o0 = rt.add_unit(g0, i, 0, 0, vec![x, w1v], true);
                outs.push(rt.add_unit(g1, i, 1, 0, vec![o0[0], w2v], false)[0]);
            }
            (rt, outs)
        };
        // Unfaulted reference outputs.
        let (mut rt, outs) = build();
        rt.flush().unwrap();
        let want: Vec<Tensor> = outs.iter().map(|o| rt.download(*o).unwrap()).collect();

        for plan in ["launch:1:kernel", "launch:1:oom", "launch:0:kernel"] {
            let fault = FaultPlan::parse(plan).unwrap();
            let (mut rt, outs) = build();
            rt.mem_mut().arm_fault(fault);
            let err = rt.flush().expect_err("fault must surface");
            match fault.kind {
                acrobat_tensor::FaultKind::Oom => {
                    assert!(matches!(err, TensorError::DeviceOom { .. }), "{plan}")
                }
                acrobat_tensor::FaultKind::Kernel => {
                    assert!(matches!(err, TensorError::Injected { .. }), "{plan}")
                }
            }
            // The abort is recorded, the completed prefix is accounted, and
            // nothing counts as a finished flush.
            assert_eq!(rt.stats().aborted_flushes, 1, "{plan}");
            assert_eq!(rt.stats().flushes, 0, "{plan}");
            let acrobat_tensor::FaultMode::Nth(nth) = fault.mode else { unreachable!() };
            assert_eq!(rt.stats().kernel_launches, nth, "{plan}: prefix accounted");
            assert!(rt.stats().host_wall_us > 0.0, "{plan}");
            rt.verify_consistent().unwrap();

            // The context is resumable: clear the fault, flush again, and
            // the results match the unfaulted run bit for bit.
            rt.mem_mut().clear_fault();
            rt.flush().unwrap();
            assert_eq!(rt.stats().flushes, 1, "{plan}");
            assert_eq!(rt.stats().aborted_flushes, 1, "{plan}");
            for (o, w) in outs.iter().zip(&want) {
                assert_eq!(rt.download(*o).unwrap().data(), w.data(), "{plan}");
            }
        }
    }

    #[test]
    fn gather_and_upload_faults_are_recoverable() {
        use acrobat_tensor::FaultPlan;
        // Gather faults need the explicit-gather path with scattered lanes.
        let (a, mut rt) = setup(
            PROGRAM,
            RuntimeOptions { gather_fusion: false, checked: true, ..Default::default() },
        );
        let group = a.blocks.blocks[0].groups[0].id;
        let w = rt.mem_mut().upload(&Tensor::from_fn(&[2, 2], |i| i as f32)).unwrap();
        let wv = rt.ready_value(w);
        let kernel = rt.library().kernel_for_group(group).clone();
        let mut outs = Vec::new();
        for i in 0..3 {
            let x = rt.upload_inputs(&[&Tensor::fill(&[1, 2], i as f32)]).unwrap()[0];
            rt.mem_mut().alloc(&acrobat_tensor::Shape::new(&[3 + i])).unwrap();
            let args: Vec<ValueId> = kernel
                .inputs
                .iter()
                .map(|inp| match inp.class {
                    acrobat_analysis::ArgClass::Batched => x,
                    acrobat_analysis::ArgClass::Shared => wv,
                })
                .collect();
            outs.push(rt.add_unit(group, i, 0, 0, args, true)[0]);
        }
        rt.mem_mut().arm_fault(FaultPlan::parse("gather:0:oom").unwrap());
        assert!(matches!(rt.flush(), Err(TensorError::DeviceOom { .. })));
        assert_eq!(rt.stats().aborted_flushes, 1);
        rt.verify_consistent().unwrap();
        rt.mem_mut().clear_fault();
        rt.flush().unwrap();
        assert!(rt.stats().gather_copies > 0);
        for (i, o) in outs.iter().enumerate() {
            let x = Tensor::fill(&[1, 2], i as f32);
            let w_host = Tensor::from_fn(&[2, 2], |i| i as f32);
            let mm =
                acrobat_tensor::execute(&acrobat_tensor::PrimOp::MatMul, &[&x, &w_host]).unwrap();
            let want = acrobat_tensor::execute(&acrobat_tensor::PrimOp::Relu, &[&mm]).unwrap();
            assert!(rt.download(*o).unwrap().allclose(&want, 1e-6));
        }

        // Upload faults surface from upload_inputs and clear cleanly too.
        let (_, mut rt) = setup(PROGRAM, RuntimeOptions { checked: true, ..Default::default() });
        rt.mem_mut().arm_fault(FaultPlan::parse("upload:0:oom").unwrap());
        let x = Tensor::ones(&[1, 2]);
        assert!(matches!(rt.upload_inputs(&[&x]), Err(TensorError::DeviceOom { .. })));
        rt.verify_consistent().unwrap();
        rt.mem_mut().clear_fault();
        assert_eq!(rt.upload_inputs(&[&x]).unwrap().len(), 1);
    }

    #[test]
    fn coarsening_reduces_charged_overheads() {
        // Two groups in one block: with coarsening, only the unit head is
        // charged for DFG construction.
        let src = "def @main($w1: Tensor[(2, 2)], $w2: Tensor[(2, 2)], %x: Tensor[(1, 2)]) -> Tensor[(1, 2)] {
            matmul(matmul(%x, $w1), $w2)
        }";
        let run = |coarsen: bool| {
            let (a, mut rt) = setup(src, RuntimeOptions { coarsen, ..Default::default() });
            let block = &a.blocks.blocks[0];
            assert_eq!(block.groups.len(), 2);
            let w1 = rt.mem_mut().upload(&Tensor::ones(&[2, 2])).unwrap();
            let w1v = rt.ready_value(w1);
            let w2 = rt.mem_mut().upload(&Tensor::ones(&[2, 2])).unwrap();
            let w2v = rt.ready_value(w2);
            let x = rt.upload_inputs(&[&Tensor::ones(&[1, 2])]).unwrap()[0];
            let g0 = block.groups[0].id;
            let g1 = block.groups[1].id;
            let o0 = rt.add_unit(g0, 0, 0, 0, vec![x, w1v], true);
            let _o1 = rt.add_unit(g1, 0, 1, 0, vec![o0[0], w2v], false);
            rt.flush().unwrap();
            rt.stats().dfg_construction_us
        };
        assert!(run(true) < run(false));
    }

    #[test]
    fn pool_reuses_same_engine_and_discards_stale_contexts() {
        let (_, rt) = setup(PROGRAM, RuntimeOptions::default());
        let engine = rt.engine().clone();
        let pool = ContextPool::new();
        pool.release(rt);
        assert_eq!(pool.idle_count(), 1);
        let again = pool.acquire(&engine);
        assert!(Arc::ptr_eq(again.engine(), &engine), "same-engine context is reused");
        assert_eq!(pool.idle_count(), 0);
        pool.release(again);

        // A PGO-style engine swap retires pooled contexts: acquiring against
        // the retuned engine discards the stale one and builds afresh.
        let retuned = Arc::new(engine.retuned(|_lib| {}));
        let fresh = pool.acquire(&retuned);
        assert!(Arc::ptr_eq(fresh.engine(), &retuned));
        assert_eq!(pool.idle_count(), 0, "stale context was dropped, not reused");
    }

    #[test]
    fn transient_faults_retry_with_backoff_bit_for_bit() {
        use crate::resilience::RetryPolicy;
        let src = "def @main($w1: Tensor[(2, 2)], $w2: Tensor[(2, 2)], %x: Tensor[(1, 2)]) -> Tensor[(1, 2)] {
            matmul(matmul(%x, $w1), $w2)
        }";
        let build = |options: RuntimeOptions| {
            let (a, mut rt) = setup(src, options);
            let block = &a.blocks.blocks[0];
            let (g0, g1) = (block.groups[0].id, block.groups[1].id);
            let w1 = rt.mem_mut().upload(&Tensor::from_fn(&[2, 2], |i| i as f32)).unwrap();
            let w1v = rt.ready_value(w1);
            let w2 = rt.mem_mut().upload(&Tensor::from_fn(&[2, 2], |i| 1.0 - i as f32)).unwrap();
            let w2v = rt.ready_value(w2);
            let mut outs = Vec::new();
            for i in 0..3 {
                let x = rt.upload_inputs(&[&Tensor::fill(&[1, 2], i as f32 - 1.0)]).unwrap()[0];
                let o0 = rt.add_unit(g0, i, 0, 0, vec![x, w1v], true);
                outs.push(rt.add_unit(g1, i, 1, 0, vec![o0[0], w2v], false)[0]);
            }
            (rt, outs)
        };
        // Fault-free reference outputs.
        let (mut rt, outs) = build(RuntimeOptions { checked: true, ..Default::default() });
        rt.flush().unwrap();
        let want: Vec<Tensor> = outs.iter().map(|o| rt.download(*o).unwrap()).collect();
        assert!(!rt.tainted(), "clean run is recyclable");

        // A one-shot kernel fault is transient: the retry replans the
        // pending suffix and the run completes bit-for-bit.
        let retry = RetryPolicy { max_retries: 2, backoff_base_us: 50.0 };
        let (mut rt, outs) = build(RuntimeOptions { checked: true, retry, ..Default::default() });
        rt.mem_mut().arm_fault(acrobat_tensor::FaultPlan::parse("launch:1:kernel").unwrap());
        rt.flush().expect("transient fault retried to success");
        assert_eq!(rt.stats().retries, 1);
        assert_eq!(rt.stats().aborted_flushes, 1);
        assert_eq!(rt.stats().flushes, 1);
        assert_eq!(rt.stats().retry_backoff_us, 50.0, "first backoff = base");
        assert!(rt.tainted(), "a fault was observed: quarantine on release");
        for (o, w) in outs.iter().zip(&want) {
            assert_eq!(rt.download(*o).unwrap().data(), w.data(), "retry is bit-for-bit");
        }

        // Fatal faults (OOM) are never retried.
        let (mut rt, _) = build(RuntimeOptions { checked: true, retry, ..Default::default() });
        rt.mem_mut().arm_fault(acrobat_tensor::FaultPlan::parse("launch:1:oom").unwrap());
        assert!(matches!(rt.flush(), Err(TensorError::DeviceOom { .. })));
        assert_eq!(rt.stats().retries, 0, "fatal faults surface immediately");

        // A permanent transient fault exhausts the retry budget.
        let (mut rt, _) = build(RuntimeOptions { checked: true, retry, ..Default::default() });
        rt.mem_mut().arm_fault(acrobat_tensor::FaultPlan::storm(
            acrobat_tensor::FaultSite::Launch,
            1_000_000,
            7,
            acrobat_tensor::FaultKind::Kernel,
        ));
        assert!(matches!(rt.flush(), Err(TensorError::Injected { .. })));
        assert_eq!(rt.stats().retries, 2, "bounded by max_retries");
        assert_eq!(rt.stats().aborted_flushes, 3, "initial attempt + 2 retries");
        assert_eq!(rt.stats().retry_backoff_us, 50.0 + 100.0, "exponential backoff");
    }

    /// A retry that replans a partially completed window takes the dirty
    /// `Bypass` path: the window was never signed (incremental folding
    /// stopped at the first completion), so the bypass must charge *zero*
    /// signing cost — a faulted-and-retried run's `plan_sig_us` balances
    /// exactly with a clean run's, which signed the same window once.
    /// Regression test: the bypass used to fall into the `Miss` arm and
    /// double-charge `sched_sig_cost_us` for folding that never happened.
    #[test]
    fn retry_bypass_charges_no_signing_cost() {
        use crate::resilience::RetryPolicy;
        let src = "def @main($w1: Tensor[(2, 2)], $w2: Tensor[(2, 2)], %x: Tensor[(1, 2)]) -> Tensor[(1, 2)] {
            matmul(matmul(%x, $w1), $w2)
        }";
        let build = |options: RuntimeOptions| {
            let (a, mut rt) = setup(src, options);
            let block = &a.blocks.blocks[0];
            let (g0, g1) = (block.groups[0].id, block.groups[1].id);
            let w1 = rt.mem_mut().upload(&Tensor::from_fn(&[2, 2], |i| i as f32)).unwrap();
            let w1v = rt.ready_value(w1);
            let w2 = rt.mem_mut().upload(&Tensor::from_fn(&[2, 2], |i| 1.0 - i as f32)).unwrap();
            let w2v = rt.ready_value(w2);
            let mut outs = Vec::new();
            for i in 0..3 {
                let x = rt.upload_inputs(&[&Tensor::fill(&[1, 2], i as f32 - 1.0)]).unwrap()[0];
                let o0 = rt.add_unit(g0, i, 0, 0, vec![x, w1v], true);
                outs.push(rt.add_unit(g1, i, 1, 0, vec![o0[0], w2v], false)[0]);
            }
            (rt, outs)
        };
        let retry = RetryPolicy { max_retries: 2, backoff_base_us: 50.0 };
        let opts = RuntimeOptions { plan_cache: true, checked: true, retry, ..Default::default() };

        // Clean reference: one signed miss covering the 6-node window.
        let (mut clean, outs) = build(opts);
        clean.flush().unwrap();
        let clean_stats = *clean.stats();
        assert_eq!(clean_stats.plan_cache_misses, 1);
        assert!(clean_stats.plan_sig_us > 0.0, "a signed miss charges folding");
        let want: Vec<Tensor> = outs.iter().map(|o| clean.download(*o).unwrap()).collect();

        // Faulted run: batch 0 completes, batch 1 faults, the retry replans
        // the 3-node pending suffix through the dirty-window bypass.
        let (mut rt, outs) = build(opts);
        rt.mem_mut().arm_fault(acrobat_tensor::FaultPlan::parse("launch:1:kernel").unwrap());
        rt.flush().expect("transient fault retried to success");
        let s = *rt.stats();
        assert_eq!(s.retries, 1);
        assert_eq!(
            s.plan_cache_misses, 2,
            "signed first attempt + bypassed retry both count as misses"
        );
        assert_eq!(
            s.plan_sig_us, clean_stats.plan_sig_us,
            "the bypassed retry must charge zero signing cost"
        );
        assert_eq!(
            s.plan_sig_chain, clean_stats.plan_sig_chain,
            "only the signed window folds into the determinism digest"
        );
        for (o, w) in outs.iter().zip(&want) {
            assert_eq!(rt.download(*o).unwrap().data(), w.data(), "retry is bit-for-bit");
        }
    }

    #[test]
    fn interrupts_surface_and_taint() {
        use crate::resilience::{CancelToken, Deadline};
        let (a, mut rt) = setup(PROGRAM, RuntimeOptions::default());
        let group = a.blocks.blocks[0].groups[0].id;
        let w = rt.mem_mut().upload(&Tensor::ones(&[2, 2])).unwrap();
        let wv = rt.ready_value(w);
        let x = rt.upload_inputs(&[&Tensor::ones(&[1, 2])]).unwrap()[0];
        let kernel = rt.library().kernel_for_group(group).clone();
        let args: Vec<ValueId> = kernel
            .inputs
            .iter()
            .map(|inp| match inp.class {
                acrobat_analysis::ArgClass::Batched => x,
                acrobat_analysis::ArgClass::Shared => wv,
            })
            .collect();
        rt.add_unit(group, 0, 0, 0, args, true);
        let token = CancelToken::new();
        rt.set_cancel(token.clone());
        rt.flush().expect("un-cancelled flush proceeds");
        assert!(!rt.tainted());
        token.cancel();
        assert_eq!(rt.flush(), Err(TensorError::Cancelled));
        assert!(rt.tainted(), "cancellation quarantines the context");

        // A zero virtual budget trips deterministically on the first check;
        // the interrupt is not a device fault and is never retried.
        let (_, mut rt) = setup(
            PROGRAM,
            RuntimeOptions {
                retry: crate::resilience::RetryPolicy { max_retries: 3, backoff_base_us: 50.0 },
                ..Default::default()
            },
        );
        rt.set_deadline(Deadline::virtual_us(0.0));
        assert!(matches!(rt.flush(), Err(TensorError::DeadlineExceeded { .. })));
        assert_eq!(rt.stats().retries, 0, "interrupts are never retried");
        assert!(rt.tainted());
    }

    #[test]
    fn repeated_aborts_downshift_then_recover_bit_for_bit() {
        let build = || {
            let (a, mut rt) =
                setup(PROGRAM, RuntimeOptions { checked: true, ..Default::default() });
            let group = a.blocks.blocks[0].groups[0].id;
            let w = rt.mem_mut().upload(&Tensor::from_fn(&[2, 2], |i| i as f32)).unwrap();
            let wv = rt.ready_value(w);
            let kernel = rt.library().kernel_for_group(group).clone();
            let mut outs = Vec::new();
            for i in 0..4 {
                let x = rt.upload_inputs(&[&Tensor::fill(&[1, 2], i as f32 - 1.5)]).unwrap()[0];
                let args: Vec<ValueId> = kernel
                    .inputs
                    .iter()
                    .map(|inp| match inp.class {
                        acrobat_analysis::ArgClass::Batched => x,
                        acrobat_analysis::ArgClass::Shared => wv,
                    })
                    .collect();
                outs.push(rt.add_unit(group, i, 0, 0, args, true)[0]);
            }
            (rt, outs)
        };
        let (mut rt, outs) = build();
        rt.flush().unwrap();
        assert_eq!(rt.stats().kernel_launches, 1, "4 lanes, one launch at full batch");
        let want: Vec<Tensor> = outs.iter().map(|o| rt.download(*o).unwrap()).collect();

        // An always-on launch storm aborts every flush; the second
        // consecutive abort starts halving the lane cap.
        let (mut rt, outs) = build();
        rt.mem_mut().arm_fault(acrobat_tensor::FaultPlan::storm(
            acrobat_tensor::FaultSite::Launch,
            1_000_000,
            1,
            acrobat_tensor::FaultKind::Kernel,
        ));
        assert!(rt.flush().is_err());
        assert_eq!(rt.lane_cap(), 0, "one abort is not a trend");
        assert!(rt.flush().is_err());
        assert_eq!(rt.lane_cap(), 2, "second consecutive abort halves the 4-lane batch");
        assert!(rt.flush().is_err());
        assert_eq!(rt.lane_cap(), 1, "third abort halves again, to the one-lane floor");
        assert_eq!(rt.stats().downshifts, 2);

        // Downshifted execution is chunked (more launches) but bit-for-bit.
        rt.mem_mut().clear_fault();
        rt.flush().unwrap();
        assert_eq!(rt.stats().kernel_launches, 4, "cap 1: one launch per lane");
        for (o, w) in outs.iter().zip(&want) {
            assert_eq!(rt.download(*o).unwrap().data(), w.data(), "chunking is value-neutral");
        }
        assert_eq!(rt.lane_cap(), 2, "a clean flush doubles the cap back toward unlimited");
    }

    #[test]
    fn pool_quarantines_tainted_contexts() {
        // Satellite: a context that aborted a flush holds stale pending DFG
        // nodes, partial device memory and an armed fault plan — the pool
        // must drop it, never recycle it.
        let (a, mut rt) = setup(PROGRAM, RuntimeOptions::default());
        let group = a.blocks.blocks[0].groups[0].id;
        let w = rt.mem_mut().upload(&Tensor::ones(&[2, 2])).unwrap();
        let wv = rt.ready_value(w);
        let x = rt.upload_inputs(&[&Tensor::ones(&[1, 2])]).unwrap()[0];
        let kernel = rt.library().kernel_for_group(group).clone();
        let args: Vec<ValueId> = kernel
            .inputs
            .iter()
            .map(|inp| match inp.class {
                acrobat_analysis::ArgClass::Batched => x,
                acrobat_analysis::ArgClass::Shared => wv,
            })
            .collect();
        rt.add_unit(group, 0, 0, 0, args, true);
        rt.mem_mut().arm_fault(acrobat_tensor::FaultPlan::parse("launch:0:kernel").unwrap());
        assert!(rt.flush().is_err());
        assert!(rt.tainted());
        assert!(rt.mem_mut().armed_fault().is_some(), "fault plan still armed at release");

        let engine = rt.engine().clone();
        let pool = ContextPool::new();
        pool.release(rt);
        assert_eq!(pool.idle_count(), 0, "tainted context dropped");
        assert_eq!(pool.quarantined_count(), 1);

        // The replacement context the pool hands out is pristine.
        let mut fresh = pool.acquire(&engine);
        assert!(fresh.mem_mut().armed_fault().is_none());
        assert_eq!(fresh.stats(), &RuntimeStats::default());
        assert!(!fresh.tainted());
        fresh.flush().unwrap();
        assert_eq!(fresh.stats().flushes, 0, "no stale pending nodes to execute");
        pool.release(fresh);
        assert_eq!(pool.idle_count(), 1, "clean contexts still pool");
        assert_eq!(pool.quarantined_count(), 1);
    }

    #[test]
    fn recycled_context_carries_no_stale_pending_nodes() {
        // An *abandoned* (never-flushed, never-faulted) run is not tainted;
        // recycling it must still not leak its pending DFG nodes, armed
        // fault plan or device memory into the next request.
        let (a, mut rt) = setup(PROGRAM, RuntimeOptions::default());
        let group = a.blocks.blocks[0].groups[0].id;
        let w = rt.mem_mut().upload(&Tensor::ones(&[2, 2])).unwrap();
        let wv = rt.ready_value(w);
        let x = rt.upload_inputs(&[&Tensor::ones(&[1, 2])]).unwrap()[0];
        let kernel = rt.library().kernel_for_group(group).clone();
        let args: Vec<ValueId> = kernel
            .inputs
            .iter()
            .map(|inp| match inp.class {
                acrobat_analysis::ArgClass::Batched => x,
                acrobat_analysis::ArgClass::Shared => wv,
            })
            .collect();
        rt.add_unit(group, 0, 0, 0, args, true);
        rt.mem_mut().arm_fault(acrobat_tensor::FaultPlan::parse("launch:5:kernel").unwrap());
        assert!(!rt.tainted());

        let engine = rt.engine().clone();
        let pool = ContextPool::new();
        pool.release(rt);
        assert_eq!(pool.idle_count(), 1, "clean context recycled");
        let mut rt = pool.acquire(&engine);
        assert!(rt.mem_mut().armed_fault().is_none(), "armed plan cleared");
        let mem = rt.mem_mut().stats();
        assert_eq!((mem.upload_bytes, mem.peak_elements), (0, 0), "device memory cleared");
        rt.flush().unwrap();
        assert_eq!(rt.stats().flushes, 0, "no stale pending nodes");
        assert_eq!(rt.stats().kernel_launches, 0);
    }

    /// Drives the two-group chain workload (two batches per flush, several
    /// lanes each) and returns the downloaded outputs plus final stats.
    fn chain_run(options: RuntimeOptions, instances: usize) -> (Vec<Tensor>, RuntimeStats) {
        let src = "def @main($w1: Tensor[(2, 2)], $w2: Tensor[(2, 2)], %x: Tensor[(1, 2)]) -> Tensor[(1, 2)] {
            matmul(matmul(%x, $w1), $w2)
        }";
        let (a, mut rt) = setup(src, options);
        let block = &a.blocks.blocks[0];
        let (g0, g1) = (block.groups[0].id, block.groups[1].id);
        let w1 = rt.mem_mut().upload(&Tensor::from_fn(&[2, 2], |i| i as f32 * 0.25)).unwrap();
        let w1v = rt.ready_value(w1);
        let w2 = rt.mem_mut().upload(&Tensor::from_fn(&[2, 2], |i| 1.0 - i as f32 * 0.5)).unwrap();
        let w2v = rt.ready_value(w2);
        let mut outs = Vec::new();
        for i in 0..instances {
            let x = rt.upload_inputs(&[&Tensor::fill(&[1, 2], i as f32 - 2.0)]).unwrap()[0];
            let o0 = rt.add_unit(g0, i, 0, 0, vec![x, w1v], true);
            outs.push(rt.add_unit(g1, i, 1, 0, vec![o0[0], w2v], false)[0]);
        }
        rt.flush().unwrap();
        let results = outs.iter().map(|o| rt.download(*o).unwrap()).collect();
        (results, *rt.stats())
    }

    #[test]
    fn parallel_execution_is_bit_identical_and_modeled_neutral() {
        let (seq_out, seq_stats) = chain_run(RuntimeOptions::default(), 7);
        for workers in [2, 3, 8] {
            let (par_out, par_stats) =
                chain_run(RuntimeOptions { parallel_workers: workers, ..Default::default() }, 7);
            for (s, p) in seq_out.iter().zip(&par_out) {
                let s_bits: Vec<u32> = s.data().iter().map(|v| v.to_bits()).collect();
                let p_bits: Vec<u32> = p.data().iter().map(|v| v.to_bits()).collect();
                assert_eq!(s_bits, p_bits, "workers={workers}: outputs must be bit-for-bit");
            }
            // Modeled accounting is charged identically on both paths; only
            // real wall time may differ.
            let norm = |mut s: RuntimeStats| {
                s.host_wall_us = 0.0;
                s.exec_wall_us = 0.0;
                s
            };
            assert_eq!(norm(seq_stats), norm(par_stats), "workers={workers}");
        }
    }

    #[test]
    fn parallel_path_faults_roll_back_and_resume_bit_for_bit() {
        use acrobat_tensor::FaultPlan;
        let src = "def @main($w1: Tensor[(2, 2)], $w2: Tensor[(2, 2)], %x: Tensor[(1, 2)]) -> Tensor[(1, 2)] {
            matmul(matmul(%x, $w1), $w2)
        }";
        let build = |options: RuntimeOptions| {
            let (a, mut rt) = setup(src, options);
            let block = &a.blocks.blocks[0];
            let (g0, g1) = (block.groups[0].id, block.groups[1].id);
            let w1 = rt.mem_mut().upload(&Tensor::from_fn(&[2, 2], |i| i as f32)).unwrap();
            let w1v = rt.ready_value(w1);
            let w2 = rt.mem_mut().upload(&Tensor::from_fn(&[2, 2], |i| 1.0 - i as f32)).unwrap();
            let w2v = rt.ready_value(w2);
            let mut outs = Vec::new();
            for i in 0..3 {
                let x = rt.upload_inputs(&[&Tensor::fill(&[1, 2], i as f32 - 1.0)]).unwrap()[0];
                let o0 = rt.add_unit(g0, i, 0, 0, vec![x, w1v], true);
                outs.push(rt.add_unit(g1, i, 1, 0, vec![o0[0], w2v], false)[0]);
            }
            (rt, outs)
        };
        let opts = RuntimeOptions { parallel_workers: 4, checked: true, ..Default::default() };
        let (mut rt, outs) = build(opts);
        rt.flush().unwrap();
        let want: Vec<Tensor> = outs.iter().map(|o| rt.download(*o).unwrap()).collect();

        // Fail the second launch: the first run already committed, the
        // second run rolls back whole — every modeled charge of the failed
        // run is rescinded, and the retry flush completes bit-for-bit.
        let (mut rt, outs) = build(opts);
        rt.mem_mut().arm_fault(FaultPlan::parse("launch:1:kernel").unwrap());
        assert!(matches!(rt.flush(), Err(TensorError::Injected { .. })));
        assert_eq!(rt.stats().aborted_flushes, 1);
        assert_eq!(rt.stats().kernel_launches, 1, "only the committed run is accounted");
        rt.verify_consistent().unwrap();
        rt.mem_mut().clear_fault();
        rt.flush().unwrap();
        for (o, w) in outs.iter().zip(&want) {
            assert_eq!(rt.download(*o).unwrap().data(), w.data());
        }
    }

    #[test]
    fn overlap_reduces_modeled_latency_without_touching_busy_accounts() {
        let serialized = RuntimeOptions::default();
        let overlapped = RuntimeOptions {
            timeline: crate::timeline::TimelineOptions {
                streams: 4,
                copy_engine: true,
                host_overlap: true,
            },
            ..Default::default()
        };
        let (ser_out, ser) = chain_run(serialized, 6);
        let (ovl_out, ovl) = chain_run(overlapped, 6);
        for (s, p) in ser_out.iter().zip(&ovl_out) {
            assert_eq!(s.data(), p.data(), "overlap is a modeling change only");
        }
        // The serialized configuration saves exactly nothing.
        assert_eq!(ser.overlap_saved_us, 0.0);
        // Overlap shortens the critical path but leaves every per-account
        // busy time untouched (Table 5 breakdowns stay comparable).
        assert!(ovl.overlap_saved_us > 0.0);
        assert!(ovl.total_us() < ser.total_us());
        assert_eq!(ser.kernel_time_us, ovl.kernel_time_us);
        assert_eq!(ser.memcpy_us, ovl.memcpy_us);
        assert_eq!(ser.cuda_api_us, ovl.cuda_api_us);
        assert_eq!(ser.scheduling_us, ovl.scheduling_us);
        assert_eq!(ser.dfg_construction_us, ovl.dfg_construction_us);
    }

    #[test]
    fn pool_reuse_resets_state_and_fault_plan() {
        let (a, mut rt) = setup(PROGRAM, RuntimeOptions::default());
        let group = a.blocks.blocks[0].groups[0].id;
        let w = rt.mem_mut().upload(&Tensor::ones(&[2, 2])).unwrap();
        let wv = rt.ready_value(w);
        let x = rt.upload_inputs(&[&Tensor::ones(&[1, 2])]).unwrap()[0];
        let kernel = rt.library().kernel_for_group(group).clone();
        let args: Vec<ValueId> = kernel
            .inputs
            .iter()
            .map(|inp| match inp.class {
                acrobat_analysis::ArgClass::Batched => x,
                acrobat_analysis::ArgClass::Shared => wv,
            })
            .collect();
        rt.add_unit(group, 0, 0, 0, args, true);
        rt.flush().unwrap();
        rt.mem_mut().arm_fault(acrobat_tensor::FaultPlan::parse("upload:0:oom").unwrap());

        let engine = rt.engine().clone();
        let pool = ContextPool::new();
        pool.release(rt);
        let mut rt = pool.acquire(&engine);
        assert_eq!(rt.stats(), &RuntimeStats::default(), "stats cleared on reuse");
        assert!(rt.take_profile().is_empty(), "profile cleared on reuse");
        // The armed fault from the previous request must not fire.
        assert_eq!(rt.upload_inputs(&[&Tensor::ones(&[1, 2])]).unwrap().len(), 1);
    }
}
