//! The simulated accelerator cost model.
//!
//! The paper's numbers come from an Nvidia RTX 3070; this reproduction has
//! no GPU, so device time is computed analytically from the quantities the
//! runtime actually produces: kernel launches, floating-point work, bytes
//! moved (shared operands once per launch, batched operands per lane,
//! explicit gathers, host↔device transfers) and the auto-scheduler's
//! kernel-quality factor.  The default constants are calibrated to the
//! order of magnitude of the paper's Table 5 breakdown; every raw count is
//! reported alongside so the benchmarks' *shape* conclusions never hinge on
//! a single constant.

use acrobat_codegen::{KernelLaunchStats, Schedule};
use serde::{Deserialize, Serialize};

/// Analytical accelerator + host-overhead model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceModel {
    /// Fixed cost of one kernel launch, µs (CUDA driver overhead).
    pub launch_overhead_us: f64,
    /// Effective compute throughput, FLOPs per µs.
    pub flops_per_us: f64,
    /// Effective memory bandwidth, bytes per µs.
    pub bytes_per_us: f64,
    /// Relative cost multiplier for indirect (gather-fused) operand reads.
    pub indirect_read_penalty: f64,
    /// Output elements needed to saturate the device (kernels producing
    /// fewer run at proportionally lower utilization — small unbatched
    /// kernels cannot fill an RTX 3070).
    pub saturation_elements: f64,
    /// Utilization floor for tiny kernels.
    pub min_utilization: f64,
    /// Fixed cost of one host↔device transfer operation, µs.
    pub memcpy_overhead_us: f64,
    /// Effective host↔device (PCIe) bandwidth, bytes per µs.
    #[serde(default = "default_pcie_bytes_per_us")]
    pub pcie_bytes_per_us: f64,
    /// Host cost of constructing one DFG node, µs.
    pub dfg_node_cost_us: f64,
    /// Host cost of one inline-depth scheduling decision, µs (bucket
    /// insert).
    pub sched_inline_cost_us: f64,
    /// Host cost per node of dynamic depth computation, µs.
    pub sched_dyn_depth_cost_us: f64,
    /// Host cost per node of agenda-based scheduling, µs.
    pub sched_agenda_cost_us: f64,
    /// Host cost per node of folding the window signature during DFG
    /// construction ([`crate::plan_cache`]), µs.  Charged on every flush
    /// with the plan cache on, hit or miss.
    #[serde(default = "default_sched_sig_cost_us")]
    pub sched_sig_cost_us: f64,
    /// Host cost per node of rebinding a cached plan onto the current
    /// window (plan-cache hit dispatch), µs.
    #[serde(default = "default_sched_remap_cost_us")]
    pub sched_remap_cost_us: f64,
    /// Host cost of one fiber context switch, µs.
    pub fiber_switch_cost_us: f64,
}

impl Default for DeviceModel {
    fn default() -> Self {
        DeviceModel {
            launch_overhead_us: 8.0,
            flops_per_us: 2.0e6,     // ~2 effective TFLOP/s fp32
            bytes_per_us: 300_000.0, // ~300 GB/s effective
            indirect_read_penalty: 1.6,
            saturation_elements: 49_152.0,
            min_utilization: 0.02,
            memcpy_overhead_us: 10.0,
            pcie_bytes_per_us: default_pcie_bytes_per_us(),
            dfg_node_cost_us: 0.45,
            sched_inline_cost_us: 0.08,
            sched_dyn_depth_cost_us: 0.30,
            sched_agenda_cost_us: 0.60,
            sched_sig_cost_us: default_sched_sig_cost_us(),
            sched_remap_cost_us: default_sched_remap_cost_us(),
            fiber_switch_cost_us: 0.35,
        }
    }
}

impl DeviceModel {
    /// Device-busy time of one batched kernel launch, µs (excluding the
    /// launch overhead, which is charged to the CUDA-API account).
    ///
    /// The kernel is memory- or compute-bound, whichever is larger, divided
    /// by the schedule quality at the actual batch extent.  Gather-fused
    /// scattered reads pay the indirection penalty on the batched-operand
    /// traffic.
    pub fn kernel_time_us(
        &self,
        stats: &KernelLaunchStats,
        schedule: Option<&Schedule>,
        batch: usize,
    ) -> f64 {
        // Small-kernel utilization: a launch producing few elements cannot
        // fill the device's SMs.
        let out_elems = (stats.output_bytes as f64 / 4.0).max(1.0);
        let util = (out_elems / self.saturation_elements).clamp(self.min_utilization, 1.0);
        let compute = stats.flops as f64 / (self.flops_per_us * util);
        let indirect_factor =
            if stats.indirect_reads > 0 { self.indirect_read_penalty } else { 1.0 };
        let traffic = stats.shared_bytes as f64
            + stats.batched_bytes as f64 * indirect_factor
            + stats.output_bytes as f64;
        let memory = traffic / (self.bytes_per_us * util.sqrt().max(0.25));
        let quality = schedule
            .map(|s| s.quality_at(batch))
            .unwrap_or(acrobat_codegen::autosched::UNTUNED_QUALITY);
        compute.max(memory) / quality
    }

    /// Device time of the explicit gathers performed for a launch, µs.
    pub fn gather_time_us(&self, stats: &KernelLaunchStats) -> f64 {
        // Gather copies are strided device-to-device copies: bandwidth cost
        // plus a small fixed cost per gather kernel.
        stats.gather_bytes as f64 / self.bytes_per_us
            + stats.gather_copies as f64 * self.launch_overhead_us * 0.5
    }

    /// Host↔device transfer time, µs, for `bytes` moved in `ops` calls.
    pub fn memcpy_time_us(&self, bytes: u64, ops: u64) -> f64 {
        bytes as f64 / self.pcie_bytes_per_us + ops as f64 * self.memcpy_overhead_us
    }
}

/// PCIe-ish 12 GB/s effective (calibrated to a Gen3 ×16 link under real
/// pinned-memory transfer efficiency, matching the paper's RTX 3070 host).
fn default_pcie_bytes_per_us() -> f64 {
    12_000.0
}

/// One hash fold over metadata already in registers — an order of
/// magnitude cheaper than even the inline scheduler's bucket insert.
fn default_sched_sig_cost_us() -> f64 {
    0.01
}

/// One offset add + store per node on a plan-cache hit.
fn default_sched_remap_cost_us() -> f64 {
    0.005
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(flops: u64, shared: u64, batched: u64, out: u64) -> KernelLaunchStats {
        KernelLaunchStats {
            launches: 1,
            flops,
            shared_bytes: shared,
            batched_bytes: batched,
            output_bytes: out,
            ..Default::default()
        }
    }

    #[test]
    fn compute_bound_scales_with_flops() {
        let m = DeviceModel::default();
        let t1 = m.kernel_time_us(&stats(2_000_000, 0, 1_000, 1_000), None, 1);
        let t2 = m.kernel_time_us(&stats(4_000_000, 0, 1_000, 1_000), None, 1);
        assert!(t2 > t1 * 1.9 && t2 < t1 * 2.1);
    }

    #[test]
    fn memory_bound_small_kernels() {
        let m = DeviceModel::default();
        // Tiny flops, large traffic → memory bound.
        let t = m.kernel_time_us(&stats(10, 0, 3_000_000, 3_000_000), None, 1);
        assert!(t > 3_000_000.0 / m.bytes_per_us);
    }

    #[test]
    fn better_schedule_is_faster() {
        let m = DeviceModel::default();
        let s = stats(1_000_000, 0, 0, 100);
        let tuned = Schedule {
            tile: 1,
            vector: 1,
            unroll: 1,
            quality: 0.9,
            tuned_batch: 64,
            local_padding: true,
            iterations_spent: 100,
        };
        let fast = m.kernel_time_us(&s, Some(&tuned), 64);
        let slow = m.kernel_time_us(&s, None, 64);
        assert!(fast < slow, "tuned {fast} vs untuned {slow}");
    }

    #[test]
    fn indirection_penalty_applies_to_batched_traffic_only() {
        let m = DeviceModel::default();
        let mut fused = stats(0, 1_000_000, 2_000_000, 0);
        fused.indirect_reads = 8;
        let gathered = stats(0, 1_000_000, 2_000_000, 0);
        let tf = m.kernel_time_us(&fused, None, 8);
        let tg = m.kernel_time_us(&gathered, None, 8);
        assert!(tf > tg);
        // …but the gathered path pays gather time separately.
        let mut g = gathered;
        g.gather_bytes = 2_000_000;
        g.gather_copies = 1;
        assert!(m.gather_time_us(&g) > 0.0);
        assert_eq!(m.gather_time_us(&fused), 0.0);
    }

    #[test]
    fn memcpy_batching_saves_overhead() {
        let m = DeviceModel::default();
        let many = m.memcpy_time_us(1_000_000, 100);
        let one = m.memcpy_time_us(1_000_000, 1);
        assert!(many > one + 900.0);
    }

    #[test]
    fn pcie_bandwidth_is_tunable_and_defaults_compatibly() {
        let m = DeviceModel::default();
        assert_eq!(m.pcie_bytes_per_us, 12_000.0);
        // Doubling the link speed halves the bandwidth term only.
        let fast = DeviceModel { pcie_bytes_per_us: 24_000.0, ..m };
        let base = m.memcpy_time_us(1_200_000, 0);
        assert_eq!(fast.memcpy_time_us(1_200_000, 0), base / 2.0);
        assert_eq!(fast.memcpy_time_us(0, 3), m.memcpy_time_us(0, 3));
    }
}
