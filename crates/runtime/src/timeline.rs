//! Event-driven simulated device timeline.
//!
//! The scalar [`crate::DeviceModel`] prices individual activities; this
//! module sequences them the way an RTX-3070-class accelerator would run
//! them: `N` in-order compute streams, one dedicated copy engine, and the
//! host thread as its own lane.  Modeled latency becomes the *critical
//! path* through that schedule rather than the serial sum of all charges,
//! while every per-account busy time keeps accumulating unchanged for
//! Table 5-style breakdowns.
//!
//! Event rules (mirroring CUDA stream semantics):
//!
//! * every operation is **issued** by the host, so it can start no earlier
//!   than the host lane's cursor; the issuing API overhead itself is host
//!   work;
//! * a **kernel launch** runs on the least-loaded compute stream, starting
//!   at `max(stream tail, host issue time, producers' completion events)` —
//!   the producer events are the flush `Plan`'s DFG edges, which is exactly
//!   the cross-stream dependency an event-wait would encode;
//! * a **transfer** (upload, download, explicit gather) runs on the copy
//!   engine when one is configured, overlapping independent compute;
//!   otherwise it queues on compute stream 0;
//! * with `host_overlap` the host continues after issuing (async queue);
//!   without it the host blocks until the operation completes.  Downloads
//!   always block the host — the caller needs the bytes.
//!
//! With the default serialized configuration (`streams = 1`, no copy
//! engine, no host overlap) every event chains onto a single cursor, so the
//! critical path is *bitwise* equal to the serial sum of charges and
//! [`DeviceTimeline::overlap_saved_us`] is exactly `0.0` — the legacy
//! scalar accumulation is reproduced to the last ulp.

use serde::{Deserialize, Serialize};

use crate::dfg::ValueId;

/// Configuration of the simulated device timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimelineOptions {
    /// Number of in-order compute streams (≥ 1).  Independent batches of a
    /// flush dispatch round-robin-by-load across the streams.
    pub streams: u32,
    /// Dedicated copy engine: transfers and explicit gathers overlap
    /// compute instead of queueing on stream 0.
    pub copy_engine: bool,
    /// Asynchronous launches: the host continues after issuing an
    /// operation instead of blocking until it completes.
    pub host_overlap: bool,
}

impl Default for TimelineOptions {
    fn default() -> Self {
        TimelineOptions { streams: 1, copy_engine: false, host_overlap: false }
    }
}

impl TimelineOptions {
    /// Whether any overlap source is enabled.  When `false`, the timeline
    /// degenerates to the legacy serial accumulation (bitwise).
    pub fn overlap_enabled(&self) -> bool {
        self.streams > 1 || self.copy_engine || self.host_overlap
    }

    /// Effective stream count (≥ 1; `streams = 0` is treated as 1).
    pub fn effective_streams(&self) -> usize {
        (self.streams as usize).max(1)
    }
}

/// One recorded kernel launch (kept only when tracing is enabled; tests and
/// the timeline bench assert event-ordering invariants on it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaunchEvent {
    /// Compute stream the launch was placed on.
    pub stream: u32,
    /// Time the launch started executing, µs.
    pub start_us: f64,
    /// Completion event time, µs.
    pub end_us: f64,
    /// Latest completion event among the launch's producers (and its
    /// gather, if any), µs.  Invariant: `start_us >= deps_ready_us`.
    pub deps_ready_us: f64,
    /// Host issue time, µs.  Invariant: `start_us >= issued_us`.
    pub issued_us: f64,
}

/// The simulated device timeline of one [`crate::ExecutionContext`].
///
/// Cursors only ever move forward; [`DeviceTimeline::makespan_us`] is the
/// maximum over all lanes and [`DeviceTimeline::overlap_saved_us`] is the
/// (always non-negative) difference between the serial sum of charges and
/// that makespan.
#[derive(Debug, Clone)]
pub struct DeviceTimeline {
    opts: TimelineOptions,
    /// Host lane cursor, µs.
    host_us: f64,
    /// Per compute stream: time the stream's queue drains, µs.
    streams: Vec<f64>,
    /// Copy engine cursor, µs (unused without a copy engine).
    copy_us: f64,
    /// Completion event per [`ValueId`] (0.0 = ready at start of time,
    /// e.g. pre-uploaded weights).  Indexed by value id; grown on demand.
    value_ready: Vec<f64>,
    /// Serial sum of every charge, µs — what the legacy accumulator
    /// reported as total latency.
    serial_us: f64,
    /// Busy time per compute stream, µs.
    stream_busy: Vec<f64>,
    /// Busy time of the copy engine, µs.
    copy_busy: f64,
    /// Busy time of the host lane, µs.
    host_busy: f64,
    /// Launch log, kept only when tracing.
    trace: Option<Vec<LaunchEvent>>,
}

impl DeviceTimeline {
    /// A fresh timeline at t = 0.
    pub fn new(opts: TimelineOptions) -> DeviceTimeline {
        let n = opts.effective_streams();
        DeviceTimeline {
            opts,
            host_us: 0.0,
            streams: vec![0.0; n],
            copy_us: 0.0,
            value_ready: Vec::new(),
            serial_us: 0.0,
            stream_busy: vec![0.0; n],
            copy_busy: 0.0,
            host_busy: 0.0,
            trace: None,
        }
    }

    /// As [`DeviceTimeline::new`], recording every launch for inspection.
    pub fn with_trace(opts: TimelineOptions) -> DeviceTimeline {
        let mut t = DeviceTimeline::new(opts);
        t.trace = Some(Vec::new());
        t
    }

    /// The active configuration.
    pub fn options(&self) -> &TimelineOptions {
        &self.opts
    }

    /// Rewinds to t = 0 (context reuse), keeping the configuration.
    pub fn reset(&mut self) {
        let n = self.opts.effective_streams();
        self.host_us = 0.0;
        self.streams.clear();
        self.streams.resize(n, 0.0);
        self.copy_us = 0.0;
        self.value_ready.clear();
        self.serial_us = 0.0;
        self.stream_busy.clear();
        self.stream_busy.resize(n, 0.0);
        self.copy_busy = 0.0;
        self.host_busy = 0.0;
        if let Some(t) = &mut self.trace {
            t.clear();
        }
    }

    /// Charges host-lane work (DFG node construction, scheduling, fiber
    /// switches, retry backoff, API call overheads).
    pub fn host(&mut self, us: f64) {
        self.host_us += us;
        self.host_busy += us;
        self.serial_us += us;
    }

    fn value_ready_at(&self, v: ValueId) -> f64 {
        self.value_ready.get(v.0 as usize).copied().unwrap_or(0.0)
    }

    fn set_value_ready(&mut self, v: ValueId, at: f64) {
        let i = v.0 as usize;
        if i >= self.value_ready.len() {
            self.value_ready.resize(i + 1, 0.0);
        }
        self.value_ready[i] = at;
    }

    /// Latest completion event among `args` (0.0 when all are pre-flush
    /// ready values).
    pub fn args_ready_us(&self, args: impl IntoIterator<Item = ValueId>) -> f64 {
        args.into_iter().map(|v| self.value_ready_at(v)).fold(0.0, f64::max)
    }

    /// A host→device transfer producing `outputs`: `api_us` of host-side
    /// driver work plus `transfer_us` occupying the copy engine (or stream
    /// 0 without one).
    pub fn upload(&mut self, api_us: f64, transfer_us: f64, outputs: &[ValueId]) {
        self.host(api_us);
        let end = self.run_copy_op(transfer_us, 0.0);
        if !self.opts.host_overlap {
            self.host_us = end;
        }
        for &v in outputs {
            self.set_value_ready(v, end);
        }
    }

    /// A device→host transfer of `value`.  Downloads always block the host
    /// lane until the bytes arrive.
    pub fn download(&mut self, api_us: f64, transfer_us: f64, value: Option<ValueId>) {
        self.host(api_us);
        let dep = value.map(|v| self.value_ready_at(v)).unwrap_or(0.0);
        let end = self.run_copy_op(transfer_us, dep);
        self.host_us = self.host_us.max(end);
    }

    /// Runs a `dur`-µs op on the copy lane (or stream 0 without a copy
    /// engine), starting no earlier than the host cursor and `dep`.
    fn run_copy_op(&mut self, dur: f64, dep: f64) -> f64 {
        self.serial_us += dur;
        if self.opts.copy_engine {
            let start = self.copy_us.max(self.host_us).max(dep);
            let end = start + dur;
            self.copy_us = end;
            self.copy_busy += dur;
            end
        } else {
            let start = self.streams[0].max(self.host_us).max(dep);
            let end = start + dur;
            self.streams[0] = end;
            self.stream_busy[0] += dur;
            end
        }
    }

    /// A batched kernel launch: `api_us` of host issue work, then
    /// `gather_us` of copy-engine staging (0.0 under gather fusion) and
    /// `kernel_us` of compute, starting only after `deps_ready_us` — the
    /// latest producer completion event among the batch's arguments.
    /// Completion events are recorded for `outputs`.
    ///
    /// Returns the compute stream the launch was placed on.
    pub fn launch(
        &mut self,
        deps_ready_us: f64,
        gather_us: f64,
        kernel_us: f64,
        api_us: f64,
        outputs: impl IntoIterator<Item = ValueId>,
    ) -> u32 {
        self.host(api_us);
        let issued = self.host_us;
        // Explicit gather staging precedes the kernel; on the copy engine
        // it overlaps other streams' compute but orders before this launch.
        let mut dep = deps_ready_us;
        if gather_us > 0.0 && self.opts.copy_engine {
            dep = self.run_copy_op(gather_us, dep);
        }
        // Least-loaded stream, lowest index on ties (deterministic).
        let mut s = 0usize;
        for (i, &tail) in self.streams.iter().enumerate().skip(1) {
            if tail < self.streams[s] {
                s = i;
            }
        }
        let mut dur = kernel_us;
        if gather_us > 0.0 && !self.opts.copy_engine {
            // No copy engine: the gather is a device-side copy queued on
            // the same stream right before the kernel.
            dur += gather_us;
        }
        let start = self.streams[s].max(issued).max(dep);
        let end = start + dur;
        self.streams[s] = end;
        self.stream_busy[s] += dur;
        // Charge `dur` (not gather and kernel separately) so the serialized
        // configuration performs the *same* f64 addition sequence as the
        // host cursor — the bitwise-equality guarantee depends on it.
        self.serial_us += dur;
        if !self.opts.host_overlap {
            self.host_us = end;
        }
        let at = end;
        for v in outputs {
            self.set_value_ready(v, at);
        }
        if let Some(t) = &mut self.trace {
            t.push(LaunchEvent {
                stream: s as u32,
                start_us: start,
                end_us: end,
                deps_ready_us: dep,
                issued_us: issued,
            });
        }
        s as u32
    }

    /// The critical path: time the last lane drains, µs.
    pub fn makespan_us(&self) -> f64 {
        let device = self.streams.iter().fold(self.copy_us, |a, &b| a.max(b));
        self.host_us.max(device)
    }

    /// Serial sum of all charges, µs — what a scalar accumulator reports.
    pub fn serial_us(&self) -> f64 {
        self.serial_us
    }

    /// Modeled time saved by overlap: `serial − makespan`, µs.  Exactly
    /// `0.0` in the serialized configuration; never negative (every event
    /// advances the makespan by at most its serial charge).
    pub fn overlap_saved_us(&self) -> f64 {
        self.serial_us - self.makespan_us()
    }

    /// Busy time per compute stream, µs.
    pub fn stream_busy_us(&self) -> &[f64] {
        &self.stream_busy
    }

    /// Busy time of the copy engine, µs.
    pub fn copy_busy_us(&self) -> f64 {
        self.copy_busy
    }

    /// Busy time of the host lane, µs.
    pub fn host_busy_us(&self) -> f64 {
        self.host_busy
    }

    /// Recorded launches (empty unless built with
    /// [`DeviceTimeline::with_trace`]).
    pub fn trace(&self) -> &[LaunchEvent] {
        self.trace.as_deref().unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u64) -> ValueId {
        ValueId(i)
    }

    #[test]
    fn serialized_timeline_is_bitwise_serial() {
        let mut t = DeviceTimeline::new(TimelineOptions::default());
        t.host(0.45);
        t.upload(10.0, 93.7, &[v(0)]);
        t.launch(t.args_ready_us([v(0)]), 0.0, 17.3, 8.0, [v(1)]);
        t.launch(t.args_ready_us([v(1)]), 4.2, 9.9, 8.0, [v(2)]);
        t.download(10.0, 12.5, Some(v(2)));
        assert_eq!(t.makespan_us(), t.serial_us(), "single lane: bitwise equal");
        assert_eq!(t.overlap_saved_us(), 0.0);
    }

    #[test]
    fn copy_engine_overlaps_independent_compute() {
        let opts = TimelineOptions { streams: 1, copy_engine: true, host_overlap: true };
        let mut t = DeviceTimeline::new(opts);
        t.upload(0.0, 100.0, &[v(0)]);
        // A kernel with no dependence on the upload runs concurrently.
        t.launch(0.0, 0.0, 100.0, 0.0, [v(1)]);
        assert!(t.makespan_us() < t.serial_us());
        assert!(t.overlap_saved_us() > 99.0);
    }

    #[test]
    fn dependent_launch_waits_for_producer_event() {
        let opts = TimelineOptions { streams: 4, copy_engine: true, host_overlap: true };
        let mut t = DeviceTimeline::with_trace(opts);
        t.launch(0.0, 0.0, 50.0, 1.0, [v(0)]);
        t.launch(t.args_ready_us([v(0)]), 0.0, 10.0, 1.0, [v(1)]);
        let e = t.trace()[1];
        assert!(e.start_us >= t.trace()[0].end_us, "consumer starts after producer event");
        assert!(e.start_us >= e.deps_ready_us && e.start_us >= e.issued_us);
    }

    #[test]
    fn independent_launches_spread_across_streams() {
        let opts = TimelineOptions { streams: 2, copy_engine: false, host_overlap: true };
        let mut t = DeviceTimeline::with_trace(opts);
        t.launch(0.0, 0.0, 40.0, 0.0, [v(0)]);
        t.launch(0.0, 0.0, 40.0, 0.0, [v(1)]);
        let (a, b) = (t.trace()[0], t.trace()[1]);
        assert_ne!(a.stream, b.stream);
        assert!((t.makespan_us() - 40.0).abs() < 1e-9, "perfect 2-way overlap");
        assert_eq!(t.stream_busy_us(), &[40.0, 40.0]);
    }

    #[test]
    fn makespan_bounds_busy_times() {
        let opts = TimelineOptions { streams: 3, copy_engine: true, host_overlap: true };
        let mut t = DeviceTimeline::new(opts);
        for i in 0..20u64 {
            t.upload(1.0, 3.0, &[v(i * 2)]);
            t.launch(t.args_ready_us([v(i * 2)]), 0.5, 7.0, 2.0, [v(i * 2 + 1)]);
        }
        let m = t.makespan_us();
        for &b in t.stream_busy_us() {
            assert!(m >= b);
        }
        assert!(m >= t.copy_busy_us() && m >= t.host_busy_us());
        assert!(t.overlap_saved_us() >= 0.0);
        assert!(m <= t.serial_us());
    }

    #[test]
    fn reset_rewinds_everything() {
        let mut t = DeviceTimeline::with_trace(TimelineOptions {
            streams: 2,
            copy_engine: true,
            host_overlap: true,
        });
        t.upload(1.0, 5.0, &[v(0)]);
        t.launch(0.0, 0.0, 5.0, 1.0, [v(1)]);
        t.reset();
        assert_eq!(t.makespan_us(), 0.0);
        assert_eq!(t.serial_us(), 0.0);
        assert!(t.trace().is_empty());
        assert_eq!(t.args_ready_us([v(0), v(1)]), 0.0);
    }
}
