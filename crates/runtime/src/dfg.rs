//! The lazily-built dataflow graph.
//!
//! Every scheduling unit the AOT program emits — one fusion group, or one
//! coarsened static block — becomes a [`DfgNode`].  Node inputs are
//! [`ValueId`]s that are either already materialized device tensors or
//! pending outputs of earlier nodes.  The node also records the metadata the
//! schedulers key on: the instance lane, the inline-computed depth, the
//! program phase, and the batched kernel that executes it.

use acrobat_codegen::KernelId;
use acrobat_tensor::DeviceTensor;

/// Identifier of a DFG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u64);

/// Identifier of a tensor value flowing through the DFG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ValueId(pub u64);

/// State of a value.
#[derive(Debug, Clone)]
pub enum ValueState {
    /// Will be produced by `producer` at output slot `slot`.
    Pending {
        /// Producing node.
        producer: NodeId,
        /// Output slot of the producer.
        slot: usize,
    },
    /// Materialized on the device.
    Ready(DeviceTensor),
}

/// One scheduling unit: a batched-kernel invocation for one instance.
#[derive(Debug, Clone)]
pub struct DfgNode {
    /// Node id.
    pub id: NodeId,
    /// Kernel to launch (after batching with compatible nodes).
    pub kernel: KernelId,
    /// Mini-batch instance that created the node.
    pub instance: usize,
    /// Inline-computed depth (§4.1).
    pub depth: u64,
    /// Program phase (§4.1).
    pub phase: u32,
    /// Hash of the tensors bound to the kernel's *shared* input slots.
    /// Nodes may only batch when these agree: a batched kernel loads one
    /// tensor per shared slot, so lanes with different shared operands
    /// (e.g. the two weight sets of a duplicated BiRNN cell) must launch
    /// separately.
    pub shared_sig: u64,
    /// Argument values, one per kernel input slot.
    pub args: Vec<ValueId>,
    /// Output values, one per kernel output slot.
    pub outputs: Vec<ValueId>,
    /// Whether the node has been executed.
    pub executed: bool,
}

/// The dataflow graph plus its value table.
#[derive(Debug, Default)]
pub struct Dfg {
    nodes: Vec<DfgNode>,
    values: Vec<ValueState>,
    /// Nodes not yet executed.
    pending: Vec<NodeId>,
}

impl Dfg {
    /// Creates an empty graph.
    pub fn new() -> Dfg {
        Dfg::default()
    }

    /// Registers an already-materialized tensor (program input, constant).
    pub fn ready_value(&mut self, tensor: DeviceTensor) -> ValueId {
        let id = ValueId(self.values.len() as u64);
        self.values.push(ValueState::Ready(tensor));
        id
    }

    /// Appends a node; returns its output [`ValueId`]s (one per slot).
    #[allow(clippy::too_many_arguments)]
    pub fn add_node(
        &mut self,
        kernel: KernelId,
        instance: usize,
        depth: u64,
        phase: u32,
        shared_sig: u64,
        args: Vec<ValueId>,
        output_slots: usize,
    ) -> (NodeId, Vec<ValueId>) {
        let id = NodeId(self.nodes.len() as u64);
        let outputs: Vec<ValueId> = (0..output_slots)
            .map(|slot| {
                let vid = ValueId(self.values.len() as u64);
                self.values.push(ValueState::Pending { producer: id, slot });
                vid
            })
            .collect();
        self.nodes.push(DfgNode {
            id,
            kernel,
            instance,
            depth,
            phase,
            shared_sig,
            args,
            outputs: outputs.clone(),
            executed: false,
        });
        self.pending.push(id);
        (id, outputs)
    }

    /// The node table.
    pub fn node(&self, id: NodeId) -> &DfgNode {
        &self.nodes[id.0 as usize]
    }

    /// All nodes (executed and pending).
    pub fn nodes(&self) -> &[DfgNode] {
        &self.nodes
    }

    /// Ids of nodes not yet executed, in creation order.
    pub fn pending(&self) -> &[NodeId] {
        &self.pending
    }

    /// Whether any nodes await execution.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Value state lookup.
    pub fn value(&self, id: ValueId) -> &ValueState {
        &self.values[id.0 as usize]
    }

    /// The materialized tensor behind `id`, if ready.
    pub fn tensor(&self, id: ValueId) -> Option<&DeviceTensor> {
        match &self.values[id.0 as usize] {
            ValueState::Ready(t) => Some(t),
            ValueState::Pending { .. } => None,
        }
    }

    /// The producing node of `id`, if still pending.
    pub fn producer(&self, id: ValueId) -> Option<NodeId> {
        match &self.values[id.0 as usize] {
            ValueState::Pending { producer, .. } => Some(*producer),
            ValueState::Ready(_) => None,
        }
    }

    /// True when all arguments of `node` are materialized.
    pub fn args_ready(&self, node: NodeId) -> bool {
        self.nodes[node.0 as usize]
            .args
            .iter()
            .all(|a| matches!(self.values[a.0 as usize], ValueState::Ready(_)))
    }

    /// Marks a node executed, materializing its outputs.
    ///
    /// # Panics
    ///
    /// Panics if output counts disagree (internal error).
    pub fn complete_node(&mut self, node: NodeId, outputs: Vec<DeviceTensor>) {
        let n = &mut self.nodes[node.0 as usize];
        assert_eq!(n.outputs.len(), outputs.len(), "output arity mismatch");
        assert!(!n.executed, "node executed twice");
        n.executed = true;
        let out_ids = n.outputs.clone();
        for (vid, t) in out_ids.into_iter().zip(outputs) {
            self.values[vid.0 as usize] = ValueState::Ready(t);
        }
        self.pending.retain(|&p| p != node);
    }

    /// Total nodes ever created (the DFG-construction count in Table 5).
    pub fn node_count(&self) -> u64 {
        self.nodes.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acrobat_tensor::{DeviceMem, Tensor};

    #[test]
    fn node_lifecycle() {
        let mut mem = DeviceMem::new(64);
        let mut dfg = Dfg::new();
        let x = dfg.ready_value(mem.upload(&Tensor::ones(&[2])).unwrap());
        let (n1, o1) = dfg.add_node(acrobat_codegen::KernelId(0), 0, 0, 0, 0, vec![x], 1);
        assert!(dfg.args_ready(n1));
        assert!(dfg.tensor(o1[0]).is_none());
        assert_eq!(dfg.producer(o1[0]), Some(n1));

        let (n2, _) = dfg.add_node(acrobat_codegen::KernelId(1), 0, 1, 0, 0, vec![o1[0]], 1);
        assert!(!dfg.args_ready(n2), "depends on pending n1");
        assert_eq!(dfg.pending().len(), 2);

        let t = mem.upload(&Tensor::zeros(&[2])).unwrap();
        dfg.complete_node(n1, vec![t]);
        assert!(dfg.args_ready(n2));
        assert_eq!(dfg.pending(), &[n2]);
        assert!(dfg.tensor(o1[0]).is_some());
    }

    #[test]
    #[should_panic(expected = "executed twice")]
    fn double_completion_panics() {
        let mut mem = DeviceMem::new(64);
        let mut dfg = Dfg::new();
        let (n, _) = dfg.add_node(acrobat_codegen::KernelId(0), 0, 0, 0, 0, vec![], 1);
        let t = mem.upload(&Tensor::ones(&[1])).unwrap();
        dfg.complete_node(n, vec![t.clone()]);
        dfg.complete_node(n, vec![t]);
    }
}
