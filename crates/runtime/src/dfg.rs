//! The lazily-built dataflow graph.
//!
//! Every scheduling unit the AOT program emits — one fusion group, or one
//! coarsened static block — becomes a [`DfgNode`].  Node inputs are
//! [`ValueId`]s that are either already materialized device tensors or
//! pending outputs of earlier nodes.  The node also records the metadata the
//! schedulers key on: the instance lane, the inline-computed depth, the
//! program phase, and the batched kernel that executes it.

use acrobat_codegen::KernelId;
use acrobat_tensor::DeviceTensor;

/// Identifier of a DFG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u64);

/// Identifier of a tensor value flowing through the DFG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ValueId(pub u64);

/// State of a value.
#[derive(Debug, Clone)]
pub enum ValueState {
    /// Will be produced by `producer` at output slot `slot`.
    Pending {
        /// Producing node.
        producer: NodeId,
        /// Output slot of the producer.
        slot: usize,
    },
    /// Materialized on the device.
    Ready(DeviceTensor),
}

/// One scheduling unit: a batched-kernel invocation for one instance.
#[derive(Debug, Clone)]
pub struct DfgNode {
    /// Node id.
    pub id: NodeId,
    /// Kernel to launch (after batching with compatible nodes).
    pub kernel: KernelId,
    /// Mini-batch instance that created the node.
    pub instance: usize,
    /// Inline-computed depth (§4.1).
    pub depth: u64,
    /// Program phase (§4.1).
    pub phase: u32,
    /// Hash of the tensors bound to the kernel's *shared* input slots.
    /// Nodes may only batch when these agree: a batched kernel loads one
    /// tensor per shared slot, so lanes with different shared operands
    /// (e.g. the two weight sets of a duplicated BiRNN cell) must launch
    /// separately.
    pub shared_sig: u64,
    /// Argument values, one per kernel input slot.
    pub args: Vec<ValueId>,
    /// Output values, one per kernel output slot.
    pub outputs: Vec<ValueId>,
    /// Whether the node has been executed.
    pub executed: bool,
}

/// Sentinel for "not in the pending set" in [`Dfg::pending_pos`].
const NOT_PENDING: u32 = u32::MAX;

/// Seed of the primary window-signature accumulator.
const WIN_SEED0: u64 = 0x243F6A8885A308D3; // π digits
/// Seed of the verification accumulator (independent chain).
const WIN_SEED1: u64 = 0x13198A2E03707344; // more π digits
/// Per-token tweak applied to the verification chain so the two
/// accumulators never fold identical inputs.
const WIN_TWEAK: u64 = 0xA4093822299F31D0;

/// One splitmix64-style mixing round (the workspace-standard finalizer,
/// matching `scheduler::hash_key`): folds `v` into accumulator `h`.
#[inline]
fn sig_fold(h: u64, v: u64) -> u64 {
    let mut x = h ^ v.wrapping_mul(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Structural signature of the current pending *window* — the nodes
/// appended since the pending set was last empty — consumed by
/// [`crate::plan_cache`].
///
/// The signature is order-independent over lane identity: it folds each
/// node's kernel, phase, depth, shared-operand signature and the *relative*
/// (window-local) position of each pending argument's producer, so two
/// windows with the same structure hash equal regardless of which request,
/// instance numbers or absolute `NodeId`/`ValueId` offsets produced them.
/// Two independent accumulators are kept (different seeds, tweaked token
/// streams), so a silent false hit requires a simultaneous 2×64-bit
/// collision; cache probes compare both plus the window length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WindowSig {
    /// Primary accumulator.
    pub sig: u64,
    /// Independent verification accumulator.
    pub check: u64,
    /// Window length in nodes.
    pub n: u32,
    /// First `NodeId` of the window: a clean window is built append-only
    /// from an empty pending set, so its ids are exactly
    /// `base..base + n` — which is what makes cached-plan remapping a
    /// single offset add.
    pub base: u64,
}

/// Packs the inline grouping key `(phase, depth, kernel)` into one integer
/// whose natural order is the lexicographic tuple order; `shared_sig` is
/// kept alongside as the second key component.
#[inline]
pub(crate) fn inline_key(phase: u32, depth: u64, kernel: u32) -> u128 {
    ((phase as u128) << 96) | ((depth as u128) << 32) | kernel as u128
}

/// One bucket of the incremental inline-scheduling index: every node whose
/// `(phase, depth, kernel, shared_sig)` matches `key`, in creation order.
#[derive(Debug, Default)]
pub(crate) struct InlineBucket {
    /// Packed `(inline_key, shared_sig)` grouping key.
    pub(crate) key: (u128, u64),
    /// Member nodes in creation order.  May contain already-executed
    /// (stale) ids; they are pruned lazily on completion, and readers must
    /// filter by pending-ness unless `pending == ids.len()`.
    pub(crate) ids: Vec<NodeId>,
    /// How many of `ids` are still pending.
    pub(crate) pending: u32,
}

/// The dataflow graph plus its value table.
///
/// The pending set is index-mapped: `pending_pos[node]` stores the node's
/// position inside `pending`, so completing a node is an O(1) swap-remove
/// instead of the O(pending) `retain` scan the first implementation used
/// (which made a flush O(n²) in the number of pending nodes).  The price is
/// that `pending` is not order-stable across completions; schedulers that
/// need creation (topological) order sort the ids, which `NodeId`'s
/// monotonic assignment makes equivalent.
#[derive(Debug, Default)]
pub struct Dfg {
    nodes: Vec<DfgNode>,
    values: Vec<ValueState>,
    /// Nodes not yet executed.
    pending: Vec<NodeId>,
    /// `pending_pos[id]` is the index of node `id` within `pending`, or
    /// [`NOT_PENDING`].  Indexed by `NodeId` (node ids are dense).
    pending_pos: Vec<u32>,
    /// Inline-scheduling bucket index, maintained incrementally as nodes
    /// are added: the inline grouping key is pure static metadata, so the
    /// grouping work happens during DFG construction and the inline
    /// scheduler's flush-time job degenerates to emitting the non-empty
    /// buckets in key order (§4.1's "scheduling is a bucket lookup").
    buckets: Vec<InlineBucket>,
    /// Grouping key → index into `buckets`.
    bucket_lookup: std::collections::HashMap<(u128, u64), u32>,
    /// Per node, its bucket index (dense, parallel to `nodes`).
    bucket_of: Vec<u32>,
    /// Primary window-signature accumulator (see [`WindowSig`]), folded
    /// incrementally by [`Dfg::add_node`] while the window grows
    /// append-only from an empty pending set.
    win_sig: u64,
    /// Independent verification accumulator.
    win_check: u64,
    /// First node id of the current window.
    win_base: u64,
    /// Set when a partial completion (eager drain, aborted-flush retry)
    /// breaks the append-only-window property; the signature is then
    /// unavailable until the pending set next empties.
    win_dirty: bool,
    /// Whether `add_node` folds the signature at all.  Off by default so
    /// cache-off construction cost is unchanged; enabled by contexts whose
    /// engine has the plan cache on.
    win_track: bool,
}

impl Dfg {
    /// Creates an empty graph.
    pub fn new() -> Dfg {
        Dfg::default()
    }

    /// Registers an already-materialized tensor (program input, constant).
    pub fn ready_value(&mut self, tensor: DeviceTensor) -> ValueId {
        let id = ValueId(self.values.len() as u64);
        self.values.push(ValueState::Ready(tensor));
        id
    }

    /// Appends a node; returns its output [`ValueId`]s (one per slot).
    #[allow(clippy::too_many_arguments)]
    pub fn add_node(
        &mut self,
        kernel: KernelId,
        instance: usize,
        depth: u64,
        phase: u32,
        shared_sig: u64,
        args: Vec<ValueId>,
        output_slots: usize,
    ) -> (NodeId, Vec<ValueId>) {
        let id = NodeId(self.nodes.len() as u64);
        if self.win_track {
            if self.pending.is_empty() {
                // First node after a drain: a new window starts here.
                self.win_sig = WIN_SEED0;
                self.win_check = WIN_SEED1;
                self.win_base = id.0;
                self.win_dirty = false;
            }
            if !self.win_dirty {
                let mut s0 = self.win_sig;
                let mut s1 = self.win_check;
                let mut fold = |v: u64| {
                    s0 = sig_fold(s0, v);
                    s1 = sig_fold(s1, v ^ WIN_TWEAK);
                };
                fold(((phase as u64) << 32) | kernel.0 as u64);
                fold(depth);
                fold(shared_sig);
                fold(args.len() as u64);
                for a in &args {
                    // Dependency topology in window-relative coordinates:
                    // a pending argument folds the distance to its
                    // producer (id-delta), a materialized one folds a
                    // sentinel — so the signature is independent of
                    // absolute id offsets.
                    let tok = match &self.values[a.0 as usize] {
                        ValueState::Pending { producer, .. } => ((id.0 - producer.0) << 1) | 1,
                        ValueState::Ready(_) => 0,
                    };
                    fold(tok);
                }
                self.win_sig = s0;
                self.win_check = s1;
            }
        }
        let outputs: Vec<ValueId> = (0..output_slots)
            .map(|slot| {
                let vid = ValueId(self.values.len() as u64);
                self.values.push(ValueState::Pending { producer: id, slot });
                vid
            })
            .collect();
        self.nodes.push(DfgNode {
            id,
            kernel,
            instance,
            depth,
            phase,
            shared_sig,
            args,
            outputs: outputs.clone(),
            executed: false,
        });
        debug_assert!(self.pending.len() < NOT_PENDING as usize, "pending set overflow");
        self.pending_pos.push(self.pending.len() as u32);
        self.pending.push(id);
        let key = (inline_key(phase, depth, kernel.0), shared_sig);
        let bucket = *self.bucket_lookup.entry(key).or_insert_with(|| {
            self.buckets.push(InlineBucket { key, ..Default::default() });
            (self.buckets.len() - 1) as u32
        });
        let b = &mut self.buckets[bucket as usize];
        b.ids.push(id);
        b.pending += 1;
        self.bucket_of.push(bucket);
        (id, outputs)
    }

    /// The node table.
    pub fn node(&self, id: NodeId) -> &DfgNode {
        &self.nodes[id.0 as usize]
    }

    /// All nodes (executed and pending).
    pub fn nodes(&self) -> &[DfgNode] {
        &self.nodes
    }

    /// Ids of nodes not yet executed.
    ///
    /// Between flushes (append-only periods) the slice is in creation
    /// order; while completions are in flight the order is unspecified
    /// because completion swap-removes.  Callers needing topological order
    /// must sort (node ids increase in creation order).
    pub fn pending(&self) -> &[NodeId] {
        &self.pending
    }

    /// Whether any nodes await execution.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Value state lookup.
    pub fn value(&self, id: ValueId) -> &ValueState {
        &self.values[id.0 as usize]
    }

    /// The materialized tensor behind `id`, if ready.
    pub fn tensor(&self, id: ValueId) -> Option<&DeviceTensor> {
        match &self.values[id.0 as usize] {
            ValueState::Ready(t) => Some(t),
            ValueState::Pending { .. } => None,
        }
    }

    /// The producing node of `id`, if still pending.
    pub fn producer(&self, id: ValueId) -> Option<NodeId> {
        match &self.values[id.0 as usize] {
            ValueState::Pending { producer, .. } => Some(*producer),
            ValueState::Ready(_) => None,
        }
    }

    /// True when all arguments of `node` are materialized.
    pub fn args_ready(&self, node: NodeId) -> bool {
        self.nodes[node.0 as usize]
            .args
            .iter()
            .all(|a| matches!(self.values[a.0 as usize], ValueState::Ready(_)))
    }

    /// Removes `node` from the pending set in O(1) via swap-remove, and
    /// keeps the bucket index's staleness bounded.
    fn remove_pending(&mut self, node: NodeId) {
        let pos = self.pending_pos[node.0 as usize];
        debug_assert_ne!(pos, NOT_PENDING, "node not pending");
        self.pending.swap_remove(pos as usize);
        if let Some(&moved) = self.pending.get(pos as usize) {
            self.pending_pos[moved.0 as usize] = pos;
        }
        self.pending_pos[node.0 as usize] = NOT_PENDING;

        let b = &mut self.buckets[self.bucket_of[node.0 as usize] as usize];
        b.pending -= 1;
        // The executed id stays in `ids` (removal would be O(len)); readers
        // filter.  A full flush drains whole buckets, so the common case
        // frees everything at once; partial (eager) completions compact
        // once a bucket is mostly stale, keeping scans amortized O(1).
        if b.pending == 0 {
            b.ids.clear();
        } else if b.ids.len() >= 16 && b.ids.len() >= 2 * b.pending as usize {
            let pending_pos = &self.pending_pos;
            b.ids.retain(|id| pending_pos[id.0 as usize] != NOT_PENDING);
        }
        // A completion that leaves other nodes pending breaks the
        // append-only-window property: the remaining pending set is no
        // longer `base..base + n`, so the incremental signature is stale.
        // Draining completely is fine — the next `add_node` starts a fresh
        // window and resets the accumulators.
        if self.win_track && !self.pending.is_empty() {
            self.win_dirty = true;
        }
    }

    /// Whether `node` awaits execution.
    pub(crate) fn is_pending(&self, node: NodeId) -> bool {
        self.pending_pos[node.0 as usize] != NOT_PENDING
    }

    /// The incremental inline-scheduling bucket index.
    pub(crate) fn inline_buckets(&self) -> &[InlineBucket] {
        &self.buckets
    }

    /// Marks a node executed, materializing its outputs.
    ///
    /// # Panics
    ///
    /// Panics if output counts disagree (internal error).
    pub fn complete_node(&mut self, node: NodeId, outputs: Vec<DeviceTensor>) {
        let n = &mut self.nodes[node.0 as usize];
        assert_eq!(n.outputs.len(), outputs.len(), "output arity mismatch");
        assert!(!n.executed, "node executed twice");
        n.executed = true;
        let out_ids = n.outputs.clone();
        for (vid, t) in out_ids.into_iter().zip(outputs) {
            self.values[vid.0 as usize] = ValueState::Ready(t);
        }
        self.remove_pending(node);
    }

    /// Marks a whole batch executed in one pass, materializing every lane's
    /// outputs.  `outputs[slot][lane]` is the tensor produced for
    /// `batch[lane]`'s output `slot` — exactly the shape
    /// `acrobat_codegen::exec::run_batched_kernel` returns, so the flush
    /// path moves tensors straight into the value table without per-node
    /// re-packing or handle clones.
    ///
    /// # Panics
    ///
    /// Panics if slot or lane counts disagree with the batch, or if any
    /// node was already executed (internal errors).
    pub fn complete_batch(&mut self, batch: &[NodeId], outputs: Vec<Vec<DeviceTensor>>) {
        // Validate the whole batch BEFORE touching the value table: a bad
        // batch (double completion, arity mismatch) must panic with the
        // table untouched, not after overwriting Ready values of lanes that
        // happened to precede the offending one.
        let slots = outputs.len();
        for &id in batch {
            let n = &self.nodes[id.0 as usize];
            assert_eq!(n.outputs.len(), slots, "output arity mismatch");
            assert!(!n.executed, "node executed twice");
        }
        for (slot, lanes) in outputs.iter().enumerate() {
            assert_eq!(lanes.len(), batch.len(), "lane count mismatch at slot {slot}");
        }
        for (slot, lanes) in outputs.into_iter().enumerate() {
            for (lane, t) in lanes.into_iter().enumerate() {
                let node = &self.nodes[batch[lane].0 as usize];
                let vid = node.outputs[slot];
                self.values[vid.0 as usize] = ValueState::Ready(t);
            }
        }
        for &id in batch {
            self.nodes[id.0 as usize].executed = true;
            self.remove_pending(id);
        }
    }

    /// Number of values ever created (ready and pending).
    pub fn value_count(&self) -> u64 {
        self.values.len() as u64
    }

    /// Exhaustively cross-checks the pending set, the `pending_pos` index
    /// and the incremental inline-bucket index against each other and
    /// against the node table.  O(nodes); meant for the runtime's checked
    /// mode and for tests after error paths, never for the flush hot path.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn verify_consistent(&self) -> Result<(), String> {
        // pending ↔ pending_pos is a bijection.
        if self.pending_pos.len() != self.nodes.len() {
            return Err(format!(
                "pending_pos len {} != node count {}",
                self.pending_pos.len(),
                self.nodes.len()
            ));
        }
        for (i, &id) in self.pending.iter().enumerate() {
            let pos = self.pending_pos[id.0 as usize];
            if pos as usize != i {
                return Err(format!("pending[{i}] = {id:?} but pending_pos says {pos}"));
            }
            if self.nodes[id.0 as usize].executed {
                return Err(format!("{id:?} is pending but marked executed"));
            }
        }
        let mut pending_count = 0usize;
        for (idx, node) in self.nodes.iter().enumerate() {
            let pos = self.pending_pos[idx];
            if pos == NOT_PENDING {
                if !node.executed {
                    return Err(format!("node {idx} neither pending nor executed"));
                }
                // Executed nodes must have every output materialized.
                for &v in &node.outputs {
                    if matches!(self.values[v.0 as usize], ValueState::Pending { .. }) {
                        return Err(format!("executed node {idx} has pending output {v:?}"));
                    }
                }
            } else {
                pending_count += 1;
                if self.pending.get(pos as usize) != Some(&NodeId(idx as u64)) {
                    return Err(format!("pending_pos[{idx}] = {pos} does not point back"));
                }
            }
        }
        if pending_count != self.pending.len() {
            return Err(format!(
                "pending_pos marks {pending_count} nodes pending, pending holds {}",
                self.pending.len()
            ));
        }

        // Bucket index: keys match members, pending counts match, every
        // pending node is present exactly once in its own bucket.
        if self.bucket_of.len() != self.nodes.len() {
            return Err("bucket_of not parallel to nodes".into());
        }
        let mut bucket_pending_total = 0u64;
        for (bi, b) in self.buckets.iter().enumerate() {
            bucket_pending_total += b.pending as u64;
            if self.bucket_lookup.get(&b.key) != Some(&(bi as u32)) {
                return Err(format!("bucket {bi} not found under its key in bucket_lookup"));
            }
            let mut live = 0u32;
            for &id in &b.ids {
                let node = &self.nodes[id.0 as usize];
                let key = (inline_key(node.phase, node.depth, node.kernel.0), node.shared_sig);
                if key != b.key {
                    return Err(format!("bucket {bi} contains {id:?} with foreign key"));
                }
                if self.bucket_of[id.0 as usize] != bi as u32 {
                    return Err(format!("{id:?} in bucket {bi} but bucket_of disagrees"));
                }
                if self.pending_pos[id.0 as usize] != NOT_PENDING {
                    live += 1;
                }
            }
            if live != b.pending {
                return Err(format!(
                    "bucket {bi}: pending count {} but {live} live members",
                    b.pending
                ));
            }
        }
        if bucket_pending_total != self.pending.len() as u64 {
            return Err(format!(
                "bucket pending totals {bucket_pending_total} != pending set {}",
                self.pending.len()
            ));
        }
        for &id in &self.pending {
            let b = &self.buckets[self.bucket_of[id.0 as usize] as usize];
            let copies = b.ids.iter().filter(|&&x| x == id).count();
            if copies != 1 {
                return Err(format!("{id:?} appears {copies} times in its bucket"));
            }
        }

        // Pending values point at live producers with matching slots.
        for (vi, v) in self.values.iter().enumerate() {
            if let ValueState::Pending { producer, slot } = v {
                let node = match self.nodes.get(producer.0 as usize) {
                    Some(n) => n,
                    None => return Err(format!("value {vi} names missing producer {producer:?}")),
                };
                if node.outputs.get(*slot) != Some(&ValueId(vi as u64)) {
                    return Err(format!("value {vi} slot {slot} not an output of {producer:?}"));
                }
            }
        }
        Ok(())
    }

    /// Total nodes ever created (the DFG-construction count in Table 5).
    pub fn node_count(&self) -> u64 {
        self.nodes.len() as u64
    }

    /// Enables or disables incremental window-signature folding (see
    /// [`WindowSig`]).  Kept off by default so cache-off DFG construction
    /// pays nothing; turning it on mid-graph marks the signature dirty
    /// until the pending set next drains (a half-observed window must
    /// never hash clean).
    pub fn set_signature_tracking(&mut self, on: bool) {
        self.win_track = on;
        self.win_dirty = !self.pending.is_empty();
    }

    /// The structural signature of the current pending window, if it is
    /// clean: tracking is on, the window grew append-only from an empty
    /// pending set, and nothing was partially completed since.  `None`
    /// sends the caller down the uncached scheduling path.
    pub fn window_signature(&self) -> Option<WindowSig> {
        if !self.win_track || self.win_dirty || self.pending.is_empty() {
            return None;
        }
        debug_assert_eq!(
            self.win_base + self.pending.len() as u64,
            self.nodes.len() as u64,
            "clean window must span a contiguous id range"
        );
        Some(WindowSig {
            sig: self.win_sig,
            check: self.win_check,
            n: self.pending.len() as u32,
            base: self.win_base,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acrobat_tensor::{DeviceMem, Tensor};

    #[test]
    fn node_lifecycle() {
        let mut mem = DeviceMem::new(64);
        let mut dfg = Dfg::new();
        let x = dfg.ready_value(mem.upload(&Tensor::ones(&[2])).unwrap());
        let (n1, o1) = dfg.add_node(acrobat_codegen::KernelId(0), 0, 0, 0, 0, vec![x], 1);
        assert!(dfg.args_ready(n1));
        assert!(dfg.tensor(o1[0]).is_none());
        assert_eq!(dfg.producer(o1[0]), Some(n1));

        let (n2, _) = dfg.add_node(acrobat_codegen::KernelId(1), 0, 1, 0, 0, vec![o1[0]], 1);
        assert!(!dfg.args_ready(n2), "depends on pending n1");
        assert_eq!(dfg.pending().len(), 2);

        let t = mem.upload(&Tensor::zeros(&[2])).unwrap();
        dfg.complete_node(n1, vec![t]);
        assert!(dfg.args_ready(n2));
        assert_eq!(dfg.pending(), &[n2]);
        assert!(dfg.tensor(o1[0]).is_some());
    }

    #[test]
    fn complete_batch_materializes_all_lanes() {
        let mut mem = DeviceMem::new(256);
        let mut dfg = Dfg::new();
        let x = dfg.ready_value(mem.upload(&Tensor::ones(&[2])).unwrap());
        let mut ids = Vec::new();
        let mut outs = Vec::new();
        for i in 0..4 {
            let (n, o) = dfg.add_node(acrobat_codegen::KernelId(0), i, 0, 0, 0, vec![x], 1);
            ids.push(n);
            outs.push(o[0]);
        }
        assert_eq!(dfg.pending().len(), 4);
        // Complete the middle two as one batch (slot-major outputs).
        let lanes: Vec<DeviceTensor> =
            (0..2).map(|i| mem.upload(&Tensor::fill(&[2], i as f32)).unwrap()).collect();
        dfg.complete_batch(&[ids[1], ids[2]], vec![lanes]);
        assert!(dfg.tensor(outs[1]).is_some());
        assert!(dfg.tensor(outs[2]).is_some());
        assert!(dfg.tensor(outs[0]).is_none());
        let mut left: Vec<NodeId> = dfg.pending().to_vec();
        left.sort_unstable();
        assert_eq!(left, vec![ids[0], ids[3]]);

        // Swap-removed set still completes correctly one by one.
        let t = mem.upload(&Tensor::zeros(&[2])).unwrap();
        dfg.complete_node(ids[3], vec![t.clone()]);
        dfg.complete_node(ids[0], vec![t]);
        assert!(!dfg.has_pending());
    }

    #[test]
    #[should_panic(expected = "executed twice")]
    fn double_batch_completion_panics() {
        let mut mem = DeviceMem::new(64);
        let mut dfg = Dfg::new();
        let (n, _) = dfg.add_node(acrobat_codegen::KernelId(0), 0, 0, 0, 0, vec![], 1);
        let t = mem.upload(&Tensor::ones(&[1])).unwrap();
        dfg.complete_batch(&[n], vec![vec![t.clone()]]);
        dfg.complete_batch(&[n], vec![vec![t]]);
    }

    #[test]
    fn failed_batch_completion_leaves_value_table_untouched() {
        // Regression: complete_batch used to materialize lane outputs slot
        // by slot BEFORE checking `executed`, so a double completion
        // overwrote Ready values of earlier lanes prior to panicking.
        let mut mem = DeviceMem::new(256);
        let mut dfg = Dfg::new();
        let (a, oa) = dfg.add_node(acrobat_codegen::KernelId(0), 0, 0, 0, 0, vec![], 1);
        let (b, ob) = dfg.add_node(acrobat_codegen::KernelId(0), 1, 0, 0, 0, vec![], 1);
        let t_a = mem.upload(&Tensor::fill(&[1], 1.0)).unwrap();
        let t_b = mem.upload(&Tensor::fill(&[1], 2.0)).unwrap();
        dfg.complete_batch(&[a, b], vec![vec![t_a.clone(), t_b.clone()]]);
        assert_eq!(dfg.tensor(oa[0]), Some(&t_a));

        // Re-completing [a] with a junk tensor must panic *without* first
        // clobbering a's Ready value.
        let junk = mem.upload(&Tensor::fill(&[1], 9.0)).unwrap();
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dfg.complete_batch(&[a], vec![vec![junk]]);
        }));
        assert!(panicked.is_err(), "double completion must still panic");
        assert_eq!(dfg.tensor(oa[0]), Some(&t_a), "value table was corrupted");
        assert_eq!(dfg.tensor(ob[0]), Some(&t_b));
        dfg.verify_consistent().unwrap();
    }

    #[test]
    fn verify_consistent_accepts_live_graphs() {
        let mut mem = DeviceMem::new(256);
        let mut dfg = Dfg::new();
        let x = dfg.ready_value(mem.upload(&Tensor::ones(&[2])).unwrap());
        let mut ids = Vec::new();
        for i in 0..5 {
            let (n, _) =
                dfg.add_node(acrobat_codegen::KernelId(i as u32 % 2), i, 0, 0, 0, vec![x], 1);
            ids.push(n);
        }
        dfg.verify_consistent().unwrap();
        let t = mem.upload(&Tensor::zeros(&[2])).unwrap();
        dfg.complete_node(ids[2], vec![t.clone()]);
        dfg.verify_consistent().unwrap();
        dfg.complete_batch(&[ids[0], ids[4]], vec![vec![t.clone(), t.clone()]]);
        dfg.verify_consistent().unwrap();
    }

    #[test]
    #[should_panic(expected = "executed twice")]
    fn double_completion_panics() {
        let mut mem = DeviceMem::new(64);
        let mut dfg = Dfg::new();
        let (n, _) = dfg.add_node(acrobat_codegen::KernelId(0), 0, 0, 0, 0, vec![], 1);
        let t = mem.upload(&Tensor::ones(&[1])).unwrap();
        dfg.complete_node(n, vec![t.clone()]);
        dfg.complete_node(n, vec![t]);
    }
}
