//! The lazily-built dataflow graph.
//!
//! Every scheduling unit the AOT program emits — one fusion group, or one
//! coarsened static block — becomes a [`DfgNode`].  Node inputs are
//! [`ValueId`]s that are either already materialized device tensors or
//! pending outputs of earlier nodes.  The node also records the metadata the
//! schedulers key on: the instance lane, the inline-computed depth, the
//! program phase, and the batched kernel that executes it.

use acrobat_codegen::KernelId;
use acrobat_tensor::DeviceTensor;

/// Identifier of a DFG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u64);

/// Identifier of a tensor value flowing through the DFG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ValueId(pub u64);

/// State of a value.
#[derive(Debug, Clone)]
pub enum ValueState {
    /// Will be produced by `producer` at output slot `slot`.
    Pending {
        /// Producing node.
        producer: NodeId,
        /// Output slot of the producer.
        slot: usize,
    },
    /// Materialized on the device.
    Ready(DeviceTensor),
}

/// One scheduling unit: a batched-kernel invocation for one instance.
#[derive(Debug, Clone)]
pub struct DfgNode {
    /// Node id.
    pub id: NodeId,
    /// Kernel to launch (after batching with compatible nodes).
    pub kernel: KernelId,
    /// Mini-batch instance that created the node.
    pub instance: usize,
    /// Inline-computed depth (§4.1).
    pub depth: u64,
    /// Program phase (§4.1).
    pub phase: u32,
    /// Hash of the tensors bound to the kernel's *shared* input slots.
    /// Nodes may only batch when these agree: a batched kernel loads one
    /// tensor per shared slot, so lanes with different shared operands
    /// (e.g. the two weight sets of a duplicated BiRNN cell) must launch
    /// separately.
    pub shared_sig: u64,
    /// Argument values, one per kernel input slot.
    pub args: Vec<ValueId>,
    /// Output values, one per kernel output slot.
    pub outputs: Vec<ValueId>,
    /// Whether the node has been executed.
    pub executed: bool,
}

/// Sentinel for "not in the pending set" in [`Dfg::pending_pos`].
const NOT_PENDING: u32 = u32::MAX;

/// Seed of the primary window-signature accumulator.
const WIN_SEED0: u64 = 0x243F6A8885A308D3; // π digits
/// Seed of the verification accumulator (independent chain).
const WIN_SEED1: u64 = 0x13198A2E03707344; // more π digits
/// Per-token tweak applied to the verification chain so the two
/// accumulators never fold identical inputs.
const WIN_TWEAK: u64 = 0xA4093822299F31D0;

/// One splitmix64-style mixing round (the workspace-standard finalizer,
/// matching `scheduler::hash_key`): folds `v` into accumulator `h`.
#[inline]
fn sig_fold(h: u64, v: u64) -> u64 {
    let mut x = h ^ v.wrapping_mul(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Deterministic fiber-lane identities for lane-canonical signature mode.
///
/// A *lane* is one fiber's append stream.  Its key is derived purely from
/// the fiber's structural position — the instance index for a top-level
/// fiber, the fork path (parent lane × branch index) for a child spawned by
/// `parallel(...)` — never from thread ids or arrival order, so the same
/// program produces the same lane keys on every run and every OS schedule.
/// Two *sequential* generations of fibers (a parent calling `parallel`
/// twice) legitimately share a key; their appends are join-ordered, so the
/// merged lane content is still deterministic.
pub mod lane {
    use super::sig_fold;

    /// Seed for root-lane derivation (π digits, like the window seeds).
    const LANE_SEED: u64 = 0x452821E638D01377;

    /// Lane key of a top-level fiber (one per mini-batch instance).
    #[inline]
    pub fn root(instance: usize) -> u64 {
        sig_fold(LANE_SEED, instance as u64)
    }

    /// Lane key of the `branch`-th child forked from a fiber with lane key
    /// `parent`.
    #[inline]
    pub fn child(parent: u64, branch: usize) -> u64 {
        sig_fold(parent, branch as u64 + 1)
    }
}

/// Structural signature of the current pending *window* — the nodes
/// appended since the pending set was last empty — consumed by
/// [`crate::plan_cache`].
///
/// The signature is order-independent over lane identity: it folds each
/// node's kernel, phase, depth, shared-operand signature and the *relative*
/// (window-local) position of each pending argument's producer, so two
/// windows with the same structure hash equal regardless of which request,
/// instance numbers or absolute `NodeId`/`ValueId` offsets produced them.
/// Two independent accumulators are kept (different seeds, tweaked token
/// streams), so a silent false hit requires a simultaneous 2×64-bit
/// collision; cache probes compare both plus the window length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WindowSig {
    /// Primary accumulator.
    pub sig: u64,
    /// Independent verification accumulator.
    pub check: u64,
    /// Window length in nodes.
    pub n: u32,
    /// First `NodeId` of the window: a clean window is built append-only
    /// from an empty pending set, so its ids are exactly
    /// `base..base + n` — which is what makes cached-plan remapping a
    /// single offset add.
    pub base: u64,
}

impl WindowSig {
    /// Order-independent audit token for cross-run signature comparison:
    /// mixes both accumulators and the window length but *not* `base`,
    /// which legitimately varies run to run with allocation history.
    /// XORing the tokens of every signed window yields a digest invariant
    /// to flush order and to how windows are partitioned across contexts.
    pub fn chain_token(&self) -> u64 {
        sig_fold(sig_fold(sig_fold(0x9E3779B97F4A7C15, self.sig), self.check), self.n as u64)
    }
}

/// Packs the inline grouping key `(phase, depth, kernel)` into one integer
/// whose natural order is the lexicographic tuple order; `shared_sig` is
/// kept alongside as the second key component.
#[inline]
pub(crate) fn inline_key(phase: u32, depth: u64, kernel: u32) -> u128 {
    ((phase as u128) << 96) | ((depth as u128) << 32) | kernel as u128
}

/// One bucket of the incremental inline-scheduling index: every node whose
/// `(phase, depth, kernel, shared_sig)` matches `key`, in creation order.
#[derive(Debug, Default)]
pub(crate) struct InlineBucket {
    /// Packed `(inline_key, shared_sig)` grouping key.
    pub(crate) key: (u128, u64),
    /// Member nodes in creation order.  May contain already-executed
    /// (stale) ids; they are pruned lazily on completion, and readers must
    /// filter by pending-ness unless `pending == ids.len()`.
    pub(crate) ids: Vec<NodeId>,
    /// How many of `ids` are still pending.
    pub(crate) pending: u32,
}

/// Per-lane signature accumulator for lane-canonical window signing: one
/// fiber lane's private `(sig, check)` chains plus its append count.
#[derive(Debug, Clone, Copy)]
struct LaneAcc {
    /// Structural lane key (see [`lane`]).
    key: u64,
    /// Primary accumulator, seeded per lane from [`WIN_SEED0`].
    sig: u64,
    /// Verification accumulator, seeded per lane from [`WIN_SEED1`].
    check: u64,
    /// Nodes appended to this lane in the current window.
    len: u32,
}

/// Lazily-derived canonical ordering of the current window (lane-canonical
/// mode): window-offset → canonical rank and its inverse, plus the combined
/// interleave-invariant [`WindowSig`].  Invalidated on every append or
/// completion, rebuilt at most once per window by
/// [`Dfg::window_signature`].
#[derive(Debug, Default)]
struct CanonState {
    /// Whether `rank`/`order`/`win` describe the current window.
    valid: bool,
    /// `rank[off]` = canonical position of the node at window offset `off`.
    rank: Vec<u32>,
    /// Inverse permutation: `order[pos]` = window offset at canonical
    /// position `pos`.
    order: Vec<u32>,
    /// Lane slots sorted by lane key (scratch for the combine).
    lane_order: Vec<u32>,
    /// Per lane slot, the canonical position of its first node.
    lane_start: Vec<u32>,
    /// Memoized combined signature for the current window.
    win: Option<WindowSig>,
}

/// The dataflow graph plus its value table.
///
/// The pending set is index-mapped: `pending_pos[node]` stores the node's
/// position inside `pending`, so completing a node is an O(1) swap-remove
/// instead of the O(pending) `retain` scan the first implementation used
/// (which made a flush O(n²) in the number of pending nodes).  The price is
/// that `pending` is not order-stable across completions; schedulers that
/// need creation (topological) order sort the ids, which `NodeId`'s
/// monotonic assignment makes equivalent.
#[derive(Debug, Default)]
pub struct Dfg {
    nodes: Vec<DfgNode>,
    values: Vec<ValueState>,
    /// Nodes not yet executed.
    pending: Vec<NodeId>,
    /// `pending_pos[id]` is the index of node `id` within `pending`, or
    /// [`NOT_PENDING`].  Indexed by `NodeId` (node ids are dense).
    pending_pos: Vec<u32>,
    /// Inline-scheduling bucket index, maintained incrementally as nodes
    /// are added: the inline grouping key is pure static metadata, so the
    /// grouping work happens during DFG construction and the inline
    /// scheduler's flush-time job degenerates to emitting the non-empty
    /// buckets in key order (§4.1's "scheduling is a bucket lookup").
    buckets: Vec<InlineBucket>,
    /// Grouping key → index into `buckets`.
    bucket_lookup: std::collections::HashMap<(u128, u64), u32>,
    /// Per node, its bucket index (dense, parallel to `nodes`).
    bucket_of: Vec<u32>,
    /// Primary window-signature accumulator (see [`WindowSig`]), folded
    /// incrementally by [`Dfg::add_node`] while the window grows
    /// append-only from an empty pending set.
    win_sig: u64,
    /// Independent verification accumulator.
    win_check: u64,
    /// First node id of the current window.
    win_base: u64,
    /// Set when a partial completion (eager drain, aborted-flush retry)
    /// breaks the append-only-window property; the signature is then
    /// unavailable until the pending set next empties.
    win_dirty: bool,
    /// Whether `add_node` folds the signature at all.  Off by default so
    /// cache-off construction cost is unchanged; enabled by contexts whose
    /// engine has the plan cache on.
    win_track: bool,
    /// Lane-canonical signing mode: instead of one arrival-ordered fold,
    /// each fiber lane accumulates its own chains and the window signature
    /// is combined over lanes *sorted by lane key*, making it invariant to
    /// the OS interleaving of fiber appends.  Enabled by fiber-mode
    /// drivers; sequential models keep the cheaper single-chain fold (and
    /// its exact PR-6 signature values).
    lane_canon: bool,
    /// Per-lane accumulators for the current window (lane-canonical mode).
    lanes: Vec<LaneAcc>,
    /// Lane key → index into `lanes`.
    lane_slots: std::collections::HashMap<u64, u32>,
    /// Per window offset, `(lane slot, index within lane)` — parallel to
    /// the window's id range `win_base..`.
    node_lane: Vec<(u32, u32)>,
    /// Lazily-built canonical ordering + combined signature.
    canon: CanonState,
}

impl Dfg {
    /// Creates an empty graph.
    pub fn new() -> Dfg {
        Dfg::default()
    }

    /// Registers an already-materialized tensor (program input, constant).
    pub fn ready_value(&mut self, tensor: DeviceTensor) -> ValueId {
        let id = ValueId(self.values.len() as u64);
        self.values.push(ValueState::Ready(tensor));
        id
    }

    /// Appends a node; returns its output [`ValueId`]s (one per slot).
    ///
    /// Sequential-model entry point: the node is signed on the root lane
    /// of its instance.  Fiber-mode callers use [`Dfg::add_node_in_lane`]
    /// with a fork-path lane key instead.
    #[allow(clippy::too_many_arguments)]
    pub fn add_node(
        &mut self,
        kernel: KernelId,
        instance: usize,
        depth: u64,
        phase: u32,
        shared_sig: u64,
        args: Vec<ValueId>,
        output_slots: usize,
    ) -> (NodeId, Vec<ValueId>) {
        let lane = lane::root(instance);
        self.add_node_in_lane(kernel, instance, lane, depth, phase, shared_sig, args, output_slots)
    }

    /// Appends a node on an explicit fiber lane (see [`lane`]); returns its
    /// output [`ValueId`]s (one per slot).
    ///
    /// In lane-canonical mode the node's signature tokens are folded into
    /// its *lane's* private accumulator rather than the arrival-ordered
    /// global chain, so the resulting [`WindowSig`] depends only on lane
    /// content and lane keys — never on the OS interleaving of appends.
    #[allow(clippy::too_many_arguments)]
    pub fn add_node_in_lane(
        &mut self,
        kernel: KernelId,
        instance: usize,
        lane: u64,
        depth: u64,
        phase: u32,
        shared_sig: u64,
        args: Vec<ValueId>,
        output_slots: usize,
    ) -> (NodeId, Vec<ValueId>) {
        let id = NodeId(self.nodes.len() as u64);
        if self.win_track {
            if self.pending.is_empty() {
                // First node after a drain: a new window starts here.
                self.win_sig = WIN_SEED0;
                self.win_check = WIN_SEED1;
                self.win_base = id.0;
                self.win_dirty = false;
                self.lanes.clear();
                self.lane_slots.clear();
                self.node_lane.clear();
            }
            if !self.win_dirty {
                if self.lane_canon {
                    self.fold_lane_tokens(id, lane, kernel, depth, phase, shared_sig, &args);
                } else {
                    let mut s0 = self.win_sig;
                    let mut s1 = self.win_check;
                    let mut fold = |v: u64| {
                        s0 = sig_fold(s0, v);
                        s1 = sig_fold(s1, v ^ WIN_TWEAK);
                    };
                    fold(((phase as u64) << 32) | kernel.0 as u64);
                    fold(depth);
                    fold(shared_sig);
                    fold(args.len() as u64);
                    for a in &args {
                        // Dependency topology in window-relative
                        // coordinates: a pending argument folds the
                        // distance to its producer (id-delta), a
                        // materialized one folds a sentinel — so the
                        // signature is independent of absolute id offsets.
                        let tok = match &self.values[a.0 as usize] {
                            ValueState::Pending { producer, .. } => ((id.0 - producer.0) << 1) | 1,
                            ValueState::Ready(_) => 0,
                        };
                        fold(tok);
                    }
                    self.win_sig = s0;
                    self.win_check = s1;
                }
            }
            self.canon.valid = false;
            self.canon.win = None;
        }
        let outputs: Vec<ValueId> = (0..output_slots)
            .map(|slot| {
                let vid = ValueId(self.values.len() as u64);
                self.values.push(ValueState::Pending { producer: id, slot });
                vid
            })
            .collect();
        self.nodes.push(DfgNode {
            id,
            kernel,
            instance,
            depth,
            phase,
            shared_sig,
            args,
            outputs: outputs.clone(),
            executed: false,
        });
        debug_assert!(self.pending.len() < NOT_PENDING as usize, "pending set overflow");
        self.pending_pos.push(self.pending.len() as u32);
        self.pending.push(id);
        let key = (inline_key(phase, depth, kernel.0), shared_sig);
        let bucket = *self.bucket_lookup.entry(key).or_insert_with(|| {
            self.buckets.push(InlineBucket { key, ..Default::default() });
            (self.buckets.len() - 1) as u32
        });
        let b = &mut self.buckets[bucket as usize];
        b.ids.push(id);
        b.pending += 1;
        self.bucket_of.push(bucket);
        (id, outputs)
    }

    /// Folds one node's signature tokens into its lane accumulator
    /// (lane-canonical mode).  The token grammar is prefix-decodable: each
    /// argument contributes a first word that is `0` (ready), `≡ 1 mod 4`
    /// (same-lane producer, encoding the within-lane index delta) or `2`
    /// (cross-lane producer, followed by the producer's lane key and
    /// within-lane index) — so distinct window structures produce distinct
    /// token streams up to hash collision.
    #[allow(clippy::too_many_arguments)]
    fn fold_lane_tokens(
        &mut self,
        id: NodeId,
        lane: u64,
        kernel: KernelId,
        depth: u64,
        phase: u32,
        shared_sig: u64,
        args: &[ValueId],
    ) {
        let off = (id.0 - self.win_base) as usize;
        debug_assert_eq!(off, self.node_lane.len(), "window offset out of step with lane map");
        let slot = match self.lane_slots.entry(lane) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let s = self.lanes.len() as u32;
                self.lanes.push(LaneAcc {
                    key: lane,
                    sig: sig_fold(WIN_SEED0, lane),
                    check: sig_fold(WIN_SEED1, lane ^ WIN_TWEAK),
                    len: 0,
                });
                e.insert(s);
                s
            }
        };
        // Work on a copy: folding needs shared access to `values`,
        // `node_lane` and other `lanes` entries while this one mutates.
        let mut acc = self.lanes[slot as usize];
        let my_idx = acc.len;
        {
            let mut fold = |v: u64| {
                acc.sig = sig_fold(acc.sig, v);
                acc.check = sig_fold(acc.check, v ^ WIN_TWEAK);
            };
            fold(((phase as u64) << 32) | kernel.0 as u64);
            fold(depth);
            fold(shared_sig);
            fold(args.len() as u64);
        }
        for a in args {
            match &self.values[a.0 as usize] {
                ValueState::Ready(_) => {
                    acc.sig = sig_fold(acc.sig, 0);
                    acc.check = sig_fold(acc.check, WIN_TWEAK);
                }
                ValueState::Pending { producer, .. } => {
                    let poff = (producer.0 - self.win_base) as usize;
                    let (pslot, pidx) = self.node_lane[poff];
                    let words: [u64; 3] = if pslot == slot {
                        // Same-lane dependency: distance in lane-local
                        // coordinates, invariant to interleaving.
                        let d = ((my_idx - pidx) as u64) << 2 | 1;
                        [d, 0, 0]
                    } else {
                        [2, self.lanes[pslot as usize].key, pidx as u64]
                    };
                    let n_words = if words[0] == 2 { 3 } else { 1 };
                    for &w in &words[..n_words] {
                        acc.sig = sig_fold(acc.sig, w);
                        acc.check = sig_fold(acc.check, w ^ WIN_TWEAK);
                    }
                }
            }
        }
        acc.len = my_idx + 1;
        self.lanes[slot as usize] = acc;
        self.node_lane.push((slot, my_idx));
    }

    /// The node table.
    pub fn node(&self, id: NodeId) -> &DfgNode {
        &self.nodes[id.0 as usize]
    }

    /// All nodes (executed and pending).
    pub fn nodes(&self) -> &[DfgNode] {
        &self.nodes
    }

    /// Ids of nodes not yet executed.
    ///
    /// Between flushes (append-only periods) the slice is in creation
    /// order; while completions are in flight the order is unspecified
    /// because completion swap-removes.  Callers needing topological order
    /// must sort (node ids increase in creation order).
    pub fn pending(&self) -> &[NodeId] {
        &self.pending
    }

    /// Whether any nodes await execution.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Value state lookup.
    pub fn value(&self, id: ValueId) -> &ValueState {
        &self.values[id.0 as usize]
    }

    /// The materialized tensor behind `id`, if ready.
    pub fn tensor(&self, id: ValueId) -> Option<&DeviceTensor> {
        match &self.values[id.0 as usize] {
            ValueState::Ready(t) => Some(t),
            ValueState::Pending { .. } => None,
        }
    }

    /// The producing node of `id`, if still pending.
    pub fn producer(&self, id: ValueId) -> Option<NodeId> {
        match &self.values[id.0 as usize] {
            ValueState::Pending { producer, .. } => Some(*producer),
            ValueState::Ready(_) => None,
        }
    }

    /// True when all arguments of `node` are materialized.
    pub fn args_ready(&self, node: NodeId) -> bool {
        self.nodes[node.0 as usize]
            .args
            .iter()
            .all(|a| matches!(self.values[a.0 as usize], ValueState::Ready(_)))
    }

    /// Removes `node` from the pending set in O(1) via swap-remove, and
    /// keeps the bucket index's staleness bounded.
    fn remove_pending(&mut self, node: NodeId) {
        let pos = self.pending_pos[node.0 as usize];
        debug_assert_ne!(pos, NOT_PENDING, "node not pending");
        self.pending.swap_remove(pos as usize);
        if let Some(&moved) = self.pending.get(pos as usize) {
            self.pending_pos[moved.0 as usize] = pos;
        }
        self.pending_pos[node.0 as usize] = NOT_PENDING;

        let b = &mut self.buckets[self.bucket_of[node.0 as usize] as usize];
        b.pending -= 1;
        // The executed id stays in `ids` (removal would be O(len)); readers
        // filter.  A full flush drains whole buckets, so the common case
        // frees everything at once; partial (eager) completions compact
        // once a bucket is mostly stale, keeping scans amortized O(1).
        if b.pending == 0 {
            b.ids.clear();
        } else if b.ids.len() >= 16 && b.ids.len() >= 2 * b.pending as usize {
            let pending_pos = &self.pending_pos;
            b.ids.retain(|id| pending_pos[id.0 as usize] != NOT_PENDING);
        }
        // A completion that leaves other nodes pending breaks the
        // append-only-window property: the remaining pending set is no
        // longer `base..base + n`, so the incremental signature is stale.
        // Draining completely is fine — the next `add_node` starts a fresh
        // window and resets the accumulators.
        if self.win_track {
            if !self.pending.is_empty() {
                self.win_dirty = true;
            }
            // Any completion retires the memoized canonical order: either
            // the window went dirty, or it drained and the next append
            // starts a fresh window.
            self.canon.valid = false;
            self.canon.win = None;
        }
    }

    /// Whether `node` awaits execution.
    pub(crate) fn is_pending(&self, node: NodeId) -> bool {
        self.pending_pos[node.0 as usize] != NOT_PENDING
    }

    /// The incremental inline-scheduling bucket index.
    pub(crate) fn inline_buckets(&self) -> &[InlineBucket] {
        &self.buckets
    }

    /// Marks a node executed, materializing its outputs.
    ///
    /// # Panics
    ///
    /// Panics if output counts disagree (internal error).
    pub fn complete_node(&mut self, node: NodeId, outputs: Vec<DeviceTensor>) {
        let n = &mut self.nodes[node.0 as usize];
        assert_eq!(n.outputs.len(), outputs.len(), "output arity mismatch");
        assert!(!n.executed, "node executed twice");
        n.executed = true;
        let out_ids = n.outputs.clone();
        for (vid, t) in out_ids.into_iter().zip(outputs) {
            self.values[vid.0 as usize] = ValueState::Ready(t);
        }
        self.remove_pending(node);
    }

    /// Marks a whole batch executed in one pass, materializing every lane's
    /// outputs.  `outputs[slot][lane]` is the tensor produced for
    /// `batch[lane]`'s output `slot` — exactly the shape
    /// `acrobat_codegen::exec::run_batched_kernel` returns, so the flush
    /// path moves tensors straight into the value table without per-node
    /// re-packing or handle clones.
    ///
    /// # Panics
    ///
    /// Panics if slot or lane counts disagree with the batch, or if any
    /// node was already executed (internal errors).
    pub fn complete_batch(&mut self, batch: &[NodeId], outputs: Vec<Vec<DeviceTensor>>) {
        // Validate the whole batch BEFORE touching the value table: a bad
        // batch (double completion, arity mismatch) must panic with the
        // table untouched, not after overwriting Ready values of lanes that
        // happened to precede the offending one.
        let slots = outputs.len();
        for &id in batch {
            let n = &self.nodes[id.0 as usize];
            assert_eq!(n.outputs.len(), slots, "output arity mismatch");
            assert!(!n.executed, "node executed twice");
        }
        for (slot, lanes) in outputs.iter().enumerate() {
            assert_eq!(lanes.len(), batch.len(), "lane count mismatch at slot {slot}");
        }
        for (slot, lanes) in outputs.into_iter().enumerate() {
            for (lane, t) in lanes.into_iter().enumerate() {
                let node = &self.nodes[batch[lane].0 as usize];
                let vid = node.outputs[slot];
                self.values[vid.0 as usize] = ValueState::Ready(t);
            }
        }
        for &id in batch {
            self.nodes[id.0 as usize].executed = true;
            self.remove_pending(id);
        }
    }

    /// Number of values ever created (ready and pending).
    pub fn value_count(&self) -> u64 {
        self.values.len() as u64
    }

    /// Exhaustively cross-checks the pending set, the `pending_pos` index
    /// and the incremental inline-bucket index against each other and
    /// against the node table.  O(nodes); meant for the runtime's checked
    /// mode and for tests after error paths, never for the flush hot path.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn verify_consistent(&self) -> Result<(), String> {
        // pending ↔ pending_pos is a bijection.
        if self.pending_pos.len() != self.nodes.len() {
            return Err(format!(
                "pending_pos len {} != node count {}",
                self.pending_pos.len(),
                self.nodes.len()
            ));
        }
        for (i, &id) in self.pending.iter().enumerate() {
            let pos = self.pending_pos[id.0 as usize];
            if pos as usize != i {
                return Err(format!("pending[{i}] = {id:?} but pending_pos says {pos}"));
            }
            if self.nodes[id.0 as usize].executed {
                return Err(format!("{id:?} is pending but marked executed"));
            }
        }
        let mut pending_count = 0usize;
        for (idx, node) in self.nodes.iter().enumerate() {
            let pos = self.pending_pos[idx];
            if pos == NOT_PENDING {
                if !node.executed {
                    return Err(format!("node {idx} neither pending nor executed"));
                }
                // Executed nodes must have every output materialized.
                for &v in &node.outputs {
                    if matches!(self.values[v.0 as usize], ValueState::Pending { .. }) {
                        return Err(format!("executed node {idx} has pending output {v:?}"));
                    }
                }
            } else {
                pending_count += 1;
                if self.pending.get(pos as usize) != Some(&NodeId(idx as u64)) {
                    return Err(format!("pending_pos[{idx}] = {pos} does not point back"));
                }
            }
        }
        if pending_count != self.pending.len() {
            return Err(format!(
                "pending_pos marks {pending_count} nodes pending, pending holds {}",
                self.pending.len()
            ));
        }

        // Bucket index: keys match members, pending counts match, every
        // pending node is present exactly once in its own bucket.
        if self.bucket_of.len() != self.nodes.len() {
            return Err("bucket_of not parallel to nodes".into());
        }
        let mut bucket_pending_total = 0u64;
        for (bi, b) in self.buckets.iter().enumerate() {
            bucket_pending_total += b.pending as u64;
            if self.bucket_lookup.get(&b.key) != Some(&(bi as u32)) {
                return Err(format!("bucket {bi} not found under its key in bucket_lookup"));
            }
            let mut live = 0u32;
            for &id in &b.ids {
                let node = &self.nodes[id.0 as usize];
                let key = (inline_key(node.phase, node.depth, node.kernel.0), node.shared_sig);
                if key != b.key {
                    return Err(format!("bucket {bi} contains {id:?} with foreign key"));
                }
                if self.bucket_of[id.0 as usize] != bi as u32 {
                    return Err(format!("{id:?} in bucket {bi} but bucket_of disagrees"));
                }
                if self.pending_pos[id.0 as usize] != NOT_PENDING {
                    live += 1;
                }
            }
            if live != b.pending {
                return Err(format!(
                    "bucket {bi}: pending count {} but {live} live members",
                    b.pending
                ));
            }
        }
        if bucket_pending_total != self.pending.len() as u64 {
            return Err(format!(
                "bucket pending totals {bucket_pending_total} != pending set {}",
                self.pending.len()
            ));
        }
        for &id in &self.pending {
            let b = &self.buckets[self.bucket_of[id.0 as usize] as usize];
            let copies = b.ids.iter().filter(|&&x| x == id).count();
            if copies != 1 {
                return Err(format!("{id:?} appears {copies} times in its bucket"));
            }
        }

        // Pending values point at live producers with matching slots.
        for (vi, v) in self.values.iter().enumerate() {
            if let ValueState::Pending { producer, slot } = v {
                let node = match self.nodes.get(producer.0 as usize) {
                    Some(n) => n,
                    None => return Err(format!("value {vi} names missing producer {producer:?}")),
                };
                if node.outputs.get(*slot) != Some(&ValueId(vi as u64)) {
                    return Err(format!("value {vi} slot {slot} not an output of {producer:?}"));
                }
            }
        }
        Ok(())
    }

    /// Total nodes ever created (the DFG-construction count in Table 5).
    pub fn node_count(&self) -> u64 {
        self.nodes.len() as u64
    }

    /// Enables or disables incremental window-signature folding (see
    /// [`WindowSig`]).  Kept off by default so cache-off DFG construction
    /// pays nothing; turning it on mid-graph marks the signature dirty
    /// until the pending set next drains (a half-observed window must
    /// never hash clean).
    pub fn set_signature_tracking(&mut self, on: bool) {
        self.win_track = on;
        self.win_dirty = !self.pending.is_empty();
        self.canon.valid = false;
        self.canon.win = None;
    }

    /// Enables or disables lane-canonical signing (see
    /// [`Dfg::add_node_in_lane`]).  Fiber-mode drivers turn this on so the
    /// window signature and canonical node order are invariant to the OS
    /// interleaving of fiber lanes; sequential models leave it off and
    /// keep the cheaper single-chain fold byte-for-byte.  Toggling
    /// mid-window marks the signature dirty until the pending set next
    /// drains, exactly like [`Dfg::set_signature_tracking`].
    pub fn set_lane_canonical(&mut self, on: bool) {
        self.lane_canon = on;
        self.win_dirty = !self.pending.is_empty();
        self.canon.valid = false;
        self.canon.win = None;
    }

    /// The structural signature of the current pending window, if it is
    /// clean: tracking is on, the window grew append-only from an empty
    /// pending set, and nothing was partially completed since.  `None`
    /// sends the caller down the uncached scheduling path.
    ///
    /// In lane-canonical mode the first call per window derives the
    /// canonical node order and combines the per-lane chains (sorted by
    /// lane key) into the interleave-invariant signature; the result is
    /// memoized, so repeat calls on an unchanged window are O(1).
    pub fn window_signature(&mut self) -> Option<WindowSig> {
        if !self.win_track || self.win_dirty || self.pending.is_empty() {
            return None;
        }
        debug_assert_eq!(
            self.win_base + self.pending.len() as u64,
            self.nodes.len() as u64,
            "clean window must span a contiguous id range"
        );
        if self.lane_canon {
            if !self.canon.valid {
                self.build_canon();
            }
            return self.canon.win;
        }
        Some(WindowSig {
            sig: self.win_sig,
            check: self.win_check,
            n: self.pending.len() as u32,
            base: self.win_base,
        })
    }

    /// Derives the canonical window order and the combined lane-canonical
    /// [`WindowSig`]: lanes sorted by key, each node ranked by (lane's
    /// sorted position, within-lane index).  All inputs are themselves
    /// interleave-invariant, so so is everything derived here.
    fn build_canon(&mut self) {
        let nl = self.lanes.len();
        self.canon.lane_order.clear();
        self.canon.lane_order.extend(0..nl as u32);
        let lanes = &self.lanes;
        self.canon.lane_order.sort_unstable_by_key(|&s| lanes[s as usize].key);
        self.canon.lane_start.clear();
        self.canon.lane_start.resize(nl, 0);
        let mut cum = 0u32;
        for &s in &self.canon.lane_order {
            self.canon.lane_start[s as usize] = cum;
            cum += self.lanes[s as usize].len;
        }
        let n = self.pending.len();
        debug_assert_eq!(cum as usize, n, "lane lengths must cover the window");
        debug_assert_eq!(self.node_lane.len(), n, "lane map must cover the window");
        self.canon.rank.clear();
        self.canon.order.clear();
        self.canon.order.resize(n, 0);
        for off in 0..n {
            let (slot, idx) = self.node_lane[off];
            let r = self.canon.lane_start[slot as usize] + idx;
            self.canon.rank.push(r);
            self.canon.order[r as usize] = off as u32;
        }
        let mut s0 = WIN_SEED0;
        let mut s1 = WIN_SEED1;
        let mut fold = |v: u64| {
            s0 = sig_fold(s0, v);
            s1 = sig_fold(s1, v ^ WIN_TWEAK);
        };
        fold(nl as u64);
        for &s in &self.canon.lane_order {
            let l = &self.lanes[s as usize];
            fold(l.key);
            fold(l.sig);
            fold(l.check);
            fold(l.len as u64);
        }
        self.canon.win = Some(WindowSig { sig: s0, check: s1, n: n as u32, base: self.win_base });
        self.canon.valid = true;
    }

    /// Whether a canonical (interleave-invariant) window order is
    /// available: lane-canonical mode with a clean window whose order has
    /// been derived by [`Dfg::window_signature`].
    pub fn has_canonical_order(&self) -> bool {
        self.win_track && self.lane_canon && !self.win_dirty && self.canon.valid
    }

    /// Canonical position of window node `id` (its rank under the
    /// lane-sorted order).  Falls back to the window offset — which *is*
    /// the canonical order for sequential windows — when no lane-canonical
    /// order is available.
    pub fn canon_pos(&self, id: NodeId) -> u32 {
        let off = (id.0 - self.win_base) as u32;
        if self.has_canonical_order() {
            self.canon.rank[off as usize]
        } else {
            off
        }
    }

    /// Inverse of [`Dfg::canon_pos`]: the `NodeId` at canonical position
    /// `pos` of the current window.
    pub fn id_at_canon(&self, pos: u32) -> NodeId {
        if self.has_canonical_order() {
            NodeId(self.win_base + self.canon.order[pos as usize] as u64)
        } else {
            NodeId(self.win_base + pos as u64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acrobat_tensor::{DeviceMem, Tensor};

    #[test]
    fn node_lifecycle() {
        let mut mem = DeviceMem::new(64);
        let mut dfg = Dfg::new();
        let x = dfg.ready_value(mem.upload(&Tensor::ones(&[2])).unwrap());
        let (n1, o1) = dfg.add_node(acrobat_codegen::KernelId(0), 0, 0, 0, 0, vec![x], 1);
        assert!(dfg.args_ready(n1));
        assert!(dfg.tensor(o1[0]).is_none());
        assert_eq!(dfg.producer(o1[0]), Some(n1));

        let (n2, _) = dfg.add_node(acrobat_codegen::KernelId(1), 0, 1, 0, 0, vec![o1[0]], 1);
        assert!(!dfg.args_ready(n2), "depends on pending n1");
        assert_eq!(dfg.pending().len(), 2);

        let t = mem.upload(&Tensor::zeros(&[2])).unwrap();
        dfg.complete_node(n1, vec![t]);
        assert!(dfg.args_ready(n2));
        assert_eq!(dfg.pending(), &[n2]);
        assert!(dfg.tensor(o1[0]).is_some());
    }

    #[test]
    fn complete_batch_materializes_all_lanes() {
        let mut mem = DeviceMem::new(256);
        let mut dfg = Dfg::new();
        let x = dfg.ready_value(mem.upload(&Tensor::ones(&[2])).unwrap());
        let mut ids = Vec::new();
        let mut outs = Vec::new();
        for i in 0..4 {
            let (n, o) = dfg.add_node(acrobat_codegen::KernelId(0), i, 0, 0, 0, vec![x], 1);
            ids.push(n);
            outs.push(o[0]);
        }
        assert_eq!(dfg.pending().len(), 4);
        // Complete the middle two as one batch (slot-major outputs).
        let lanes: Vec<DeviceTensor> =
            (0..2).map(|i| mem.upload(&Tensor::fill(&[2], i as f32)).unwrap()).collect();
        dfg.complete_batch(&[ids[1], ids[2]], vec![lanes]);
        assert!(dfg.tensor(outs[1]).is_some());
        assert!(dfg.tensor(outs[2]).is_some());
        assert!(dfg.tensor(outs[0]).is_none());
        let mut left: Vec<NodeId> = dfg.pending().to_vec();
        left.sort_unstable();
        assert_eq!(left, vec![ids[0], ids[3]]);

        // Swap-removed set still completes correctly one by one.
        let t = mem.upload(&Tensor::zeros(&[2])).unwrap();
        dfg.complete_node(ids[3], vec![t.clone()]);
        dfg.complete_node(ids[0], vec![t]);
        assert!(!dfg.has_pending());
    }

    #[test]
    #[should_panic(expected = "executed twice")]
    fn double_batch_completion_panics() {
        let mut mem = DeviceMem::new(64);
        let mut dfg = Dfg::new();
        let (n, _) = dfg.add_node(acrobat_codegen::KernelId(0), 0, 0, 0, 0, vec![], 1);
        let t = mem.upload(&Tensor::ones(&[1])).unwrap();
        dfg.complete_batch(&[n], vec![vec![t.clone()]]);
        dfg.complete_batch(&[n], vec![vec![t]]);
    }

    #[test]
    fn failed_batch_completion_leaves_value_table_untouched() {
        // Regression: complete_batch used to materialize lane outputs slot
        // by slot BEFORE checking `executed`, so a double completion
        // overwrote Ready values of earlier lanes prior to panicking.
        let mut mem = DeviceMem::new(256);
        let mut dfg = Dfg::new();
        let (a, oa) = dfg.add_node(acrobat_codegen::KernelId(0), 0, 0, 0, 0, vec![], 1);
        let (b, ob) = dfg.add_node(acrobat_codegen::KernelId(0), 1, 0, 0, 0, vec![], 1);
        let t_a = mem.upload(&Tensor::fill(&[1], 1.0)).unwrap();
        let t_b = mem.upload(&Tensor::fill(&[1], 2.0)).unwrap();
        dfg.complete_batch(&[a, b], vec![vec![t_a.clone(), t_b.clone()]]);
        assert_eq!(dfg.tensor(oa[0]), Some(&t_a));

        // Re-completing [a] with a junk tensor must panic *without* first
        // clobbering a's Ready value.
        let junk = mem.upload(&Tensor::fill(&[1], 9.0)).unwrap();
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dfg.complete_batch(&[a], vec![vec![junk]]);
        }));
        assert!(panicked.is_err(), "double completion must still panic");
        assert_eq!(dfg.tensor(oa[0]), Some(&t_a), "value table was corrupted");
        assert_eq!(dfg.tensor(ob[0]), Some(&t_b));
        dfg.verify_consistent().unwrap();
    }

    #[test]
    fn verify_consistent_accepts_live_graphs() {
        let mut mem = DeviceMem::new(256);
        let mut dfg = Dfg::new();
        let x = dfg.ready_value(mem.upload(&Tensor::ones(&[2])).unwrap());
        let mut ids = Vec::new();
        for i in 0..5 {
            let (n, _) =
                dfg.add_node(acrobat_codegen::KernelId(i as u32 % 2), i, 0, 0, 0, vec![x], 1);
            ids.push(n);
        }
        dfg.verify_consistent().unwrap();
        let t = mem.upload(&Tensor::zeros(&[2])).unwrap();
        dfg.complete_node(ids[2], vec![t.clone()]);
        dfg.verify_consistent().unwrap();
        dfg.complete_batch(&[ids[0], ids[4]], vec![vec![t.clone(), t.clone()]]);
        dfg.verify_consistent().unwrap();
    }

    /// Builds one window with lane-canonical signing on, appending chain
    /// nodes in the given `(instance, kernel)` order — each node consumes
    /// its own lane's previous output (or the shared ready input).
    /// Returns the combined signature plus the kernel ids in canonical
    /// window order.
    fn build_lane_window(order: &[(usize, u32)]) -> (WindowSig, Vec<u32>) {
        let mut mem = DeviceMem::new(256);
        let mut dfg = Dfg::new();
        dfg.set_signature_tracking(true);
        dfg.set_lane_canonical(true);
        let x = dfg.ready_value(mem.upload(&Tensor::ones(&[2])).unwrap());
        let mut last: std::collections::HashMap<usize, ValueId> = Default::default();
        for &(inst, k) in order {
            let arg = last.get(&inst).copied().unwrap_or(x);
            let (_, o) = dfg.add_node(acrobat_codegen::KernelId(k), inst, 0, 0, 0, vec![arg], 1);
            last.insert(inst, o[0]);
        }
        let w = dfg.window_signature().expect("clean window must sign");
        assert!(dfg.has_canonical_order());
        let kernels = (0..w.n).map(|p| dfg.node(dfg.id_at_canon(p)).kernel.0).collect();
        // canon_pos and id_at_canon must be inverse bijections.
        for p in 0..w.n {
            assert_eq!(dfg.canon_pos(dfg.id_at_canon(p)), p);
        }
        (w, kernels)
    }

    #[test]
    fn lane_canonical_signature_is_interleave_invariant() {
        // The same two lanes (two-node chains) appended in three different
        // interleavings — including lanes first-touched in opposite order —
        // must produce bit-identical signatures and canonical orders.
        let a = build_lane_window(&[(0, 10), (0, 11), (1, 20), (1, 21)]);
        let b = build_lane_window(&[(1, 20), (1, 21), (0, 10), (0, 11)]);
        let c = build_lane_window(&[(0, 10), (1, 20), (1, 21), (0, 11)]);
        assert_eq!(a, b);
        assert_eq!(a, c);
        // Different window content must (overwhelmingly) sign differently.
        let d = build_lane_window(&[(0, 10), (0, 12), (1, 20), (1, 21)]);
        assert_ne!(a.0.sig, d.0.sig);
    }

    #[test]
    fn lane_canonical_cross_lane_deps_are_interleave_invariant() {
        // Lane 1 consumes lane 0's output; an unrelated lane 2 is shuffled
        // around the dependent pair.  The cross-lane token folds the
        // producer's lane *key* and within-lane index, so every legal
        // interleaving signs identically.
        let build = |order: &[usize]| -> (WindowSig, Vec<u32>) {
            let mut mem = DeviceMem::new(256);
            let mut dfg = Dfg::new();
            dfg.set_signature_tracking(true);
            dfg.set_lane_canonical(true);
            let x = dfg.ready_value(mem.upload(&Tensor::ones(&[2])).unwrap());
            let mut l0_out = None;
            for &inst in order {
                let arg = if inst == 1 { l0_out.expect("l0 first") } else { x };
                let (_, o) = dfg.add_node(
                    acrobat_codegen::KernelId(inst as u32),
                    inst,
                    0,
                    0,
                    0,
                    vec![arg],
                    1,
                );
                if inst == 0 {
                    l0_out = Some(o[0]);
                }
            }
            let w = dfg.window_signature().unwrap();
            let ks = (0..w.n).map(|p| dfg.node(dfg.id_at_canon(p)).kernel.0).collect();
            (w, ks)
        };
        let a = build(&[0, 1, 2]);
        let b = build(&[0, 2, 1]);
        let c = build(&[2, 0, 1]);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn sequential_mode_signature_is_unchanged_by_lane_plumbing() {
        // With lane-canonical mode OFF (the default), add_node must sign
        // exactly as the single-chain fold always did — arrival order
        // matters, and the lane tables stay untouched.
        let mut mem = DeviceMem::new(256);
        let mut dfg = Dfg::new();
        dfg.set_signature_tracking(true);
        let x = dfg.ready_value(mem.upload(&Tensor::ones(&[2])).unwrap());
        dfg.add_node(acrobat_codegen::KernelId(0), 0, 0, 0, 0, vec![x], 1);
        dfg.add_node(acrobat_codegen::KernelId(1), 1, 0, 0, 0, vec![x], 1);
        let w1 = dfg.window_signature().unwrap();

        let mut dfg2 = Dfg::new();
        dfg2.set_signature_tracking(true);
        let y = dfg2.ready_value(mem.upload(&Tensor::ones(&[2])).unwrap());
        dfg2.add_node(acrobat_codegen::KernelId(1), 1, 0, 0, 0, vec![y], 1);
        dfg2.add_node(acrobat_codegen::KernelId(0), 0, 0, 0, 0, vec![y], 1);
        let w2 = dfg2.window_signature().unwrap();
        assert_ne!(w1.sig, w2.sig, "sequential signing stays arrival-ordered");
        // And canonical accessors degrade to the identity order.
        assert!(!dfg.has_canonical_order());
        assert_eq!(dfg.canon_pos(NodeId(1)), 1);
        assert_eq!(dfg.id_at_canon(0), NodeId(0));
    }

    #[test]
    #[should_panic(expected = "executed twice")]
    fn double_completion_panics() {
        let mut mem = DeviceMem::new(64);
        let mut dfg = Dfg::new();
        let (n, _) = dfg.add_node(acrobat_codegen::KernelId(0), 0, 0, 0, 0, vec![], 1);
        let t = mem.upload(&Tensor::ones(&[1])).unwrap();
        dfg.complete_node(n, vec![t.clone()]);
        dfg.complete_node(n, vec![t]);
    }
}
