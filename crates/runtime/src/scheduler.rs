//! Dynamic-batching schedulers.
//!
//! Given the pending nodes of a [`Dfg`], a scheduler produces an ordered
//! list of *batches* — sets of nodes that launch as one batched kernel.
//! All three schedulers respect dependences (G.1) and try to maximize batch
//! sizes (G.2); they differ in how much work they do and how well they
//! exploit the statically-provided metadata:
//!
//! * [`SchedulerKind::InlineDepth`] — ACROBAT (§4.1): depths and phases were
//!   computed during DFG construction by AOT-generated code, so scheduling
//!   degenerates to a bucket sort by `(phase, depth, kernel)`.
//! * [`SchedulerKind::DynamicDepth`] — DyNet's depth scheme: topological
//!   depths are recomputed from the graph at flush time, and there are no
//!   phases — the eager-batching pathologies of Fig. 4 / §B.3 apply.
//! * [`SchedulerKind::Agenda`] — DyNet's agenda scheme: iteratively pick the
//!   available kernel class with the smallest average depth and batch
//!   everything available of that class.  Better batches than the depth
//!   scheme in irregular graphs, at a higher per-node cost.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::dfg::{Dfg, NodeId};

/// Which scheduling algorithm the runtime uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// ACROBAT's inline depth computation (§4.1).
    InlineDepth,
    /// DyNet-style dynamic depth-based batching.
    DynamicDepth,
    /// DyNet-style agenda-based batching.
    Agenda,
}

/// A scheduling plan: ordered batches plus the number of elementary
/// scheduling decisions taken (for the host-overhead account).
#[derive(Debug, Clone)]
pub struct Plan {
    /// Batches in launch order; nodes within a batch share a kernel.
    pub batches: Vec<Vec<NodeId>>,
    /// Elementary decisions performed (bucket inserts, heap ops, scans).
    pub decisions: u64,
}

/// Plans the execution of all currently pending nodes.
pub fn plan(kind: SchedulerKind, dfg: &Dfg) -> Plan {
    match kind {
        SchedulerKind::InlineDepth => plan_inline(dfg),
        SchedulerKind::DynamicDepth => plan_dynamic_depth(dfg),
        SchedulerKind::Agenda => plan_agenda(dfg),
    }
}

fn plan_inline(dfg: &Dfg) -> Plan {
    // Bucket sort by (phase, depth, kernel, shared operands): one decision
    // per node.
    let mut buckets: BTreeMap<(u32, u64, u32, u64), Vec<NodeId>> = BTreeMap::new();
    let mut decisions = 0u64;
    for &id in dfg.pending() {
        let n = dfg.node(id);
        buckets.entry((n.phase, n.depth, n.kernel.0, n.shared_sig)).or_default().push(id);
        decisions += 1;
    }
    Plan { batches: buckets.into_values().collect(), decisions }
}

fn plan_dynamic_depth(dfg: &Dfg) -> Plan {
    // Recompute topological depths over the pending subgraph.
    let pending: Vec<NodeId> = dfg.pending().to_vec();
    let pending_set: BTreeSet<NodeId> = pending.iter().copied().collect();
    let mut depth: BTreeMap<NodeId, u64> = BTreeMap::new();
    let mut decisions = 0u64;
    // Pending nodes were appended in creation order, which is a valid
    // topological order (observation O.1 in the paper).
    for &id in &pending {
        let n = dfg.node(id);
        let mut d = 0u64;
        for a in &n.args {
            decisions += 1;
            if let Some(p) = dfg.producer(*a) {
                if pending_set.contains(&p) {
                    d = d.max(depth.get(&p).copied().unwrap_or(0) + 1);
                }
            }
        }
        depth.insert(id, d);
        decisions += 1;
    }
    let mut buckets: BTreeMap<(u64, u32, u64), Vec<NodeId>> = BTreeMap::new();
    for &id in &pending {
        let n = dfg.node(id);
        buckets.entry((depth[&id], n.kernel.0, n.shared_sig)).or_default().push(id);
        decisions += 1;
    }
    Plan { batches: buckets.into_values().collect(), decisions }
}

fn plan_agenda(dfg: &Dfg) -> Plan {
    let pending: Vec<NodeId> = dfg.pending().to_vec();
    let pending_set: BTreeSet<NodeId> = pending.iter().copied().collect();
    let mut decisions = 0u64;

    // Topological depths (used by the average-depth heuristic).
    let mut depth: BTreeMap<NodeId, u64> = BTreeMap::new();
    for &id in &pending {
        let n = dfg.node(id);
        let mut d = 0u64;
        for a in &n.args {
            if let Some(p) = dfg.producer(*a) {
                if pending_set.contains(&p) {
                    d = d.max(depth.get(&p).copied().unwrap_or(0) + 1);
                }
            }
            decisions += 1;
        }
        depth.insert(id, d);
    }

    let mut done: BTreeSet<NodeId> = BTreeSet::new();
    let mut batches = Vec::new();
    let mut remaining: Vec<NodeId> = pending.clone();
    while !remaining.is_empty() {
        // Available = all pending deps done.
        let mut available: BTreeMap<(u32, u64), Vec<NodeId>> = BTreeMap::new();
        for &id in &remaining {
            decisions += 1;
            let n = dfg.node(id);
            let ready = n.args.iter().all(|a| match dfg.producer(*a) {
                Some(p) => !pending_set.contains(&p) || done.contains(&p),
                None => true,
            });
            if ready {
                available.entry((n.kernel.0, n.shared_sig)).or_default().push(id);
            }
        }
        // Pick the kernel class with the smallest average depth (DyNet's
        // agenda heuristic: prefer shallow work to unlock more parallelism).
        let (&class, _) = available
            .iter()
            .min_by(|(_, a), (_, b)| {
                let avg = |v: &Vec<NodeId>| {
                    v.iter().map(|id| depth[id] as f64).sum::<f64>() / v.len() as f64
                };
                avg(a).partial_cmp(&avg(b)).expect("finite averages")
            })
            .expect("pending nodes imply availability");
        let batch = available.remove(&class).expect("chosen class exists");
        decisions += batch.len() as u64;
        for &id in &batch {
            done.insert(id);
        }
        remaining.retain(|id| !done.contains(id));
        batches.push(batch);
    }
    Plan { batches, decisions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acrobat_codegen::KernelId;

    /// Builds a DFG of `instances` chains: in0 → k0 → k1 (same kernels
    /// across instances), with inline depths/phases set as ACROBAT would.
    fn chain_dfg(instances: usize) -> Dfg {
        let mut mem = acrobat_tensor::DeviceMem::new(1 << 12);
        let mut dfg = Dfg::new();
        for i in 0..instances {
            let x = dfg.ready_value(mem.upload(&acrobat_tensor::Tensor::ones(&[2])).unwrap());
            let (_, o1) = dfg.add_node(KernelId(0), i, 0, 0, 0, vec![x], 1);
            dfg.add_node(KernelId(1), i, 1, 0, 0, vec![o1[0]], 1);
        }
        dfg
    }

    fn batch_respects_deps(dfg: &Dfg, plan: &Plan) {
        let mut done = std::collections::BTreeSet::new();
        for batch in &plan.batches {
            for &id in batch {
                for a in &dfg.node(id).args {
                    if let Some(p) = dfg.producer(*a) {
                        assert!(done.contains(&p), "dependency violated");
                    }
                }
            }
            for &id in batch {
                done.insert(id);
            }
        }
        assert_eq!(done.len(), dfg.pending().len(), "all nodes scheduled");
    }

    #[test]
    fn inline_batches_across_instances() {
        let dfg = chain_dfg(8);
        let p = plan(SchedulerKind::InlineDepth, &dfg);
        assert_eq!(p.batches.len(), 2, "two depth levels → two launches");
        assert_eq!(p.batches[0].len(), 8);
        batch_respects_deps(&dfg, &p);
    }

    #[test]
    fn dynamic_depth_matches_on_chains() {
        let dfg = chain_dfg(8);
        let p = plan(SchedulerKind::DynamicDepth, &dfg);
        assert_eq!(p.batches.len(), 2);
        batch_respects_deps(&dfg, &p);
        // …but it does more work per node than inline.
        let pi = plan(SchedulerKind::InlineDepth, &dfg);
        assert!(p.decisions > pi.decisions);
    }

    #[test]
    fn agenda_matches_on_chains_with_more_decisions() {
        let dfg = chain_dfg(8);
        let p = plan(SchedulerKind::Agenda, &dfg);
        assert_eq!(p.batches.len(), 2);
        batch_respects_deps(&dfg, &p);
        let pd = plan(SchedulerKind::DynamicDepth, &dfg);
        assert!(p.decisions > pd.decisions);
    }

    #[test]
    fn phases_keep_output_ops_together() {
        // Two instances with different-length chains feeding a common
        // output kernel.  With phases, the output ops batch together even
        // though their inline depths differ only by phase.
        let mut mem = acrobat_tensor::DeviceMem::new(1 << 12);
        let mut dfg = Dfg::new();
        for (i, len) in [1u64, 3].iter().enumerate() {
            let mut v = dfg.ready_value(mem.upload(&acrobat_tensor::Tensor::ones(&[2])).unwrap());
            for d in 0..*len {
                let (_, o) = dfg.add_node(KernelId(0), i, d, 0, 0, vec![v], 1);
                v = o[0];
            }
            // Phase-2 output op: depth restarts per phase semantics are
            // emulated by the AOT code assigning phase-local depths.
            dfg.add_node(KernelId(1), i, 0, 1, 0, vec![v], 1);
        }
        let p = plan(SchedulerKind::InlineDepth, &dfg);
        // Output ops form ONE batch (same phase, same depth, same kernel).
        let out_batches: Vec<_> = p
            .batches
            .iter()
            .filter(|b| b.iter().any(|id| dfg.node(*id).kernel == KernelId(1)))
            .collect();
        assert_eq!(out_batches.len(), 1);
        assert_eq!(out_batches[0].len(), 2);
        batch_respects_deps(&dfg, &p);

        // The dynamic-depth scheduler (no phases) splits them.
        let pd = plan(SchedulerKind::DynamicDepth, &dfg);
        let out_batches: Vec<_> = pd
            .batches
            .iter()
            .filter(|b| b.iter().any(|id| dfg.node(*id).kernel == KernelId(1)))
            .collect();
        assert_eq!(out_batches.len(), 2, "no phases → split output batches");
    }

    #[test]
    fn agenda_beats_dynamic_depth_on_fig4_shape() {
        // Fig. 4: two instances run opA (kernel 0) then opB (kernel 1); two
        // others run opB directly.  Depth batching splits opB; agenda
        // scheduling (and ghost ops under inline) keeps it together.
        let mut mem = acrobat_tensor::DeviceMem::new(1 << 12);
        let mut dfg = Dfg::new();
        for i in 0..2 {
            let x = dfg.ready_value(mem.upload(&acrobat_tensor::Tensor::ones(&[2])).unwrap());
            let (_, o) = dfg.add_node(KernelId(0), i, 0, 0, 0, vec![x], 1);
            dfg.add_node(KernelId(1), i, 1, 0, 0, vec![o[0]], 1);
        }
        for i in 2..4 {
            let x = dfg.ready_value(mem.upload(&acrobat_tensor::Tensor::ones(&[2])).unwrap());
            // Ghost bump applied by ACROBAT: depth 1 instead of 0.
            dfg.add_node(KernelId(1), i, 1, 0, 0, vec![x], 1);
        }
        // Inline depth with the ghost bump: opB all at depth 1 → one batch.
        let p = plan(SchedulerKind::InlineDepth, &dfg);
        let opb: Vec<_> = p
            .batches
            .iter()
            .filter(|b| b.iter().any(|id| dfg.node(*id).kernel == KernelId(1)))
            .collect();
        assert_eq!(opb.len(), 1);
        assert_eq!(opb[0].len(), 4);

        // Dynamic depth (recomputed: topology says the direct opBs are depth
        // 0) splits opB into two launches — the Fig. 4 upper-pane schedule.
        let pd = plan(SchedulerKind::DynamicDepth, &dfg);
        let opb: Vec<_> = pd
            .batches
            .iter()
            .filter(|b| b.iter().any(|id| dfg.node(*id).kernel == KernelId(1)))
            .collect();
        assert_eq!(opb.len(), 2);
    }
}
