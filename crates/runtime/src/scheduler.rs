//! Dynamic-batching schedulers.
//!
//! Given the pending nodes of a [`Dfg`], a scheduler produces an ordered
//! list of *batches* — sets of nodes that launch as one batched kernel.
//! All three schedulers respect dependences (G.1) and try to maximize batch
//! sizes (G.2); they differ in how much work they do and how well they
//! exploit the statically-provided metadata:
//!
//! * [`SchedulerKind::InlineDepth`] — ACROBAT (§4.1): depths and phases were
//!   computed during DFG construction by AOT-generated code, so scheduling
//!   degenerates to a sort-based grouping by `(phase, depth, kernel,
//!   shared_sig)`.
//! * [`SchedulerKind::DynamicDepth`] — DyNet's depth scheme: topological
//!   depths are recomputed from the graph at flush time, and there are no
//!   phases — the eager-batching pathologies of Fig. 4 / §B.3 apply.
//! * [`SchedulerKind::Agenda`] — DyNet's agenda scheme: iteratively pick the
//!   available kernel class with the smallest average depth and batch
//!   everything available of that class.  Better batches than the depth
//!   scheme in irregular graphs, at a higher per-node cost.
//!
//! # The flush hot path
//!
//! Scheduling runs on every flush, so it is written to be allocation-free
//! in steady state: all working storage lives in a [`SchedulerScratch`] and
//! the emitted [`Plan`] uses flat storage, both reused across flushes via
//! [`plan_into`].  The implementations avoid keyed `BTreeMap`s entirely —
//! grouping is a single unstable sort over packed integer keys, and the
//! agenda loop maintains per-class ready sets and depth sums incrementally
//! instead of rescanning every remaining node each round.
//!
//! # The decisions contract
//!
//! [`Plan::decisions`] counts the *elementary decisions of the modeled
//! algorithm* (bucket inserts, per-arg dependence probes, per-round
//! agenda scans), not the operations this implementation happens to
//! execute.  The optimized schedulers charge exactly what the straight
//! transcriptions in [`reference`] charge — equality is enforced by tests —
//! so the Table 4/5/8 host-overhead accounts are unaffected by this
//! module's own speed.  See DESIGN.md ("Runtime flush hot path").

use serde::{Deserialize, Serialize};

use crate::dfg::{Dfg, NodeId};

/// Which scheduling algorithm the runtime uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// ACROBAT's inline depth computation (§4.1).
    InlineDepth,
    /// DyNet-style dynamic depth-based batching.
    DynamicDepth,
    /// DyNet-style agenda-based batching.
    Agenda,
}

/// A scheduling plan: ordered batches plus the number of elementary
/// scheduling decisions taken (for the host-overhead account).
///
/// Batches are stored flat — one `Vec<NodeId>` of concatenated batches plus
/// an offsets table — so planning performs O(1) allocations regardless of
/// how many batches it emits, and none at all when the plan is reused
/// through [`plan_into`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Plan {
    /// Concatenated batch contents, in launch order.  Crate-visible so
    /// [`crate::plan_cache`] can freeze plans into window-relative
    /// coordinates and remap them back without copying through batches.
    pub(crate) nodes: Vec<NodeId>,
    /// Batch `b` is `nodes[offsets[b] as usize..offsets[b + 1] as usize]`.
    pub(crate) offsets: Vec<u32>,
    /// Elementary decisions performed (bucket inserts, heap ops, scans).
    pub decisions: u64,
}

impl Plan {
    /// Empties the plan, retaining capacity for reuse.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.offsets.clear();
        self.decisions = 0;
    }

    /// Number of batches.
    pub fn num_batches(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total nodes across all batches.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The nodes of batch `b`, in launch order.
    ///
    /// # Panics
    ///
    /// Panics if `b >= self.num_batches()`.
    pub fn batch(&self, b: usize) -> &[NodeId] {
        &self.nodes[self.offsets[b] as usize..self.offsets[b + 1] as usize]
    }

    /// Iterates over batches in launch order.
    pub fn batches(&self) -> impl Iterator<Item = &[NodeId]> + '_ {
        self.offsets.windows(2).map(|w| &self.nodes[w[0] as usize..w[1] as usize])
    }

    /// Builds a plan from per-batch vectors (reference implementations and
    /// tests; the hot path uses [`Plan::begin`]/[`Plan::push_batch`]).
    pub fn from_batches(batches: Vec<Vec<NodeId>>, decisions: u64) -> Plan {
        let mut plan = Plan::default();
        plan.begin();
        for b in &batches {
            plan.push_batch(b.iter().copied());
        }
        plan.decisions = decisions;
        plan
    }

    /// Batch partitions as owned vectors (test/diagnostic convenience).
    pub fn to_batches(&self) -> Vec<Vec<NodeId>> {
        self.batches().map(|b| b.to_vec()).collect()
    }

    /// Clears and opens the plan for batch emission.
    fn begin(&mut self) {
        self.clear();
        self.offsets.push(0);
    }

    /// Appends one batch.
    fn push_batch(&mut self, ids: impl IntoIterator<Item = NodeId>) {
        self.nodes.extend(ids);
        debug_assert!(self.nodes.len() < u32::MAX as usize, "plan overflow");
        debug_assert!(
            self.offsets.last().is_some_and(|&o| (o as usize) < self.nodes.len()),
            "empty batch emitted"
        );
        self.offsets.push(self.nodes.len() as u32);
    }
}

/// Reusable scheduler working memory.  Keeping one of these alive across
/// flushes (as [`crate::ExecutionContext`] does) makes steady-state planning
/// allocation-free: every vector is cleared, never dropped.
#[derive(Debug, Default)]
pub struct SchedulerScratch {
    /// Per dense position, the packed `(key, shared_sig)` grouping key.
    keys: Vec<(u128, u64)>,
    /// Per dense position, its discovered group index.
    node_group: Vec<u32>,
    /// Per discovered group, its grouping key.
    group_keys: Vec<(u128, u64)>,
    /// Per discovered group, its member count.
    group_counts: Vec<u32>,
    /// Group indices sorted by key (batch launch order).
    group_order: Vec<u32>,
    /// Per group, the write cursor during batch emission.
    group_cursor: Vec<u32>,
    /// Open-addressing key→group table; valid iff the stamp matches.
    table: Vec<u32>,
    /// Epoch stamps for `table`.
    table_stamp: Vec<u32>,
    /// Current `table` epoch.
    table_epoch: u32,
    /// Pending ids, sorted ascending (== creation/topological order).
    ids: Vec<NodeId>,
    /// Node id → dense position in `ids`; valid iff `stamp[id] == epoch`.
    pos: Vec<u32>,
    /// Epoch stamps validating `pos` without O(nodes) clearing per flush.
    stamp: Vec<u32>,
    /// Current epoch.
    epoch: u32,
    /// Topological depth per dense position.
    depths: Vec<u64>,
    /// Unmet pending-dependence count per dense position (agenda).
    indegree: Vec<u32>,
    /// Kernel-class index per dense position (agenda).
    class_of: Vec<u32>,
    /// Sum of depths of currently-ready nodes per class (agenda).
    class_sum: Vec<u128>,
    /// Ready dense positions per class (agenda); pooled across flushes.
    class_ready: Vec<Vec<u32>>,
    /// CSR offsets of the pending-consumer adjacency (agenda).
    cons_start: Vec<u32>,
    /// CSR edge targets, as dense positions (agenda).
    consumers: Vec<u32>,
    /// Batch under construction (agenda).
    batch_tmp: Vec<u32>,
}

impl SchedulerScratch {
    /// Creates empty scratch.
    pub fn new() -> SchedulerScratch {
        SchedulerScratch::default()
    }

    /// Starts a new epoch covering node ids `0..universe`.
    fn begin_epoch(&mut self, universe: usize) {
        if self.pos.len() < universe {
            self.pos.resize(universe, 0);
            self.stamp.resize(universe, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: stale stamps could collide; reset once per 2³² flushes.
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
    }

    /// Collects pending ids in creation (topological) order and stamps
    /// their dense positions.  Returns the pending count.
    fn index_pending(&mut self, dfg: &Dfg) -> usize {
        self.ids.clear();
        self.ids.extend_from_slice(dfg.pending());
        // Pending ids are append-ordered between flushes, so this sort is
        // near-O(n) on the adaptive fast path; it restores topological
        // order unconditionally (completion swap-removes may shuffle).
        self.ids.sort_unstable();
        self.begin_epoch(dfg.node_count() as usize);
        for (i, &id) in self.ids.iter().enumerate() {
            self.pos[id.0 as usize] = i as u32;
            self.stamp[id.0 as usize] = self.epoch;
        }
        self.ids.len()
    }

    /// Dense position of `id` if it is pending in the current epoch.
    #[inline]
    fn pending_pos(&self, id: NodeId) -> Option<u32> {
        (self.stamp[id.0 as usize] == self.epoch).then(|| self.pos[id.0 as usize])
    }

    /// Computes topological depths over the pending subgraph into
    /// `self.depths`, charging `per_arg` decisions per argument probe and
    /// `per_node` per node, and returns the charge.
    fn pending_depths(&mut self, dfg: &Dfg, per_arg: u64, per_node: u64) -> u64 {
        let n = self.ids.len();
        self.depths.clear();
        self.depths.resize(n, 0);
        let mut decisions = 0u64;
        for i in 0..n {
            let node = dfg.node(self.ids[i]);
            let mut d = 0u64;
            for a in &node.args {
                decisions += per_arg;
                if let Some(p) = dfg.producer(*a) {
                    if let Some(pp) = self.pending_pos(p) {
                        d = d.max(self.depths[pp as usize] + 1);
                    }
                }
            }
            self.depths[i] = d;
            decisions += per_node;
        }
        decisions
    }

    /// Groups `self.keys` by equality with an epoch-stamped open-addressing
    /// table: fills `node_group`, `group_keys` and `group_counts`.  O(n)
    /// with no per-call allocation in steady state — unlike both a keyed
    /// map (per-node tree probes) and a full comparison sort (n·log n over
    /// all nodes), this costs one hash probe per node regardless of how
    /// few distinct keys there are.
    fn assign_groups(&mut self) {
        let n = self.keys.len();
        let cap = (2 * n.max(8)).next_power_of_two();
        if self.table.len() < cap {
            self.table = vec![0; cap];
            self.table_stamp = vec![0; cap];
        }
        let mask = self.table.len() - 1;
        self.table_epoch = self.table_epoch.wrapping_add(1);
        if self.table_epoch == 0 {
            self.table_stamp.iter_mut().for_each(|s| *s = 0);
            self.table_epoch = 1;
        }
        self.group_keys.clear();
        self.group_counts.clear();
        self.node_group.clear();
        for i in 0..n {
            let (k, s) = self.keys[i];
            let mut slot = hash_key(k, s) as usize & mask;
            let g = loop {
                if self.table_stamp[slot] != self.table_epoch {
                    self.table_stamp[slot] = self.table_epoch;
                    let g = self.group_keys.len() as u32;
                    self.table[slot] = g;
                    self.group_keys.push((k, s));
                    self.group_counts.push(0);
                    break g;
                }
                let g = self.table[slot];
                if self.group_keys[g as usize] == (k, s) {
                    break g;
                }
                slot = (slot + 1) & mask;
            };
            self.node_group.push(g);
            self.group_counts[g as usize] += 1;
        }
    }

    /// Sorts the discovered groups by key into `group_order` and fills
    /// `group_cursor` with each group's start offset in that order.
    /// Returns the total node count.
    fn order_groups(&mut self) -> usize {
        let g = self.group_keys.len();
        self.group_order.clear();
        self.group_order.extend(0..g as u32);
        let keys = &self.group_keys;
        self.group_order.sort_unstable_by_key(|&i| keys[i as usize]);
        self.group_cursor.clear();
        self.group_cursor.resize(g, 0);
        let mut start = 0u32;
        for &gi in &self.group_order {
            self.group_cursor[gi as usize] = start;
            start += self.group_counts[gi as usize];
        }
        start as usize
    }

    /// Emits the grouped nodes as batches in key order, preserving creation
    /// order within each batch (positions are iterated ascending).
    fn emit_groups(&mut self, out: &mut Plan) {
        let n = self.order_groups();
        out.nodes.resize(n, NodeId(0));
        for i in 0..n {
            let g = self.node_group[i] as usize;
            out.nodes[self.group_cursor[g] as usize] = self.ids[i];
            self.group_cursor[g] += 1;
        }
        let mut total = 0u32;
        for &gi in &self.group_order {
            total += self.group_counts[gi as usize];
            out.offsets.push(total);
        }
    }
}

/// Mixes a grouping key into a table hash (splitmix64 finalizer).
#[inline]
fn hash_key(k: u128, s: u64) -> u64 {
    let mut x =
        (k as u64) ^ ((k >> 64) as u64).rotate_left(29) ^ s.wrapping_mul(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Plans the execution of all currently pending nodes.
///
/// Convenience wrapper over [`plan_into`] that allocates fresh working
/// storage; hot paths should hold a [`SchedulerScratch`] and a [`Plan`] and
/// call [`plan_into`] to reuse them.
pub fn plan(kind: SchedulerKind, dfg: &Dfg) -> Plan {
    let mut scratch = SchedulerScratch::new();
    let mut out = Plan::default();
    plan_into(kind, dfg, &mut scratch, &mut out);
    out
}

/// Plans the execution of all currently pending nodes into `out`, reusing
/// `scratch` (zero steady-state allocations once capacities warm up).
pub fn plan_into(kind: SchedulerKind, dfg: &Dfg, scratch: &mut SchedulerScratch, out: &mut Plan) {
    out.begin();
    match kind {
        SchedulerKind::InlineDepth => plan_inline(dfg, scratch, out),
        SchedulerKind::DynamicDepth => plan_dynamic_depth(dfg, scratch, out),
        SchedulerKind::Agenda => plan_agenda(dfg, scratch, out),
    }
    canonicalize(dfg, out);
}

/// Re-orders every batch's members into the DFG's canonical window order
/// ([`Dfg::canon_pos`]), making the emitted plan invariant to the order in
/// which fiber lanes reached the DFG.
///
/// Batch-level structure is already interleave-invariant in all three
/// schedulers (bucket/group key sorts, deterministic agenda rounds with
/// exact tie-breaks); only *within-batch* member order followed arrival
/// order via `NodeId`s.  Members of one batch are mutually independent
/// (enforced by the checked mode's plan validation), so permuting them
/// never violates a dependence.  Outside lane-canonical mode
/// `canon_pos` is the identity over the window and the sort is a no-op,
/// keeping sequential plans byte-identical.
pub(crate) fn canonicalize(dfg: &Dfg, out: &mut Plan) {
    if !dfg.has_canonical_order() {
        return;
    }
    for b in 0..out.num_batches() {
        let (s, e) = (out.offsets[b] as usize, out.offsets[b + 1] as usize);
        out.nodes[s..e].sort_unstable_by_key(|&id| dfg.canon_pos(id));
    }
}

fn plan_inline(dfg: &Dfg, scratch: &mut SchedulerScratch, out: &mut Plan) {
    // The grouping by (phase, depth, kernel, shared operands) already
    // happened incrementally during DFG construction (the inline key is
    // static metadata — §4.1), so planning is: sort the non-empty buckets
    // by key, then emit each bucket's pending members in creation order.
    // The modeled algorithm still pays one bucket insert per node, so one
    // decision per emitted node.
    let buckets = dfg.inline_buckets();
    scratch.group_order.clear();
    for (bi, b) in buckets.iter().enumerate() {
        if b.pending > 0 {
            scratch.group_order.push(bi as u32);
        }
    }
    scratch.group_order.sort_unstable_by_key(|&bi| buckets[bi as usize].key);
    let mut decisions = 0u64;
    for &bi in &scratch.group_order {
        let b = &buckets[bi as usize];
        if b.pending as usize == b.ids.len() {
            out.nodes.extend_from_slice(&b.ids);
        } else {
            out.nodes.extend(b.ids.iter().copied().filter(|&id| dfg.is_pending(id)));
        }
        decisions += b.pending as u64;
        out.offsets.push(out.nodes.len() as u32);
    }
    out.decisions = decisions;
}

fn plan_dynamic_depth(dfg: &Dfg, scratch: &mut SchedulerScratch, out: &mut Plan) {
    // Recompute topological depths over the pending subgraph, then group by
    // (depth, kernel, shared operands).  Dense position-indexed vectors and
    // the O(n) hash grouper replace the keyed maps of the first
    // implementation.
    let n = scratch.index_pending(dfg);
    let mut decisions = scratch.pending_depths(dfg, 1, 1);
    scratch.keys.clear();
    for i in 0..n {
        let node = dfg.node(scratch.ids[i]);
        scratch
            .keys
            .push((((scratch.depths[i] as u128) << 32) | node.kernel.0 as u128, node.shared_sig));
        decisions += 1;
    }
    scratch.assign_groups();
    scratch.emit_groups(out);
    out.decisions = decisions;
}

fn plan_agenda(dfg: &Dfg, scratch: &mut SchedulerScratch, out: &mut Plan) {
    let n = scratch.index_pending(dfg);
    // Topological depths (used by the average-depth heuristic); the modeled
    // algorithm charges one decision per argument probe.
    let mut decisions = scratch.pending_depths(dfg, 1, 0);

    // Assign kernel classes by (kernel, shared_sig) via the hash grouper,
    // then rank the classes by key (`order_groups`) so class indices are
    // ascending in (kernel, shared_sig) — the deterministic tie-break below
    // is then "smallest class index wins".
    scratch.keys.clear();
    for i in 0..n {
        let node = dfg.node(scratch.ids[i]);
        scratch.keys.push((node.kernel.0 as u128, node.shared_sig));
    }
    scratch.assign_groups();
    scratch.order_groups();
    // Rank of each discovered group in key order; reuse `group_cursor`'s
    // sibling storage (`group_counts` is still needed, `group_cursor` not).
    for (rank, &gi) in scratch.group_order.iter().enumerate() {
        scratch.group_cursor[gi as usize] = rank as u32;
    }
    scratch.class_of.clear();
    for i in 0..n {
        scratch.class_of.push(scratch.group_cursor[scratch.node_group[i] as usize]);
    }
    let num_classes = scratch.group_keys.len() as u32;

    // Build the pending-consumer adjacency (CSR) and unmet-dependence
    // counts: one edge per (pending producer → consumer) argument.
    scratch.indegree.clear();
    scratch.indegree.resize(n, 0);
    scratch.cons_start.clear();
    scratch.cons_start.resize(n + 1, 0);
    for i in 0..n {
        for a in &dfg.node(scratch.ids[i]).args {
            if let Some(p) = dfg.producer(*a) {
                if let Some(pp) = scratch.pending_pos(p) {
                    scratch.cons_start[pp as usize + 1] += 1;
                    scratch.indegree[i] += 1;
                }
            }
        }
    }
    for i in 0..n {
        scratch.cons_start[i + 1] += scratch.cons_start[i];
    }
    scratch.consumers.clear();
    scratch.consumers.resize(scratch.cons_start[n] as usize, 0);
    // Fill edges using the offsets as cursors; a reverse pass restores them.
    for i in 0..n {
        for a in &dfg.node(scratch.ids[i]).args {
            if let Some(p) = dfg.producer(*a) {
                if let Some(pp) = scratch.pending_pos(p) {
                    let cursor = &mut scratch.cons_start[pp as usize];
                    scratch.consumers[*cursor as usize] = i as u32;
                    *cursor += 1;
                }
            }
        }
    }
    for i in (1..=n).rev() {
        scratch.cons_start[i] = scratch.cons_start[i - 1];
    }
    scratch.cons_start[0] = 0;

    // Per-class ready sets and depth sums, maintained incrementally.
    for ready in &mut scratch.class_ready {
        ready.clear();
    }
    scratch.class_ready.resize_with(num_classes as usize, Vec::new);
    scratch.class_sum.clear();
    scratch.class_sum.resize(num_classes as usize, 0);
    for i in 0..n {
        if scratch.indegree[i] == 0 {
            let c = scratch.class_of[i] as usize;
            scratch.class_ready[c].push(i as u32);
            scratch.class_sum[c] += scratch.depths[i] as u128;
        }
    }

    let mut remaining = n;
    while remaining > 0 {
        // The modeled algorithm scans every remaining node per round to
        // rebuild availability; charge that scan without performing it.
        decisions += remaining as u64;

        // Pick the ready class with the smallest average depth (DyNet's
        // agenda heuristic: prefer shallow work to unlock parallelism).
        // Exact integer comparison (sum_a/len_a < sum_b/len_b ⇔
        // sum_a·len_b < sum_b·len_a) with ties broken by the smallest
        // (kernel, shared_sig) — i.e. smallest class index — makes the
        // choice deterministic and float-free.
        let mut best: Option<usize> = None;
        for c in 0..num_classes as usize {
            let len = scratch.class_ready[c].len() as u128;
            if len == 0 {
                continue;
            }
            best = match best {
                None => Some(c),
                Some(b) => {
                    let blen = scratch.class_ready[b].len() as u128;
                    if scratch.class_sum[c] * blen < scratch.class_sum[b] * len {
                        Some(c)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        let best = best.expect("pending nodes imply an available class");

        scratch.batch_tmp.clear();
        std::mem::swap(&mut scratch.batch_tmp, &mut scratch.class_ready[best]);
        scratch.class_sum[best] = 0;
        decisions += scratch.batch_tmp.len() as u64;
        // Emit in creation order (dense positions are id-ordered).
        scratch.batch_tmp.sort_unstable();
        out.push_batch(scratch.batch_tmp.iter().map(|&p| scratch.ids[p as usize]));
        remaining -= scratch.batch_tmp.len();

        // Retire the batch: newly dependence-free consumers enter their
        // class's ready set.
        for bi in 0..scratch.batch_tmp.len() {
            let p = scratch.batch_tmp[bi] as usize;
            for e in scratch.cons_start[p]..scratch.cons_start[p + 1] {
                let consumer = scratch.consumers[e as usize] as usize;
                scratch.indegree[consumer] -= 1;
                if scratch.indegree[consumer] == 0 {
                    let c = scratch.class_of[consumer] as usize;
                    scratch.class_ready[c].push(consumer as u32);
                    scratch.class_sum[c] += scratch.depths[consumer] as u128;
                }
            }
        }
    }
    out.decisions = decisions;
}

/// Reusable per-batch dependency-level computation over a [`Plan`].
///
/// Two batches at the same level are independent: level is the longest
/// producer chain among the plan's batches (a batch consuming another
/// batch's output sits at least one level deeper).  The device timeline
/// uses levels only implicitly (it tracks per-value completion events);
/// the *real* parallel executor uses them to find runs of batches that may
/// execute concurrently, and tests use them to cross-check both.
///
/// Like [`SchedulerScratch`], instances are reusable: all storage is
/// retained across calls, so steady-state computation is allocation-free.
#[derive(Debug, Default)]
pub struct BatchLevels {
    /// Node id → batch index; valid iff `stamp[id] == epoch`.
    batch_of: Vec<u32>,
    /// Epoch stamps validating `batch_of`.
    stamp: Vec<u32>,
    /// Current epoch.
    epoch: u32,
    /// Per-batch dependency level (output of [`BatchLevels::compute`]).
    levels: Vec<u32>,
}

impl BatchLevels {
    /// Creates empty scratch.
    pub fn new() -> BatchLevels {
        BatchLevels::default()
    }

    /// Computes the dependency level of every batch in `plan`.
    ///
    /// Must run while the plan's nodes are still pending in `dfg`
    /// (producers of completed values are invisible, which is exactly the
    /// cross-flush semantics we want: values completed by earlier flushes
    /// are ready and impose no ordering).
    pub fn compute(&mut self, dfg: &Dfg, plan: &Plan) {
        let universe = dfg.node_count() as usize;
        if self.batch_of.len() < universe {
            self.batch_of.resize(universe, 0);
            self.stamp.resize(universe, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
        for (b, batch) in plan.batches().enumerate() {
            for &id in batch {
                self.batch_of[id.0 as usize] = b as u32;
                self.stamp[id.0 as usize] = self.epoch;
            }
        }
        self.levels.clear();
        for batch in plan.batches() {
            // Plans are emitted in dependence order, so every producer
            // batch of `batch` already has its level.
            let mut level = 0u32;
            for &id in batch {
                for a in &dfg.node(id).args {
                    if let Some(p) = dfg.producer(*a) {
                        let pi = p.0 as usize;
                        if self.stamp[pi] == self.epoch {
                            let pb = self.batch_of[pi] as usize;
                            debug_assert!(pb < self.levels.len(), "plan not topo-ordered");
                            level = level.max(self.levels[pb] + 1);
                        }
                    }
                }
            }
            self.levels.push(level);
        }
    }

    /// Per-batch levels from the last [`BatchLevels::compute`].
    pub fn levels(&self) -> &[u32] {
        &self.levels
    }
}

/// Straight transcriptions of the original (seed) scheduler algorithms,
/// retained as the behavioral reference: the optimized implementations must
/// produce the same batch partitions and charge the same decision counts.
/// Used by equivalence tests and the `flush_hot_path` benchmark; not on any
/// hot path.
pub mod reference {
    use std::collections::{BTreeMap, BTreeSet};

    use super::{Plan, SchedulerKind};
    use crate::dfg::{Dfg, NodeId};

    /// Plans with the reference implementation of `kind`.  The canonical
    /// within-batch reorder is part of the scheduling contract, so the
    /// reference applies the same post-pass as [`super::plan_into`].
    pub fn plan(kind: SchedulerKind, dfg: &Dfg) -> Plan {
        let mut p = match kind {
            SchedulerKind::InlineDepth => plan_inline(dfg),
            SchedulerKind::DynamicDepth => plan_dynamic_depth(dfg),
            SchedulerKind::Agenda => plan_agenda(dfg),
        };
        super::canonicalize(dfg, &mut p);
        p
    }

    fn sorted_pending(dfg: &Dfg) -> Vec<NodeId> {
        let mut pending = dfg.pending().to_vec();
        // The seed implementation relied on `Dfg::pending()` being in
        // creation order, which held because completions were order-stable;
        // the swap-remove pending set only guarantees it between flushes,
        // so restore creation order explicitly.
        pending.sort_unstable();
        pending
    }

    /// Seed bucket sort by `(phase, depth, kernel, shared_sig)`.
    pub fn plan_inline(dfg: &Dfg) -> Plan {
        let mut buckets: BTreeMap<(u32, u64, u32, u64), Vec<NodeId>> = BTreeMap::new();
        let mut decisions = 0u64;
        for id in sorted_pending(dfg) {
            let n = dfg.node(id);
            buckets.entry((n.phase, n.depth, n.kernel.0, n.shared_sig)).or_default().push(id);
            decisions += 1;
        }
        Plan::from_batches(buckets.into_values().collect(), decisions)
    }

    /// Seed dynamic-depth scheduler with `BTreeMap` bookkeeping.
    pub fn plan_dynamic_depth(dfg: &Dfg) -> Plan {
        let pending = sorted_pending(dfg);
        let pending_set: BTreeSet<NodeId> = pending.iter().copied().collect();
        let mut depth: BTreeMap<NodeId, u64> = BTreeMap::new();
        let mut decisions = 0u64;
        for &id in &pending {
            let n = dfg.node(id);
            let mut d = 0u64;
            for a in &n.args {
                decisions += 1;
                if let Some(p) = dfg.producer(*a) {
                    if pending_set.contains(&p) {
                        d = d.max(depth.get(&p).copied().unwrap_or(0) + 1);
                    }
                }
            }
            depth.insert(id, d);
            decisions += 1;
        }
        let mut buckets: BTreeMap<(u64, u32, u64), Vec<NodeId>> = BTreeMap::new();
        for &id in &pending {
            let n = dfg.node(id);
            buckets.entry((depth[&id], n.kernel.0, n.shared_sig)).or_default().push(id);
            decisions += 1;
        }
        Plan::from_batches(buckets.into_values().collect(), decisions)
    }

    /// Seed agenda scheduler (per-round rescans), with the deterministic
    /// exact-arithmetic tie-break: smallest average depth, ties to the
    /// smallest `(kernel, shared_sig)`.  The original `min_by` over
    /// recomputed `f64` averages resolved ties by map-iteration accident
    /// and repeated the averaging per comparison.
    pub fn plan_agenda(dfg: &Dfg) -> Plan {
        let pending = sorted_pending(dfg);
        let pending_set: BTreeSet<NodeId> = pending.iter().copied().collect();
        let mut decisions = 0u64;

        let mut depth: BTreeMap<NodeId, u64> = BTreeMap::new();
        for &id in &pending {
            let n = dfg.node(id);
            let mut d = 0u64;
            for a in &n.args {
                if let Some(p) = dfg.producer(*a) {
                    if pending_set.contains(&p) {
                        d = d.max(depth.get(&p).copied().unwrap_or(0) + 1);
                    }
                }
                decisions += 1;
            }
            depth.insert(id, d);
        }

        let mut done: BTreeSet<NodeId> = BTreeSet::new();
        let mut batches = Vec::new();
        let mut remaining: Vec<NodeId> = pending.clone();
        while !remaining.is_empty() {
            let mut available: BTreeMap<(u32, u64), Vec<NodeId>> = BTreeMap::new();
            for &id in &remaining {
                decisions += 1;
                let n = dfg.node(id);
                let ready = n.args.iter().all(|a| match dfg.producer(*a) {
                    Some(p) => !pending_set.contains(&p) || done.contains(&p),
                    None => true,
                });
                if ready {
                    available.entry((n.kernel.0, n.shared_sig)).or_default().push(id);
                }
            }
            // Smallest average depth; BTreeMap iteration is (kernel, sig)
            // ascending, and strict-less keeps the first minimum, so ties
            // resolve to the smallest (kernel, shared_sig).
            let mut best: Option<((u32, u64), u128, u128)> = None;
            for (&class, nodes) in &available {
                let sum: u128 = nodes.iter().map(|id| depth[id] as u128).sum();
                let len = nodes.len() as u128;
                best = match best {
                    None => Some((class, sum, len)),
                    Some((bc, bsum, blen)) => {
                        if sum * blen < bsum * len {
                            Some((class, sum, len))
                        } else {
                            Some((bc, bsum, blen))
                        }
                    }
                };
            }
            let (class, _, _) = best.expect("pending nodes imply availability");
            let batch = available.remove(&class).expect("chosen class exists");
            decisions += batch.len() as u64;
            for &id in &batch {
                done.insert(id);
            }
            remaining.retain(|id| !done.contains(id));
            batches.push(batch);
        }
        Plan::from_batches(batches, decisions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acrobat_codegen::KernelId;

    /// Builds a DFG of `instances` chains: in0 → k0 → k1 (same kernels
    /// across instances), with inline depths/phases set as ACROBAT would.
    fn chain_dfg(instances: usize) -> Dfg {
        let mut mem = acrobat_tensor::DeviceMem::new(1 << 12);
        let mut dfg = Dfg::new();
        for i in 0..instances {
            let x = dfg.ready_value(mem.upload(&acrobat_tensor::Tensor::ones(&[2])).unwrap());
            let (_, o1) = dfg.add_node(KernelId(0), i, 0, 0, 0, vec![x], 1);
            dfg.add_node(KernelId(1), i, 1, 0, 0, vec![o1[0]], 1);
        }
        dfg
    }

    fn batch_respects_deps(dfg: &Dfg, plan: &Plan) {
        let mut done = std::collections::BTreeSet::new();
        for batch in plan.batches() {
            for &id in batch {
                for a in &dfg.node(id).args {
                    if let Some(p) = dfg.producer(*a) {
                        assert!(done.contains(&p), "dependency violated");
                    }
                }
            }
            for &id in batch {
                done.insert(id);
            }
        }
        assert_eq!(done.len(), dfg.pending().len(), "all nodes scheduled");
    }

    #[test]
    fn inline_batches_across_instances() {
        let dfg = chain_dfg(8);
        let p = plan(SchedulerKind::InlineDepth, &dfg);
        assert_eq!(p.num_batches(), 2, "two depth levels → two launches");
        assert_eq!(p.batch(0).len(), 8);
        batch_respects_deps(&dfg, &p);
    }

    #[test]
    fn dynamic_depth_matches_on_chains() {
        let dfg = chain_dfg(8);
        let p = plan(SchedulerKind::DynamicDepth, &dfg);
        assert_eq!(p.num_batches(), 2);
        batch_respects_deps(&dfg, &p);
        // …but it does more work per node than inline.
        let pi = plan(SchedulerKind::InlineDepth, &dfg);
        assert!(p.decisions > pi.decisions);
    }

    #[test]
    fn agenda_matches_on_chains_with_more_decisions() {
        let dfg = chain_dfg(8);
        let p = plan(SchedulerKind::Agenda, &dfg);
        assert_eq!(p.num_batches(), 2);
        batch_respects_deps(&dfg, &p);
        let pd = plan(SchedulerKind::DynamicDepth, &dfg);
        assert!(p.decisions > pd.decisions);
    }

    #[test]
    fn scratch_reuse_matches_fresh_plans() {
        let mut scratch = SchedulerScratch::new();
        let mut out = Plan::default();
        for instances in [1, 3, 8, 17] {
            let dfg = chain_dfg(instances);
            for kind in
                [SchedulerKind::InlineDepth, SchedulerKind::DynamicDepth, SchedulerKind::Agenda]
            {
                plan_into(kind, &dfg, &mut scratch, &mut out);
                let fresh = plan(kind, &dfg);
                assert_eq!(out.to_batches(), fresh.to_batches(), "{kind:?} x{instances}");
                assert_eq!(out.decisions, fresh.decisions, "{kind:?} x{instances}");
            }
        }
    }

    #[test]
    fn phases_keep_output_ops_together() {
        // Two instances with different-length chains feeding a common
        // output kernel.  With phases, the output ops batch together even
        // though their inline depths differ only by phase.
        let mut mem = acrobat_tensor::DeviceMem::new(1 << 12);
        let mut dfg = Dfg::new();
        for (i, len) in [1u64, 3].iter().enumerate() {
            let mut v = dfg.ready_value(mem.upload(&acrobat_tensor::Tensor::ones(&[2])).unwrap());
            for d in 0..*len {
                let (_, o) = dfg.add_node(KernelId(0), i, d, 0, 0, vec![v], 1);
                v = o[0];
            }
            // Phase-2 output op: depth restarts per phase semantics are
            // emulated by the AOT code assigning phase-local depths.
            dfg.add_node(KernelId(1), i, 0, 1, 0, vec![v], 1);
        }
        let p = plan(SchedulerKind::InlineDepth, &dfg);
        // Output ops form ONE batch (same phase, same depth, same kernel).
        let out_batches: Vec<_> = p
            .batches()
            .filter(|b| b.iter().any(|id| dfg.node(*id).kernel == KernelId(1)))
            .collect();
        assert_eq!(out_batches.len(), 1);
        assert_eq!(out_batches[0].len(), 2);
        batch_respects_deps(&dfg, &p);

        // The dynamic-depth scheduler (no phases) splits them.
        let pd = plan(SchedulerKind::DynamicDepth, &dfg);
        let out_batches: Vec<_> = pd
            .batches()
            .filter(|b| b.iter().any(|id| dfg.node(*id).kernel == KernelId(1)))
            .collect();
        assert_eq!(out_batches.len(), 2, "no phases → split output batches");
    }

    #[test]
    fn agenda_beats_dynamic_depth_on_fig4_shape() {
        // Fig. 4: two instances run opA (kernel 0) then opB (kernel 1); two
        // others run opB directly.  Depth batching splits opB; agenda
        // scheduling (and ghost ops under inline) keeps it together.
        let mut mem = acrobat_tensor::DeviceMem::new(1 << 12);
        let mut dfg = Dfg::new();
        for i in 0..2 {
            let x = dfg.ready_value(mem.upload(&acrobat_tensor::Tensor::ones(&[2])).unwrap());
            let (_, o) = dfg.add_node(KernelId(0), i, 0, 0, 0, vec![x], 1);
            dfg.add_node(KernelId(1), i, 1, 0, 0, vec![o[0]], 1);
        }
        for i in 2..4 {
            let x = dfg.ready_value(mem.upload(&acrobat_tensor::Tensor::ones(&[2])).unwrap());
            // Ghost bump applied by ACROBAT: depth 1 instead of 0.
            dfg.add_node(KernelId(1), i, 1, 0, 0, vec![x], 1);
        }
        // Inline depth with the ghost bump: opB all at depth 1 → one batch.
        let p = plan(SchedulerKind::InlineDepth, &dfg);
        let opb: Vec<_> = p
            .batches()
            .filter(|b| b.iter().any(|id| dfg.node(*id).kernel == KernelId(1)))
            .collect();
        assert_eq!(opb.len(), 1);
        assert_eq!(opb[0].len(), 4);

        // Dynamic depth (recomputed: topology says the direct opBs are depth
        // 0) splits opB into two launches — the Fig. 4 upper-pane schedule.
        let pd = plan(SchedulerKind::DynamicDepth, &dfg);
        let opb: Vec<_> = pd
            .batches()
            .filter(|b| b.iter().any(|id| dfg.node(*id).kernel == KernelId(1)))
            .collect();
        assert_eq!(opb.len(), 2);
    }

    #[test]
    fn agenda_tie_break_is_deterministic() {
        // Four independent nodes, two classes, identical depths: the
        // average-depth heuristic ties, and the batch order must resolve by
        // (kernel, shared_sig) ascending — not map-iteration accident.
        let mut mem = acrobat_tensor::DeviceMem::new(1 << 12);
        let mut dfg = Dfg::new();
        // Interleave creation order so it cannot mask the tie-break.
        for (kernel, sig) in [(3u32, 5u64), (1, 9), (3, 5), (1, 9)] {
            let x = dfg.ready_value(mem.upload(&acrobat_tensor::Tensor::ones(&[2])).unwrap());
            dfg.add_node(KernelId(kernel), 0, 0, 0, sig, vec![x], 1);
        }
        for _ in 0..4 {
            let p = plan(SchedulerKind::Agenda, &dfg);
            assert_eq!(p.num_batches(), 2);
            // Kernel 1 first (smaller class key), then kernel 3.
            assert!(p.batch(0).iter().all(|id| dfg.node(*id).kernel == KernelId(1)));
            assert!(p.batch(1).iter().all(|id| dfg.node(*id).kernel == KernelId(3)));
            // Within a batch: creation order.
            assert!(p.batch(0).windows(2).all(|w| w[0] < w[1]));
            let r = reference::plan(SchedulerKind::Agenda, &dfg);
            assert_eq!(p.to_batches(), r.to_batches());
        }
    }

    #[test]
    fn batch_levels_respect_dependences() {
        let dfg = chain_dfg(8);
        for kind in [SchedulerKind::InlineDepth, SchedulerKind::DynamicDepth, SchedulerKind::Agenda]
        {
            let p = plan(kind, &dfg);
            let mut lv = BatchLevels::new();
            lv.compute(&dfg, &p);
            assert_eq!(lv.levels().len(), p.num_batches());
            // Chain DFG: first launch level 0, dependent second launch 1.
            assert_eq!(lv.levels(), &[0, 1], "{kind:?}");
            // Reuse across plans gives identical results.
            lv.compute(&dfg, &p);
            assert_eq!(lv.levels(), &[0, 1], "{kind:?} reuse");
        }
    }

    #[test]
    fn independent_batches_share_a_level() {
        let mut mem = acrobat_tensor::DeviceMem::new(1 << 12);
        let mut dfg = Dfg::new();
        // Two independent kernel classes → two batches, both level 0.
        for kernel in [0u32, 1] {
            for i in 0..3 {
                let x = dfg.ready_value(mem.upload(&acrobat_tensor::Tensor::ones(&[2])).unwrap());
                dfg.add_node(KernelId(kernel), i, 0, 0, 0, vec![x], 1);
            }
        }
        let p = plan(SchedulerKind::InlineDepth, &dfg);
        assert_eq!(p.num_batches(), 2);
        let mut lv = BatchLevels::new();
        lv.compute(&dfg, &p);
        assert_eq!(lv.levels(), &[0, 0]);
    }

    #[test]
    fn lane_mode_batches_emit_in_canonical_order() {
        // The same four independent single-node lanes appended in different
        // arrival orders must emit the batch in the same (canonical)
        // instance sequence — and the optimized and reference schedulers
        // must agree on it.
        let build = |order: &[usize]| -> Vec<usize> {
            let mut mem = acrobat_tensor::DeviceMem::new(1 << 12);
            let mut dfg = Dfg::new();
            dfg.set_signature_tracking(true);
            dfg.set_lane_canonical(true);
            let x = dfg.ready_value(mem.upload(&acrobat_tensor::Tensor::ones(&[2])).unwrap());
            for &i in order {
                dfg.add_node(KernelId(0), i, 0, 0, 0, vec![x], 1);
            }
            dfg.window_signature().expect("clean window");
            for kind in
                [SchedulerKind::InlineDepth, SchedulerKind::DynamicDepth, SchedulerKind::Agenda]
            {
                let p = plan(kind, &dfg);
                let r = reference::plan(kind, &dfg);
                assert_eq!(p.to_batches(), r.to_batches(), "{kind:?}");
            }
            let p = plan(SchedulerKind::InlineDepth, &dfg);
            assert_eq!(p.num_batches(), 1);
            p.batch(0).iter().map(|&id| dfg.node(id).instance).collect()
        };
        let canonical = build(&[0, 1, 2, 3]);
        assert_eq!(canonical, build(&[3, 1, 2, 0]));
        assert_eq!(canonical, build(&[2, 3, 0, 1]));
    }

    #[test]
    fn optimized_matches_reference_on_fixtures() {
        for instances in [1, 2, 8, 13] {
            let dfg = chain_dfg(instances);
            for kind in
                [SchedulerKind::InlineDepth, SchedulerKind::DynamicDepth, SchedulerKind::Agenda]
            {
                let opt = plan(kind, &dfg);
                let refp = reference::plan(kind, &dfg);
                assert_eq!(opt.to_batches(), refp.to_batches(), "{kind:?} x{instances}");
                assert_eq!(opt.decisions, refp.decisions, "{kind:?} x{instances}");
            }
        }
    }
}
