//! The ACROBAT runtime: lazy DFG construction, dynamic batching, fibers and
//! a simulated accelerator.
//!
//! This is the dynamic half of the paper's hybrid static+dynamic design.
//! The AOT-compiled program (in `acrobat-vm`) executes per-instance and
//! *lazily* records tensor work as dataflow-graph nodes ([`dfg`]); when a
//! value is actually needed — at a tensor-dependent control-flow decision,
//! or at the end of the mini-batch — the runtime
//! [`ExecutionContext::flush`]es: the scheduler ([`scheduler`]) picks
//! batches of compatible nodes and each batch becomes one batched-kernel
//! launch on the simulated device ([`device`]).
//!
//! The execution stack is split for concurrent serving ([`engine`]): an
//! immutable `Send + Sync` [`Engine`] holds everything request-invariant
//! (kernel library, analysis, device model, options) and is `Arc`-shared;
//! each in-flight mini-batch owns a private [`ExecutionContext`] with all
//! mutable flush state, so the hot path takes no shared locks.
//!
//! Three schedulers are provided, matching the paper's comparison space:
//!
//! * [`scheduler::SchedulerKind::InlineDepth`] — ACROBAT's scheme (§4.1):
//!   depths were computed *while building* the DFG (by AOT-generated code),
//!   so scheduling is a near-free bucket sort by `(phase, depth, kernel)`;
//! * [`scheduler::SchedulerKind::DynamicDepth`] — DyNet's depth-based
//!   scheme: depths are recomputed from the graph topology at flush time;
//! * [`scheduler::SchedulerKind::Agenda`] — DyNet's agenda-based scheme:
//!   repeatedly pick the available kernel class with the lowest average
//!   depth; more parallelism-friendly, higher overhead.
//!
//! Tensor-dependent control flow is handled with fibers ([`fiber`]): all
//! instances of the mini-batch execute concurrently; when an instance needs
//! a tensor value it suspends; when no instance can make progress the DFG is
//! flushed and everyone resumes (§4.2, Fig. 3).  Fibers are realized as
//! cooperatively-coordinated OS threads — same semantics as the paper's
//! Boost fibers (many logical stacks, suspension at sync points), traded for
//! implementation simplicity; the *counts* the evaluation relies on (nodes,
//! launches, bytes) are unaffected.
//!
//! All device-side costs come from the analytical [`device::DeviceModel`]
//! (see DESIGN.md for the substitution rationale); host-side overheads (DFG
//! construction, scheduling) are charged per the per-event constants in the
//! model, and every raw count is also reported in [`stats::RuntimeStats`].

#![deny(missing_docs)]

pub mod check;
pub mod context;
pub mod device;
pub mod dfg;
pub mod engine;
pub mod fiber;
pub mod plan_cache;
pub mod resilience;
pub mod scheduler;
pub mod stats;
pub mod timeline;

pub use check::FlushChecker;
pub use context::ExecutionContext;
pub use device::DeviceModel;
pub use dfg::{lane, Dfg, NodeId, ValueId, WindowSig};
pub use engine::{ContextPool, Engine, RuntimeOptions};
pub use fiber::{DriveTimeout, FiberHub, JoinId};
pub use plan_cache::{CacheConfig, CacheOutcome, CachedPlan, PlanCache, PlanL1};
pub use resilience::{CancelToken, Deadline, RetryPolicy};
pub use scheduler::SchedulerKind;
pub use stats::RuntimeStats;
pub use timeline::{DeviceTimeline, TimelineOptions};
