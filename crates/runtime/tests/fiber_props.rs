//! Property tests driving the real [`FiberHub`] (OS threads, mutex,
//! condvar) with random fork-join trees and random suspension jitter, and
//! checking every run against the `hubsim` protocol enumerator:
//!
//! * the run terminates (a watchdog bounds the drive),
//! * the switch count equals the trace's sync-point count,
//! * the flush count equals the envelope `hubsim::exhaustive` proves over
//!   *all* interleavings of the trace — which the join-handoff protocol
//!   makes **exact** (`min == max`) on every trace, fork-join included, so
//!   real runs are asserted against a single schedule-independent count.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use acrobat_runtime::check::hubsim::{self, FiberOp};
use acrobat_runtime::{DriveTimeout, FiberHub, JoinId};
use proptest::prelude::*;

/// Runs one fiber's script on the current thread, forking children onto
/// new threads (registered before the parent suspends, per the protocol).
/// `group` is the fork-join group this fiber belongs to (`None` for
/// top-level fibers, which exit via `finish`).
fn run_script(hub: Arc<FiberHub>, script: Vec<FiberOp>, mut jitter: u64, group: Option<JoinId>) {
    for op in script {
        // Seeded scheduling noise: perturb the interleaving without
        // touching the protocol.
        jitter = jitter.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        for _ in 0..(jitter >> 60) & 3 {
            std::thread::yield_now();
        }
        match op {
            FiberOp::Wait => hub.wait_for_flush(),
            FiberOp::Fork(children) => {
                let g = hub.fork(children.len());
                let mut kids = Vec::new();
                for (j, child) in children.into_iter().enumerate() {
                    let h = Arc::clone(&hub);
                    let seed = jitter.wrapping_add(j as u64 + 1);
                    kids.push(std::thread::spawn(move || run_script(h, child, seed, Some(g))));
                }
                hub.join_while(g, || kids.into_iter().for_each(|k| k.join().unwrap()));
            }
        }
    }
    match group {
        Some(g) => hub.finish_child(g),
        None => hub.finish(),
    }
}

/// Executes the whole trace on real threads; returns (flushes, switches),
/// or the structured stall snapshot if the hub fails to reach quiescence
/// within the watchdog budget.  On a stall the hub is cancelled so every
/// fiber thread drains and joins before the error is reported — no threads
/// are leaked into later cases.
fn run_real(scripts: &[Vec<FiberOp>], jitter_seed: u64) -> Result<(u64, u64), DriveTimeout> {
    let hub = Arc::new(FiberHub::new());
    let flushes = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for (i, script) in scripts.iter().enumerate() {
        hub.register();
        let h = Arc::clone(&hub);
        let s = script.clone();
        let seed = jitter_seed.wrapping_add(i as u64).wrapping_mul(0x9E3779B97F4A7C15);
        handles.push(std::thread::spawn(move || run_script(h, s, seed, None)));
    }
    let driver = {
        let hub = Arc::clone(&hub);
        let flushes = Arc::clone(&flushes);
        std::thread::spawn(move || {
            hub.drive_timeout(
                || {
                    flushes.fetch_add(1, Ordering::SeqCst);
                },
                Some(Duration::from_secs(30)),
            )
        })
    };
    let drove = driver.join().unwrap();
    if drove.is_err() {
        // Drain parked fibers so their threads exit before we report.
        hub.cancel();
    }
    for h in handles {
        h.join().unwrap();
    }
    drove.map(|()| (flushes.load(Ordering::SeqCst), hub.switch_count()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn real_hub_stays_inside_enumerated_envelope(
        tree_seed in 0u64..1_000_000,
        fibers in 1usize..4,
        jitter_seed in 0u64..u64::MAX,
    ) {
        let scripts = hubsim::random_scripts(tree_seed, fibers, 3, 1);
        let predicted = match hubsim::exhaustive(&scripts, false) {
            Ok(p) => p,
            Err(e) => return Err(format!("protocol violation in model: {e}")),
        };
        let (flushes, switches) = run_real(&scripts, jitter_seed)
            .map_err(|stall| format!("hub failed to terminate: {stall}"))?;
        prop_assert_eq!(switches, predicted.switches);
        // The join-handoff protocol makes the envelope exact on every
        // trace, so the real run is held to a single count — the property
        // that makes fiber-mode window boundaries deterministic.
        prop_assert_eq!(
            predicted.flushes_min,
            predicted.flushes_max,
            "model envelope not exact for this trace"
        );
        prop_assert_eq!(flushes, predicted.exact_flushes());
    }

    #[test]
    fn fork_free_traces_have_exact_flush_counts(
        waits in proptest::collection::vec(0usize..5, 1..5),
        jitter_seed in 0u64..u64::MAX,
    ) {
        let scripts: Vec<Vec<FiberOp>> =
            waits.iter().map(|&n| vec![FiberOp::Wait; n]).collect();
        let predicted = hubsim::exhaustive(&scripts, false).unwrap();
        // Fork-free: flushes happen only at global quiescence, so the
        // count is schedule-independent — the max per-fiber wait count.
        prop_assert_eq!(predicted.exact_flushes(), *waits.iter().max().unwrap() as u64);
        let (flushes, switches) = run_real(&scripts, jitter_seed)
            .map_err(|stall| format!("hub failed to terminate: {stall}"))?;
        prop_assert_eq!(flushes, predicted.exact_flushes());
        prop_assert_eq!(switches, waits.iter().sum::<usize>() as u64);
    }
}
