//! Property tests: all three dynamic-batching schedulers produce complete,
//! dependence-respecting plans on arbitrary DAGs, and batches never mix
//! kernels or shared-operand signatures.

use acrobat_codegen::KernelId;
use acrobat_runtime::{scheduler, Dfg, SchedulerKind};
use acrobat_tensor::{DeviceMem, Tensor};
use proptest::prelude::*;

/// Builds a random DAG: `n` nodes; node i depends on a random subset of
/// earlier nodes (creation order is a topological order, as in the real
/// runtime — observation O.1).
fn random_dfg(n: usize, kernels: u32, edges: &[usize], sigs: &[u64]) -> Dfg {
    let mut mem = DeviceMem::new(1 << 16);
    let mut dfg = Dfg::new();
    let mut outputs = Vec::new();
    let mut depths: Vec<u64> = Vec::new();
    for i in 0..n {
        let mut args = Vec::new();
        let mut dep_depth = 0u64;
        if i > 0 {
            // Up to two dependencies on earlier nodes.
            for k in 0..2 {
                let pick = edges[(i * 2 + k) % edges.len()] % (i + 1);
                if pick < i {
                    args.push(outputs[pick]);
                    dep_depth = dep_depth.max(depths[pick] + 1);
                } else {
                    args.push(dfg.ready_value(mem.upload(&Tensor::ones(&[2])).unwrap()));
                }
            }
        } else {
            args.push(dfg.ready_value(mem.upload(&Tensor::ones(&[2])).unwrap()));
        }
        let kernel = KernelId((i as u32 * 7 + 3) % kernels);
        let sig = sigs[i % sigs.len()] % 3;
        // Inline depths must respect dependences — the AOT-generated code
        // guarantees this (observation O.1); mimic it here.
        let depth = dep_depth.max((i / 3) as u64);
        let (_, outs) = dfg.add_node(kernel, i % 4, depth, 0, sig, args, 1);
        depths.push(depth);
        outputs.push(outs[0]);
    }
    dfg
}

fn check_plan(dfg: &Dfg, kind: SchedulerKind) {
    let plan = scheduler::plan(kind, dfg);
    let mut done = std::collections::BTreeSet::new();
    let mut scheduled = 0usize;
    for batch in plan.batches() {
        assert!(!batch.is_empty());
        let first = dfg.node(batch[0]);
        for &id in batch {
            let n = dfg.node(id);
            // Batches are homogeneous in kernel and shared signature.
            assert_eq!(n.kernel, first.kernel, "{kind:?}: mixed kernels in a batch");
            assert_eq!(n.shared_sig, first.shared_sig, "{kind:?}: mixed shared operands");
            // Dependences already executed.
            for a in &n.args {
                if let Some(p) = dfg.producer(*a) {
                    assert!(done.contains(&p), "{kind:?}: dependence violated");
                }
            }
        }
        for &id in batch {
            assert!(done.insert(id), "{kind:?}: node scheduled twice");
            scheduled += 1;
        }
    }
    assert_eq!(scheduled, dfg.pending().len(), "{kind:?}: nodes dropped");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn schedulers_are_sound_on_random_dags(
        n in 1usize..60,
        kernels in 1u32..6,
        edges in proptest::collection::vec(0usize..64, 8..128),
        sigs in proptest::collection::vec(0u64..8, 1..8),
    ) {
        let dfg = random_dfg(n, kernels, &edges, &sigs);
        for kind in [SchedulerKind::InlineDepth, SchedulerKind::DynamicDepth, SchedulerKind::Agenda] {
            check_plan(&dfg, kind);
        }
    }

    #[test]
    fn optimized_schedulers_match_reference(
        n in 1usize..60,
        kernels in 1u32..6,
        edges in proptest::collection::vec(0usize..64, 8..128),
        sigs in proptest::collection::vec(0u64..8, 1..8),
    ) {
        // The optimized (sort-based / incremental) schedulers must produce
        // the exact batch sequence of the straight transcriptions of the
        // original algorithms, and charge identical decision counts.
        let dfg = random_dfg(n, kernels, &edges, &sigs);
        for kind in [SchedulerKind::InlineDepth, SchedulerKind::DynamicDepth, SchedulerKind::Agenda] {
            let opt = scheduler::plan(kind, &dfg);
            let refp = scheduler::reference::plan(kind, &dfg);
            prop_assert_eq!(opt.to_batches(), refp.to_batches(), "{:?}: partitions differ", kind);
            prop_assert_eq!(opt.decisions, refp.decisions, "{:?}: decisions differ", kind);
        }
    }

    #[test]
    fn inline_depth_is_cheapest(
        n in 4usize..60,
        edges in proptest::collection::vec(0usize..64, 8..128),
    ) {
        let dfg = random_dfg(n, 3, &edges, &[0]);
        let inline = scheduler::plan(SchedulerKind::InlineDepth, &dfg).decisions;
        let dynamic = scheduler::plan(SchedulerKind::DynamicDepth, &dfg).decisions;
        let agenda = scheduler::plan(SchedulerKind::Agenda, &dfg).decisions;
        prop_assert!(inline <= dynamic, "inline {inline} vs dynamic {dynamic}");
        prop_assert!(dynamic <= agenda, "dynamic {dynamic} vs agenda {agenda}");
    }
}
