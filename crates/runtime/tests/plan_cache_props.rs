//! Property tests for flush-plan memoization: plans served from a warmed
//! cache are bit-identical to freshly scheduled ones, across random DAGs,
//! all three schedulers, shifted id bases, and pathologically small cache
//! geometries (forced evictions).

use acrobat_codegen::KernelId;
use acrobat_runtime::plan_cache::{
    plan_cached, CacheConfig, CacheOutcome, CachedPlan, PlanCache, PlanL1,
};
use acrobat_runtime::scheduler::{self, Plan, SchedulerScratch};
use acrobat_runtime::{Dfg, SchedulerKind};
use acrobat_tensor::{DeviceMem, Tensor};
use proptest::prelude::*;

const KINDS: [SchedulerKind; 3] =
    [SchedulerKind::InlineDepth, SchedulerKind::DynamicDepth, SchedulerKind::Agenda];

fn cache_cfg(kind: SchedulerKind) -> CacheConfig {
    CacheConfig { kind, gather_fusion: true, coarsen: true, lane_cap: 0, share: true }
}

/// Builds a random DAG with signature tracking on, preceded by `prefix`
/// already-executed junk nodes so the structured window starts at a
/// shifted `NodeId` base.  The window's *structure* depends only on
/// `(n, kernels, edges, sigs)` — two calls with the same parameters and
/// different prefixes produce windows that must hash identically.
fn random_dfg(n: usize, kernels: u32, edges: &[usize], sigs: &[u64], prefix: usize) -> Dfg {
    let mut mem = DeviceMem::new(1 << 18);
    let mut dfg = Dfg::new();
    dfg.set_signature_tracking(true);
    for i in 0..prefix {
        let (id, _) = dfg.add_node(KernelId(0), i, 0, 0, 0, vec![], 1);
        let t = mem.upload(&Tensor::ones(&[1])).unwrap();
        dfg.complete_node(id, vec![t]);
    }
    let mut outputs = Vec::new();
    let mut depths: Vec<u64> = Vec::new();
    for i in 0..n {
        let mut args = Vec::new();
        let mut dep_depth = 0u64;
        if i > 0 {
            for k in 0..2 {
                let pick = edges[(i * 2 + k) % edges.len()] % (i + 1);
                if pick < i {
                    args.push(outputs[pick]);
                    dep_depth = dep_depth.max(depths[pick] + 1);
                } else {
                    args.push(dfg.ready_value(mem.upload(&Tensor::ones(&[2])).unwrap()));
                }
            }
        } else {
            args.push(dfg.ready_value(mem.upload(&Tensor::ones(&[2])).unwrap()));
        }
        let kernel = KernelId((i as u32 * 7 + 3) % kernels);
        let sig = sigs[i % sigs.len()] % 3;
        let depth = dep_depth.max((i / 3) as u64);
        let (_, outs) = dfg.add_node(kernel, i % 4, depth, 0, sig, args, 1);
        depths.push(depth);
        outputs.push(outs[0]);
    }
    dfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Warm the cache on one window, then schedule the *same structure* at
    /// a shifted id base through the cache: the probe must hit, and the
    /// remapped plan must be bit-identical (partition, launch order,
    /// decisions) to scheduling that window fresh.
    #[test]
    fn warmed_cache_plans_are_bit_identical(
        n in 1usize..60,
        kernels in 1u32..6,
        edges in proptest::collection::vec(0usize..64, 8..128),
        sigs in proptest::collection::vec(0u64..8, 1..8),
        prefix in 1usize..6,
    ) {
        for kind in KINDS {
            let cache = PlanCache::new();
            let mut l1 = PlanL1::new();
            let mut scratch = SchedulerScratch::new();
            let mut plan = Plan::default();
            let cfg = cache_cfg(kind);

            let mut warm = random_dfg(n, kernels, &edges, &sigs, 0);
            let first = plan_cached(&cfg, &mut warm, &mut scratch, &mut l1, &cache, &mut plan);
            prop_assert!(matches!(first, CacheOutcome::Miss { .. }), "{:?}: cold probe must miss", kind);
            let fresh = scheduler::plan(kind, &warm);
            prop_assert_eq!(plan.to_batches(), fresh.to_batches(), "{:?}: miss path diverged", kind);

            let mut shifted = random_dfg(n, kernels, &edges, &sigs, prefix);
            let second = plan_cached(&cfg, &mut shifted, &mut scratch, &mut l1, &cache, &mut plan);
            prop_assert_eq!(second, CacheOutcome::Hit, "{:?}: same structure must hit", kind);
            let fresh_shifted = scheduler::plan(kind, &shifted);
            prop_assert_eq!(
                plan.to_batches(),
                fresh_shifted.to_batches(),
                "{:?}: remapped plan diverged from fresh schedule", kind
            );
            prop_assert_eq!(plan.decisions, fresh_shifted.decisions, "{:?}: decisions diverged", kind);
        }
    }

    /// The shared-cache probe must also hit with a cold L1 (a different
    /// context warming from another context's publish).
    #[test]
    fn shared_cache_hits_across_contexts(
        n in 1usize..40,
        kernels in 1u32..5,
        edges in proptest::collection::vec(0usize..64, 8..64),
        sigs in proptest::collection::vec(0u64..8, 1..8),
    ) {
        let kind = SchedulerKind::InlineDepth;
        let cache = PlanCache::new();
        let mut scratch = SchedulerScratch::new();
        let mut plan = Plan::default();
        let cfg = cache_cfg(kind);

        let mut warm = random_dfg(n, kernels, &edges, &sigs, 0);
        let mut publisher_l1 = PlanL1::new();
        plan_cached(&cfg, &mut warm, &mut scratch, &mut publisher_l1, &cache, &mut plan);

        let mut probe = random_dfg(n, kernels, &edges, &sigs, 2);
        let mut cold_l1 = PlanL1::new();
        let out = plan_cached(&cfg, &mut probe, &mut scratch, &mut cold_l1, &cache, &mut plan);
        prop_assert_eq!(out, CacheOutcome::Hit, "cold L1 must fall through to the shared cache");
        prop_assert_eq!(plan.to_batches(), scheduler::plan(kind, &probe).to_batches());
    }

    /// Collision/eviction stress: a one-shard, tiny-capacity cache churns
    /// through several distinct structures; whatever mix of hits, misses
    /// and evictions results, every served plan must equal a fresh
    /// schedule bit for bit.
    #[test]
    fn tiny_cache_stays_correct_under_eviction(
        base_n in 2usize..12,
        shapes in 2usize..5,
        rounds in 2usize..5,
        edges in proptest::collection::vec(0usize..64, 8..64),
        sigs in proptest::collection::vec(0u64..8, 1..8),
    ) {
        let kind = SchedulerKind::InlineDepth;
        let cache = PlanCache::with_capacity(1, 1);
        let mut l1 = PlanL1::new();
        let mut scratch = SchedulerScratch::new();
        let mut plan = Plan::default();
        let cfg = cache_cfg(kind);

        // Distinct structures (different window lengths), probed round-robin.
        let mut dfgs: Vec<Dfg> =
            (0..shapes).map(|s| random_dfg(base_n + s, 3, &edges, &sigs, s)).collect();
        for _ in 0..rounds {
            for dfg in &mut dfgs {
                let out = plan_cached(&cfg, dfg, &mut scratch, &mut l1, &cache, &mut plan);
                prop_assert!(!matches!(out, CacheOutcome::Bypass), "clean windows never bypass");
                let fresh = scheduler::plan(kind, dfg);
                prop_assert_eq!(plan.to_batches(), fresh.to_batches(), "eviction churn corrupted a plan");
                prop_assert_eq!(plan.decisions, fresh.decisions);
            }
        }
        prop_assert!(cache.entry_count() <= 1, "capacity must bound residency");
    }

    /// Probe keys truncate `lane_cap` to 48 bits, so two distinct
    /// `(scheduler, lane_cap)` configurations can alias to one key (the
    /// routing key is lossy by design).  An aliased entry must fail the
    /// full-field verify and re-schedule — a lane-cap downshift must never
    /// be served the full-size frozen plan.
    #[test]
    fn lane_cap_probe_key_aliasing_is_rejected(
        n in 1usize..30,
        kernels in 1u32..5,
        edges in proptest::collection::vec(0usize..64, 8..64),
        sigs in proptest::collection::vec(0u64..8, 1..8),
        cap in 1usize..16,
    ) {
        let kind = SchedulerKind::InlineDepth;
        let cache = PlanCache::new();
        let mut scratch = SchedulerScratch::new();
        let mut plan = Plan::default();
        let cfg_a = CacheConfig { lane_cap: cap, ..cache_cfg(kind) };
        // Identical key bits: `bits()` packs `lane_cap << 16` into a 64-bit
        // word, so everything at or above 2^48 is dropped.
        let cfg_b = CacheConfig { lane_cap: cap + (1usize << 48), ..cache_cfg(kind) };

        let mut l1 = PlanL1::new();
        let mut warm = random_dfg(n, kernels, &edges, &sigs, 0);
        let first = plan_cached(&cfg_a, &mut warm, &mut scratch, &mut l1, &cache, &mut plan);
        prop_assert!(matches!(first, CacheOutcome::Miss { .. }), "cold probe must miss");
        let fresh_warm = scheduler::plan(kind, &warm);

        // Same window structure under the aliasing configuration: both the
        // L1 slot and the shared-cache shard route to the colliding key,
        // but the entry's exact lane_cap differs — must miss, not serve
        // the stale full-size plan.
        let mut probe = random_dfg(n, kernels, &edges, &sigs, 1);
        let out = plan_cached(&cfg_b, &mut probe, &mut scratch, &mut l1, &cache, &mut plan);
        prop_assert!(
            matches!(out, CacheOutcome::Miss { .. }),
            "aliased lane_cap served a stale plan: {:?}", out
        );
        let fresh_probe = scheduler::plan(kind, &probe);
        prop_assert_eq!(plan.to_batches(), fresh_probe.to_batches());
        prop_assert_eq!(plan.decisions, fresh_probe.decisions);

        // Direct slot check: an entry frozen under `cfg_a` verify-fails for
        // `cfg_b` even when probed with the very key it was inserted at,
        // while the exact configuration still verifies.
        let win = warm.window_signature().expect("clean window signs");
        let frozen = std::sync::Arc::new(CachedPlan::freeze(&warm, &fresh_warm, &win, &cfg_a));
        let mut slot = PlanL1::new();
        slot.insert(0x5EED, std::sync::Arc::clone(&frozen));
        prop_assert!(slot.get(0x5EED, &win, &cfg_a).is_some(), "exact config must verify");
        prop_assert!(
            slot.get(0x5EED, &win, &cfg_b).is_none(),
            "aliased config must be rejected by the full-field verify"
        );
    }
}
