//! Property tests for the simulated device timeline (ISSUE 5 invariants):
//!
//! * (a) the critical path is at least every lane's busy time — no lane can
//!   be busy longer than the whole schedule;
//! * (b) the serialized configuration (`streams = 1`, no copy engine, no
//!   host overlap) reproduces the legacy scalar accumulation: makespan ==
//!   serial charge sum, bitwise, against an independently computed sum;
//! * (c) no launch starts before the completion events of all its
//!   producers (or before its host issue time), on any seed and any
//!   configuration.

use acrobat_runtime::{DeviceTimeline, TimelineOptions, ValueId};
use proptest::prelude::*;

/// One randomized timeline operation.  Durations are small integers scaled
/// to µs so every arithmetic path is exercised without denormal noise.
#[derive(Debug, Clone)]
enum Op {
    Host { us: u16 },
    Upload { api: u16, transfer: u16 },
    Launch { api: u16, gather: u16, kernel: u16, deps: Vec<usize> },
    Download { api: u16, transfer: u16, dep: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..8, 0u16..50, 0u16..200, 1u16..900, proptest::collection::vec(0usize..64, 0..4)).prop_map(
        |(sel, api, aux, main, deps)| match sel {
            // Launches dominate the mix (as they do in a real flush).
            0..=3 => Op::Launch { api, gather: aux, kernel: main, deps },
            4..=5 => Op::Upload { api, transfer: main },
            6 => Op::Host { us: main },
            _ => Op::Download { api, transfer: main, dep: aux as usize },
        },
    )
}

/// The configuration palette every random program runs under.
fn configs() -> Vec<TimelineOptions> {
    vec![
        TimelineOptions::default(),
        TimelineOptions { streams: 2, copy_engine: false, host_overlap: false },
        TimelineOptions { streams: 1, copy_engine: true, host_overlap: false },
        TimelineOptions { streams: 4, copy_engine: true, host_overlap: false },
        TimelineOptions { streams: 3, copy_engine: true, host_overlap: true },
        TimelineOptions { streams: 8, copy_engine: false, host_overlap: true },
    ]
}

/// Replays `ops` on a traced timeline, independently accumulating the
/// legacy scalar sum and per-value completion events, then checks the
/// event-ordering invariants.
fn replay_and_check(opts: TimelineOptions, ops: &[Op]) {
    let mut t = DeviceTimeline::with_trace(opts);
    // Independently tracked state (not read back out of the timeline's
    // internals): the legacy serial accumulation and each value's
    // completion event.
    let mut legacy_sum = 0.0f64;
    let mut ready: Vec<(ValueId, f64)> = Vec::new();
    // (launch trace index, completion events of its producers)
    let mut launch_deps: Vec<(usize, Vec<f64>)> = Vec::new();
    let mut next_value = 0u64;

    for op in ops {
        match *op {
            Op::Host { us } => {
                legacy_sum += us as f64;
                t.host(us as f64);
            }
            Op::Upload { api, transfer } => {
                legacy_sum += api as f64;
                legacy_sum += transfer as f64;
                let v = ValueId(next_value);
                next_value += 1;
                t.upload(api as f64, transfer as f64, &[v]);
                ready.push((v, t.args_ready_us([v])));
            }
            Op::Launch { api, gather, kernel, ref deps } => {
                legacy_sum += api as f64;
                // The legacy accumulator charged kernel-plus-gather as one
                // account entry; mirror that addition order.
                legacy_sum += kernel as f64 + gather as f64;
                let picked: Vec<ValueId> = if ready.is_empty() {
                    Vec::new()
                } else {
                    deps.iter().map(|&i| ready[i % ready.len()].0).collect()
                };
                let dep_events: Vec<f64> = if ready.is_empty() {
                    Vec::new()
                } else {
                    deps.iter().map(|&i| ready[i % ready.len()].1).collect()
                };
                let deps_ready = t.args_ready_us(picked.iter().copied());
                let v = ValueId(next_value);
                next_value += 1;
                t.launch(deps_ready, gather as f64, kernel as f64, api as f64, [v]);
                launch_deps.push((t.trace().len() - 1, dep_events));
                ready.push((v, t.args_ready_us([v])));
            }
            Op::Download { api, transfer, dep } => {
                legacy_sum += api as f64;
                legacy_sum += transfer as f64;
                let v = (!ready.is_empty()).then(|| ready[dep % ready.len()].0);
                t.download(api as f64, transfer as f64, v);
            }
        }
    }

    let makespan = t.makespan_us();
    let serial = t.serial_us();

    // Overlap can only shorten the schedule, never lengthen it.
    assert!(makespan <= serial, "{opts:?}: makespan {makespan} > serial {serial}");
    assert!(t.overlap_saved_us() >= 0.0, "{opts:?}: negative overlap savings");

    // (a) The critical path bounds every lane's busy time.
    for (s, &busy) in t.stream_busy_us().iter().enumerate() {
        assert!(makespan >= busy, "{opts:?}: stream {s} busy {busy} > makespan {makespan}");
    }
    assert!(makespan >= t.copy_busy_us(), "{opts:?}: copy busier than makespan");
    assert!(makespan >= t.host_busy_us(), "{opts:?}: host busier than makespan");

    // (b) The serialized configuration reproduces the legacy scalar
    // accumulation: makespan is bitwise the serial sum, and the serial sum
    // matches the independent accumulation to the last ulp.
    if !opts.overlap_enabled() {
        assert_eq!(makespan, serial, "serialized config must telescope (bitwise)");
        assert_eq!(t.overlap_saved_us(), 0.0, "serialized config saves exactly nothing");
        assert_eq!(serial, legacy_sum, "serial sum diverged from the legacy accumulator");
    }

    // (c) No launch starts before its producers' completion events or its
    // issue time, and every stream executes its queue in order.
    for &(ti, ref dep_events) in &launch_deps {
        let e = t.trace()[ti];
        assert!(e.start_us >= e.issued_us, "{opts:?}: launch started before issue");
        assert!(e.start_us >= e.deps_ready_us, "{opts:?}: launch started before deps");
        for &d in dep_events {
            assert!(e.start_us >= d, "{opts:?}: launch started before a producer event");
        }
    }
    let mut tails = vec![0.0f64; opts.effective_streams()];
    for e in t.trace() {
        let s = e.stream as usize;
        assert!(e.start_us >= tails[s], "{opts:?}: stream {s} reordered its queue");
        assert!(e.end_us >= e.start_us);
        tails[s] = e.end_us;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn timeline_invariants_hold_on_random_programs(
        ops in proptest::collection::vec(op_strategy(), 1..80),
    ) {
        for opts in configs() {
            replay_and_check(opts, &ops);
        }
    }

    #[test]
    fn more_streams_never_hurt_modeled_latency(
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        // Monotonicity is not guaranteed in general greedy schedules, but
        // makespan must always stay within [longest single charge, serial].
        for opts in configs() {
            let mut t = DeviceTimeline::new(opts);
            let mut max_charge = 0.0f64;
            let mut vals: Vec<ValueId> = Vec::new();
            let mut next = 0u64;
            for op in &ops {
                match *op {
                    Op::Host { us } => { t.host(us as f64); max_charge = max_charge.max(us as f64); }
                    Op::Upload { api, transfer } => {
                        let v = ValueId(next); next += 1;
                        t.upload(api as f64, transfer as f64, &[v]);
                        vals.push(v);
                        max_charge = max_charge.max(transfer as f64);
                    }
                    Op::Launch { api, gather, kernel, ref deps } => {
                        let picked: Vec<ValueId> = if vals.is_empty() { Vec::new() }
                            else { deps.iter().map(|&i| vals[i % vals.len()]).collect() };
                        let dr = t.args_ready_us(picked.iter().copied());
                        let v = ValueId(next); next += 1;
                        t.launch(dr, gather as f64, kernel as f64, api as f64, [v]);
                        vals.push(v);
                        max_charge = max_charge.max(kernel as f64 + gather as f64);
                    }
                    Op::Download { api, transfer, dep } => {
                        let v = (!vals.is_empty()).then(|| vals[dep % vals.len()]);
                        t.download(api as f64, transfer as f64, v);
                        max_charge = max_charge.max(transfer as f64);
                    }
                }
            }
            prop_assert!(t.makespan_us() >= max_charge, "{:?}: schedule shorter than its longest op", opts);
            prop_assert!(t.makespan_us() <= t.serial_us(), "{:?}", opts);
        }
    }
}
