//! Compilation options, including the ablation ladder of the paper's Fig. 5.

use acrobat_analysis::AnalysisOptions;
use acrobat_codegen::ScheduleOptions;
use acrobat_runtime::{DeviceModel, RuntimeOptions, SchedulerKind};
use acrobat_vm::BackendKind;

/// Cumulative optimization levels matching the bars of Fig. 5.
///
/// Each level enables everything the previous one does, in the order the
/// paper's ablation adds them: standard kernel fusion, grain-size
/// coarsening, inline depth computation, program phases + ghost operators,
/// and finally gather-operator fusion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OptLevel {
    /// No optimizations: one kernel per operator, agenda scheduling,
    /// explicit gathers.
    None,
    /// - standard kernel fusion (vertical + horizontal).
    Fusion,
    /// - grain-size coarsening (§B.2).
    Coarsening,
    /// - inline depth computation + operator hoisting (§4.1, §B.1).
    InlineDepth,
    /// - program phases + ghost operators (§4.1, §B.3).
    PhasesGhosts,
    /// - gather-operator fusion (§5.2) — everything on.
    Full,
}

impl OptLevel {
    /// All levels in ablation order.
    pub const ALL: [OptLevel; 6] = [
        OptLevel::None,
        OptLevel::Fusion,
        OptLevel::Coarsening,
        OptLevel::InlineDepth,
        OptLevel::PhasesGhosts,
        OptLevel::Full,
    ];

    /// Short label used by the benchmark harness.
    pub fn label(self) -> &'static str {
        match self {
            OptLevel::None => "none",
            OptLevel::Fusion => "+fusion",
            OptLevel::Coarsening => "+coarsen",
            OptLevel::InlineDepth => "+inline-depth",
            OptLevel::PhasesGhosts => "+phases/ghosts",
            OptLevel::Full => "+gather-fusion",
        }
    }
}

/// Everything [`crate::compile`] needs to know.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Static-analysis toggles (Fig. 5 ablation flags).
    pub analysis: AnalysisOptions,
    /// Runtime configuration (scheduler, gather fusion, device memory).
    pub runtime: RuntimeOptions,
    /// Simulated accelerator model.
    pub device: DeviceModel,
    /// Auto-scheduler configuration.
    pub schedule: ScheduleOptions,
    /// Execution backend.
    pub backend: BackendKind,
    /// Seed for pseudo-random control flow (§E.1).
    pub seed: u64,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            analysis: AnalysisOptions::default(),
            runtime: RuntimeOptions::default(),
            device: DeviceModel::default(),
            schedule: ScheduleOptions::default(),
            backend: BackendKind::Aot,
            seed: 0x5EED,
        }
    }
}

impl CompileOptions {
    /// Enable or disable checked mode (`acrobat_runtime::check`): every
    /// flush is validated against the scheduler/DFG invariants and the
    /// reference schedulers.  Slow; intended for tests and fuzzing.
    pub fn with_checked(mut self, checked: bool) -> CompileOptions {
        self.runtime.checked = checked;
        self
    }

    /// Enable or disable flush-plan memoization
    /// (`acrobat_runtime::plan_cache`): repeated pending-window shapes are
    /// served by remapping a frozen plan instead of rescheduling.  Off by
    /// default (the paper configuration reschedules every flush).
    pub fn with_plan_cache(mut self, on: bool) -> CompileOptions {
        self.runtime.plan_cache = on;
        self
    }

    /// Enable or disable cross-request continuous batching
    /// (`acrobat_vm::broker`): concurrent `run` calls queue at a
    /// `BatchBroker` and merge into shared flush plans and shared batched
    /// kernel launches.  Off by default — each request batches only within
    /// itself, exactly the pre-broker behaviour.
    pub fn with_broker(mut self, on: bool) -> CompileOptions {
        self.runtime.broker = on;
        self
    }

    /// Select the kernel-execution backend
    /// (`acrobat_codegen::backend`): the default interpreter, or the
    /// PGO-gated specialized backend that compiles hot
    /// `(kernel, batch-size-class)` pairs into monomorphized
    /// allocation-free plans with bit-identical results.
    pub fn with_kernel_backend(
        mut self,
        backend: acrobat_codegen::KernelBackendKind,
    ) -> CompileOptions {
        self.runtime.backend = backend;
        self
    }

    /// Launch-count threshold for the specialized backend's compile gate
    /// (clamped to ≥ 1; only meaningful with
    /// [`CompileOptions::with_kernel_backend`] set to `Spec`).
    pub fn with_spec_threshold(mut self, threshold: u64) -> CompileOptions {
        self.runtime.spec_threshold = threshold;
        self
    }

    /// Options for one rung of the Fig. 5 ablation ladder.
    pub fn at_level(level: OptLevel) -> CompileOptions {
        let mut o = CompileOptions::default();
        let mut a = AnalysisOptions::none();
        // Duplication and hoisting ride with inline depth computation (they
        // exist to give the depth scheme its precision); duplication also
        // benefits kernel sharing, but keeping it on the inline-depth rung
        // matches the paper's grouping.
        let mut r = RuntimeOptions {
            scheduler: SchedulerKind::Agenda,
            gather_fusion: false,
            coarsen: false,
            ..RuntimeOptions::default()
        };
        if level >= OptLevel::Fusion {
            a.fusion = true;
            a.horizontal_fusion = true;
        }
        if level >= OptLevel::Coarsening {
            a.coarsen = true;
            r.coarsen = true;
        }
        if level >= OptLevel::InlineDepth {
            a.hoisting = true;
            a.duplication = true;
            r.scheduler = SchedulerKind::InlineDepth;
        }
        if level >= OptLevel::PhasesGhosts {
            a.phases = true;
            a.ghost_ops = true;
        }
        if level >= OptLevel::Full {
            r.gather_fusion = true;
        }
        o.analysis = a;
        o.runtime = r;
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_cumulative() {
        let none = CompileOptions::at_level(OptLevel::None);
        assert!(!none.analysis.fusion);
        assert_eq!(none.runtime.scheduler, SchedulerKind::Agenda);
        assert!(!none.runtime.gather_fusion);

        let fusion = CompileOptions::at_level(OptLevel::Fusion);
        assert!(fusion.analysis.fusion && !fusion.analysis.coarsen);

        let full = CompileOptions::at_level(OptLevel::Full);
        assert!(full.analysis.fusion);
        assert!(full.analysis.coarsen && full.runtime.coarsen);
        assert!(full.analysis.hoisting && full.analysis.phases && full.analysis.ghost_ops);
        assert_eq!(full.runtime.scheduler, SchedulerKind::InlineDepth);
        assert!(full.runtime.gather_fusion);
    }

    #[test]
    fn labels_unique() {
        let labels: std::collections::BTreeSet<&str> =
            OptLevel::ALL.iter().map(|l| l.label()).collect();
        assert_eq!(labels.len(), OptLevel::ALL.len());
    }
}
