//! The compiled model: pipeline orchestration and the run API.

use std::collections::BTreeMap;
use std::sync::Arc;

use acrobat_analysis::{analyze, AnalysisResult};
use acrobat_codegen::{autoschedule, KernelLibrary};
use acrobat_ir::{parse_module, typeck};
use acrobat_runtime::{Runtime, RuntimeOptions};
use acrobat_tensor::Tensor;
use acrobat_vm::{Executable, InputValue, RunResult};

use crate::{CompileError, CompileOptions};

/// A compiled, ready-to-run ACROBAT model.
#[derive(Debug)]
pub struct Model {
    exe: Executable,
    analysis: Arc<AnalysisResult>,
    options: CompileOptions,
    kernel_count: usize,
}

/// Compiles a frontend program through the full static pipeline.
///
/// # Errors
///
/// Returns [`CompileError::Frontend`] for parse/type errors and
/// [`CompileError::Execution`] for lowering failures.
pub fn compile(source: &str, options: &CompileOptions) -> Result<Model, CompileError> {
    let module = typeck::check_module(parse_module(source)?)?;
    let analysis = Arc::new(analyze(module, options.analysis)?);
    let mut library = KernelLibrary::build(&analysis);
    autoschedule(&mut library, options.schedule, None);
    let kernel_count = library.len();
    // Keep the runtime's coarsening flag in sync with the analysis flag.
    let runtime_options = RuntimeOptions { coarsen: options.analysis.coarsen, ..options.runtime };
    let runtime = Runtime::new(library, options.device, runtime_options);
    let exe = Executable::new(analysis.clone(), runtime, options.backend, options.seed)?;
    Ok(Model { exe, analysis, options: options.clone(), kernel_count })
}

impl Model {
    /// Runs one mini-batch.
    ///
    /// # Errors
    ///
    /// Propagates input and runtime errors.
    pub fn run(
        &self,
        params: &BTreeMap<String, Tensor>,
        instances: &[Vec<InputValue>],
    ) -> Result<RunResult, CompileError> {
        Ok(self.exe.run(params, instances)?)
    }

    /// Profile-guided re-scheduling (§D.1, Table 9): runs one profiling
    /// mini-batch, then re-runs the auto-scheduler with the measured
    /// per-kernel invocation frequencies as priorities.
    ///
    /// # Errors
    ///
    /// Propagates errors from the profiling run.
    pub fn apply_pgo(
        &mut self,
        params: &BTreeMap<String, Tensor>,
        instances: &[Vec<InputValue>],
    ) -> Result<(), CompileError> {
        let _ = self.exe.run(params, instances)?;
        let mut rt = self.exe.session.runtime.lock();
        let profile = rt.take_profile();
        autoschedule(rt.library_mut(), self.options.schedule, Some(&profile));
        Ok(())
    }

    /// Static-frequency-prioritized re-scheduling (§D.1): when PGO is not
    /// possible, ACROBAT estimates per-operator invocation frequencies from
    /// recursion nesting depth and prioritizes the auto-scheduler budget
    /// accordingly — no profiling run needed.
    pub fn apply_static_priorities(&mut self) {
        let freqs = acrobat_analysis::freq::estimate_frequencies(&self.analysis.module);
        let mut rt = self.exe.session.runtime.lock();
        let mut prio: BTreeMap<acrobat_codegen::KernelId, u64> = BTreeMap::new();
        for block in &self.analysis.blocks.blocks {
            for group in &block.groups {
                let w = group
                    .sites
                    .iter()
                    .map(|s| freqs.get(s).copied().unwrap_or(1))
                    .max()
                    .unwrap_or(1);
                let kid = rt.library().kernel_id_for_group(group.id);
                let e = prio.entry(kid).or_insert(0);
                *e = (*e).max(w);
            }
        }
        autoschedule(rt.library_mut(), self.options.schedule, Some(&prio));
    }

    /// The static-analysis results behind this model.
    pub fn analysis(&self) -> &AnalysisResult {
        &self.analysis
    }

    /// Number of distinct generated kernels.
    pub fn kernel_count(&self) -> usize {
        self.kernel_count
    }

    /// The options the model was compiled with.
    pub fn options(&self) -> &CompileOptions {
        &self.options
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OptLevel;

    const RNN: &str = r#"
        def @rnn(%inps: List[Tensor[(1, 8)]], %state: Tensor[(1, 8)],
                 $bias: Tensor[(1, 8)], $i_wt: Tensor[(8, 8)], $h_wt: Tensor[(8, 8)])
            -> List[Tensor[(1, 8)]] {
            match %inps {
                Nil => Nil,
                Cons(%inp, %tail) => {
                    let %inp_linear = add($bias, matmul(%inp, $i_wt));
                    let %new_state = sigmoid(add(%inp_linear, matmul(%state, $h_wt)));
                    Cons(%new_state, @rnn(%tail, %new_state, $bias, $i_wt, $h_wt))
                }
            }
        }
        def @main($bias: Tensor[(1, 8)], $i_wt: Tensor[(8, 8)], $h_wt: Tensor[(8, 8)],
                  $init: Tensor[(1, 8)], $c_wt: Tensor[(8, 4)],
                  %inps: List[Tensor[(1, 8)]]) -> List[Tensor[(1, 4)]] {
            let %states = @rnn(%inps, $init, $bias, $i_wt, $h_wt);
            map(fn(%p) { relu(matmul(%p, $c_wt)) }, %states)
        }
    "#;

    fn rnn_setup() -> (BTreeMap<String, Tensor>, Vec<Vec<InputValue>>) {
        let params = BTreeMap::from([
            ("bias".into(), Tensor::from_fn(&[1, 8], |i| 0.01 * i as f32)),
            ("i_wt".into(), Tensor::from_fn(&[8, 8], |i| ((i % 5) as f32 - 2.0) * 0.1)),
            ("h_wt".into(), Tensor::from_fn(&[8, 8], |i| ((i % 7) as f32 - 3.0) * 0.08)),
            ("init".into(), Tensor::zeros(&[1, 8])),
            ("c_wt".into(), Tensor::from_fn(&[8, 4], |i| (i as f32 - 16.0) * 0.02)),
        ]);
        let instances = (0..8)
            .map(|inst| {
                let len = 2 + inst % 4;
                let items = (0..len)
                    .map(|t| {
                        InputValue::Tensor(Tensor::from_fn(&[1, 8], |i| {
                            ((inst * 13 + t * 5 + i) % 11) as f32 * 0.1 - 0.5
                        }))
                    })
                    .collect();
                vec![InputValue::list(items)]
            })
            .collect();
        (params, instances)
    }

    #[test]
    fn compile_and_run() {
        let model = compile(RNN, &CompileOptions::default()).unwrap();
        assert!(model.kernel_count() >= 2);
        let (params, instances) = rnn_setup();
        let result = model.run(&params, &instances).unwrap();
        assert_eq!(result.outputs.len(), 8);
        assert!(result.stats.kernel_launches > 0);
    }

    #[test]
    fn ablation_ladder_monotone_launches() {
        // Kernel launches must not increase as optimizations accumulate.
        let (params, instances) = rnn_setup();
        let mut last = u64::MAX;
        for level in OptLevel::ALL {
            let model = compile(RNN, &CompileOptions::at_level(level)).unwrap();
            let r = model.run(&params, &instances).unwrap();
            // Gather fusion does not change launch counts, only bytes.
            assert!(
                r.stats.kernel_launches <= last,
                "{level:?}: {} launches, previous {last}",
                r.stats.kernel_launches
            );
            last = r.stats.kernel_launches;
        }
    }

    #[test]
    fn ablation_preserves_results() {
        let (params, instances) = rnn_setup();
        let reference = compile(RNN, &CompileOptions::at_level(OptLevel::None))
            .unwrap()
            .run(&params, &instances)
            .unwrap();
        for level in OptLevel::ALL {
            let r = compile(RNN, &CompileOptions::at_level(level))
                .unwrap()
                .run(&params, &instances)
                .unwrap();
            for (a, b) in reference.outputs.iter().zip(&r.outputs) {
                let (la, lb) = (a.clone().into_list().unwrap(), b.clone().into_list().unwrap());
                assert_eq!(la.len(), lb.len());
                for (x, y) in la.iter().zip(&lb) {
                    let (tx, ty) = match (x, y) {
                        (
                            acrobat_vm::OutputValue::Tensor(tx),
                            acrobat_vm::OutputValue::Tensor(ty),
                        ) => (tx, ty),
                        _ => panic!("tensor outputs"),
                    };
                    assert!(tx.allclose(ty, 1e-5), "{level:?} changed results");
                }
            }
        }
    }

    #[test]
    fn pgo_improves_or_matches_quality() {
        let mut options = CompileOptions { ..Default::default() };
        options.schedule.iterations = 30;
        let mut model = compile(RNN, &options).unwrap();
        let (params, instances) = rnn_setup();
        let before = model.run(&params, &instances).unwrap().stats.kernel_time_us;
        model.apply_pgo(&params, &instances).unwrap();
        let after = model.run(&params, &instances).unwrap().stats.kernel_time_us;
        // The hot recurrent kernel gets more of the budget; total device
        // time should not get worse by more than noise (it is deterministic
        // here, so: not worse at all).
        assert!(after <= before * 1.2 + 1e-9, "PGO: {after} vs {before}");
    }

    #[test]
    fn parse_error_surfaces() {
        assert!(matches!(
            compile("def @main(", &CompileOptions::default()),
            Err(CompileError::Frontend(_))
        ));
    }
}
