//! The compiled model: pipeline orchestration and the run API.

use std::collections::BTreeMap;
use std::sync::Arc;

use acrobat_analysis::{analyze, AnalysisResult};
use acrobat_codegen::{autoschedule, KernelLibrary};
use acrobat_ir::{parse_module, typeck};
use acrobat_runtime::{Engine, RuntimeOptions, RuntimeStats};
use acrobat_tensor::Tensor;
use acrobat_vm::{Executable, InputValue, RunOptions, RunResult};

use crate::{CompileError, CompileOptions};

/// A compiled, ready-to-run ACROBAT model.
#[derive(Debug)]
pub struct Model {
    exe: Executable,
    analysis: Arc<AnalysisResult>,
    options: CompileOptions,
    kernel_count: usize,
}

/// Compiles a frontend program through the full static pipeline.
///
/// # Errors
///
/// Returns [`CompileError::Frontend`] for parse/type errors and
/// [`CompileError::Execution`] for lowering failures.
pub fn compile(source: &str, options: &CompileOptions) -> Result<Model, CompileError> {
    let module = typeck::check_module(parse_module(source)?)?;
    let analysis = Arc::new(analyze(module, options.analysis)?);
    let mut library = KernelLibrary::build(&analysis);
    autoschedule(&mut library, options.schedule, None);
    let kernel_count = library.len();
    // Keep the runtime's coarsening flag in sync with the analysis flag.
    let runtime_options = RuntimeOptions { coarsen: options.analysis.coarsen, ..options.runtime };
    let engine = Engine::new(analysis.clone(), library, options.device, runtime_options);
    let exe = Executable::new(engine, options.backend, options.seed)?;
    Ok(Model { exe, analysis, options: options.clone(), kernel_count })
}

impl Model {
    /// Runs one mini-batch.
    ///
    /// # Errors
    ///
    /// Propagates input and runtime errors.
    pub fn run(
        &self,
        params: &BTreeMap<String, Tensor>,
        instances: &[Vec<InputValue>],
    ) -> Result<RunResult, CompileError> {
        Ok(self.exe.run(params, instances)?)
    }

    /// Runs one mini-batch with explicit per-run options (pseudo-random
    /// stream keys, fault injection).
    ///
    /// # Errors
    ///
    /// Propagates input and runtime errors.
    pub fn run_with(
        &self,
        params: &BTreeMap<String, Tensor>,
        instances: &[Vec<InputValue>],
        opts: &RunOptions,
    ) -> Result<RunResult, CompileError> {
        Ok(self.exe.run_with(params, instances, opts)?)
    }

    /// Runs one mini-batch with explicit per-instance pseudo-random-stream
    /// keys (§E.1), making each instance's stream independent of its slot
    /// in the batch.
    ///
    /// # Errors
    ///
    /// Propagates input and runtime errors.
    pub fn run_keyed(
        &self,
        params: &BTreeMap<String, Tensor>,
        instances: &[Vec<InputValue>],
        keys: &[u64],
    ) -> Result<RunResult, CompileError> {
        let opts = RunOptions { keys: Some(keys.to_vec()), ..RunOptions::default() };
        self.run_with(params, instances, &opts)
    }

    /// Statistics merged across every completed run of this model — serial
    /// or concurrent, one counter total (launches, gathers, bytes, …).
    pub fn stats(&self) -> RuntimeStats {
        self.exe.session.aggregate_stats()
    }

    /// Number of completed runs merged into [`Model::stats`].
    pub fn runs_completed(&self) -> u64 {
        self.exe.session.runs_completed()
    }

    /// Terminal-outcome counters for every request submitted to this model
    /// (completed, failed, cancelled, deadline-exceeded, shed, timed out).
    pub fn outcomes(&self) -> acrobat_vm::ServeOutcomes {
        self.exe.session.outcomes()
    }

    /// Execution contexts quarantined (dropped instead of recycled) because
    /// a run observed a fault, cancellation, or deadline miss.
    pub fn quarantined_count(&self) -> u64 {
        self.exe.session.quarantined_count()
    }

    /// Queue-level continuous-batching counters (dispatches, merged
    /// requests, cohort-size histogram), when the model was compiled with
    /// the broker enabled ([`CompileOptions::with_broker`]).
    pub fn broker_stats(&self) -> Option<acrobat_vm::BrokerStats> {
        self.exe.broker_stats()
    }

    /// Runs several requests as one broker cohort sharing flush plans and
    /// batched launches (see `acrobat_vm::broker`); usable with or without
    /// the background broker queue.
    pub fn run_cohort(
        &self,
        requests: &[acrobat_vm::CohortRequest<'_>],
    ) -> Vec<Result<RunResult, acrobat_vm::VmError>> {
        self.exe.run_cohort(requests)
    }

    /// Profile-guided re-scheduling (§D.1, Table 9): runs one profiling
    /// mini-batch, aggregates the per-kernel invocation frequencies across
    /// completed runs, and installs a re-tuned engine.  In-flight runs
    /// finish on the old engine; subsequent runs pick up the new schedule.
    ///
    /// # Errors
    ///
    /// Propagates errors from the profiling run.
    pub fn apply_pgo(
        &mut self,
        params: &BTreeMap<String, Tensor>,
        instances: &[Vec<InputValue>],
    ) -> Result<(), CompileError> {
        let _ = self.exe.run(params, instances)?;
        let session = &self.exe.session;
        let profile = session.take_profile();
        let schedule = self.options.schedule;
        // The profile drives both the auto-scheduler budget and — through
        // `retuned_with_profile` — the new engine's backend hotness
        // counters, so with the specialized backend the kernels the
        // profile says are hot compile on their first post-retune launch.
        let retuned = session.engine().retuned_with_profile(Some(&profile), |lib| {
            autoschedule(lib, schedule, Some(&profile))
        });
        session.swap_engine(Arc::new(retuned));
        Ok(())
    }

    /// Static-frequency-prioritized re-scheduling (§D.1): when PGO is not
    /// possible, ACROBAT estimates per-operator invocation frequencies from
    /// recursion nesting depth and prioritizes the auto-scheduler budget
    /// accordingly — no profiling run needed.
    pub fn apply_static_priorities(&mut self) {
        let freqs = acrobat_analysis::freq::estimate_frequencies(&self.analysis.module);
        let session = &self.exe.session;
        let engine = session.engine();
        let mut prio: BTreeMap<acrobat_codegen::KernelId, u64> = BTreeMap::new();
        for block in &self.analysis.blocks.blocks {
            for group in &block.groups {
                let w = group
                    .sites
                    .iter()
                    .map(|s| freqs.get(s).copied().unwrap_or(1))
                    .max()
                    .unwrap_or(1);
                let kid = engine.library().kernel_id_for_group(group.id);
                let e = prio.entry(kid).or_insert(0);
                *e = (*e).max(w);
            }
        }
        let schedule = self.options.schedule;
        let retuned = engine.retuned(|lib| autoschedule(lib, schedule, Some(&prio)));
        session.swap_engine(Arc::new(retuned));
    }

    /// The underlying executable (session access for serving-layer tests
    /// and tooling: admission gate, outcome counters, engine swap).
    pub fn executable(&self) -> &Executable {
        &self.exe
    }

    /// The static-analysis results behind this model.
    pub fn analysis(&self) -> &AnalysisResult {
        &self.analysis
    }

    /// Number of distinct generated kernels.
    pub fn kernel_count(&self) -> usize {
        self.kernel_count
    }

    /// The options the model was compiled with.
    pub fn options(&self) -> &CompileOptions {
        &self.options
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OptLevel;

    const RNN: &str = r#"
        def @rnn(%inps: List[Tensor[(1, 8)]], %state: Tensor[(1, 8)],
                 $bias: Tensor[(1, 8)], $i_wt: Tensor[(8, 8)], $h_wt: Tensor[(8, 8)])
            -> List[Tensor[(1, 8)]] {
            match %inps {
                Nil => Nil,
                Cons(%inp, %tail) => {
                    let %inp_linear = add($bias, matmul(%inp, $i_wt));
                    let %new_state = sigmoid(add(%inp_linear, matmul(%state, $h_wt)));
                    Cons(%new_state, @rnn(%tail, %new_state, $bias, $i_wt, $h_wt))
                }
            }
        }
        def @main($bias: Tensor[(1, 8)], $i_wt: Tensor[(8, 8)], $h_wt: Tensor[(8, 8)],
                  $init: Tensor[(1, 8)], $c_wt: Tensor[(8, 4)],
                  %inps: List[Tensor[(1, 8)]]) -> List[Tensor[(1, 4)]] {
            let %states = @rnn(%inps, $init, $bias, $i_wt, $h_wt);
            map(fn(%p) { relu(matmul(%p, $c_wt)) }, %states)
        }
    "#;

    fn rnn_setup() -> (BTreeMap<String, Tensor>, Vec<Vec<InputValue>>) {
        let params = BTreeMap::from([
            ("bias".into(), Tensor::from_fn(&[1, 8], |i| 0.01 * i as f32)),
            ("i_wt".into(), Tensor::from_fn(&[8, 8], |i| ((i % 5) as f32 - 2.0) * 0.1)),
            ("h_wt".into(), Tensor::from_fn(&[8, 8], |i| ((i % 7) as f32 - 3.0) * 0.08)),
            ("init".into(), Tensor::zeros(&[1, 8])),
            ("c_wt".into(), Tensor::from_fn(&[8, 4], |i| (i as f32 - 16.0) * 0.02)),
        ]);
        let instances = (0..8)
            .map(|inst| {
                let len = 2 + inst % 4;
                let items = (0..len)
                    .map(|t| {
                        InputValue::Tensor(Tensor::from_fn(&[1, 8], |i| {
                            ((inst * 13 + t * 5 + i) % 11) as f32 * 0.1 - 0.5
                        }))
                    })
                    .collect();
                vec![InputValue::list(items)]
            })
            .collect();
        (params, instances)
    }

    #[test]
    fn compile_and_run() {
        let model = compile(RNN, &CompileOptions::default()).unwrap();
        assert!(model.kernel_count() >= 2);
        let (params, instances) = rnn_setup();
        let result = model.run(&params, &instances).unwrap();
        assert_eq!(result.outputs.len(), 8);
        assert!(result.stats.kernel_launches > 0);
    }

    #[test]
    fn ablation_ladder_monotone_launches() {
        // Kernel launches must not increase as optimizations accumulate.
        let (params, instances) = rnn_setup();
        let mut last = u64::MAX;
        for level in OptLevel::ALL {
            let model = compile(RNN, &CompileOptions::at_level(level)).unwrap();
            let r = model.run(&params, &instances).unwrap();
            // Gather fusion does not change launch counts, only bytes.
            assert!(
                r.stats.kernel_launches <= last,
                "{level:?}: {} launches, previous {last}",
                r.stats.kernel_launches
            );
            last = r.stats.kernel_launches;
        }
    }

    #[test]
    fn ablation_preserves_results() {
        let (params, instances) = rnn_setup();
        let reference = compile(RNN, &CompileOptions::at_level(OptLevel::None))
            .unwrap()
            .run(&params, &instances)
            .unwrap();
        for level in OptLevel::ALL {
            let r = compile(RNN, &CompileOptions::at_level(level))
                .unwrap()
                .run(&params, &instances)
                .unwrap();
            for (a, b) in reference.outputs.iter().zip(&r.outputs) {
                let (la, lb) = (a.clone().into_list().unwrap(), b.clone().into_list().unwrap());
                assert_eq!(la.len(), lb.len());
                for (x, y) in la.iter().zip(&lb) {
                    let (tx, ty) = match (x, y) {
                        (
                            acrobat_vm::OutputValue::Tensor(tx),
                            acrobat_vm::OutputValue::Tensor(ty),
                        ) => (tx, ty),
                        _ => panic!("tensor outputs"),
                    };
                    assert!(tx.allclose(ty, 1e-5), "{level:?} changed results");
                }
            }
        }
    }

    #[test]
    fn pgo_improves_or_matches_quality() {
        let mut options = CompileOptions { ..Default::default() };
        options.schedule.iterations = 30;
        let mut model = compile(RNN, &options).unwrap();
        let (params, instances) = rnn_setup();
        let before = model.run(&params, &instances).unwrap().stats.kernel_time_us;
        model.apply_pgo(&params, &instances).unwrap();
        let after = model.run(&params, &instances).unwrap().stats.kernel_time_us;
        // The hot recurrent kernel gets more of the budget; total device
        // time should not get worse by more than noise (it is deterministic
        // here, so: not worse at all).
        assert!(after <= before * 1.2 + 1e-9, "PGO: {after} vs {before}");
    }

    #[test]
    fn stats_merge_across_sequential_runs() {
        let model = compile(RNN, &CompileOptions::default()).unwrap();
        let (params, instances) = rnn_setup();
        assert_eq!(model.runs_completed(), 0);
        let r1 = model.run(&params, &instances).unwrap().stats;
        let r2 = model.run(&params, &instances).unwrap().stats;
        let agg = model.stats();
        assert_eq!(model.runs_completed(), 2);
        assert_eq!(agg.nodes, r1.nodes + r2.nodes);
        assert_eq!(agg.kernel_launches, r1.kernel_launches + r2.kernel_launches);
        assert_eq!(agg.gather_copies, r1.gather_copies + r2.gather_copies);
        assert_eq!(agg.gather_bytes, r1.gather_bytes + r2.gather_bytes);
        assert_eq!(agg.memcpy_bytes, r1.memcpy_bytes + r2.memcpy_bytes);
        assert_eq!(agg.flushes, r1.flushes + r2.flushes);
        assert_eq!(
            agg.device_peak_elements,
            r1.device_peak_elements.max(r2.device_peak_elements),
            "peak merges by max, not sum"
        );
    }

    #[test]
    fn keyed_runs_reproduce_unkeyed_identity_order() {
        let model = compile(RNN, &CompileOptions::default()).unwrap();
        let (params, instances) = rnn_setup();
        let keys: Vec<u64> = (0..instances.len() as u64).collect();
        let a = model.run(&params, &instances).unwrap();
        let b = model.run_keyed(&params, &instances, &keys).unwrap();
        assert_eq!(a.outputs.len(), b.outputs.len());
        // Wrong arity is rejected.
        assert!(model.run_keyed(&params, &instances, &[1, 2]).is_err());
    }

    #[test]
    fn parse_error_surfaces() {
        assert!(matches!(
            compile("def @main(", &CompileOptions::default()),
            Err(CompileError::Frontend(_))
        ));
    }
}
