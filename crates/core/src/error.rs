use std::fmt;

use acrobat_ir::IrError;
use acrobat_vm::VmError;

/// Errors from compiling or running a model.
#[derive(Debug)]
#[non_exhaustive]
pub enum CompileError {
    /// Parsing or type checking failed.
    Frontend(IrError),
    /// Lowering or execution failed.
    Execution(VmError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Frontend(e) => write!(f, "frontend: {e}"),
            CompileError::Execution(e) => write!(f, "execution: {e}"),
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Frontend(e) => Some(e),
            CompileError::Execution(e) => Some(e),
        }
    }
}

impl From<IrError> for CompileError {
    fn from(e: IrError) -> Self {
        CompileError::Frontend(e)
    }
}

impl From<VmError> for CompileError {
    fn from(e: VmError) -> Self {
        CompileError::Execution(e)
    }
}

/// Alias for the serving-side reading of [`CompileError`]: every error a
/// [`crate::Model::run`] call can return, including the resilience
/// outcomes (load shedding, cancellation, deadline misses).
pub type RunError = CompileError;

impl CompileError {
    /// The underlying execution error, when this is an execution failure.
    pub fn as_vm(&self) -> Option<&VmError> {
        match self {
            CompileError::Execution(e) => Some(e),
            CompileError::Frontend(_) => None,
        }
    }

    /// Whether the request was shed at admission ([`VmError::Overloaded`]).
    pub fn is_overloaded(&self) -> bool {
        self.as_vm().is_some_and(VmError::is_overloaded)
    }

    /// Whether the request was cooperatively cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.as_vm().is_some_and(VmError::is_cancelled)
    }

    /// Whether the request missed its deadline budget.
    pub fn is_deadline_exceeded(&self) -> bool {
        self.as_vm().is_some_and(VmError::is_deadline_exceeded)
    }
}
