use std::fmt;

use acrobat_ir::IrError;
use acrobat_vm::VmError;

/// Errors from compiling or running a model.
#[derive(Debug)]
#[non_exhaustive]
pub enum CompileError {
    /// Parsing or type checking failed.
    Frontend(IrError),
    /// Lowering or execution failed.
    Execution(VmError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Frontend(e) => write!(f, "frontend: {e}"),
            CompileError::Execution(e) => write!(f, "execution: {e}"),
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Frontend(e) => Some(e),
            CompileError::Execution(e) => Some(e),
        }
    }
}

impl From<IrError> for CompileError {
    fn from(e: IrError) -> Self {
        CompileError::Frontend(e)
    }
}

impl From<VmError> for CompileError {
    fn from(e: VmError) -> Self {
        CompileError::Execution(e)
    }
}
