//! ACROBAT: compile-time optimized auto-batching for dynamic deep learning.
//!
//! This crate is the public face of the reproduction of *ACROBAT:
//! Optimizing Auto-batching of Dynamic Deep Learning at Compile Time*
//! (MLSYS 2024).  It wires the full pipeline of the paper's Fig. 1 together:
//!
//! 1. parse + type/shape check the input program (`acrobat-ir`),
//! 2. run the hybrid static analyses — parameter-reuse taint analysis, code
//!    duplication, kernel fusion, grain coarsening, operator hoisting,
//!    program phases, ghost operators (`acrobat-analysis`),
//! 3. generate and auto-schedule batched kernels (`acrobat-codegen`),
//! 4. lower to the AOT backend (or the Relay-VM-style baseline) and execute
//!    mini-batches with lazy DFG construction, dynamic batching and fibers
//!    (`acrobat-vm` + `acrobat-runtime`).
//!
//! # Quickstart
//!
//! ```
//! use acrobat_core::{compile, CompileOptions, InputValue, Tensor};
//! use std::collections::BTreeMap;
//!
//! let model = compile(
//!     "def @main($w: Tensor[(2, 2)], %x: Tensor[(1, 2)]) -> Tensor[(1, 2)] {
//!          relu(matmul(%x, $w))
//!      }",
//!     &CompileOptions::default(),
//! )?;
//! let params = BTreeMap::from([("w".to_string(), Tensor::ones(&[2, 2]))]);
//! let batch: Vec<Vec<InputValue>> =
//!     (0..8).map(|i| vec![InputValue::Tensor(Tensor::fill(&[1, 2], i as f32))]).collect();
//! let result = model.run(&params, &batch)?;
//! assert_eq!(result.outputs.len(), 8);
//! assert_eq!(result.stats.kernel_launches, 1, "eight instances, one batched launch");
//! # Ok::<(), acrobat_core::CompileError>(())
//! ```

#![deny(missing_docs)]

mod error;
mod model;
mod options;

pub use error::{CompileError, RunError};
pub use model::{compile, Model};
pub use options::{CompileOptions, OptLevel};

// Re-export the API surface users need.
pub use acrobat_analysis::{AnalysisOptions, AnalysisResult, ArgClass};
pub use acrobat_codegen::{Schedule, ScheduleOptions};
pub use acrobat_runtime::{
    CancelToken, Deadline, DeviceModel, Engine, RetryPolicy, RuntimeOptions, RuntimeStats,
    SchedulerKind,
};
pub use acrobat_tensor::{FaultKind, FaultMode, FaultPlan, FaultSite, Shape, Tensor};
pub use acrobat_vm::{
    BackendKind, BrokerStats, CohortRequest, InputValue, OutputValue, RunOptions, RunResult,
    ServeOutcomes, VmError,
};
