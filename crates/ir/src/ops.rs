//! The tensor-operator registry: surface operator names → [`PrimOp`].
//!
//! ACROBAT "avoids the use of vendor libraries" by generating every tensor
//! kernel itself (§5).  Correspondingly, the frontend does not distinguish
//! "library" operators: every operator name resolves here to a primitive the
//! kernel generator can compile, so new operators (the paper's example is
//! batched `argmax`, which DyNet's vendor libraries lack) come for free.

use std::collections::BTreeMap;

use acrobat_tensor::{PrimOp, Shape};

use crate::ast::AttrValue;

/// Attribute lookup helpers shared by the builders below.
fn int_attr(attrs: &BTreeMap<String, AttrValue>, key: &str) -> Result<i64, String> {
    match attrs.get(key) {
        Some(AttrValue::Int(v)) => Ok(*v),
        Some(other) => Err(format!("attribute `{key}` must be an integer, got {other:?}")),
        None => Err(format!("missing required attribute `{key}`")),
    }
}

fn float_attr(
    attrs: &BTreeMap<String, AttrValue>,
    key: &str,
    default: Option<f64>,
) -> Result<f64, String> {
    match attrs.get(key) {
        Some(AttrValue::Float(v)) => Ok(*v),
        Some(AttrValue::Int(v)) => Ok(*v as f64),
        Some(other) => Err(format!("attribute `{key}` must be a number, got {other:?}")),
        None => default.ok_or_else(|| format!("missing required attribute `{key}`")),
    }
}

fn shape_attr(attrs: &BTreeMap<String, AttrValue>, key: &str) -> Result<Shape, String> {
    match attrs.get(key) {
        Some(AttrValue::Shape(dims)) => Ok(Shape::new(dims)),
        Some(other) => Err(format!("attribute `{key}` must be a shape, got {other:?}")),
        None => Err(format!("missing required attribute `{key}`")),
    }
}

fn no_attrs(attrs: &BTreeMap<String, AttrValue>, name: &str) -> Result<(), String> {
    if attrs.is_empty() {
        Ok(())
    } else {
        Err(format!("operator `{name}` takes no attributes"))
    }
}

/// Builds the [`PrimOp`] for a surface operator name plus attributes.
///
/// # Errors
///
/// Returns a description if the name is unknown or the attributes are
/// malformed.
pub fn build_prim(name: &str, attrs: &BTreeMap<String, AttrValue>) -> Result<PrimOp, String> {
    let simple = |op: PrimOp| -> Result<PrimOp, String> {
        no_attrs(attrs, name)?;
        Ok(op)
    };
    match name {
        "relu" => simple(PrimOp::Relu),
        "sigmoid" => simple(PrimOp::Sigmoid),
        "tanh" => simple(PrimOp::Tanh),
        "exp" => simple(PrimOp::Exp),
        "log" => simple(PrimOp::Log),
        "neg" => simple(PrimOp::Neg),
        "sqrt" => simple(PrimOp::Sqrt),
        "gelu" => simple(PrimOp::Gelu),
        "add" => simple(PrimOp::Add),
        "sub" => simple(PrimOp::Sub),
        "mul" => simple(PrimOp::Mul),
        "div" => simple(PrimOp::Div),
        "maximum" => simple(PrimOp::Maximum),
        // `dense` is Relay's `nn.dense` spelled without the namespace; it is
        // a plain matrix multiply against a pre-transposed weight here.
        "matmul" | "dense" => simple(PrimOp::MatMul),
        "sum_rows" => simple(PrimOp::SumRows),
        "mean_rows" => simple(PrimOp::MeanRows),
        "max_rows" => simple(PrimOp::MaxRows),
        "argmax_rows" => simple(PrimOp::ArgmaxRows),
        "softmax_rows" => simple(PrimOp::SoftmaxRows),
        "layer_norm" => {
            Ok(PrimOp::LayerNormRows { eps: float_attr(attrs, "eps", Some(1e-5))? as f32 })
        }
        "concat" => Ok(PrimOp::Concat { axis: int_attr(attrs, "axis")? as usize }),
        "transpose" => simple(PrimOp::Transpose),
        "reshape" => Ok(PrimOp::Reshape { shape: shape_attr(attrs, "shape")? }),
        "slice" => Ok(PrimOp::Slice {
            axis: int_attr(attrs, "axis")? as usize,
            start: int_attr(attrs, "start")? as usize,
            len: int_attr(attrs, "len")? as usize,
        }),
        "fill" => Ok(PrimOp::Fill {
            value: float_attr(attrs, "value", None)? as f32,
            shape: shape_attr(attrs, "shape")?,
        }),
        "zeros" => Ok(PrimOp::Fill { value: 0.0, shape: shape_attr(attrs, "shape")? }),
        "ones" => Ok(PrimOp::Fill { value: 1.0, shape: shape_attr(attrs, "shape")? }),
        "copy" => simple(PrimOp::Copy),
        _ => Err(format!("unknown tensor operator `{name}`")),
    }
}

/// Returns `true` if `name` is a registered tensor operator.
pub fn is_op(name: &str) -> bool {
    const NAMES: &[&str] = &[
        "relu",
        "sigmoid",
        "tanh",
        "exp",
        "log",
        "neg",
        "sqrt",
        "gelu",
        "add",
        "sub",
        "mul",
        "div",
        "maximum",
        "matmul",
        "dense",
        "sum_rows",
        "mean_rows",
        "max_rows",
        "argmax_rows",
        "softmax_rows",
        "layer_norm",
        "concat",
        "transpose",
        "reshape",
        "slice",
        "fill",
        "zeros",
        "ones",
        "copy",
    ];
    NAMES.contains(&name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_ops_reject_attrs() {
        let mut attrs = BTreeMap::new();
        assert_eq!(build_prim("relu", &attrs), Ok(PrimOp::Relu));
        attrs.insert("axis".into(), AttrValue::Int(0));
        assert!(build_prim("relu", &attrs).is_err());
    }

    #[test]
    fn attr_ops() {
        let mut attrs = BTreeMap::new();
        attrs.insert("axis".into(), AttrValue::Int(1));
        assert_eq!(build_prim("concat", &attrs), Ok(PrimOp::Concat { axis: 1 }));
        assert!(build_prim("concat", &BTreeMap::new()).is_err());

        let mut attrs = BTreeMap::new();
        attrs.insert("shape".into(), AttrValue::Shape(vec![1, 4]));
        assert_eq!(
            build_prim("zeros", &attrs),
            Ok(PrimOp::Fill { value: 0.0, shape: Shape::new(&[1, 4]) })
        );
        attrs.insert("value".into(), AttrValue::Float(2.0));
        assert_eq!(
            build_prim("fill", &attrs),
            Ok(PrimOp::Fill { value: 2.0, shape: Shape::new(&[1, 4]) })
        );
    }

    #[test]
    fn layer_norm_default_eps() {
        let op = build_prim("layer_norm", &BTreeMap::new()).unwrap();
        assert!(matches!(op, PrimOp::LayerNormRows { eps } if (eps - 1e-5).abs() < 1e-9));
    }

    #[test]
    fn dense_aliases_matmul() {
        assert_eq!(build_prim("dense", &BTreeMap::new()), Ok(PrimOp::MatMul));
    }

    #[test]
    fn unknown_rejected() {
        assert!(build_prim("conv9d", &BTreeMap::new()).is_err());
        assert!(!is_op("conv9d"));
        assert!(is_op("argmax_rows"));
    }
}
