use std::fmt;

/// Errors produced by parsing and type checking.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum IrError {
    /// Lexical error at a source position.
    Lex {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        col: usize,
        /// Description.
        msg: String,
    },
    /// Parse error at a source position.
    Parse {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        col: usize,
        /// Description.
        msg: String,
    },
    /// Type error, with the function it occurred in.
    Type {
        /// Enclosing function name.
        func: String,
        /// Description.
        msg: String,
    },
    /// Reference to an unknown function, operator, constructor or variable.
    Unresolved {
        /// Kind of entity ("function", "operator", …).
        kind: &'static str,
        /// Name that failed to resolve.
        name: String,
    },
    /// The module has no `@main`.
    NoMain,
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::Lex { line, col, msg } => write!(f, "lex error at {line}:{col}: {msg}"),
            IrError::Parse { line, col, msg } => write!(f, "parse error at {line}:{col}: {msg}"),
            IrError::Type { func, msg } => write!(f, "type error in @{func}: {msg}"),
            IrError::Unresolved { kind, name } => write!(f, "unresolved {kind} `{name}`"),
            IrError::NoMain => write!(f, "module has no @main function"),
        }
    }
}

impl std::error::Error for IrError {}
